//! Static analysis of [`AccessPlan`]s: DRAM-level conflict estimates,
//! cycle lower bounds, and access-pattern lints.
//!
//! [`analyze_plan`] mirrors exactly what `tensordimm_nmp::NmpCore::run_plan`
//! does to a plan *before* timing begins — the NMP-local address lowering,
//! the hot-row cache's hit/miss stream, the set of requests that reach
//! DRAM — and then derives bounds no timing engine can undercut:
//!
//! * **bandwidth**: the busiest channel's data bus carries one burst per
//!   64-byte request, serialized;
//! * **activation**: a bank visiting `D` distinct rows issues at least `D`
//!   ACTs, consecutive ones `tRC` apart;
//! * **rank activation**: a rank's ACTs are paced by `tRRD_S` and the
//!   four-deep `tFAW` window;
//! * **SRAM port**: hot-row hits serialize on the SRAM read port at the
//!   configured hit latency.
//!
//! The replay engine's measured cycles must dominate
//! [`CycleBounds::lower_bound`]; `NmpCore::run_plan` checks this in verify
//! mode and the `sweep_static_check` bench gates it across the Fig. 14
//! grid.

use std::collections::{BTreeMap, BTreeSet};

use tensordimm_cache::{HotRowCache, HotRowCacheConfig, HotRowStats};
use tensordimm_dram::DramConfig;
use tensordimm_isa::{AccessKind, AccessPlan, BlockAccess, DimmContext, IsaError};

use crate::AnalysisError;

/// The NMP-local lowering of a global block address to a DIMM-local byte
/// address, exactly as `LocalAddressMap` + `run_plan` perform it: both the
/// owned-stripe and replicated branches collapse to `block / node_dim`
/// 64-byte units, wrapped into the local capacity.
pub fn lower_block_byte(block: u64, node_dim: u64, capacity_bytes: u64) -> u64 {
    (block / node_dim) * 64 % capacity_bytes
}

/// Static bank/rank pressure of a plan's DRAM-bound requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BankConflicts {
    /// Banks (over all channels/ranks) touched at least once.
    pub banks_touched: u64,
    /// Minimum activations: distinct rows summed over banks.
    pub activations: u64,
    /// Distinct rows in the most row-conflicted single bank.
    pub max_rows_one_bank: u64,
    /// Requests that reach DRAM (reads not served by the hot-row cache,
    /// plus all writes).
    pub dram_accesses: u64,
}

/// The four cycle lower bounds; the binding one is their maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleBounds {
    /// Busiest channel's data-bus occupancy: bursts × `burst_cycles`.
    pub bandwidth: u64,
    /// Worst single bank: `(D-1)·tRC + tRCD + burst` over `D` distinct
    /// rows.
    pub activation: u64,
    /// Worst rank: `A` activations paced by `max(⌊(A-1)/4⌋·tFAW,
    /// (A-1)·tRRD_S)`, plus `tRCD + burst` for the last one's data.
    pub rank_activation: u64,
    /// Hot-row hits serialized on the SRAM read port: `cached_writes ×
    /// hit_latency_cycles`.
    pub sram_port: u64,
}

impl CycleBounds {
    /// The binding lower bound on replayed cycles.
    pub fn lower_bound(&self) -> u64 {
        self.bandwidth
            .max(self.activation)
            .max(self.rank_activation)
            .max(self.sram_port)
    }
}

/// Access-pattern lints over the raw (pre-lowering) block stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanLint {
    /// Reads of a block already read, with no intervening write to it —
    /// each is a candidate for caching or coalescing.
    RedundantReads {
        /// How many reads were redundant.
        count: u64,
        /// One offending block.
        example_block: u64,
    },
    /// Writes overwritten by a later write with no intervening read of the
    /// block: the first write was wasted traffic.
    DeadWrites {
        /// How many writes were dead.
        count: u64,
        /// One offending block.
        example_block: u64,
    },
}

/// Everything [`analyze_plan`] derives from one plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanAnalysis {
    /// Reads that reach DRAM (hot-row hits excluded).
    pub dram_reads: u64,
    /// Writes that reach DRAM (always all of them — outputs drain to
    /// DRAM even when their operand came from SRAM).
    pub dram_writes: u64,
    /// The hot-row cache counters this plan would produce.
    pub hot_rows: HotRowStats,
    /// Writes whose operand is sourced from the hot-row SRAM.
    pub cached_writes: u64,
    /// DRAM-bound requests per channel.
    pub channel_bursts: Vec<u64>,
    /// Bank/rank pressure summary.
    pub conflicts: BankConflicts,
    /// The cycle lower bounds.
    pub bounds: CycleBounds,
    /// Access-pattern lints (empty when the stream is clean).
    pub lints: Vec<PlanLint>,
}

impl PlanAnalysis {
    /// Shorthand for [`CycleBounds::lower_bound`].
    pub fn lower_bound(&self) -> u64 {
        self.bounds.lower_bound()
    }
}

/// Analyze `plan` as DIMM `ctx.tid` of `ctx.node_dim` would replay it
/// against `dram`, with an optional hot-row cache in front of the gather
/// path.
///
/// The request stream derived here is exactly the one
/// `NmpCore::run_plan` hands to its `MemorySystem`: in verify mode the
/// core asserts its replayed `reads`/`writes` equal
/// [`PlanAnalysis::dram_reads`]/[`PlanAnalysis::dram_writes`] and its
/// cycles dominate [`PlanAnalysis::lower_bound`].
///
/// # Errors
///
/// * [`AnalysisError::Isa`] for an invalid context,
/// * [`AnalysisError::Dram`] for an invalid DRAM configuration,
/// * [`AnalysisError::Cache`] for an invalid cache geometry.
pub fn analyze_plan(
    plan: &AccessPlan,
    ctx: DimmContext,
    dram: &DramConfig,
    hot_rows: HotRowCacheConfig,
) -> Result<PlanAnalysis, AnalysisError> {
    analyze_accesses(plan.accesses(), ctx, dram, hot_rows)
}

/// [`analyze_plan`] over a raw access stream — for callers that
/// concatenate or synthesize streams beyond what one instruction's
/// [`AccessPlan`] produces (e.g. multi-instruction programs, where the
/// dead-write lint becomes reachable).
///
/// # Errors
///
/// Same conditions as [`analyze_plan`].
pub fn analyze_accesses(
    accesses: &[BlockAccess],
    ctx: DimmContext,
    dram: &DramConfig,
    hot_rows: HotRowCacheConfig,
) -> Result<PlanAnalysis, AnalysisError> {
    if ctx.node_dim == 0 || ctx.tid >= ctx.node_dim {
        return Err(AnalysisError::Isa(IsaError::InvalidContext {
            node_dim: ctx.node_dim,
            tid: ctx.tid,
        }));
    }
    dram.validate()?;
    hot_rows.validate()?;
    let mut cache = if hot_rows.is_enabled() {
        Some(HotRowCache::new(hot_rows)?)
    } else {
        None
    };
    let capacity = dram.capacity_bytes();

    let mut dram_reads = 0u64;
    let mut dram_writes = 0u64;
    let mut cached_writes = 0u64;
    let mut channel_bursts = vec![0u64; dram.geometry.channels];
    // (channel, rank, bank_group, bank) -> distinct rows touched.
    let mut bank_rows: BTreeMap<(usize, usize, usize, usize), BTreeSet<usize>> = BTreeMap::new();
    // Raw-block-stream lint state: last operation on each block.
    #[derive(Clone, Copy, PartialEq)]
    enum Last {
        Read,
        WrittenUnread,
        WrittenRead,
    }
    let mut last_op: BTreeMap<u64, Last> = BTreeMap::new();
    let mut redundant_reads = 0u64;
    let mut redundant_example = 0u64;
    let mut dead_writes = 0u64;
    let mut dead_example = 0u64;

    // Mirrors the cache consult in `run_plan`: looked up once per gathered
    // row on its first owned block; the hit state spans the row's whole
    // read/write sequence.
    let mut row_hit = false;
    for access in accesses {
        let mut to_dram = true;
        match access.kind {
            AccessKind::Read => {
                if let (Some(c), Some(row)) = (&mut cache, access.row) {
                    if row.first_block {
                        row_hit = c.access(row.row);
                    }
                    if row_hit {
                        c.credit_hit_blocks(1);
                        to_dram = false;
                    }
                }
                if to_dram {
                    dram_reads += 1;
                }
                match last_op.get(&access.block) {
                    Some(Last::Read) => {
                        redundant_reads += 1;
                        redundant_example = access.block;
                    }
                    Some(Last::WrittenUnread | Last::WrittenRead) => {
                        last_op.insert(access.block, Last::WrittenRead);
                    }
                    None => {
                        last_op.insert(access.block, Last::Read);
                    }
                }
            }
            AccessKind::Write => {
                dram_writes += 1;
                if row_hit {
                    cached_writes += 1;
                }
                if last_op.get(&access.block) == Some(&Last::WrittenUnread) {
                    dead_writes += 1;
                    dead_example = access.block;
                }
                last_op.insert(access.block, Last::WrittenUnread);
            }
        }
        if to_dram {
            let byte = lower_block_byte(access.block, ctx.node_dim, capacity);
            let decoded = dram.mapping.decode(byte, &dram.geometry)?;
            channel_bursts[decoded.channel] += 1;
            bank_rows
                .entry((
                    decoded.channel,
                    decoded.rank,
                    decoded.bank_group,
                    decoded.bank,
                ))
                .or_default()
                .insert(decoded.row);
        }
    }

    let t = &dram.timing;
    let burst = t.burst_cycles();
    let bandwidth = channel_bursts.iter().copied().max().unwrap_or(0) * burst;
    let mut activation = 0u64;
    let mut max_rows_one_bank = 0u64;
    let mut activations = 0u64;
    // (channel, rank) -> total minimum activations.
    let mut rank_acts: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    for (&(ch, rank, ..), rows) in &bank_rows {
        let d = rows.len() as u64;
        activations += d;
        max_rows_one_bank = max_rows_one_bank.max(d);
        activation = activation.max((d - 1) * t.trc() + t.trcd + burst);
        *rank_acts.entry((ch, rank)).or_default() += d;
    }
    let rank_activation = rank_acts
        .values()
        .map(|&a| {
            let paced = ((a - 1) / 4 * t.tfaw).max((a - 1) * t.trrd_s);
            paced + t.trcd + burst
        })
        .max()
        .unwrap_or(0);
    let sram_port = cached_writes * hot_rows.hit_latency_cycles;

    let mut lints = Vec::new();
    if redundant_reads > 0 {
        lints.push(PlanLint::RedundantReads {
            count: redundant_reads,
            example_block: redundant_example,
        });
    }
    if dead_writes > 0 {
        lints.push(PlanLint::DeadWrites {
            count: dead_writes,
            example_block: dead_example,
        });
    }

    Ok(PlanAnalysis {
        dram_reads,
        dram_writes,
        hot_rows: cache.map(|c| c.stats()).unwrap_or_default(),
        cached_writes,
        channel_bursts,
        conflicts: BankConflicts {
            banks_touched: bank_rows.len() as u64,
            activations,
            max_rows_one_bank,
            dram_accesses: dram_reads + dram_writes,
        },
        bounds: CycleBounds {
            bandwidth,
            activation,
            rank_activation,
            sram_port,
        },
        lints,
    })
}

/// Tail-line waste of a gather whose payload does not fill its padded
/// vector: the runtime pads `vec_blocks` up to a multiple of `node_dim`
/// so every DIMM owns an equal slice, and the last 64-byte line of the
/// payload itself may be partial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailWaste {
    /// Useful bytes per gathered vector.
    pub payload_bytes: u64,
    /// 64-byte blocks the payload spans.
    pub vec_blocks: u64,
    /// Blocks after padding to a `node_dim` multiple.
    pub padded_vec_blocks: u64,
    /// Bytes moved but never used, per vector.
    pub waste_bytes_per_vector: u64,
}

impl TailWaste {
    /// Fraction of moved bytes that are waste (0 when nothing moves).
    pub fn waste_fraction(&self) -> f64 {
        let moved = self.padded_vec_blocks * 64;
        if moved == 0 {
            0.0
        } else {
            self.waste_bytes_per_vector as f64 / moved as f64
        }
    }
}

/// Misalignment/tail-line waste for gathering `payload_bytes`-byte vectors
/// across `node_dim` DIMMs — the static form of the runtime's
/// `div_ceil(64)` + `div_ceil(node_dim) * node_dim` padding.
pub fn gather_tail_waste(payload_bytes: u64, node_dim: u64) -> TailWaste {
    let node_dim = node_dim.max(1);
    let vec_blocks = payload_bytes.div_ceil(64).max(1);
    let padded_vec_blocks = vec_blocks.div_ceil(node_dim) * node_dim;
    TailWaste {
        payload_bytes,
        vec_blocks,
        padded_vec_blocks,
        waste_bytes_per_vector: padded_vec_blocks * 64 - payload_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensordimm_isa::{Instruction, ReduceOp};

    fn dram() -> DramConfig {
        DramConfig::ddr4_3200_channel()
    }

    fn gather_plan(indices: &[u64], vec_blocks: u64, ctx: DimmContext) -> AccessPlan {
        let g = Instruction::Gather {
            table_base: 0,
            idx_base: 1 << 22,
            output_base: 1 << 23,
            count: indices.len() as u64,
            vec_blocks,
        };
        AccessPlan::for_dimm(&g, ctx, Some(indices)).unwrap()
    }

    #[test]
    fn lowering_matches_both_map_branches() {
        // Owned block (blk % nd == tid) and replicated block lower to the
        // same local offset: blk / nd in 64-byte units.
        for (blk, nd) in [(35u64, 4u64), (32, 4), (0, 1), (1023, 32)] {
            assert_eq!(lower_block_byte(blk, nd, 1 << 30), blk / nd * 64);
        }
        // Wraps into local capacity.
        assert_eq!(lower_block_byte(1 << 40, 1, 1 << 20), 0);
    }

    #[test]
    fn uncached_counts_match_plan() {
        let ctx = DimmContext::new(4, 1);
        let plan = gather_plan(&[3, 7, 3, 9], 8, ctx);
        let a = analyze_plan(&plan, ctx, &dram(), HotRowCacheConfig::disabled()).unwrap();
        assert_eq!(a.dram_reads, plan.reads());
        assert_eq!(a.dram_writes, plan.writes());
        assert_eq!(a.cached_writes, 0);
        assert_eq!(a.hot_rows, HotRowStats::default());
        assert_eq!(a.bounds.sram_port, 0);
        assert_eq!(
            a.channel_bursts.iter().sum::<u64>(),
            a.dram_reads + a.dram_writes
        );
        assert_eq!(a.conflicts.dram_accesses, a.dram_reads + a.dram_writes);
        assert!(a.lower_bound() >= a.bounds.bandwidth);
    }

    #[test]
    fn cache_mirroring_skips_hit_reads_not_writes() {
        let ctx = DimmContext::new(4, 0);
        // Row 3 revisited twice: 2 hits x 2 owned blocks each.
        let plan = gather_plan(&[3, 3, 3, 9], 8, ctx);
        let cold = analyze_plan(&plan, ctx, &dram(), HotRowCacheConfig::disabled()).unwrap();
        let warm =
            analyze_plan(&plan, ctx, &dram(), HotRowCacheConfig::fully_associative(4)).unwrap();
        assert_eq!(warm.hot_rows.hits, 2);
        assert_eq!(warm.hot_rows.misses, 2);
        assert_eq!(warm.hot_rows.hit_blocks, 2 * 2);
        assert_eq!(warm.dram_reads, cold.dram_reads - warm.hot_rows.hit_blocks);
        assert_eq!(warm.dram_writes, cold.dram_writes);
        assert_eq!(warm.cached_writes, warm.hot_rows.hit_blocks);
        assert_eq!(
            warm.bounds.sram_port,
            warm.cached_writes * HotRowCacheConfig::PAPER_HIT_LATENCY_CYCLES
        );
    }

    #[test]
    fn redundant_reads_flagged() {
        let ctx = DimmContext::new(1, 0);
        // The same row gathered twice re-reads its blocks with no writes
        // to them in between.
        let plan = gather_plan(&[5, 5], 4, ctx);
        let a = analyze_plan(&plan, ctx, &dram(), HotRowCacheConfig::disabled()).unwrap();
        assert!(
            a.lints
                .iter()
                .any(|l| matches!(l, PlanLint::RedundantReads { count: 4, .. })),
            "{:?}",
            a.lints
        );
    }

    #[test]
    fn dead_writes_flagged_across_instructions() {
        // One instruction never rewrites a block, so dead writes only
        // appear on concatenated streams — two REDUCEs sharing an output
        // window kill every write of the first.
        let ctx = DimmContext::new(4, 0);
        let r = Instruction::Reduce {
            input1: 0,
            input2: 64,
            output_base: 128,
            count: 32,
            op: ReduceOp::Add,
        };
        let once = AccessPlan::for_dimm(&r, ctx, None).unwrap();
        let mut twice: Vec<BlockAccess> = once.accesses().to_vec();
        twice.extend_from_slice(once.accesses());
        let a = analyze_accesses(&twice, ctx, &dram(), HotRowCacheConfig::disabled()).unwrap();
        assert!(
            a.lints
                .iter()
                .any(|l| matches!(l, PlanLint::DeadWrites { count: 8, .. })),
            "{:?}",
            a.lints
        );
        // A single instruction's stream stays clean.
        let single =
            analyze_accesses(once.accesses(), ctx, &dram(), HotRowCacheConfig::disabled()).unwrap();
        assert!(!single
            .lints
            .iter()
            .any(|l| matches!(l, PlanLint::DeadWrites { .. })));
    }

    #[test]
    fn activation_bound_grows_with_distinct_rows() {
        let ctx = DimmContext::new(1, 0);
        // Row-sized strides land in few banks but many DRAM rows.
        let near: Vec<u64> = (0..8).collect();
        let far: Vec<u64> = (0..8).map(|i| i * 4096).collect();
        let a_near = analyze_plan(
            &gather_plan(&near, 4, ctx),
            ctx,
            &dram(),
            HotRowCacheConfig::disabled(),
        )
        .unwrap();
        let a_far = analyze_plan(
            &gather_plan(&far, 4, ctx),
            ctx,
            &dram(),
            HotRowCacheConfig::disabled(),
        )
        .unwrap();
        assert!(a_far.conflicts.activations > a_near.conflicts.activations);
        assert!(a_far.bounds.rank_activation >= a_near.bounds.rank_activation);
        assert_eq!(a_near.bounds.bandwidth, a_far.bounds.bandwidth);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let ctx = DimmContext::new(4, 0);
        let plan = gather_plan(&[1], 4, ctx);
        assert!(matches!(
            analyze_plan(
                &plan,
                DimmContext::new(0, 0),
                &dram(),
                HotRowCacheConfig::disabled()
            ),
            Err(AnalysisError::Isa(_))
        ));
        assert!(matches!(
            analyze_plan(
                &plan,
                ctx,
                &dram(),
                HotRowCacheConfig::set_associative(48, 4)
            ),
            Err(AnalysisError::Cache(_))
        ));
    }

    #[test]
    fn tail_waste_accounting() {
        // 100-byte payload on 4 DIMMs: 2 blocks, padded to 4.
        let w = gather_tail_waste(100, 4);
        assert_eq!(w.vec_blocks, 2);
        assert_eq!(w.padded_vec_blocks, 4);
        assert_eq!(w.waste_bytes_per_vector, 4 * 64 - 100);
        assert!(w.waste_fraction() > 0.0 && w.waste_fraction() < 1.0);
        // Exact fit: no waste.
        let e = gather_tail_waste(256, 4);
        assert_eq!(e.waste_bytes_per_vector, 0);
        assert_eq!(e.waste_fraction(), 0.0);
    }
}
