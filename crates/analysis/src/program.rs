//! Abstract interpretation over TensorISA programs.
//!
//! [`analyze_program`] walks a sequence of [`Instruction`]s bound for one
//! DIMM and predicts, without touching memory, exactly what
//! [`tensordimm_isa::execute_on_dimm`] would do: which instruction fails
//! first (and why), and — for accepted programs — the exact per-DIMM
//! [`ExecSummary`].
//!
//! All address arithmetic is done in `u128`, so a computation that would
//! overflow `u64` in the executor (a debug-build panic) is classified as
//! out-of-bounds here: the true address is `>= 2^64`, which exceeds any
//! representable capacity.
//!
//! Analysis scope notes:
//!
//! * GATHER table reads are checked through the provided index list
//!   ([`ProgramStep::indices`]); lists shorter than `count` are padded
//!   with zeros, matching both `AccessPlan::for_dimm` and zero-initialized
//!   memory. If anything wrote into the index-list window first, the
//!   runtime indices are unknowable and the program is rejected as
//!   indeterminate rather than mis-predicted.
//! * Use-before-def is reported for REDUCE/AVERAGE inputs only. GATHER
//!   index lists are normally staged by the host (a prior *program* write
//!   there is the indeterminacy error above), and embedding tables are
//!   classic pre-initialized inputs — flagging either would be noise.

use tensordimm_isa::{DimmContext, ExecSummary, Instruction, IsaError, LANES};

use crate::{Diagnostic, DiagnosticKind};

const LANES_W: u128 = LANES as u128;

/// One instruction of a program under analysis.
#[derive(Debug, Clone, Copy)]
pub struct ProgramStep<'a> {
    /// The instruction.
    pub instr: Instruction,
    /// For GATHER: the index list staged at `idx_base` before the program
    /// runs, in lookup order. Entries beyond the list length count as
    /// zero. Ignored for REDUCE/AVERAGE.
    pub indices: Option<&'a [u64]>,
}

impl<'a> ProgramStep<'a> {
    /// A step with no index list (sufficient for REDUCE/AVERAGE; a GATHER
    /// without indices is rejected as [`DiagnosticKind::MissingIndices`]).
    pub fn new(instr: Instruction) -> Self {
        ProgramStep {
            instr,
            indices: None,
        }
    }

    /// A step carrying the index list its GATHER will observe.
    pub fn with_indices(instr: Instruction, indices: &'a [u64]) -> Self {
        ProgramStep {
            instr,
            indices: Some(indices),
        }
    }
}

/// The analyzer's verdict over a program.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramReport {
    /// All findings, grouped by instruction in program order; within one
    /// instruction, errors precede warnings and infos, in the order the
    /// runtime would hit them.
    pub diagnostics: Vec<Diagnostic>,
    /// Statically computed per-DIMM work over all validating steps.
    /// Exact for accepted programs: it equals the merged [`ExecSummary`]
    /// of executing every step.
    pub summary: ExecSummary,
}

impl ProgramReport {
    /// Whether the program carries no error-severity diagnostics.
    ///
    /// An accepted program is guaranteed to execute successfully (and
    /// match [`ProgramReport::summary`]) under the conditions documented
    /// on [`analyze_program`].
    pub fn accepted(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == crate::Severity::Error)
    }

    /// The first error-severity diagnostic, if any — for determinate
    /// programs this names the instruction the executor fails at.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diagnostics
            .iter()
            .find(|d| d.severity == crate::Severity::Error)
    }

    /// Whether acceptance was undecidable (missing or clobbered index
    /// lists) rather than provably pass/fail.
    pub fn indeterminate(&self) -> bool {
        self.diagnostics.iter().any(|d| d.kind.is_indeterminate())
    }
}

/// Closed-form per-DIMM work for one instruction (no memory access).
///
/// Counts use saturating arithmetic: they are exact whenever the
/// instruction's loops terminate in bounded memory (in particular for any
/// program [`analyze_program`] accepts).
///
/// # Errors
///
/// The same [`IsaError`] that [`tensordimm_isa::execute_on_dimm`] would
/// raise before its first access: an invalid context or a validation
/// failure.
pub fn static_summary(instr: &Instruction, ctx: DimmContext) -> Result<ExecSummary, IsaError> {
    validate_ctx(ctx)?;
    instr.validate(ctx.node_dim)?;
    let nd = ctx.node_dim;
    Ok(match *instr {
        Instruction::Gather {
            count, vec_blocks, ..
        } => {
            // vec_blocks % node_dim == 0 post-validate, so every DIMM owns
            // exactly vec_blocks / node_dim blocks of each embedding.
            let owned = vec_blocks / nd;
            let moved = count.saturating_mul(owned);
            ExecSummary {
                blocks_read: count.div_ceil(LANES as u64).saturating_add(moved),
                blocks_written: moved,
                alu_ops: 0,
            }
        }
        Instruction::Reduce { count, .. } => {
            // count % node_dim == 0 post-validate.
            let n = count / nd;
            ExecSummary {
                blocks_read: n.saturating_mul(2),
                blocks_written: n,
                alu_ops: n,
            }
        }
        Instruction::Average {
            count,
            group,
            vec_blocks,
            ..
        } => {
            let owned = vec_blocks / nd;
            let written = count.saturating_mul(owned);
            ExecSummary {
                blocks_read: written.saturating_mul(group),
                blocks_written: written,
                alu_ops: written.saturating_mul(group.saturating_add(1)),
            }
        }
    })
}

/// Analyze `steps` as one program executed in order by DIMM `ctx` against
/// a flat memory of `mem_blocks` 64-byte blocks.
///
/// Agreement contract with `execute_on_dimm` run step-by-step on a
/// zero-initialized memory pre-staged with each step's index list:
///
/// * accepted (no errors) ⇒ every step returns `Ok` and the merged
///   summaries equal [`ProgramReport::summary`];
/// * rejected with a determinate first error ⇒ execution fails (an `Err`
///   or a memory-model panic) at exactly
///   `first_error().unwrap().instr_index`;
/// * rejected as [`ProgramReport::indeterminate`] ⇒ no runtime claim.
pub fn analyze_program(
    steps: &[ProgramStep<'_>],
    ctx: DimmContext,
    mem_blocks: u64,
) -> ProgramReport {
    let mut diagnostics = Vec::new();
    let mut summary = ExecSummary::default();
    if let Err(e) = validate_ctx(ctx) {
        diagnostics.push(Diagnostic::new(0, DiagnosticKind::Malformed(e)));
        return ProgramReport {
            diagnostics,
            summary,
        };
    }
    let b = mem_blocks as u128;
    let nd = ctx.node_dim as u128;
    let tid = ctx.tid as u128;
    // Half-open write windows of prior steps, for clobber/def-use lints.
    let mut write_windows: Vec<(usize, u128, u128)> = Vec::new();

    for (at, step) in steps.iter().enumerate() {
        if let Err(e) = step.instr.validate(ctx.node_dim) {
            // The executor fails before its first access: no window, no
            // summary contribution.
            diagnostics.push(Diagnostic::new(at, DiagnosticKind::Malformed(e)));
            continue;
        }
        if let Ok(s) = static_summary(&step.instr, ctx) {
            summary.merge(&s);
        }

        match step.instr {
            Instruction::Gather {
                table_base,
                idx_base,
                output_base,
                count,
                vec_blocks,
            } => {
                let cnt = count as u128;
                let vb = vec_blocks as u128;
                let ib = idx_base as u128;
                let ob = output_base as u128;
                let idx_win = (ib, ib.saturating_add(cnt.div_ceil(LANES_W)));
                let out_win = (ob, ob.saturating_add(cnt.saturating_mul(vb)));

                // The indices the executor reads must be the staged ones:
                // any program write into the index-list window first (or
                // the gather's own interleaved output) makes them
                // unknowable.
                let clobbered_by = write_windows
                    .iter()
                    .find(|&&(_, s, e)| overlaps(idx_win, (s, e)))
                    .map(|&(who, ..)| who)
                    .or_else(|| overlaps(idx_win, out_win).then_some(at));
                let mut indeterminate = false;
                if let Some(clobbered_by) = clobbered_by {
                    diagnostics.push(Diagnostic::new(
                        at,
                        DiagnosticKind::IndeterminateIndices { clobbered_by },
                    ));
                    indeterminate = true;
                }
                if step.indices.is_none() {
                    diagnostics.push(Diagnostic::new(at, DiagnosticKind::MissingIndices));
                    indeterminate = true;
                }

                // Earliest runtime failure as (iteration, within-iteration
                // priority): the index-list read happens at the top of
                // each 16-lookup window, the index bounds check next, the
                // output writes last.
                let mut fail: Option<(u128, u8, DiagnosticKind)> = None;
                let idx_blocks = cnt.div_ceil(LANES_W);
                let bad_j = if ib >= b {
                    Some(0)
                } else if b - ib < idx_blocks {
                    Some(b - ib)
                } else {
                    None
                };
                if let Some(j) = bad_j {
                    consider(
                        &mut fail,
                        j * LANES_W,
                        0,
                        DiagnosticKind::OobRead {
                            what: "index list",
                            block: sat64(ib.saturating_add(j)),
                            blocks: mem_blocks,
                        },
                    );
                }
                if !indeterminate {
                    let list = step.indices.unwrap_or(&[]);
                    let scan = (list.len() as u128).min(cnt) as usize;
                    for (i, &index) in list[..scan].iter().enumerate() {
                        let last = (table_base as u128)
                            .saturating_add((index as u128).saturating_mul(vb))
                            .saturating_add(vb);
                        if last > b {
                            consider(
                                &mut fail,
                                i as u128,
                                1,
                                DiagnosticKind::IndexOutOfRange {
                                    index,
                                    block: sat64(last - 1),
                                    blocks: mem_blocks,
                                },
                            );
                            break;
                        }
                    }
                    if cnt > list.len() as u128 {
                        // First zero-padded lookup.
                        let last = (table_base as u128).saturating_add(vb);
                        if last > b {
                            consider(
                                &mut fail,
                                list.len() as u128,
                                1,
                                DiagnosticKind::IndexOutOfRange {
                                    index: 0,
                                    block: sat64(last - 1),
                                    blocks: mem_blocks,
                                },
                            );
                        }
                    }
                }
                // vec_blocks % node_dim == 0 and vec_blocks > 0, so this
                // DIMM's last owned offset per embedding is:
                let maxk = vb - nd + tid;
                let i_wr = first_bad_linear(ob, maxk, vb, b, cnt);
                if let Some(i) = i_wr {
                    let base_i = ob.saturating_add(i.saturating_mul(vb));
                    let k0 = first_bad_owned_k(base_i, b, nd, tid);
                    consider(
                        &mut fail,
                        i,
                        2,
                        DiagnosticKind::OobWrite {
                            what: "output",
                            block: sat64(base_i.saturating_add(k0)),
                            blocks: mem_blocks,
                        },
                    );
                }
                if let Some((.., kind)) = fail {
                    diagnostics.push(Diagnostic::new(at, kind));
                }

                if !indeterminate {
                    // The span of table blocks the staged indices touch.
                    let list = step.indices.unwrap_or(&[]);
                    let scan = (list.len() as u128).min(cnt) as usize;
                    let mut lo = u128::MAX;
                    let mut hi = 0u128;
                    for &index in &list[..scan] {
                        lo = lo.min(index as u128);
                        hi = hi.max(index as u128);
                    }
                    // Lookups past the staged list read index 0.
                    if cnt > list.len() as u128 {
                        lo = 0;
                    }
                    if lo != u128::MAX {
                        let t = table_base as u128;
                        let table_win = (
                            t.saturating_add(lo.saturating_mul(vb)),
                            t.saturating_add(hi.saturating_mul(vb)).saturating_add(vb),
                        );
                        if let Some((first_block, last_block)) = overlap_range(out_win, table_win) {
                            diagnostics.push(Diagnostic::new(
                                at,
                                DiagnosticKind::ReadWriteOverlap {
                                    what: "table",
                                    first_block,
                                    last_block,
                                },
                            ));
                        }
                    }
                }
                write_windows.push((at, out_win.0, out_win.1));
            }

            Instruction::Reduce {
                input1,
                input2,
                output_base,
                count,
                ..
            } => {
                let cnt = count as u128;
                let mut fail: Option<(u128, u8, DiagnosticKind)> = None;
                for (prio, base, what, is_write) in [
                    (0u8, input1, "input1", false),
                    (1, input2, "input2", false),
                    (2, output_base, "output", true),
                ] {
                    let bb = base as u128;
                    // The loop variable doubles as the block offset, so
                    // the first failing offset is the failing iteration.
                    let bad = first_bad_owned_k(bb, b, nd, tid);
                    if bad < cnt {
                        let block = sat64(bb.saturating_add(bad));
                        let kind = if is_write {
                            DiagnosticKind::OobWrite {
                                what,
                                block,
                                blocks: mem_blocks,
                            }
                        } else {
                            DiagnosticKind::OobRead {
                                what,
                                block,
                                blocks: mem_blocks,
                            }
                        };
                        consider(&mut fail, bad, prio, kind);
                    }
                }
                if let Some((.., kind)) = fail {
                    diagnostics.push(Diagnostic::new(at, kind));
                }

                let in1 = (input1 as u128, input1 as u128 + cnt);
                let in2 = (input2 as u128, input2 as u128 + cnt);
                let out_win = (output_base as u128, output_base as u128 + cnt);
                for (what, win) in [("input1", in1), ("input2", in2)] {
                    if let Some((first_block, last_block)) = overlap_range(out_win, win) {
                        diagnostics.push(Diagnostic::new(
                            at,
                            DiagnosticKind::ReadWriteOverlap {
                                what,
                                first_block,
                                last_block,
                            },
                        ));
                    }
                }
                lint_use_before_def(
                    &mut diagnostics,
                    &write_windows,
                    at,
                    &[("input1", in1), ("input2", in2)],
                );
                write_windows.push((at, out_win.0, out_win.1));
            }

            Instruction::Average {
                input_base,
                output_base,
                count,
                group,
                vec_blocks,
            } => {
                let cnt = count as u128;
                let g = group as u128;
                let vb = vec_blocks as u128;
                let ib = input_base as u128;
                let ob = output_base as u128;
                let maxk = vb - nd + tid;
                let stride = g.saturating_mul(vb);
                // Worst read offset within one output: last group member,
                // last owned block. Reads of output i all precede its
                // writes at each owned offset.
                let read_c = (g - 1).saturating_mul(vb).saturating_add(maxk);
                let i_r = first_bad_linear(ib, read_c, stride, b, cnt);
                let i_w = first_bad_linear(ob, maxk, vb, b, cnt);
                let fail = match (i_r, i_w) {
                    (None, None) => None,
                    (Some(i), None) => Some((i, true)),
                    (None, Some(i)) => Some((i, false)),
                    (Some(ir), Some(iw)) => {
                        if ir != iw {
                            Some(if ir < iw { (ir, true) } else { (iw, false) })
                        } else {
                            // Same output iteration: per owned offset the
                            // group reads precede the write, so the read
                            // wins ties on the first failing offset.
                            let a = ib.saturating_add(ir.saturating_mul(stride));
                            let k_r = first_bad_owned_k(
                                a.saturating_add((g - 1).saturating_mul(vb)),
                                b,
                                nd,
                                tid,
                            );
                            let w = ob.saturating_add(iw.saturating_mul(vb));
                            let k_w = first_bad_owned_k(w, b, nd, tid);
                            Some((ir, k_r <= k_w))
                        }
                    }
                };
                match fail {
                    Some((i, true)) => {
                        let a = ib.saturating_add(i.saturating_mul(stride));
                        let k = first_bad_owned_k(
                            a.saturating_add((g - 1).saturating_mul(vb)),
                            b,
                            nd,
                            tid,
                        );
                        let j0 = if a.saturating_add(k) >= b {
                            0
                        } else {
                            (b - a - k).div_ceil(vb)
                        };
                        diagnostics.push(Diagnostic::new(
                            at,
                            DiagnosticKind::OobRead {
                                what: "input",
                                block: sat64(
                                    a.saturating_add(j0.saturating_mul(vb)).saturating_add(k),
                                ),
                                blocks: mem_blocks,
                            },
                        ));
                    }
                    Some((i, false)) => {
                        let w = ob.saturating_add(i.saturating_mul(vb));
                        let k = first_bad_owned_k(w, b, nd, tid);
                        diagnostics.push(Diagnostic::new(
                            at,
                            DiagnosticKind::OobWrite {
                                what: "output",
                                block: sat64(w.saturating_add(k)),
                                blocks: mem_blocks,
                            },
                        ));
                    }
                    None => {}
                }

                let in_win = (ib, ib.saturating_add(cnt.saturating_mul(stride)));
                let out_win = (ob, ob.saturating_add(cnt.saturating_mul(vb)));
                if let Some((first_block, last_block)) = overlap_range(out_win, in_win) {
                    diagnostics.push(Diagnostic::new(
                        at,
                        DiagnosticKind::ReadWriteOverlap {
                            what: "input",
                            first_block,
                            last_block,
                        },
                    ));
                }
                lint_use_before_def(&mut diagnostics, &write_windows, at, &[("input", in_win)]);
                write_windows.push((at, out_win.0, out_win.1));
            }
        }
    }
    ProgramReport {
        diagnostics,
        summary,
    }
}

fn validate_ctx(ctx: DimmContext) -> Result<(), IsaError> {
    if ctx.node_dim == 0 || ctx.tid >= ctx.node_dim {
        return Err(IsaError::InvalidContext {
            node_dim: ctx.node_dim,
            tid: ctx.tid,
        });
    }
    Ok(())
}

fn sat64(v: u128) -> u64 {
    v.min(u64::MAX as u128) as u64
}

/// Half-open interval overlap (empty intervals overlap nothing).
fn overlaps(a: (u128, u128), b: (u128, u128)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

fn overlap_range(a: (u128, u128), b: (u128, u128)) -> Option<(u64, u64)> {
    let lo = a.0.max(b.0);
    let hi = a.1.min(b.1);
    (lo < hi).then(|| (sat64(lo), sat64(hi - 1)))
}

/// Keep the earliest candidate by (iteration, within-iteration priority).
fn consider(
    slot: &mut Option<(u128, u8, DiagnosticKind)>,
    i: u128,
    prio: u8,
    kind: DiagnosticKind,
) {
    let better = match slot {
        None => true,
        Some((bi, bp, _)) => (i, prio) < (*bi, *bp),
    };
    if better {
        *slot = Some((i, prio, kind));
    }
}

/// Smallest owned offset `k = tid + m*node_dim` with `base + k >= b`
/// (unbounded — callers compare against their own loop limit).
fn first_bad_owned_k(base: u128, b: u128, nd: u128, tid: u128) -> u128 {
    if base.saturating_add(tid) >= b {
        tid
    } else {
        tid + (b - base - tid).div_ceil(nd) * nd
    }
}

/// Smallest `i < cnt` with `base + i*stride + c >= b`, if any.
fn first_bad_linear(base: u128, c: u128, stride: u128, b: u128, cnt: u128) -> Option<u128> {
    if base.saturating_add(c) >= b {
        return Some(0);
    }
    let i = (b - base - c).div_ceil(stride);
    (i < cnt).then_some(i)
}

fn lint_use_before_def(
    diagnostics: &mut Vec<Diagnostic>,
    write_windows: &[(usize, u128, u128)],
    at: usize,
    reads: &[(&'static str, (u128, u128))],
) {
    if at == 0 {
        return;
    }
    for &(what, win) in reads {
        if !write_windows.iter().any(|&(_, s, e)| overlaps(win, (s, e))) {
            diagnostics.push(Diagnostic::new(
                at,
                DiagnosticKind::UseBeforeDef {
                    what,
                    first_block: sat64(win.0),
                    last_block: sat64(win.1.saturating_sub(1)),
                },
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use tensordimm_isa::{execute_on_dimm, ReduceOp, VecMemory};

    const B: u64 = 4096;

    fn ctx() -> DimmContext {
        DimmContext::new(4, 1)
    }

    /// Run `steps` through the executor on a zero-init memory with the
    /// index lists staged, returning Ok(merged summary), Err(index) on the
    /// first `Err`, or Err(index) on a panic at that step.
    fn run(steps: &[ProgramStep<'_>], ctx: DimmContext) -> Result<ExecSummary, usize> {
        let mut mem = VecMemory::new(B);
        for step in steps {
            if let (Instruction::Gather { idx_base, .. }, Some(list)) = (&step.instr, step.indices)
            {
                let words: Vec<u32> = list.iter().map(|&v| v as u32).collect();
                if *idx_base + (words.len() as u64).div_ceil(16) <= B {
                    mem.write_u32_slice(*idx_base, &words);
                }
            }
        }
        let mut total = ExecSummary::default();
        for (i, step) in steps.iter().enumerate() {
            let got = catch_unwind(AssertUnwindSafe(|| {
                execute_on_dimm(&step.instr, &mut mem, ctx)
            }));
            match got {
                Ok(Ok(s)) => total.merge(&s),
                Ok(Err(_)) | Err(_) => return Err(i),
            }
        }
        Ok(total)
    }

    fn gather(count: u64) -> Instruction {
        Instruction::Gather {
            table_base: 0,
            idx_base: 3000,
            output_base: 1024,
            count,
            vec_blocks: 8,
        }
    }

    #[test]
    fn clean_program_is_accepted_and_summary_matches() {
        let indices = [5u64, 0, 99, 2, 7, 63];
        let steps = [
            ProgramStep::with_indices(gather(6), &indices),
            ProgramStep::new(Instruction::Reduce {
                input1: 1024,
                input2: 1048,
                output_base: 2048,
                count: 24,
                op: ReduceOp::Add,
            }),
            ProgramStep::new(Instruction::Average {
                input_base: 1024,
                output_base: 2560,
                count: 2,
                group: 3,
                vec_blocks: 8,
            }),
        ];
        let report = analyze_program(&steps, ctx(), B);
        assert!(report.accepted(), "{:?}", report.diagnostics);
        assert_eq!(run(&steps, ctx()), Ok(report.summary));
    }

    #[test]
    fn index_out_of_range_matches_executor() {
        let indices = [5u64, 512, 3];
        let steps = [ProgramStep::with_indices(gather(3), &indices)];
        let report = analyze_program(&steps, ctx(), B);
        let first = report.first_error().expect("rejected");
        assert_eq!(first.instr_index, 0);
        assert_eq!(
            first.kind,
            DiagnosticKind::IndexOutOfRange {
                index: 512,
                block: 512 * 8 + 7,
                blocks: B,
            }
        );
        assert_eq!(run(&steps, ctx()), Err(0));
    }

    #[test]
    fn oob_write_detected_where_executor_panics() {
        let steps = [ProgramStep::with_indices(
            Instruction::Gather {
                table_base: 0,
                idx_base: 3000,
                output_base: B - 8,
                count: 4,
                vec_blocks: 8,
            },
            &[1, 1, 1, 1],
        )];
        let report = analyze_program(&steps, ctx(), B);
        assert!(matches!(
            report.first_error().unwrap().kind,
            DiagnosticKind::OobWrite { what: "output", .. }
        ));
        assert_eq!(run(&steps, ctx()), Err(0));
    }

    #[test]
    fn reduce_oob_read_ordering() {
        // input2 runs off the end before output does.
        let r = Instruction::Reduce {
            input1: 0,
            input2: B - 8,
            output_base: 1024,
            count: 16,
            op: ReduceOp::Add,
        };
        let steps = [ProgramStep::new(r)];
        let report = analyze_program(&steps, ctx(), B);
        assert!(matches!(
            report.first_error().unwrap().kind,
            DiagnosticKind::OobRead { what: "input2", .. }
        ));
        assert_eq!(run(&steps, ctx()), Err(0));
    }

    #[test]
    fn average_oob_read_detected() {
        let a = Instruction::Average {
            input_base: B - 32,
            output_base: 0,
            count: 2,
            group: 4,
            vec_blocks: 8,
        };
        let steps = [ProgramStep::new(a)];
        let report = analyze_program(&steps, ctx(), B);
        assert!(matches!(
            report.first_error().unwrap().kind,
            DiagnosticKind::OobRead { what: "input", .. }
        ));
        assert_eq!(run(&steps, ctx()), Err(0));
    }

    #[test]
    fn malformed_instruction_reported_at_its_index() {
        let indices = [1u64, 2];
        let bad = Instruction::Gather {
            table_base: 1, // misaligned for node_dim = 4
            idx_base: 3000,
            output_base: 1024,
            count: 2,
            vec_blocks: 8,
        };
        let steps = [
            ProgramStep::with_indices(gather(2), &indices),
            ProgramStep::with_indices(bad, &indices),
        ];
        let report = analyze_program(&steps, ctx(), B);
        let first = report.first_error().unwrap();
        assert_eq!(first.instr_index, 1);
        assert!(matches!(first.kind, DiagnosticKind::Malformed(_)));
        assert_eq!(run(&steps, ctx()), Err(1));
    }

    #[test]
    fn missing_indices_is_indeterminate() {
        let report = analyze_program(&[ProgramStep::new(gather(4))], ctx(), B);
        assert!(!report.accepted());
        assert!(report.indeterminate());
    }

    #[test]
    fn clobbered_index_list_is_indeterminate() {
        let indices = [1u64];
        let steps = [
            ProgramStep::new(Instruction::Reduce {
                input1: 0,
                input2: 8,
                output_base: 3000, // lands on the gather's index list
                count: 8,
                op: ReduceOp::Add,
            }),
            ProgramStep::with_indices(gather(1), &indices),
        ];
        let report = analyze_program(&steps, ctx(), B);
        assert!(report.indeterminate());
        assert_eq!(
            report.first_error().unwrap().kind,
            DiagnosticKind::IndeterminateIndices { clobbered_by: 0 }
        );
    }

    #[test]
    fn self_clobbering_gather_is_indeterminate() {
        let indices = [1u64, 2, 3];
        let g = Instruction::Gather {
            table_base: 0,
            idx_base: 1028, // inside its own output window
            output_base: 1024,
            count: 3,
            vec_blocks: 8,
        };
        let report = analyze_program(&[ProgramStep::with_indices(g, &indices)], ctx(), B);
        assert_eq!(
            report.first_error().unwrap().kind,
            DiagnosticKind::IndeterminateIndices { clobbered_by: 0 }
        );
    }

    #[test]
    fn overlap_and_use_before_def_are_nonfatal() {
        let steps = [
            ProgramStep::new(Instruction::Reduce {
                input1: 0,
                input2: 64,
                output_base: 32, // overlaps input1's window [0, 64)
                count: 64,
                op: ReduceOp::Add,
            }),
            ProgramStep::new(Instruction::Reduce {
                input1: 2048, // never written by this program
                input2: 32,   // defined by step 0
                output_base: 2560,
                count: 64,
                op: ReduceOp::Add,
            }),
        ];
        let report = analyze_program(&steps, ctx(), B);
        assert!(report.accepted());
        assert!(report.diagnostics.iter().any(|d| {
            d.instr_index == 0
                && d.severity == Severity::Warning
                && matches!(
                    d.kind,
                    DiagnosticKind::ReadWriteOverlap { what: "input1", .. }
                )
        }));
        assert!(report.diagnostics.iter().any(|d| {
            d.instr_index == 1
                && d.severity == Severity::Info
                && matches!(d.kind, DiagnosticKind::UseBeforeDef { what: "input1", .. })
        }));
        assert_eq!(run(&steps, ctx()), Ok(report.summary));
    }

    #[test]
    fn static_summary_matches_executor_per_opcode() {
        let mut mem = VecMemory::new(B);
        mem.write_u32_slice(3000, &[9, 4, 1, 1, 0, 2, 8]);
        for instr in [
            gather(7),
            Instruction::Reduce {
                input1: 0,
                input2: 512,
                output_base: 2048,
                count: 32,
                op: ReduceOp::Mul,
            },
            Instruction::Average {
                input_base: 0,
                output_base: 2048,
                count: 3,
                group: 5,
                vec_blocks: 8,
            },
        ] {
            for tid in 0..4 {
                let c = DimmContext::new(4, tid);
                let want = execute_on_dimm(&instr, &mut mem, c).unwrap();
                assert_eq!(
                    static_summary(&instr, c).unwrap(),
                    want,
                    "{instr} tid {tid}"
                );
            }
        }
    }

    #[test]
    fn invalid_context_rejects_everything() {
        let report = analyze_program(&[ProgramStep::new(gather(1))], DimmContext::new(0, 0), 64);
        assert!(matches!(
            report.first_error().unwrap().kind,
            DiagnosticKind::Malformed(IsaError::InvalidContext { .. })
        ));
    }
}
