//! Static analysis over TensorISA programs and access plans.
//!
//! The NMP cores execute whatever the runtime lowers; this crate checks the
//! lowered artifacts *before* they reach the replay engine:
//!
//! * [`analyze_program`] — abstract interpretation over an [`Instruction`]
//!   sequence: validation, bounds vs the DIMM's block address space,
//!   index-range checks against the provided index lists, def-before-use
//!   and read/write-overlap lints, with typed [`Diagnostic`] output. The
//!   agreement contract with the executor is:
//!
//!   * a program with no [`Severity::Error`] diagnostics executes
//!     successfully under [`tensordimm_isa::exec::execute_program_on_dimm`],
//!     and the report's statically computed [`ExecSummary`] matches the
//!     executed one exactly;
//!   * a program whose first error is *not* one of the value-indeterminate
//!     kinds ([`DiagnosticKind::MissingIndices`],
//!     [`DiagnosticKind::IndeterminateIndices`]) fails at runtime — with an
//!     `Err` or a memory-model panic — at the same instruction index the
//!     first diagnostic names.
//!
//!   (The executor's overflow behavior is debug semantics: wrapped release
//!   arithmetic could in principle land back in range where the analyzer
//!   conservatively rejects.)
//!
//! * [`analyze_plan`] — maps each [`tensordimm_isa::BlockAccess`] through
//!   the NMP-local lowering and the DRAM address mapping to produce static
//!   bank/rank conflict estimates, redundant-read / dead-write lints, and a
//!   **cycle lower bound** (max of a data-bus bandwidth bound, a
//!   row-activation bound, a rank tFAW/tRRD bound, and an SRAM-port bound
//!   for hot-row hits) that the replay engine's measured cycles can never
//!   undercut. `tensordimm_nmp::NmpCore::run_plan` checks it in verify
//!   mode, and the `sweep_static_check` bench gates it across the Fig. 14
//!   grid.
//!
//! [`Instruction`]: tensordimm_isa::Instruction
//! [`ExecSummary`]: tensordimm_isa::ExecSummary

pub mod plan;
pub mod program;

pub use plan::{
    analyze_accesses, analyze_plan, gather_tail_waste, lower_block_byte, BankConflicts,
    CycleBounds, PlanAnalysis, PlanLint, TailWaste,
};
pub use program::{analyze_program, static_summary, ProgramReport, ProgramStep};

use std::error::Error;
use std::fmt;

use tensordimm_cache::CacheError;
use tensordimm_dram::DramError;
use tensordimm_isa::IsaError;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational lint (e.g. a read of memory the program never wrote);
    /// execution is unaffected.
    Info,
    /// Suspicious but well-defined (e.g. an output window overlapping an
    /// input window): execution succeeds, values may surprise.
    Warning,
    /// Execution fails (error or memory-model panic), or the analyzer
    /// cannot prove it succeeds.
    Error,
}

/// What the analyzer found.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DiagnosticKind {
    /// The instruction (or the DIMM context) fails
    /// [`tensordimm_isa::Instruction::validate`]; the payload is the exact
    /// executor error.
    Malformed(IsaError),
    /// A read addresses beyond the DIMM's block address space (the flat
    /// memory model panics on this).
    OobRead {
        /// Which operand's read window overflows.
        what: &'static str,
        /// First out-of-range block.
        block: u64,
        /// Address-space size in blocks.
        blocks: u64,
    },
    /// A write addresses beyond the DIMM's block address space.
    OobWrite {
        /// Which operand's write window overflows.
        what: &'static str,
        /// First out-of-range block.
        block: u64,
        /// Address-space size in blocks.
        blocks: u64,
    },
    /// A gather index maps past the address space — the same condition
    /// (and payload) as [`IsaError::IndexOutOfRange`] from the executor.
    IndexOutOfRange {
        /// The offending index value.
        index: u64,
        /// The last block the indexed vector would occupy.
        block: u64,
        /// Address-space size in blocks.
        blocks: u64,
    },
    /// A GATHER was submitted without its runtime index list; the analyzer
    /// cannot bound its table reads.
    MissingIndices,
    /// An earlier write window (or the gather's own output window) overlaps
    /// this GATHER's index-list window: the indices the executor will read
    /// are not the ones provided, so acceptance is undecidable.
    IndeterminateIndices {
        /// Index of the instruction whose writes clobber the index list
        /// (may equal the gather's own index).
        clobbered_by: usize,
    },
    /// A read window touches no block previously written by this program
    /// (the data must be a pre-initialized input).
    UseBeforeDef {
        /// Which operand reads the unwritten window.
        what: &'static str,
        /// First block of the window.
        first_block: u64,
        /// Last block of the window.
        last_block: u64,
    },
    /// An instruction's output window overlaps one of its own input
    /// windows: reads and writes interleave, so late reads observe fresh
    /// outputs.
    ReadWriteOverlap {
        /// Which input window the output overlaps.
        what: &'static str,
        /// First overlapping block.
        first_block: u64,
        /// Last overlapping block.
        last_block: u64,
    },
}

impl DiagnosticKind {
    /// The severity this kind always carries.
    pub fn severity(&self) -> Severity {
        match self {
            DiagnosticKind::Malformed(_)
            | DiagnosticKind::OobRead { .. }
            | DiagnosticKind::OobWrite { .. }
            | DiagnosticKind::IndexOutOfRange { .. }
            | DiagnosticKind::MissingIndices
            | DiagnosticKind::IndeterminateIndices { .. } => Severity::Error,
            DiagnosticKind::ReadWriteOverlap { .. } => Severity::Warning,
            DiagnosticKind::UseBeforeDef { .. } => Severity::Info,
        }
    }

    /// Whether acceptance of the program is undecidable rather than
    /// provably failing (the executor may still succeed on these).
    pub fn is_indeterminate(&self) -> bool {
        matches!(
            self,
            DiagnosticKind::MissingIndices | DiagnosticKind::IndeterminateIndices { .. }
        )
    }
}

impl fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagnosticKind::Malformed(e) => write!(f, "malformed instruction: {e}"),
            DiagnosticKind::OobRead {
                what,
                block,
                blocks,
            } => write!(f, "{what} read at block {block} beyond capacity {blocks}"),
            DiagnosticKind::OobWrite {
                what,
                block,
                blocks,
            } => write!(f, "{what} write at block {block} beyond capacity {blocks}"),
            DiagnosticKind::IndexOutOfRange {
                index,
                block,
                blocks,
            } => write!(
                f,
                "gather index {index} maps to block {block} beyond capacity {blocks}"
            ),
            DiagnosticKind::MissingIndices => {
                f.write_str("gather submitted without its runtime index list")
            }
            DiagnosticKind::IndeterminateIndices { clobbered_by } => write!(
                f,
                "index-list window clobbered by instruction {clobbered_by}'s writes"
            ),
            DiagnosticKind::UseBeforeDef {
                what,
                first_block,
                last_block,
            } => write!(
                f,
                "{what} reads blocks {first_block}..={last_block} never written by this program"
            ),
            DiagnosticKind::ReadWriteOverlap {
                what,
                first_block,
                last_block,
            } => write!(
                f,
                "output window overlaps {what} at blocks {first_block}..={last_block}"
            ),
        }
    }
}

/// One analyzer finding, anchored to the instruction that causes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad it is (always [`DiagnosticKind::severity`] of `kind`).
    pub severity: Severity,
    /// Index of the instruction in the analyzed program.
    pub instr_index: usize,
    /// What was found.
    pub kind: DiagnosticKind,
}

impl Diagnostic {
    /// A diagnostic for `kind` at `instr_index`.
    pub fn new(instr_index: usize, kind: DiagnosticKind) -> Self {
        Diagnostic {
            severity: kind.severity(),
            instr_index,
            kind,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{sev}[instr {}]: {}", self.instr_index, self.kind)
    }
}

/// A verify-mode failure: the replay engine and the static analyzer
/// disagree (raised by `NmpCore::run_plan` when its `verify` knob is on).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VerifyFailure {
    /// The replayed DRAM request counts differ from the statically
    /// predicted ones.
    PlanMismatch {
        /// Reads the analyzer predicted reach DRAM.
        expected_reads: u64,
        /// Writes the analyzer predicted reach DRAM.
        expected_writes: u64,
        /// Reads the replay performed.
        actual_reads: u64,
        /// Writes the replay performed.
        actual_writes: u64,
    },
    /// The replay finished in fewer cycles than the physical lower bound —
    /// a timing-engine bug by construction.
    BoundExceeded {
        /// The static cycle lower bound.
        lower_bound: u64,
        /// The replayed cycle count.
        cycles: u64,
    },
    /// The program failed static verification outright.
    Rejected {
        /// The first error-severity diagnostic.
        first: Diagnostic,
    },
}

impl fmt::Display for VerifyFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyFailure::PlanMismatch {
                expected_reads,
                expected_writes,
                actual_reads,
                actual_writes,
            } => write!(
                f,
                "replayed DRAM traffic ({actual_reads}r/{actual_writes}w) does not match \
                 static prediction ({expected_reads}r/{expected_writes}w)"
            ),
            VerifyFailure::BoundExceeded {
                lower_bound,
                cycles,
            } => write!(
                f,
                "replay finished in {cycles} cycles, below the static lower bound {lower_bound}"
            ),
            VerifyFailure::Rejected { first } => write!(f, "program rejected: {first}"),
        }
    }
}

impl Error for VerifyFailure {}

/// Errors from the analyzers themselves (invalid configuration, never a
/// property of the analyzed program — those become [`Diagnostic`]s).
///
/// Deliberately exhaustive: callers (the NMP verify hook) re-map every
/// variant onto their own error type, and a new variant should be a
/// compile error there.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The DIMM context or instruction shape is unusable.
    Isa(IsaError),
    /// The DRAM configuration is invalid.
    Dram(DramError),
    /// The hot-row cache configuration is invalid.
    Cache(CacheError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Isa(e) => write!(f, "isa error: {e}"),
            AnalysisError::Dram(e) => write!(f, "dram error: {e}"),
            AnalysisError::Cache(e) => write!(f, "cache error: {e}"),
        }
    }
}

impl Error for AnalysisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AnalysisError::Isa(e) => Some(e),
            AnalysisError::Dram(e) => Some(e),
            AnalysisError::Cache(e) => Some(e),
        }
    }
}

impl From<IsaError> for AnalysisError {
    fn from(e: IsaError) -> Self {
        AnalysisError::Isa(e)
    }
}

impl From<DramError> for AnalysisError {
    fn from(e: DramError) -> Self {
        AnalysisError::Dram(e)
    }
}

impl From<CacheError> for AnalysisError {
    fn from(e: CacheError) -> Self {
        AnalysisError::Cache(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severities_order() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn diagnostic_carries_kind_severity() {
        let d = Diagnostic::new(3, DiagnosticKind::MissingIndices);
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.instr_index, 3);
        assert!(d.kind.is_indeterminate());
        assert!(d.to_string().contains("instr 3"));
    }

    #[test]
    fn displays_are_nonempty() {
        for kind in [
            DiagnosticKind::Malformed(IsaError::ZeroField { field: "count" }),
            DiagnosticKind::OobRead {
                what: "input1",
                block: 10,
                blocks: 8,
            },
            DiagnosticKind::OobWrite {
                what: "output",
                block: 10,
                blocks: 8,
            },
            DiagnosticKind::IndexOutOfRange {
                index: 1,
                block: 10,
                blocks: 8,
            },
            DiagnosticKind::MissingIndices,
            DiagnosticKind::IndeterminateIndices { clobbered_by: 0 },
            DiagnosticKind::UseBeforeDef {
                what: "input1",
                first_block: 0,
                last_block: 3,
            },
            DiagnosticKind::ReadWriteOverlap {
                what: "table",
                first_block: 0,
                last_block: 3,
            },
        ] {
            assert!(!kind.to_string().is_empty());
        }
        for v in [
            VerifyFailure::PlanMismatch {
                expected_reads: 1,
                expected_writes: 2,
                actual_reads: 3,
                actual_writes: 4,
            },
            VerifyFailure::BoundExceeded {
                lower_bound: 10,
                cycles: 5,
            },
            VerifyFailure::Rejected {
                first: Diagnostic::new(0, DiagnosticKind::MissingIndices),
            },
        ] {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalysisError>();
        assert_send_sync::<VerifyFailure>();
        assert_send_sync::<Diagnostic>();
    }
}
