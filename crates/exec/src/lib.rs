//! Deterministic parallel execution on `std::thread::scope`.
//!
//! The sweep harnesses, the cycle-calibrated pricer and the multi-channel
//! DRAM engine all have the same shape of parallelism: a set of *mutually
//! independent* work items whose results must come back exactly as if they
//! had been computed sequentially, in input order. This crate provides the
//! two primitives they share — nothing clever, no work stealing across
//! calls, no global pool, no external dependencies:
//!
//! * [`par_map`] — fan a read-only slice across a small scoped pool via an
//!   atomic work counter and merge the results **in input order**, so the
//!   output is bit-identical to the sequential map whenever the per-item
//!   function is deterministic;
//! * [`par_for_each_mut`] — run a mutation over disjoint `&mut` items
//!   (e.g. independent DRAM channels), split into contiguous chunks.
//!
//! Both degrade to the plain sequential loop for `workers <= 1` (or a
//! single item), which is the bit-exact oracle the parallel paths are
//! tested against, the same way `tick()` gates the event-driven DRAM
//! engine.
//!
//! Worker counts are chosen by [`worker_count`]: an explicit request wins,
//! then the `TENSORDIMM_WORKERS` environment variable, then
//! [`std::thread::available_parallelism`].
//!
//! # Example
//!
//! ```
//! let squares = tensordimm_exec::par_map(&[1u64, 2, 3, 4], 2, |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default worker count.
pub const WORKERS_ENV: &str = "TENSORDIMM_WORKERS";

/// Resolve a worker count: `requested` (if `Some`, clamped to >= 1), else
/// the `TENSORDIMM_WORKERS` environment variable (if parseable and >= 1),
/// else [`std::thread::available_parallelism`] (1 if unavailable).
pub fn worker_count(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        return n.max(1);
    }
    if let Some(n) = std::env::var(WORKERS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n >= 1 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to `workers` scoped threads, returning the
/// results **in input order**.
///
/// Items are handed out through an atomic counter, so load balances
/// whatever the per-item cost distribution; the merge step reorders by
/// index, so the output is independent of scheduling. With a deterministic
/// `f`, the result is bit-identical to
/// `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()` — which is
/// exactly the path taken when `workers <= 1` or `items.len() <= 1`.
///
/// # Panics
///
/// Propagates a panic from `f` (the first observed worker panic is
/// re-raised after the scope joins).
pub fn par_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.min(items.len()).max(1);
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(bucket) => bucket,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for bucket in buckets {
        for (i, r) in bucket {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("atomic counter visits every index exactly once"))
        .collect()
}

/// Run `f` over every item of `items` (receiving the item's index and a
/// `&mut` reference) on up to `workers` scoped threads.
///
/// The slice is split into contiguous chunks, one per worker, so each
/// thread owns a disjoint region — no locking, no aliasing. Intended for
/// items that are *mutually independent state machines* (DRAM channels):
/// the end state per item depends only on that item, so the result is
/// bit-identical to the sequential loop taken when `workers <= 1`.
///
/// # Panics
///
/// Propagates a panic from `f`.
pub fn par_for_each_mut<T, F>(items: &mut [T], workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let workers = workers.min(items.len()).max(1);
    if workers == 1 {
        for (i, t) in items.iter_mut().enumerate() {
            f(i, t);
        }
        return;
    }
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        for (ci, chunk_items) in items.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                for (j, t) in chunk_items.iter_mut().enumerate() {
                    f(ci * chunk + j, t);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_matches_sequential_in_order() {
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 0xabc).collect();
        for workers in [1, 2, 3, 8, 64] {
            let par = par_map(&items, workers, |_, &x| x.wrapping_mul(x) ^ 0xabc);
            assert_eq!(par, seq, "workers={workers}");
        }
    }

    #[test]
    fn par_map_passes_input_index() {
        let items = ["a", "b", "c", "d", "e"];
        let got = par_map(&items, 4, |i, &s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_visits_each_item_exactly_once() {
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        let items: Vec<usize> = (0..100).collect();
        par_map(&items, 8, |_, &i| hits[i].fetch_add(1, Ordering::Relaxed));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn par_for_each_mut_matches_sequential() {
        let make = || -> Vec<u64> { (0..37).collect() };
        let mut seq = make();
        for (i, t) in seq.iter_mut().enumerate() {
            *t = t.wrapping_mul(31).wrapping_add(i as u64);
        }
        for workers in [1, 2, 5, 64] {
            let mut par = make();
            par_for_each_mut(&mut par, workers, |i, t| {
                *t = t.wrapping_mul(31).wrapping_add(i as u64);
            });
            assert_eq!(par, seq, "workers={workers}");
        }
    }

    #[test]
    fn par_for_each_mut_empty_is_noop() {
        let mut empty: Vec<u32> = Vec::new();
        par_for_each_mut(&mut empty, 4, |_, _| unreachable!());
    }

    #[test]
    fn worker_count_resolution_order() {
        assert_eq!(worker_count(Some(3)), 3);
        assert_eq!(worker_count(Some(0)), 1, "explicit zero clamps to one");
        assert!(worker_count(None) >= 1);
    }

    #[test]
    fn par_map_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map(&items, 4, |_, &x| {
                assert!(x != 7, "boom");
                x
            })
        });
        assert!(caught.is_err(), "worker panic must reach the caller");
    }
}
