//! Deterministic fault injection for the serving stack.
//!
//! A production TensorNode loses DIMM ranks, suffers node-level outage
//! windows, runs *gray* (slow but not dead — RecNMP's rank-level argument
//! in reverse: losing a rank shrinks the node's aggregated bandwidth
//! without taking the node down), and occasionally has to re-read rows
//! after a transient fault. This crate generates those failures as a
//! **seeded, virtual-time schedule**: a [`FaultPlan`] is a small `Copy`
//! description of the failure environment, and [`FaultPlan::schedule`] is
//! a pure function of `(plan, horizon)` — replaying the same plan over the
//! same horizon yields a bit-identical [`FaultSchedule`], so fault-enabled
//! simulations stay exactly as reproducible as fault-free ones.
//!
//! # Monotone-by-construction fault intensity
//!
//! DIMM failures are drawn by **thinning** one master candidate process:
//! candidate failure epochs (their times, target DIMMs, and acceptance
//! draws) come from a single RNG stream that does not depend on
//! [`FaultPlan::dimm_fault_rate`]; a candidate becomes a real failure iff
//! its acceptance draw falls below the rate. Raising the rate therefore
//! accepts a **superset** of the failures accepted at any lower rate — the
//! union of down-windows nests — which is what lets the availability sweep
//! gate "availability is monotone non-increasing in fault rate" as a hard
//! invariant instead of a statistical tendency.
//!
//! # Consuming a schedule
//!
//! The serving simulator folds [`FaultSchedule::transitions`] into a
//! [`FaultState`] as virtual time advances: the state answers "how many
//! DIMMs are alive", "is the node reachable", "what latency multiplier is
//! in force", and "how many rows must the next batch re-read" — the four
//! quantities degraded-mode pricing needs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;

/// Errors from validating or generating a fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultError {
    /// A plan knob (or the requested horizon) is unusable.
    InvalidPlan {
        /// Which knob.
        parameter: &'static str,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InvalidPlan { parameter } => {
                write!(f, "fault-plan parameter {parameter} is unusable")
            }
        }
    }
}

impl Error for FaultError {}

/// A whole-node outage window: no batch can dispatch while it is open
/// (batches already on a GPU run to completion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeOutage {
    /// When the node drops off the interconnect, µs.
    pub start_us: f64,
    /// How long it stays unreachable, µs.
    pub duration_us: f64,
}

/// A gray-failure window: the node keeps serving but every batch priced
/// inside the window costs `latency_multiplier`× its healthy service time
/// (capacity is not removed — the degradation is latency, not bandwidth
/// accounting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrayRank {
    /// When the slowdown begins, µs.
    pub start_us: f64,
    /// How long it lasts, µs.
    pub duration_us: f64,
    /// Service-time inflation factor (`>= 1`).
    pub latency_multiplier: f64,
}

/// Periodic transient row faults: every `every_us` a bounded number of
/// rows must be re-read by the next dispatched batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowFaults {
    /// Cadence of the transient faults, µs.
    pub every_us: f64,
    /// Rows to re-read per fault (bounded; see
    /// [`FaultState::MAX_PENDING_REREAD_ROWS`]).
    pub rows: u64,
}

/// An explicitly scheduled outage of one DIMM rank: the rank is down for
/// the closed repair window `[start_us, start_us + duration_us]`. Unlike
/// the thinned stochastic stream these windows are rate-independent, so
/// they model *known* maintenance or a reproduced incident; the cluster
/// layer uses them to pin a one-node degradation at an exact instant.
///
/// Validation rejects zero-length repair windows and two windows on the
/// same rank whose closed intervals overlap (including abutting windows:
/// a second outage may not begin before the first repair completes —
/// otherwise the down/restored transitions for the rank would interleave
/// and corrupt the liveness mask). A window may still overlap a
/// *stochastic* failure of the same rank; [`FaultPlan::schedule`] merges
/// those into one extended window rather than emitting nested pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankOutage {
    /// Which DIMM rank (must be `< FaultPlan::dimms`).
    pub rank: u64,
    /// When the rank drops out, µs.
    pub start_us: f64,
    /// Length of the repair window, µs (must be `> 0`).
    pub duration_us: f64,
}

impl RankOutage {
    /// End of the repair window, µs.
    pub fn end_us(&self) -> f64 {
        self.start_us + self.duration_us
    }
}

/// A seeded description of the failure environment. `Copy`, so it rides
/// inside a serving `SimConfig` the way the batching policy does.
///
/// The default ([`FaultPlan::none`]) is inert: it produces an empty
/// schedule at every horizon, and a simulator run with an inert plan is
/// bit-identical to one with no fault layer at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the candidate-failure stream.
    pub seed: u64,
    /// DIMMs in the TensorNode (32 for the paper's Table 1 node; at most
    /// [`FaultPlan::MAX_DIMMS`]).
    pub dimms: u64,
    /// Thinning acceptance probability in `[0, 1]`: the fraction of
    /// candidate DIMM failures that actually happen. `0` disables DIMM
    /// faults; `1` accepts every candidate.
    pub dimm_fault_rate: f64,
    /// Mean gap between *candidate* failure epochs, µs (the master
    /// process rate; the realized failure rate is this thinned by
    /// `dimm_fault_rate`).
    pub dimm_candidate_gap_us: f64,
    /// Fixed repair time of a failed DIMM, µs.
    pub dimm_repair_us: f64,
    /// Optional whole-node outage window.
    pub node_outage: Option<NodeOutage>,
    /// Optional gray-failure window.
    pub gray: Option<GrayRank>,
    /// Optional periodic transient row faults.
    pub row_faults: Option<RowFaults>,
    /// Explicitly scheduled rank outages (fixed-size so the plan stays
    /// `Copy`; unused slots are `None`). See [`RankOutage`].
    pub rank_outages: [Option<RankOutage>; FaultPlan::MAX_RANK_OUTAGES],
}

impl FaultPlan {
    /// Widest supported node: DIMM liveness is tracked in a 128-bit mask.
    pub const MAX_DIMMS: u64 = 128;

    /// Explicit rank-outage slots per plan (fixed so [`FaultPlan`] stays
    /// `Copy` inside `SimConfig`).
    pub const MAX_RANK_OUTAGES: usize = 4;

    /// No faults at all: the schedule is empty at every horizon.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            dimms: 32,
            dimm_fault_rate: 0.0,
            dimm_candidate_gap_us: 2_000.0,
            dimm_repair_us: 5_000.0,
            node_outage: None,
            gray: None,
            row_faults: None,
            rank_outages: [None; FaultPlan::MAX_RANK_OUTAGES],
        }
    }

    /// DIMM faults at `rate ∈ [0, 1]` under `seed`, with the default
    /// candidate cadence and repair time.
    pub fn dimm_faults(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            dimm_fault_rate: rate,
            ..FaultPlan::none()
        }
    }

    /// Add a whole-node outage window.
    pub fn with_node_outage(mut self, outage: NodeOutage) -> Self {
        self.node_outage = Some(outage);
        self
    }

    /// Add a gray-failure window.
    pub fn with_gray(mut self, gray: GrayRank) -> Self {
        self.gray = Some(gray);
        self
    }

    /// Add periodic transient row faults.
    pub fn with_row_faults(mut self, row_faults: RowFaults) -> Self {
        self.row_faults = Some(row_faults);
        self
    }

    /// Add an explicitly scheduled rank outage in the first free slot.
    ///
    /// # Panics
    ///
    /// Panics when all [`FaultPlan::MAX_RANK_OUTAGES`] slots are in use.
    pub fn with_rank_outage(mut self, outage: RankOutage) -> Self {
        let slot = self
            .rank_outages
            .iter_mut()
            .find(|s| s.is_none())
            .expect("all rank-outage slots in use (FaultPlan::MAX_RANK_OUTAGES)");
        *slot = Some(outage);
        self
    }

    /// Derive the plan node `node` of a cluster carries: identical knobs,
    /// decorrelated stochastic stream. The seed is mixed with the node id
    /// through a fixed permutation that does not depend on
    /// [`FaultPlan::dimm_fault_rate`], so every node keeps the thinning
    /// property — its accepted failure set still nests as the rate rises —
    /// while no two nodes share candidate epochs. Explicit windows
    /// (`node_outage`, `gray`, `row_faults`, `rank_outages`) are kept
    /// verbatim: they describe the node the derived plan is attached to.
    pub fn for_node(mut self, node: u64) -> Self {
        self.seed ^= node
            .wrapping_add(1)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(17);
        self
    }

    /// Whether this plan produces an empty schedule at every horizon.
    pub fn is_inert(&self) -> bool {
        self.dimm_fault_rate <= 0.0
            && self.node_outage.is_none()
            && self.gray.is_none()
            && self.row_faults.is_none()
            && self.rank_outages.iter().all(Option::is_none)
    }

    /// Check the knobs are usable.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidPlan`] naming the offending knob.
    pub fn validate(&self) -> Result<(), FaultError> {
        let bad = |parameter| Err(FaultError::InvalidPlan { parameter });
        if self.dimms == 0 || self.dimms > Self::MAX_DIMMS {
            return bad("dimms");
        }
        if !self.dimm_fault_rate.is_finite() || !(0.0..=1.0).contains(&self.dimm_fault_rate) {
            return bad("dimm_fault_rate");
        }
        if !self.dimm_candidate_gap_us.is_finite() || self.dimm_candidate_gap_us <= 0.0 {
            return bad("dimm_candidate_gap_us");
        }
        if !self.dimm_repair_us.is_finite() || self.dimm_repair_us <= 0.0 {
            return bad("dimm_repair_us");
        }
        if let Some(o) = self.node_outage {
            if !o.start_us.is_finite() || o.start_us < 0.0 {
                return bad("node_outage.start_us");
            }
            if !o.duration_us.is_finite() || o.duration_us <= 0.0 {
                return bad("node_outage.duration_us");
            }
        }
        if let Some(g) = self.gray {
            if !g.start_us.is_finite() || g.start_us < 0.0 {
                return bad("gray.start_us");
            }
            if !g.duration_us.is_finite() || g.duration_us <= 0.0 {
                return bad("gray.duration_us");
            }
            if !g.latency_multiplier.is_finite() || g.latency_multiplier < 1.0 {
                return bad("gray.latency_multiplier");
            }
        }
        if let Some(r) = self.row_faults {
            if !r.every_us.is_finite() || r.every_us <= 0.0 {
                return bad("row_faults.every_us");
            }
            if r.rows == 0 {
                return bad("row_faults.rows");
            }
        }
        let mut windows: Vec<(u64, f64, f64)> = Vec::new();
        for o in self.rank_outages.iter().flatten() {
            if o.rank >= self.dimms {
                return bad("rank_outages.rank");
            }
            if !o.start_us.is_finite() || o.start_us < 0.0 {
                return bad("rank_outages.start_us");
            }
            // A zero-length repair window would emit a down/restored pair
            // at the same instant — reject it rather than letting the
            // transition order decide whether the rank ends up down.
            if !o.duration_us.is_finite() || o.duration_us <= 0.0 {
                return bad("rank_outages.duration_us");
            }
            windows.push((o.rank, o.start_us, o.end_us()));
        }
        // Two explicit windows on one rank must not overlap (closed
        // intervals: abutting counts — the second outage may not begin
        // before the first repair completes).
        windows.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        for pair in windows.windows(2) {
            let ((rank_a, _, end_a), (rank_b, start_b, _)) = (pair[0], pair[1]);
            if rank_a == rank_b && start_b <= end_a {
                return bad("rank_outages.overlap");
            }
        }
        Ok(())
    }

    /// Generate the failure schedule over `[0, horizon_us]` — a pure
    /// function of `(self, horizon_us)`. Failures *initiate* within the
    /// horizon; their restorations may land after it (a DIMM that fails
    /// near the end is still down at the cut).
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidPlan`] for unusable knobs or a
    /// non-finite/negative horizon.
    pub fn schedule(&self, horizon_us: f64) -> Result<FaultSchedule, FaultError> {
        self.validate()?;
        if !horizon_us.is_finite() || horizon_us < 0.0 {
            return Err(FaultError::InvalidPlan {
                parameter: "horizon_us",
            });
        }
        let mut events = Vec::new();

        let mut windows: Vec<(u64, f64, f64)> = Vec::new();
        if self.dimm_fault_rate > 0.0 {
            // Thinning: every candidate consumes the identical draws
            // regardless of the rate, so the accepted set nests across
            // rates (see the module docs).
            let mut rng = StdRng::seed_from_u64(self.seed ^ 0xfa_17);
            let mut t = 0.0f64;
            loop {
                let gap = -self.dimm_candidate_gap_us * (1.0 - rng.gen::<f64>()).ln();
                t += gap;
                if t > horizon_us {
                    break;
                }
                let dimm = rng.gen_range(0..self.dimms);
                let accept = rng.gen::<f64>() < self.dimm_fault_rate;
                if accept {
                    windows.push((dimm, t, t + self.dimm_repair_us));
                }
            }
        }
        // Explicit rank outages join the same window list: one that
        // overlaps a stochastic failure of its rank merges into a single
        // extended window below. Since the explicit set is rate-
        // independent, the merged union still nests across rates.
        for o in self.rank_outages.iter().flatten() {
            if o.start_us <= horizon_us {
                windows.push((o.rank, o.start_us, o.end_us()));
            }
        }
        // Merge overlapping windows per DIMM: a DIMM that fails again
        // while already down extends its outage instead of emitting a
        // nested Down/Restored pair.
        windows.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut merged: Vec<(u64, f64, f64)> = Vec::new();
        for (dimm, start, end) in windows {
            match merged.last_mut() {
                Some((d, _, e)) if *d == dimm && start <= *e => *e = e.max(end),
                _ => merged.push((dimm, start, end)),
            }
        }
        for (dimm, start, end) in merged {
            events.push(FaultEvent::DimmDown { at_us: start, dimm });
            events.push(FaultEvent::DimmRestored { at_us: end, dimm });
        }

        if let Some(o) = self.node_outage {
            if o.start_us <= horizon_us {
                events.push(FaultEvent::NodeOutage {
                    start_us: o.start_us,
                    duration_us: o.duration_us,
                });
            }
        }
        if let Some(g) = self.gray {
            if g.start_us <= horizon_us {
                events.push(FaultEvent::GrayRank {
                    start_us: g.start_us,
                    duration_us: g.duration_us,
                    latency_multiplier: g.latency_multiplier,
                });
            }
        }
        if let Some(r) = self.row_faults {
            let mut t = r.every_us;
            while t <= horizon_us {
                events.push(FaultEvent::RowFault {
                    at_us: t,
                    rows: r.rows,
                });
                t += r.every_us;
            }
        }

        // Stable sort on the anchor time: same-instant events keep their
        // deterministic emission order.
        events.sort_by(|a, b| a.at_us().total_cmp(&b.at_us()));
        Ok(FaultSchedule { events })
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// A typed failure event. Window events (`NodeOutage`, `GrayRank`) carry
/// their full extent; point events carry their instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// A DIMM rank drops out: the node keeps serving at reduced
    /// aggregated bandwidth.
    DimmDown {
        /// When, µs.
        at_us: f64,
        /// Which DIMM.
        dimm: u64,
    },
    /// A failed DIMM comes back.
    DimmRestored {
        /// When, µs.
        at_us: f64,
        /// Which DIMM.
        dimm: u64,
    },
    /// The whole node is unreachable for a window.
    NodeOutage {
        /// When the outage begins, µs.
        start_us: f64,
        /// How long it lasts, µs.
        duration_us: f64,
    },
    /// A gray-failure window: service times inflate, capacity stays.
    GrayRank {
        /// When the slowdown begins, µs.
        start_us: f64,
        /// How long it lasts, µs.
        duration_us: f64,
        /// Service-time inflation factor.
        latency_multiplier: f64,
    },
    /// A transient fault forces a bounded re-read.
    RowFault {
        /// When, µs.
        at_us: f64,
        /// Rows the next dispatched batch must re-read.
        rows: u64,
    },
}

impl FaultEvent {
    /// The event's anchor instant (window events anchor at their start).
    pub fn at_us(&self) -> f64 {
        match *self {
            FaultEvent::DimmDown { at_us, .. }
            | FaultEvent::DimmRestored { at_us, .. }
            | FaultEvent::RowFault { at_us, .. } => at_us,
            FaultEvent::NodeOutage { start_us, .. } | FaultEvent::GrayRank { start_us, .. } => {
                start_us
            }
        }
    }
}

/// One instantaneous change to the fault state — what the serving event
/// loop schedules as a `FaultTransition` event. Window events expand to a
/// start/end pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// When the change takes effect, µs.
    pub at_us: f64,
    /// What changes.
    pub change: StateChange,
}

/// The state-changing half of a [`Transition`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StateChange {
    /// DIMM goes down.
    DimmDown(u64),
    /// DIMM comes back.
    DimmRestored(u64),
    /// The node becomes unreachable.
    NodeDown,
    /// The node becomes reachable again.
    NodeUp,
    /// Gray window opens with this latency multiplier.
    GrayStart(f64),
    /// Gray window closes.
    GrayEnd,
    /// This many rows must be re-read by the next dispatched batch.
    RowFault(u64),
}

/// A generated failure schedule: typed events sorted by anchor time.
/// Bit-identical across replays of the same `(plan, horizon)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// A schedule with no events — what an inert plan generates.
    pub fn empty() -> Self {
        FaultSchedule::default()
    }

    /// The typed events, sorted by [`FaultEvent::at_us`].
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Expand window events into their start/end [`Transition`]s, sorted
    /// by time (stable: same-instant transitions keep schedule order).
    pub fn transitions(&self) -> Vec<Transition> {
        let mut out = Vec::with_capacity(self.events.len() * 2);
        for e in &self.events {
            match *e {
                FaultEvent::DimmDown { at_us, dimm } => out.push(Transition {
                    at_us,
                    change: StateChange::DimmDown(dimm),
                }),
                FaultEvent::DimmRestored { at_us, dimm } => out.push(Transition {
                    at_us,
                    change: StateChange::DimmRestored(dimm),
                }),
                FaultEvent::NodeOutage {
                    start_us,
                    duration_us,
                } => {
                    out.push(Transition {
                        at_us: start_us,
                        change: StateChange::NodeDown,
                    });
                    out.push(Transition {
                        at_us: start_us + duration_us,
                        change: StateChange::NodeUp,
                    });
                }
                FaultEvent::GrayRank {
                    start_us,
                    duration_us,
                    latency_multiplier,
                } => {
                    out.push(Transition {
                        at_us: start_us,
                        change: StateChange::GrayStart(latency_multiplier),
                    });
                    out.push(Transition {
                        at_us: start_us + duration_us,
                        change: StateChange::GrayEnd,
                    });
                }
                FaultEvent::RowFault { at_us, rows } => out.push(Transition {
                    at_us,
                    change: StateChange::RowFault(rows),
                }),
            }
        }
        out.sort_by(|a, b| a.at_us.total_cmp(&b.at_us));
        out
    }

    /// Total DIMM-down time summed over DIMMs, clipped to `[0,
    /// horizon_us]` — the scalar the nesting/monotonicity tests compare
    /// across fault rates.
    pub fn dimm_downtime_us(&self, horizon_us: f64) -> f64 {
        let mut open: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
        let mut total = 0.0;
        for e in &self.events {
            match *e {
                FaultEvent::DimmDown { at_us, dimm } => {
                    open.insert(dimm, at_us);
                }
                FaultEvent::DimmRestored { at_us, dimm } => {
                    if let Some(start) = open.remove(&dimm) {
                        total += at_us.min(horizon_us) - start.min(horizon_us);
                    }
                }
                _ => {}
            }
        }
        for (_, start) in open {
            total += horizon_us - start.min(horizon_us);
        }
        total
    }
}

/// The folded fault state at one instant of virtual time: what
/// degraded-mode pricing needs to know.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultState {
    dimms_total: u64,
    /// Bit `d` set ⇔ DIMM `d` is down.
    down_mask: u128,
    node_out: bool,
    gray_multiplier: f64,
    pending_reread_rows: u64,
}

impl FaultState {
    /// Cap on accumulated re-read rows: transient faults force a
    /// *bounded* re-read, they cannot queue unbounded repair work.
    pub const MAX_PENDING_REREAD_ROWS: u64 = 1 << 20;

    /// Everything healthy on a `dimms_total`-DIMM node.
    pub fn healthy(dimms_total: u64) -> Self {
        FaultState {
            dimms_total,
            down_mask: 0,
            node_out: false,
            gray_multiplier: 1.0,
            pending_reread_rows: 0,
        }
    }

    /// Apply one transition.
    pub fn apply(&mut self, change: StateChange) {
        match change {
            StateChange::DimmDown(d) => {
                if d < FaultPlan::MAX_DIMMS {
                    self.down_mask |= 1u128 << d;
                }
            }
            StateChange::DimmRestored(d) => {
                if d < FaultPlan::MAX_DIMMS {
                    self.down_mask &= !(1u128 << d);
                }
            }
            StateChange::NodeDown => self.node_out = true,
            StateChange::NodeUp => self.node_out = false,
            StateChange::GrayStart(m) => self.gray_multiplier = m,
            StateChange::GrayEnd => self.gray_multiplier = 1.0,
            StateChange::RowFault(rows) => {
                self.pending_reread_rows = self
                    .pending_reread_rows
                    .saturating_add(rows)
                    .min(Self::MAX_PENDING_REREAD_ROWS);
            }
        }
    }

    /// DIMMs configured.
    pub fn dimms_total(&self) -> u64 {
        self.dimms_total
    }

    /// DIMMs currently serving.
    pub fn dimms_alive(&self) -> u64 {
        self.dimms_total - (self.down_mask.count_ones() as u64).min(self.dimms_total)
    }

    /// Whether the node is reachable.
    pub fn node_reachable(&self) -> bool {
        !self.node_out
    }

    /// Whether a new batch can dispatch right now (node reachable and at
    /// least one DIMM alive).
    pub fn can_dispatch(&self) -> bool {
        !self.node_out && self.dimms_alive() > 0
    }

    /// The gray latency multiplier in force (`1.0` when healthy).
    pub fn gray_multiplier(&self) -> f64 {
        self.gray_multiplier
    }

    /// Rows awaiting re-read by the next dispatched batch.
    pub fn pending_reread_rows(&self) -> u64 {
        self.pending_reread_rows
    }

    /// Consume the pending re-read rows (charged to the batch now being
    /// dispatched).
    pub fn take_reread_rows(&mut self) -> u64 {
        std::mem::take(&mut self.pending_reread_rows)
    }

    /// Whether the state is indistinguishable from healthy.
    pub fn is_inert(&self) -> bool {
        self.down_mask == 0
            && !self.node_out
            && self.gray_multiplier == 1.0
            && self.pending_reread_rows == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_schedules_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_inert());
        let s = plan.schedule(1e6).expect("valid");
        assert!(s.is_empty());
        assert_eq!(s, FaultSchedule::empty());
        assert!(s.transitions().is_empty());
        assert_eq!(s.dimm_downtime_us(1e6), 0.0);
    }

    #[test]
    fn schedule_is_pure_per_seed_and_horizon() {
        let plan = FaultPlan::dimm_faults(42, 0.7);
        let a = plan.schedule(500_000.0).expect("valid");
        let b = plan.schedule(500_000.0).expect("valid");
        assert_eq!(a, b, "same (plan, horizon) must replay bit-identically");
        assert!(!a.is_empty(), "rate 0.7 over 250 candidates must accept");
        let other_seed = FaultPlan::dimm_faults(43, 0.7)
            .schedule(500_000.0)
            .expect("valid");
        assert_ne!(a, other_seed);
    }

    #[test]
    fn events_sorted_and_windows_paired() {
        let plan = FaultPlan::dimm_faults(7, 0.5);
        let s = plan.schedule(200_000.0).expect("valid");
        let times: Vec<f64> = s.events().iter().map(|e| e.at_us()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "sorted by time");
        // Every DimmDown has a matching later DimmRestored.
        let mut open = std::collections::HashSet::new();
        for e in s.events() {
            match *e {
                FaultEvent::DimmDown { dimm, .. } => {
                    assert!(open.insert(dimm), "no nested down for one DIMM");
                }
                FaultEvent::DimmRestored { dimm, .. } => {
                    assert!(open.remove(&dimm), "restore pairs with a down");
                }
                _ => {}
            }
        }
        assert!(open.is_empty(), "every failure eventually repairs");
    }

    /// The thinning construction: raising the rate only ever adds
    /// downtime, because the accepted candidate set is a superset.
    #[test]
    fn downtime_is_monotone_in_fault_rate() {
        let horizon = 400_000.0;
        for seed in [1u64, 9, 77] {
            let mut last = 0.0f64;
            for rate in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
                let s = FaultPlan::dimm_faults(seed, rate)
                    .schedule(horizon)
                    .expect("valid");
                let down = s.dimm_downtime_us(horizon);
                assert!(
                    down >= last - 1e-9,
                    "seed {seed}: downtime fell from {last} to {down} at rate {rate}"
                );
                last = down;
            }
            assert!(last > 0.0, "rate 1.0 must accept every candidate");
        }
    }

    #[test]
    fn restorations_may_trail_the_horizon() {
        let mut plan = FaultPlan::dimm_faults(3, 1.0);
        plan.dimm_repair_us = 50_000.0;
        let horizon = 10_000.0;
        let s = plan.schedule(horizon).expect("valid");
        assert!(!s.is_empty());
        let last = s.events().last().expect("nonempty").at_us();
        assert!(last > horizon, "repair completes after the cut");
        // Downtime clipping never counts past the horizon.
        assert!(s.dimm_downtime_us(horizon) <= horizon * plan.dimms as f64);
    }

    #[test]
    fn window_events_expand_to_paired_transitions() {
        let plan = FaultPlan::none()
            .with_node_outage(NodeOutage {
                start_us: 100.0,
                duration_us: 50.0,
            })
            .with_gray(GrayRank {
                start_us: 300.0,
                duration_us: 200.0,
                latency_multiplier: 2.5,
            })
            .with_row_faults(RowFaults {
                every_us: 150.0,
                rows: 64,
            });
        assert!(!plan.is_inert());
        let s = plan.schedule(600.0).expect("valid");
        let t = s.transitions();
        assert!(t.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert!(t.contains(&Transition {
            at_us: 100.0,
            change: StateChange::NodeDown
        }));
        assert!(t.contains(&Transition {
            at_us: 150.0,
            change: StateChange::NodeUp
        }));
        assert!(t.contains(&Transition {
            at_us: 300.0,
            change: StateChange::GrayStart(2.5)
        }));
        assert!(t.contains(&Transition {
            at_us: 500.0,
            change: StateChange::GrayEnd
        }));
        let row_faults = t
            .iter()
            .filter(|tr| matches!(tr.change, StateChange::RowFault(64)))
            .count();
        assert_eq!(row_faults, 4, "150, 300, 450, 600");
    }

    #[test]
    fn state_folds_transitions() {
        let mut st = FaultState::healthy(32);
        assert!(st.is_inert() && st.can_dispatch());
        assert_eq!(st.dimms_alive(), 32);
        st.apply(StateChange::DimmDown(3));
        st.apply(StateChange::DimmDown(17));
        assert_eq!(st.dimms_alive(), 30);
        assert!(!st.is_inert() && st.can_dispatch());
        st.apply(StateChange::NodeDown);
        assert!(!st.can_dispatch());
        st.apply(StateChange::NodeUp);
        st.apply(StateChange::DimmRestored(3));
        st.apply(StateChange::DimmRestored(17));
        st.apply(StateChange::GrayStart(3.0));
        assert_eq!(st.gray_multiplier(), 3.0);
        st.apply(StateChange::GrayEnd);
        st.apply(StateChange::RowFault(100));
        assert_eq!(st.pending_reread_rows(), 100);
        assert_eq!(st.take_reread_rows(), 100);
        assert_eq!(st.pending_reread_rows(), 0);
        assert!(st.is_inert());
    }

    #[test]
    fn reread_rows_are_bounded() {
        let mut st = FaultState::healthy(8);
        for _ in 0..10_000 {
            st.apply(StateChange::RowFault(u64::MAX / 2));
        }
        assert_eq!(
            st.pending_reread_rows(),
            FaultState::MAX_PENDING_REREAD_ROWS
        );
    }

    #[test]
    fn all_dimms_down_blocks_dispatch() {
        let mut st = FaultState::healthy(2);
        st.apply(StateChange::DimmDown(0));
        st.apply(StateChange::DimmDown(1));
        assert_eq!(st.dimms_alive(), 0);
        assert!(!st.can_dispatch());
    }

    #[test]
    fn rank_outage_validation_rejects_zero_length_and_overlap() {
        let reject = |plan: FaultPlan, parameter: &'static str| {
            assert_eq!(
                plan.schedule(1000.0),
                Err(FaultError::InvalidPlan { parameter }),
                "{parameter}"
            );
        };
        let base = FaultPlan::none();
        let w = |rank, start_us, duration_us| RankOutage {
            rank,
            start_us,
            duration_us,
        };
        // Zero-length (and negative / non-finite) repair windows.
        reject(
            base.with_rank_outage(w(0, 100.0, 0.0)),
            "rank_outages.duration_us",
        );
        reject(
            base.with_rank_outage(w(0, 100.0, -5.0)),
            "rank_outages.duration_us",
        );
        reject(
            base.with_rank_outage(w(0, 100.0, f64::NAN)),
            "rank_outages.duration_us",
        );
        // Bad anchors and out-of-range ranks.
        reject(
            base.with_rank_outage(w(0, -1.0, 10.0)),
            "rank_outages.start_us",
        );
        reject(base.with_rank_outage(w(32, 0.0, 10.0)), "rank_outages.rank");
        // Overlapping windows on the same rank — including abutting ones,
        // where the second outage starts exactly at the first repair.
        reject(
            base.with_rank_outage(w(3, 100.0, 50.0))
                .with_rank_outage(w(3, 120.0, 50.0)),
            "rank_outages.overlap",
        );
        reject(
            base.with_rank_outage(w(3, 100.0, 50.0))
                .with_rank_outage(w(3, 150.0, 50.0)),
            "rank_outages.overlap",
        );
        // Same windows on different ranks are fine; so are disjoint
        // windows on one rank.
        let ok = base
            .with_rank_outage(w(3, 100.0, 50.0))
            .with_rank_outage(w(4, 100.0, 50.0))
            .with_rank_outage(w(3, 151.0, 50.0));
        assert!(!ok.is_inert());
        let s = ok.schedule(1000.0).expect("valid");
        assert_eq!(s.events().len(), 6, "three down/restored pairs");
        assert!((s.dimm_downtime_us(1000.0) - 150.0).abs() < 1e-9);
    }

    #[test]
    fn explicit_rank_outage_merges_with_thinned_stream() {
        // Rate 1.0 accepts every candidate; a horizon-long explicit
        // window on every rank overlaps many of them. The merged
        // schedule must still pair every down with one restore (no
        // nested pairs — the liveness mask is a bitmask, not a counter).
        let mut plan = FaultPlan::dimm_faults(11, 1.0);
        plan.dimms = 4;
        for rank in 0..4 {
            plan = plan.with_rank_outage(RankOutage {
                rank,
                start_us: 1_000.0,
                duration_us: 150_000.0,
            });
        }
        let s = plan.schedule(200_000.0).expect("valid");
        let mut open = std::collections::HashSet::new();
        for e in s.events() {
            match *e {
                FaultEvent::DimmDown { dimm, .. } => {
                    assert!(open.insert(dimm), "no nested down for one DIMM");
                }
                FaultEvent::DimmRestored { dimm, .. } => {
                    assert!(open.remove(&dimm), "restore pairs with a down");
                }
                _ => {}
            }
        }
        assert!(open.is_empty());
        // The explicit windows only ever add downtime over the purely
        // stochastic plan.
        let stochastic = FaultPlan {
            rank_outages: [None; FaultPlan::MAX_RANK_OUTAGES],
            ..plan
        };
        let horizon = 200_000.0;
        assert!(
            s.dimm_downtime_us(horizon)
                >= stochastic
                    .schedule(horizon)
                    .expect("valid")
                    .dimm_downtime_us(horizon)
        );
    }

    #[test]
    fn for_node_decorrelates_but_preserves_monotone_downtime() {
        let base = FaultPlan::dimm_faults(42, 0.5);
        let horizon = 400_000.0;
        let a = base.for_node(0).schedule(horizon).expect("valid");
        let b = base.for_node(1).schedule(horizon).expect("valid");
        assert_ne!(a, b, "per-node streams decorrelate");
        assert_eq!(
            a,
            base.for_node(0).schedule(horizon).expect("valid"),
            "derivation is deterministic"
        );
        // Thinning survives the seed mix: each node's downtime is still
        // monotone in the fault rate.
        for node in 0..3u64 {
            let mut last = 0.0f64;
            for rate in [0.0, 0.25, 0.5, 1.0] {
                let down = FaultPlan::dimm_faults(42, rate)
                    .for_node(node)
                    .schedule(horizon)
                    .expect("valid")
                    .dimm_downtime_us(horizon);
                assert!(down >= last - 1e-9, "node {node} rate {rate}");
                last = down;
            }
        }
        // Explicit windows ride along verbatim.
        let derived = base
            .with_node_outage(NodeOutage {
                start_us: 5.0,
                duration_us: 10.0,
            })
            .for_node(7);
        assert_eq!(
            derived.node_outage,
            Some(NodeOutage {
                start_us: 5.0,
                duration_us: 10.0
            })
        );
        assert!(FaultPlan::none().for_node(3).is_inert());
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        let reject = |plan: FaultPlan, parameter: &'static str| {
            assert_eq!(
                plan.schedule(1000.0),
                Err(FaultError::InvalidPlan { parameter }),
                "{parameter}"
            );
        };
        let base = FaultPlan::none();
        reject(FaultPlan { dimms: 0, ..base }, "dimms");
        reject(FaultPlan { dimms: 129, ..base }, "dimms");
        reject(
            FaultPlan {
                dimm_fault_rate: 1.5,
                ..base
            },
            "dimm_fault_rate",
        );
        reject(
            FaultPlan {
                dimm_fault_rate: f64::NAN,
                ..base
            },
            "dimm_fault_rate",
        );
        reject(
            FaultPlan {
                dimm_candidate_gap_us: 0.0,
                ..base
            },
            "dimm_candidate_gap_us",
        );
        reject(
            FaultPlan {
                dimm_repair_us: -1.0,
                ..base
            },
            "dimm_repair_us",
        );
        reject(
            base.with_node_outage(NodeOutage {
                start_us: -1.0,
                duration_us: 10.0,
            }),
            "node_outage.start_us",
        );
        reject(
            base.with_gray(GrayRank {
                start_us: 0.0,
                duration_us: 10.0,
                latency_multiplier: 0.5,
            }),
            "gray.latency_multiplier",
        );
        reject(
            base.with_row_faults(RowFaults {
                every_us: 0.0,
                rows: 1,
            }),
            "row_faults.every_us",
        );
        assert_eq!(
            base.schedule(f64::INFINITY),
            Err(FaultError::InvalidPlan {
                parameter: "horizon_us"
            })
        );
        assert!(!FaultError::InvalidPlan { parameter: "dimms" }
            .to_string()
            .is_empty());
    }
}
