//! Golden (reference) tensor operations.
//!
//! These are the plain, single-threaded semantics of the paper's three
//! tensor operations. The near-memory execution paths (ISA executor, NMP
//! cores, TensorNode runtime) are all validated against these functions.

use crate::table::EmbeddingTable;
use crate::EmbeddingError;
use tensordimm_isa::ReduceOp;

/// Gather `indices.len()` embedding vectors into a contiguous tensor.
///
/// # Errors
///
/// Returns [`EmbeddingError::RowOutOfRange`] on a bad index.
pub fn gather(table: &EmbeddingTable, indices: &[u64]) -> Result<Vec<f32>, EmbeddingError> {
    let mut out = Vec::with_capacity(indices.len() * table.dim());
    for &i in indices {
        out.extend_from_slice(table.row(i)?);
    }
    Ok(out)
}

/// Element-wise reduction of two equal-shaped tensors.
///
/// # Errors
///
/// Returns [`EmbeddingError::ShapeMismatch`] when lengths differ.
pub fn reduce(a: &[f32], b: &[f32], op: ReduceOp) -> Result<Vec<f32>, EmbeddingError> {
    if a.len() != b.len() {
        return Err(EmbeddingError::ShapeMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(a.iter()
        .zip(b)
        .map(|(&x, &y)| match op {
            ReduceOp::Add => x + y,
            ReduceOp::Sub => x - y,
            ReduceOp::Mul => x * y,
            ReduceOp::Min => x.min(y),
            ReduceOp::Max => x.max(y),
        })
        .collect())
}

/// Element-wise average over groups of `group` consecutive vectors.
///
/// The input holds `n * group` vectors of `dim` values; the output holds
/// `n` vectors — the multi-hot pooling step of the embedding layer.
///
/// # Errors
///
/// Returns [`EmbeddingError::EmptyShape`] for zero `group`/`dim` and
/// [`EmbeddingError::ShapeMismatch`] when the input is not a whole number
/// of groups.
pub fn average(input: &[f32], group: usize, dim: usize) -> Result<Vec<f32>, EmbeddingError> {
    if group == 0 {
        return Err(EmbeddingError::EmptyShape { what: "group" });
    }
    if dim == 0 {
        return Err(EmbeddingError::EmptyShape { what: "dim" });
    }
    if !input.len().is_multiple_of(group * dim) {
        return Err(EmbeddingError::ShapeMismatch {
            left: input.len(),
            right: group * dim,
        });
    }
    let outputs = input.len() / (group * dim);
    let mut out = vec![0.0f32; outputs * dim];
    for o in 0..outputs {
        for g in 0..group {
            let base = (o * group + g) * dim;
            for d in 0..dim {
                out[o * dim + d] += input[base + d];
            }
        }
        for d in 0..dim {
            out[o * dim + d] /= group as f32;
        }
    }
    Ok(out)
}

/// Sum-reduce `n` equal-shaped tensors laid out consecutively
/// (`input.len() == n * each`), the N-way reduction of Fig. 5.
///
/// # Errors
///
/// Returns [`EmbeddingError::ShapeMismatch`] when the input does not divide
/// into `n` tensors.
pub fn reduce_n(input: &[f32], n: usize) -> Result<Vec<f32>, EmbeddingError> {
    if n == 0 || !input.len().is_multiple_of(n) {
        return Err(EmbeddingError::ShapeMismatch {
            left: input.len(),
            right: n.max(1),
        });
    }
    let each = input.len() / n;
    let mut out = vec![0.0f32; each];
    for t in 0..n {
        for (o, v) in out.iter_mut().zip(&input[t * each..(t + 1) * each]) {
            *o += v;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> EmbeddingTable {
        EmbeddingTable::from_fn("t", 10, 4, |r, c| r as f32 + c as f32 / 10.0)
    }

    #[test]
    fn gather_values() {
        let g = gather(&table(), &[3, 0, 9]).unwrap();
        assert_eq!(g.len(), 12);
        assert_eq!(g[0], 3.0);
        assert_eq!(g[4], 0.0);
        assert_eq!(&g[8..12], &[9.0, 9.1, 9.2, 9.3]);
    }

    #[test]
    fn gather_bad_index() {
        assert!(gather(&table(), &[10]).is_err());
    }

    #[test]
    fn reduce_ops() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 1.0, 3.0];
        assert_eq!(reduce(&a, &b, ReduceOp::Add).unwrap(), vec![5.0, 3.0, 6.0]);
        assert_eq!(reduce(&a, &b, ReduceOp::Sub).unwrap(), vec![-3.0, 1.0, 0.0]);
        assert_eq!(reduce(&a, &b, ReduceOp::Mul).unwrap(), vec![4.0, 2.0, 9.0]);
        assert_eq!(reduce(&a, &b, ReduceOp::Min).unwrap(), vec![1.0, 1.0, 3.0]);
        assert_eq!(reduce(&a, &b, ReduceOp::Max).unwrap(), vec![4.0, 2.0, 3.0]);
        assert!(reduce(&a, &b[..2], ReduceOp::Add).is_err());
    }

    #[test]
    fn average_groups() {
        // Two outputs, group 2, dim 2.
        let input = [1.0, 10.0, 3.0, 30.0, 5.0, 50.0, 7.0, 70.0];
        let avg = average(&input, 2, 2).unwrap();
        assert_eq!(avg, vec![2.0, 20.0, 6.0, 60.0]);
    }

    #[test]
    fn average_shape_errors() {
        assert!(average(&[1.0; 6], 0, 2).is_err());
        assert!(average(&[1.0; 6], 2, 0).is_err());
        assert!(average(&[1.0; 6], 2, 2).is_err());
    }

    #[test]
    fn reduce_n_sums() {
        let input = [1.0, 2.0, 10.0, 20.0, 100.0, 200.0];
        assert_eq!(reduce_n(&input, 3).unwrap(), vec![111.0, 222.0]);
        assert!(reduce_n(&input, 4).is_err());
        assert!(reduce_n(&input, 0).is_err());
    }

    #[test]
    fn average_equals_reduce_n_scaled() {
        let input: Vec<f32> = (0..24).map(|i| i as f32).collect();
        let avg = average(&input, 3, 4).unwrap();
        // reduce_n over each group of 3 vectors, scaled by 1/3.
        for (o, chunk) in input.chunks(12).enumerate() {
            let sum = reduce_n(chunk, 3).unwrap();
            for d in 0..4 {
                assert!((avg[o * 4 + d] - sum[d] / 3.0).abs() < 1e-6);
            }
        }
    }
}
