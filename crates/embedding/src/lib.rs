//! Embedding-layer substrate: tables, index streams and golden tensor ops.
//!
//! The paper evaluates recommender systems whose embedding layers perform
//! three steps (Fig. 2): look up (gather) embedding vectors from one or more
//! tables, combine them with element-wise tensor operations (reduce /
//! average), and feed the result to MLPs. Production tables and query
//! traces are proprietary, so this crate provides the synthetic equivalent:
//!
//! * [`EmbeddingTable`] — deterministic, seeded tables of `rows × dim` f32,
//! * [`IndexStream`] — uniform or zipfian (popularity-skewed) multi-hot
//!   index generators, the standard stand-in for recommendation traffic,
//! * [`ops`] — golden single-threaded gather / reduce / average used to
//!   validate the near-memory execution paths,
//! * [`footprint`] — memory-footprint models behind Fig. 3.
//!
//! # Example
//!
//! ```
//! use tensordimm_embedding::{EmbeddingTable, IndexStream, Distribution, ops};
//!
//! let table = EmbeddingTable::seeded("items", 1000, 64, 42);
//! let mut stream = IndexStream::new(Distribution::Zipfian { s: 1.05 }, 1000, 7);
//! let indices = stream.batch(8);
//! let gathered = ops::gather(&table, &indices)?;
//! assert_eq!(gathered.len(), 8 * 64);
//! # Ok::<(), tensordimm_embedding::EmbeddingError>(())
//! ```

pub mod footprint;
pub mod indices;
pub mod ops;
pub mod table;

pub use footprint::{mlp_params, table_bytes, FootprintReport};
pub use indices::{hot_row_share, zipf_lookup_rows, Distribution, IndexStream};
pub use table::EmbeddingTable;

use std::error::Error;
use std::fmt;

/// Errors from the embedding substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EmbeddingError {
    /// A shape parameter is zero.
    EmptyShape {
        /// Which parameter (rows / dim / batch).
        what: &'static str,
    },
    /// Two tensors disagree in shape.
    ShapeMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// An index exceeds the table's rows.
    RowOutOfRange {
        /// The offending index.
        index: u64,
        /// Number of rows in the table.
        rows: u64,
    },
}

impl fmt::Display for EmbeddingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbeddingError::EmptyShape { what } => write!(f, "{what} must be nonzero"),
            EmbeddingError::ShapeMismatch { left, right } => {
                write!(f, "tensor shapes differ: {left} vs {right} elements")
            }
            EmbeddingError::RowOutOfRange { index, rows } => {
                write!(f, "row index {index} out of range for table of {rows} rows")
            }
        }
    }
}

impl Error for EmbeddingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert!(!EmbeddingError::EmptyShape { what: "rows" }
            .to_string()
            .is_empty());
        assert!(!EmbeddingError::ShapeMismatch { left: 1, right: 2 }
            .to_string()
            .is_empty());
        assert!(!EmbeddingError::RowOutOfRange { index: 9, rows: 3 }
            .to_string()
            .is_empty());
    }
}
