//! Memory-footprint models (behind paper Fig. 3).
//!
//! Fig. 3 shows why embeddings — not MLPs — blow up recommender-model
//! size: the table footprint scales with `users × dim` while MLP parameters
//! scale only with layer widths. These helpers compute both.

/// Bytes of one embedding table (`rows × dim` f32).
pub fn table_bytes(rows: u64, dim: u64) -> u64 {
    rows * dim * 4
}

/// Parameter count of a dense MLP over the given layer widths
/// (weights + biases for each consecutive pair).
pub fn mlp_params(widths: &[u64]) -> u64 {
    widths.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
}

/// A model-size breakdown for one configuration point of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FootprintReport {
    /// Embedding-table bytes.
    pub embedding_bytes: u64,
    /// MLP parameter bytes.
    pub mlp_bytes: u64,
}

impl FootprintReport {
    /// Total model bytes.
    pub fn total_bytes(&self) -> u64 {
        self.embedding_bytes + self.mlp_bytes
    }

    /// Total model size in GiB.
    pub fn total_gib(&self) -> f64 {
        self.total_bytes() as f64 / (1u64 << 30) as f64
    }

    /// Fraction of the model that is embeddings.
    pub fn embedding_fraction(&self) -> f64 {
        if self.total_bytes() == 0 {
            0.0
        } else {
            self.embedding_bytes as f64 / self.total_bytes() as f64
        }
    }
}

/// Footprint of a neural-collaborative-filtering model (the Fig. 3 subject):
/// MF + MLP embedding towers for `users` and `items` at `emb_dim`, plus a
/// pyramid MLP whose first hidden width is `mlp_dim`.
///
/// The experiment in the paper assumes 5 M users and 5 M items per lookup
/// table; four tables total (user/item × MF/MLP towers).
///
/// # Example
///
/// ```
/// use tensordimm_embedding::footprint::ncf_footprint;
///
/// let small = ncf_footprint(5_000_000, 5_000_000, 64, 1024);
/// let wide = ncf_footprint(5_000_000, 5_000_000, 4096, 1024);
/// // Scaling the embedding dimension 64x scales the model ~64x.
/// assert!(wide.total_bytes() > small.total_bytes() * 32);
/// ```
pub fn ncf_footprint(users: u64, items: u64, emb_dim: u64, mlp_dim: u64) -> FootprintReport {
    // Four towers: user-MF, item-MF, user-MLP, item-MLP.
    let embedding_bytes = 2 * (table_bytes(users, emb_dim) + table_bytes(items, emb_dim));
    // Pyramid MLP: concat(user, item) -> mlp_dim -> mlp_dim/2 -> mlp_dim/4 -> 1.
    let widths = [
        2 * emb_dim,
        mlp_dim,
        (mlp_dim / 2).max(1),
        (mlp_dim / 4).max(1),
        1,
    ];
    FootprintReport {
        embedding_bytes,
        mlp_bytes: mlp_params(&widths) * 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_bytes_math() {
        assert_eq!(table_bytes(1000, 512), 1000 * 512 * 4);
    }

    #[test]
    fn mlp_params_counts_weights_and_biases() {
        // 3 -> 2 -> 1: (3*2 + 2) + (2*1 + 1) = 11.
        assert_eq!(mlp_params(&[3, 2, 1]), 11);
        assert_eq!(mlp_params(&[5]), 0);
        assert_eq!(mlp_params(&[]), 0);
    }

    #[test]
    fn embeddings_dominate_ncf() {
        // The Fig. 3 observation: embedding dim dominates MLP dim.
        let r = ncf_footprint(5_000_000, 5_000_000, 512, 8192);
        assert!(r.embedding_fraction() > 0.97, "{}", r.embedding_fraction());
        // 4 tables x 5M x 512 x 4B = 40.96 GB ~ 38.1 GiB.
        assert!((r.total_gib() - 38.15).abs() < 1.0, "{}", r.total_gib());
    }

    #[test]
    fn embedding_scaling_beats_mlp_scaling() {
        let base = ncf_footprint(5_000_000, 5_000_000, 64, 64);
        let big_emb = ncf_footprint(5_000_000, 5_000_000, 512, 64);
        let big_mlp = ncf_footprint(5_000_000, 5_000_000, 64, 8192);
        let emb_growth = big_emb.total_bytes() as f64 / base.total_bytes() as f64;
        let mlp_growth = big_mlp.total_bytes() as f64 / base.total_bytes() as f64;
        assert!(emb_growth > 5.0 * mlp_growth);
    }

    #[test]
    fn report_helpers() {
        let r = FootprintReport {
            embedding_bytes: 3 << 30,
            mlp_bytes: 1 << 30,
        };
        assert_eq!(r.total_bytes(), 4 << 30);
        assert!((r.total_gib() - 4.0).abs() < 1e-9);
        assert!((r.embedding_fraction() - 0.75).abs() < 1e-9);
    }
}

#[cfg(test)]
mod fig3_grid_tests {
    use super::*;

    /// The Fig. 3 grid is monotone along both axes, and the embedding axis
    /// dominates everywhere in the swept range.
    #[test]
    fn grid_monotonicity() {
        let users = 5_000_000;
        let items = 5_000_000;
        let mut prev_row_total = 0u64;
        for e in (6..=15).map(|p| 1u64 << p) {
            let mut prev = 0u64;
            let mut row_total = 0u64;
            for m in (6..=13).map(|p| 1u64 << p) {
                let r = ncf_footprint(users, items, e, m);
                assert!(r.total_bytes() >= prev, "mlp axis not monotone");
                prev = r.total_bytes();
                row_total = r.total_bytes();
            }
            assert!(row_total > prev_row_total, "embedding axis not monotone");
            prev_row_total = row_total;
        }
    }

    #[test]
    fn default_workload_point_matches_table2_footprint() {
        // emb 512, 5M rows, 4 NCF tables: the Table 2 NCF footprint.
        let r = ncf_footprint(5_000_000, 5_000_000, 512, 1024);
        let table2_ncf_bytes = 4u64 * 5_000_000 * 512 * 4;
        assert_eq!(r.embedding_bytes, table2_ncf_bytes);
    }
}
