//! Sparse-feature index generators.
//!
//! Recommendation inference traffic is popularity-skewed: a small set of
//! hot users/items dominates lookups. The paper's production traces are
//! proprietary; zipfian sampling is the standard synthetic equivalent
//! (uniform sampling is the worst case for row-buffer locality and is kept
//! for stress tests).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sampling distribution over table rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Every row equally likely.
    Uniform,
    /// Zipfian with exponent `s` (typical recommendation skew: 0.9–1.1).
    Zipfian {
        /// Skew exponent; larger is more head-heavy.
        s: f64,
    },
}

/// A deterministic stream of embedding-table indices.
///
/// Zipfian sampling uses the rejection-inversion method of Hörmann &
/// Derflinger, which is O(1) per sample for any table size.
///
/// # Example
///
/// ```
/// use tensordimm_embedding::{Distribution, IndexStream};
///
/// let mut s = IndexStream::new(Distribution::Zipfian { s: 1.0 }, 1_000_000, 9);
/// let batch = s.batch(64);
/// assert_eq!(batch.len(), 64);
/// assert!(batch.iter().all(|&i| i < 1_000_000));
/// ```
#[derive(Debug, Clone)]
pub struct IndexStream {
    distribution: Distribution,
    rows: u64,
    rng: StdRng,
    // Rejection-inversion precomputation for zipfian sampling.
    zipf: Option<ZipfSampler>,
}

#[derive(Debug, Clone)]
struct ZipfSampler {
    s: f64,
    rows: f64,
    h_x1: f64,
    h_n: f64,
}

impl ZipfSampler {
    fn new(s: f64, rows: u64) -> Self {
        let rows = rows as f64;
        ZipfSampler {
            s,
            rows,
            h_x1: Self::h_static(1.5, s) - 1.0,
            h_n: Self::h_static(rows + 0.5, s),
        }
    }

    /// Integral of x^-s (the "H" function of rejection inversion).
    fn h_static(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-9 {
            x.ln()
        } else {
            (x.powf(1.0 - s) - 1.0) / (1.0 - s)
        }
    }

    fn h_inv(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-9 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - self.s)).powf(1.0 / (1.0 - self.s))
        }
    }

    fn sample(&self, rng: &mut StdRng) -> u64 {
        loop {
            let u = self.h_x1 + rng.gen::<f64>() * (self.h_n - self.h_x1);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.rows);
            let h_k = Self::h_static(k + 0.5, self.s) - Self::h_static(k - 0.5, self.s);
            if u >= Self::h_static(k + 0.5, self.s) - h_k.min(k.powf(-self.s)) {
                // Accept when u falls inside k's slice; the simple guard
                // below accepts k with probability proportional to k^-s.
                if rng.gen::<f64>() * h_k <= k.powf(-self.s) {
                    return k as u64 - 1;
                }
            }
        }
    }
}

/// Zipf-skewed lookup rows: `count` draws over `[0, rows)` with exponent
/// `s` (rank 0 = hottest). `s = 0` degenerates to uniform.
///
/// Memory is bounded regardless of `rows`: sampling uses the
/// rejection-inversion method (no O(rows) CDF table is ever built), so
/// paper-scale tables — billions of rows — cost the same O(1) state as a
/// thousand-row toy table. The only allocation is the `count`-sized output.
pub fn zipf_lookup_rows(count: usize, rows: u64, s: f64, seed: u64) -> Vec<u64> {
    let distribution = if s > 0.0 {
        Distribution::Zipfian { s }
    } else {
        Distribution::Uniform
    };
    IndexStream::new(distribution, rows, seed).batch(count)
}

/// Fraction of `rows_hit` falling in the hottest `hot_fraction` of the
/// table (e.g. `0.01` = the top 1% of rows). The locality headroom a
/// rank-level cache could exploit.
pub fn hot_row_share(rows_hit: &[u64], rows: u64, hot_fraction: f64) -> f64 {
    if rows_hit.is_empty() {
        return 0.0;
    }
    let cutoff = ((rows as f64) * hot_fraction).max(1.0) as u64;
    rows_hit.iter().filter(|&&r| r < cutoff).count() as f64 / rows_hit.len() as f64
}

impl IndexStream {
    /// A stream over `[0, rows)` with the given distribution and seed.
    pub fn new(distribution: Distribution, rows: u64, seed: u64) -> Self {
        let zipf = match distribution {
            Distribution::Zipfian { s } => Some(ZipfSampler::new(s, rows)),
            Distribution::Uniform => None,
        };
        IndexStream {
            distribution,
            rows,
            rng: StdRng::seed_from_u64(seed),
            zipf,
        }
    }

    /// The distribution in use.
    pub fn distribution(&self) -> Distribution {
        self.distribution
    }

    /// Number of rows sampled over.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Draw one index.
    pub fn next_index(&mut self) -> u64 {
        match &self.zipf {
            None => self.rng.gen_range(0..self.rows),
            Some(z) => z.sample(&mut self.rng),
        }
    }

    /// Draw `n` indices.
    pub fn batch(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_index()).collect()
    }

    /// Draw a multi-hot batch: `batch` samples of `lookups` indices each
    /// (the "max reduction" column of Table 2: how many embeddings are
    /// pooled per sample).
    pub fn multi_hot(&mut self, batch: usize, lookups: usize) -> Vec<u64> {
        self.batch(batch * lookups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_bounds_and_determinism() {
        let mut a = IndexStream::new(Distribution::Uniform, 1000, 5);
        let mut b = IndexStream::new(Distribution::Uniform, 1000, 5);
        let xa = a.batch(256);
        let xb = b.batch(256);
        assert_eq!(xa, xb);
        assert!(xa.iter().all(|&i| i < 1000));
    }

    #[test]
    fn zipf_is_head_heavy() {
        let rows = 100_000u64;
        let mut s = IndexStream::new(Distribution::Zipfian { s: 1.0 }, rows, 11);
        let xs = s.batch(20_000);
        let head = xs.iter().filter(|&&i| i < rows / 100).count() as f64;
        let frac = head / xs.len() as f64;
        // The top 1% of rows must draw far more than 1% of traffic.
        assert!(frac > 0.2, "head fraction {frac}");
        assert!(xs.iter().all(|&i| i < rows));
    }

    #[test]
    fn zipf_higher_skew_is_hotter() {
        let rows = 100_000u64;
        let head = |s_exp: f64| {
            let mut s = IndexStream::new(Distribution::Zipfian { s: s_exp }, rows, 13);
            let xs = s.batch(20_000);
            xs.iter().filter(|&&i| i < rows / 100).count()
        };
        assert!(head(1.2) > head(0.8));
    }

    #[test]
    fn multi_hot_size() {
        let mut s = IndexStream::new(Distribution::Uniform, 10, 3);
        assert_eq!(s.multi_hot(4, 25).len(), 100);
    }

    #[test]
    fn zipf_lookup_rows_bounded_memory_at_paper_scale() {
        // Billions of rows: the rejection-inversion sampler keeps O(1)
        // state, so this must complete instantly with no O(rows) table.
        let rows = 4_000_000_000u64;
        let hits = zipf_lookup_rows(5_000, rows, 0.9, 21);
        assert_eq!(hits.len(), 5_000);
        assert!(hits.iter().all(|&r| r < rows));
        // Head-heaviness is preserved at scale: the hottest 1% of four
        // billion rows still draws far more than its uniform 1% share.
        let hot = hot_row_share(&hits, rows, 0.01);
        assert!(hot > 0.05, "billion-row hot share {hot:.4}");
        // Uniform (s = 0) stays near its 1% baseline.
        let uniform = zipf_lookup_rows(5_000, rows, 0.0, 21);
        let uniform_hot = hot_row_share(&uniform, rows, 0.01);
        assert!(uniform_hot < 0.03, "uniform hot share {uniform_hot:.4}");
    }

    #[test]
    fn zipf_lookup_rows_small_rows_pinned_per_seed() {
        // The exact draws for small tables are pinned: a sampler rewrite
        // (e.g. swapping rejection inversion for a bucketed CDF) must
        // either reproduce these streams or consciously update this test.
        assert_eq!(
            zipf_lookup_rows(8, 100, 0.9, 7),
            zipf_lookup_rows(8, 100, 0.9, 7)
        );
        let zipf = zipf_lookup_rows(8, 100, 0.9, 7);
        let uniform = zipf_lookup_rows(8, 100, 0.0, 7);
        assert!(zipf.iter().all(|&r| r < 100));
        assert!(uniform.iter().all(|&r| r < 100));
        assert_ne!(zipf, zipf_lookup_rows(8, 100, 0.9, 8), "seed must matter");
    }

    #[test]
    fn hot_row_share_edge_cases() {
        assert_eq!(hot_row_share(&[], 100, 0.01), 0.0);
        // Cutoff is at least one row, so rank 0 always counts as hot.
        assert_eq!(hot_row_share(&[0, 99], 100, 0.001), 0.5);
        assert_eq!(hot_row_share(&[5, 6], 100, 1.0), 1.0);
    }

    #[test]
    fn zipf_covers_tail() {
        // Even skewed streams must occasionally reach the tail.
        let rows = 10_000u64;
        let mut s = IndexStream::new(Distribution::Zipfian { s: 0.9 }, rows, 17);
        let xs = s.batch(50_000);
        assert!(xs.iter().any(|&i| i > rows / 2), "tail never sampled");
    }
}
