//! Embedding lookup tables.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::EmbeddingError;

/// A dense embedding lookup table: `rows` vectors of `dim` f32 values.
///
/// Tables are seeded and deterministic so every simulation and test is
/// reproducible; values are drawn uniformly from `[-0.1, 0.1)`, the usual
/// initialization scale for embedding layers.
///
/// # Example
///
/// ```
/// use tensordimm_embedding::EmbeddingTable;
///
/// let t = EmbeddingTable::seeded("users", 100, 16, 1);
/// assert_eq!(t.rows(), 100);
/// assert_eq!(t.dim(), 16);
/// let row = t.row(42)?;
/// assert_eq!(row.len(), 16);
/// // Same seed, same contents.
/// let u = EmbeddingTable::seeded("users", 100, 16, 1);
/// assert_eq!(t.row(42)?, u.row(42)?);
/// # Ok::<(), tensordimm_embedding::EmbeddingError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingTable {
    name: String,
    rows: u64,
    dim: usize,
    data: Vec<f32>,
}

impl EmbeddingTable {
    /// A table filled from a seeded RNG.
    ///
    /// # Panics
    ///
    /// Panics if `rows * dim` overflows `usize` (astronomically large).
    pub fn seeded(name: &str, rows: u64, dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows as usize * dim)
            .map(|_| rng.gen_range(-0.1f32..0.1))
            .collect();
        EmbeddingTable {
            name: name.to_owned(),
            rows,
            dim,
            data,
        }
    }

    /// A table filled by `f(row, col)` — handy for exact-value tests.
    pub fn from_fn(name: &str, rows: u64, dim: usize, f: impl Fn(u64, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows as usize * dim);
        for r in 0..rows {
            for c in 0..dim {
                data.push(f(r, c));
            }
        }
        EmbeddingTable {
            name: name.to_owned(),
            rows,
            dim,
            data,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of embedding vectors.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Size of the table in bytes (f32 elements).
    pub fn bytes(&self) -> u64 {
        self.rows * self.dim as u64 * 4
    }

    /// Size of one embedding vector in bytes.
    pub fn vector_bytes(&self) -> u64 {
        self.dim as u64 * 4
    }

    /// The whole table as a flat row-major slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// One embedding vector.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::RowOutOfRange`] for `index >= rows`.
    pub fn row(&self, index: u64) -> Result<&[f32], EmbeddingError> {
        if index >= self.rows {
            return Err(EmbeddingError::RowOutOfRange {
                index,
                rows: self.rows,
            });
        }
        let start = index as usize * self.dim;
        Ok(&self.data[start..start + self.dim])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let a = EmbeddingTable::seeded("t", 10, 8, 7);
        let b = EmbeddingTable::seeded("t", 10, 8, 7);
        let c = EmbeddingTable::seeded("t", 10, 8, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn values_in_init_range() {
        let t = EmbeddingTable::seeded("t", 50, 32, 3);
        assert!(t.data().iter().all(|v| (-0.1..0.1).contains(v)));
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let t = EmbeddingTable::from_fn("t", 4, 3, |r, c| (r * 10 + c as u64) as f32);
        assert_eq!(t.row(2).unwrap(), &[20.0, 21.0, 22.0]);
        assert_eq!(t.data()[3], 10.0);
    }

    #[test]
    fn sizes() {
        let t = EmbeddingTable::from_fn("t", 8, 128, |_, _| 0.0);
        assert_eq!(t.bytes(), 8 * 128 * 4);
        assert_eq!(t.vector_bytes(), 512);
        assert_eq!(t.name(), "t");
    }

    #[test]
    fn out_of_range_row() {
        let t = EmbeddingTable::seeded("t", 4, 2, 0);
        assert!(t.row(4).is_err());
        assert!(t.row(3).is_ok());
    }
}
