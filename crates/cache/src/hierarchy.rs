//! A three-level cache hierarchy.

use crate::set_cache::Cache;
use crate::CacheError;

/// Geometry of a three-level hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache capacity in bytes.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 capacity in bytes.
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Last-level cache capacity in bytes (aggregate share visible to the
    /// gather thread).
    pub llc_bytes: usize,
    /// LLC associativity.
    pub llc_ways: usize,
}

impl HierarchyConfig {
    /// A Skylake-SP-like core's view: 32 KiB L1d / 1 MiB L2 / 1.375 MiB of
    /// LLC per core scaled to a 28-core die share of ~38.5 MiB — we model
    /// the share a gather kernel's threads effectively use (16 MiB).
    pub fn xeon_like() -> Self {
        HierarchyConfig {
            l1_bytes: 32 << 10,
            l1_ways: 8,
            l2_bytes: 1 << 20,
            l2_ways: 16,
            llc_bytes: 16 << 20,
            llc_ways: 16,
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::xeon_like()
    }
}

/// Per-level hit/miss counts after a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LevelStats {
    /// Hits at this level.
    pub hits: u64,
    /// Misses at this level (passed to the next level or memory).
    pub misses: u64,
}

impl LevelStats {
    /// Hit rate at this level in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// L1 → L2 → LLC in lookup order; misses at each level probe the next.
///
/// # Example
///
/// ```
/// use tensordimm_cache::{Hierarchy, HierarchyConfig};
///
/// let mut h = Hierarchy::new(HierarchyConfig::xeon_like())?;
/// h.access(0);
/// h.access(0);
/// assert_eq!(h.l1().hits, 1);
/// assert_eq!(h.memory_accesses(), 1);
/// # Ok::<(), tensordimm_cache::CacheError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    llc: Cache,
    l1_stats: LevelStats,
    l2_stats: LevelStats,
    llc_stats: LevelStats,
}

impl Hierarchy {
    /// Build the hierarchy.
    ///
    /// # Errors
    ///
    /// Propagates [`CacheError::InvalidGeometry`] from any level.
    pub fn new(config: HierarchyConfig) -> Result<Self, CacheError> {
        Ok(Hierarchy {
            l1: Cache::new(config.l1_bytes, config.l1_ways)?,
            l2: Cache::new(config.l2_bytes, config.l2_ways)?,
            llc: Cache::new(config.llc_bytes, config.llc_ways)?,
            l1_stats: LevelStats::default(),
            l2_stats: LevelStats::default(),
            llc_stats: LevelStats::default(),
        })
    }

    /// Access one address; returns the level that hit (1, 2, 3) or 0 for
    /// memory.
    pub fn access(&mut self, addr: u64) -> u8 {
        if self.l1.access(addr) {
            self.l1_stats.hits += 1;
            return 1;
        }
        self.l1_stats.misses += 1;
        if self.l2.access(addr) {
            self.l2_stats.hits += 1;
            return 2;
        }
        self.l2_stats.misses += 1;
        if self.llc.access(addr) {
            self.llc_stats.hits += 1;
            return 3;
        }
        self.llc_stats.misses += 1;
        0
    }

    /// L1 statistics.
    pub fn l1(&self) -> LevelStats {
        self.l1_stats
    }

    /// L2 statistics.
    pub fn l2(&self) -> LevelStats {
        self.l2_stats
    }

    /// LLC statistics.
    pub fn llc(&self) -> LevelStats {
        self.llc_stats
    }

    /// Accesses that reached DRAM.
    pub fn memory_accesses(&self) -> u64 {
        self.llc_stats.misses
    }

    /// Total accesses observed.
    pub fn total_accesses(&self) -> u64 {
        self.l1_stats.hits + self.l1_stats.misses
    }

    /// Fraction of accesses that reached DRAM.
    pub fn memory_access_rate(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            self.memory_accesses() as f64 / total as f64
        }
    }

    /// Clear contents and statistics.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.llc.reset();
        self.reset_stats();
    }

    /// Clear statistics but keep contents (post-warmup measurement).
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.llc.reset_stats();
        self.l1_stats = LevelStats::default();
        self.l2_stats = LevelStats::default();
        self.llc_stats = LevelStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            l1_bytes: 4 * 64,
            l1_ways: 2,
            l2_bytes: 16 * 64,
            l2_ways: 4,
            llc_bytes: 64 * 64,
            llc_ways: 8,
        })
        .unwrap()
    }

    #[test]
    fn levels_fill_in_order() {
        let mut h = small();
        assert_eq!(h.access(0), 0); // cold: memory
        assert_eq!(h.access(0), 1); // L1 hit
                                    // Evict line 0 from tiny L1 with conflicting lines (same set).
        h.access(4 * 64 * 64);
        h.access(8 * 64 * 64);
        // Line 0 fell out of L1 but sits in L2.
        assert_eq!(h.access(0), 2);
    }

    #[test]
    fn memory_rate_for_streaming() {
        let mut h = small();
        for i in 0..10_000u64 {
            h.access(i * 64);
        }
        assert!(h.memory_access_rate() > 0.95);
        assert_eq!(h.total_accesses(), 10_000);
    }

    #[test]
    fn resident_set_stays_cached() {
        let mut h = Hierarchy::new(HierarchyConfig::xeon_like()).unwrap();
        for _ in 0..3 {
            for i in 0..100u64 {
                h.access(i * 64);
            }
        }
        // After warmup, 200 of 300 rounds hit somewhere.
        assert!(h.memory_accesses() <= 100);
    }

    #[test]
    fn reset() {
        let mut h = small();
        h.access(0);
        h.reset();
        assert_eq!(h.total_accesses(), 0);
        assert_eq!(h.access(0), 0);
    }
}
