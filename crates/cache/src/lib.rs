//! CPU cache-hierarchy simulator for the baseline design points.
//!
//! The paper's baselines read embeddings through a Xeon's cache hierarchy.
//! Gupta et al. (reference 24 of the paper, Section 7) measured that the
//! sparse, irregular accesses of embedding gathers hit so rarely that CPUs
//! realize under 5 % of their DRAM bandwidth. This crate reproduces that
//! effect from first principles:
//!
//! * [`Cache`] — a set-associative, LRU, 64-byte-line cache model,
//! * [`Hierarchy`] — L1/L2/LLC in inclusive composition with a Xeon-like
//!   default geometry,
//! * [`GatherModel`] — runs a synthetic gather index stream through the
//!   hierarchy and converts miss rates plus MSHR-limited memory-level
//!   parallelism into an *effective gather bandwidth*, the number the
//!   end-to-end system model uses for CPU-resident embedding lookups,
//! * [`HotRowCache`] — a row-granular LRU cache for the *NMP* side of the
//!   house: the buffer-device SRAM tier that lets `NmpCore` skip DRAM
//!   replay for Zipf-hot embedding rows (RecNMP-style hot-entry caching).
//!
//! # Example
//!
//! ```
//! use tensordimm_cache::{GatherModel, GatherWorkload};
//!
//! let model = GatherModel::xeon_like();
//! let hot = model.effective_bandwidth_gbps(&GatherWorkload {
//!     table_bytes: 1 << 20,       // 1 MiB table: cache resident
//!     embedding_bytes: 2048,
//!     lookups: 10_000,
//!     zipf_s: 0.0,
//!     seed: 1,
//! });
//! let cold = model.effective_bandwidth_gbps(&GatherWorkload {
//!     table_bytes: 64 << 30,      // 64 GiB table: every access misses
//!     embedding_bytes: 2048,
//!     lookups: 10_000,
//!     zipf_s: 0.0,
//!     seed: 1,
//! });
//! assert!(hot > 4.0 * cold, "hot {hot} cold {cold}");
//! ```

pub mod gather;
pub mod hierarchy;
pub mod hot_row;
pub mod set_cache;

pub use gather::{GatherModel, GatherReport, GatherWorkload};
pub use hierarchy::{Hierarchy, HierarchyConfig, LevelStats};
pub use hot_row::{HotRowCache, HotRowCacheConfig, HotRowStats};
pub use set_cache::Cache;

use std::error::Error;
use std::fmt;

/// Errors from the cache substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CacheError {
    /// A geometry parameter is invalid (zero, or not a power of two where
    /// required).
    InvalidGeometry {
        /// Which parameter.
        parameter: &'static str,
        /// The rejected value.
        value: usize,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::InvalidGeometry { parameter, value } => {
                write!(f, "cache parameter {parameter} = {value} is invalid")
            }
        }
    }
}

impl Error for CacheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(!CacheError::InvalidGeometry {
            parameter: "ways",
            value: 0
        }
        .to_string()
        .is_empty());
    }
}
