//! A hot-row cache over embedding *rows* for the NMP gather path.
//!
//! RecNMP's observation (see PAPERS.md): embedding lookups are heavily
//! Zipf-skewed, so a small SRAM cache of whole rows in front of the
//! rank-level DRAM recovers most of the tail latency at tiny capacities.
//! Unlike [`crate::Cache`], which models 64-byte CPU lines, this cache is
//! keyed by *row id* — one entry covers every block of an embedding
//! vector's slice on a DIMM, because the NMP core either has the whole
//! row staged in SRAM or it does not.
//!
//! The cache stores tags only (the simulation is timing-level); hits are
//! credited a fixed SRAM latency by the consumer
//! (`tensordimm_nmp::NmpCore`), which also records how many 64-byte
//! blocks each hit served via [`HotRowCache::credit_hit_blocks`].
//!
//! # Example
//!
//! ```
//! use tensordimm_cache::{HotRowCache, HotRowCacheConfig};
//!
//! let mut c = HotRowCache::new(HotRowCacheConfig::fully_associative(2))?;
//! assert!(!c.access(7)); // cold miss fills
//! assert!(c.access(7)); // hot row hits
//! assert!(!c.access(8));
//! assert!(!c.access(9)); // evicts row 7 (LRU)
//! assert!(!c.access(7));
//! assert_eq!(c.stats().evictions, 2);
//! # Ok::<(), tensordimm_cache::CacheError>(())
//! ```

use crate::CacheError;

/// Geometry and latency of a hot-row cache. `capacity_rows == 0` disables
/// the cache entirely: the gather path must behave bit-identically to an
/// uncached replay (the regression suite enforces this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HotRowCacheConfig {
    /// Rows the cache can hold (0 = disabled).
    pub capacity_rows: u64,
    /// Associativity: 0 = fully associative (one set of `capacity_rows`
    /// ways — the LRU stack property holds, so hits are monotone in
    /// capacity); otherwise `capacity_rows / ways` power-of-two sets.
    pub ways: u64,
    /// DRAM-clock cycles to stream one cached row slice out of SRAM (the
    /// hit latency credited in place of the skipped DRAM reads).
    pub hit_latency_cycles: u64,
}

impl HotRowCacheConfig {
    /// The disabled configuration: every gather replays against DRAM.
    pub fn disabled() -> Self {
        HotRowCacheConfig {
            capacity_rows: 0,
            ways: 0,
            hit_latency_cycles: Self::PAPER_HIT_LATENCY_CYCLES,
        }
    }

    /// SRAM hit latency used by the presets: a row slice streams out of
    /// the buffer-device SRAM in a handful of DRAM-bus cycles, an order
    /// of magnitude under an activate + CAS.
    pub const PAPER_HIT_LATENCY_CYCLES: u64 = 4;

    /// A fully associative LRU cache of `capacity_rows` rows.
    pub fn fully_associative(capacity_rows: u64) -> Self {
        HotRowCacheConfig {
            capacity_rows,
            ways: 0,
            hit_latency_cycles: Self::PAPER_HIT_LATENCY_CYCLES,
        }
    }

    /// A set-associative LRU cache (`capacity_rows / ways` sets).
    pub fn set_associative(capacity_rows: u64, ways: u64) -> Self {
        HotRowCacheConfig {
            capacity_rows,
            ways,
            hit_latency_cycles: Self::PAPER_HIT_LATENCY_CYCLES,
        }
    }

    /// Whether the cache participates in the gather path at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity_rows > 0
    }

    /// Validate the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidGeometry`] when `capacity_rows` is not
    /// a multiple of `ways`, or the set count is not a power of two
    /// (fully associative and disabled configurations are always valid).
    pub fn validate(&self) -> Result<(), CacheError> {
        if !self.is_enabled() || self.ways == 0 {
            return Ok(());
        }
        if !self.capacity_rows.is_multiple_of(self.ways) {
            return Err(CacheError::InvalidGeometry {
                parameter: "capacity_rows",
                value: self.capacity_rows as usize,
            });
        }
        let sets = self.capacity_rows / self.ways;
        if !sets.is_power_of_two() {
            return Err(CacheError::InvalidGeometry {
                parameter: "sets",
                value: sets as usize,
            });
        }
        Ok(())
    }

    /// A stable fingerprint of every knob, for memo keys (the cycle
    /// pricer's latency table must never alias measurements taken under
    /// different cache configurations). The disabled configuration always
    /// fingerprints to 0 regardless of its latent latency/way values —
    /// those knobs are unobservable when the cache is off.
    pub fn fingerprint(&self) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        self.capacity_rows
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.ways.wrapping_mul(0x2545_f491_4f6c_dd1d))
            .wrapping_add(self.hit_latency_cycles)
            | 1
    }
}

impl Default for HotRowCacheConfig {
    fn default() -> Self {
        HotRowCacheConfig::disabled()
    }
}

/// Hit/miss/eviction counters of one gather replay (all zero when the
/// cache is disabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotRowStats {
    /// Row lookups served from the cache.
    pub hits: u64,
    /// Row lookups that went to DRAM (and filled the cache).
    pub misses: u64,
    /// Resident rows displaced by fills.
    pub evictions: u64,
    /// 64-byte blocks served from SRAM instead of DRAM (credited by the
    /// consumer, which knows each row's block span on its DIMM).
    pub hit_blocks: u64,
}

impl HotRowStats {
    /// Hits over all row lookups, in `[0, 1]` (0 when nothing was looked
    /// up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Merge another replay's counters into this one.
    pub fn merge(&mut self, other: &HotRowStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.hit_blocks += other.hit_blocks;
    }
}

/// An LRU cache of embedding-row tags (see the module docs).
#[derive(Debug, Clone)]
pub struct HotRowCache {
    config: HotRowCacheConfig,
    sets: usize,
    ways: usize,
    /// `sets × ways` row tags in LRU order (front = most recent);
    /// `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    stats: HotRowStats,
}

impl HotRowCache {
    /// Build a cache from `config`. A disabled (zero-capacity) config
    /// yields a cache whose [`HotRowCache::access`] always misses without
    /// filling — but callers on the hot path should skip construction
    /// entirely when [`HotRowCacheConfig::is_enabled`] is false.
    ///
    /// # Errors
    ///
    /// Propagates [`HotRowCacheConfig::validate`].
    pub fn new(config: HotRowCacheConfig) -> Result<Self, CacheError> {
        config.validate()?;
        let (sets, ways) = if !config.is_enabled() {
            (0, 0)
        } else {
            match config.capacity_rows.checked_div(config.ways) {
                // ways == 0 selects full associativity: one set, all rows.
                None => (1, config.capacity_rows as usize),
                Some(sets) => (sets as usize, config.ways as usize),
            }
        };
        Ok(HotRowCache {
            config,
            sets,
            ways,
            tags: vec![u64::MAX; sets * ways],
            stats: HotRowStats::default(),
        })
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> HotRowCacheConfig {
        self.config
    }

    /// Look up `row`; returns `true` on hit. Misses allocate, evicting
    /// the set's LRU row. A disabled cache always misses and never fills.
    pub fn access(&mut self, row: u64) -> bool {
        if self.sets == 0 {
            self.stats.misses += 1;
            return false;
        }
        let set = (row as usize) & (self.sets - 1);
        let base = set * self.ways;
        let ways = &mut self.tags[base..base + self.ways];
        if let Some(pos) = ways.iter().position(|&t| t == row) {
            ways[..=pos].rotate_right(1);
            self.stats.hits += 1;
            true
        } else {
            if ways[self.ways - 1] != u64::MAX {
                self.stats.evictions += 1;
            }
            ways.rotate_right(1);
            ways[0] = row;
            self.stats.misses += 1;
            false
        }
    }

    /// Record `blocks` 64-byte blocks served from SRAM by the last hit.
    pub fn credit_hit_blocks(&mut self, blocks: u64) {
        self.stats.hit_blocks += blocks;
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> HotRowStats {
        self.stats
    }

    /// Clear contents and counters.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.stats = HotRowStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_validation() {
        assert!(HotRowCacheConfig::disabled().validate().is_ok());
        assert!(HotRowCacheConfig::fully_associative(7).validate().is_ok());
        assert!(HotRowCacheConfig::set_associative(64, 4).validate().is_ok());
        // 65 rows over 4 ways: not a multiple.
        assert!(HotRowCacheConfig::set_associative(65, 4)
            .validate()
            .is_err());
        // 48 / 4 = 12 sets: not a power of two.
        assert!(HotRowCacheConfig::set_associative(48, 4)
            .validate()
            .is_err());
    }

    #[test]
    fn disabled_cache_always_misses_and_never_fills() {
        let mut c = HotRowCache::new(HotRowCacheConfig::disabled()).unwrap();
        for _ in 0..3 {
            assert!(!c.access(5));
        }
        assert_eq!(c.stats().misses, 3);
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn lru_eviction_counts() {
        let mut c = HotRowCache::new(HotRowCacheConfig::fully_associative(2)).unwrap();
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(c.access(1)); // 1 is now MRU
        assert!(!c.access(3)); // evicts 2
        assert!(c.access(1));
        assert!(!c.access(2)); // 2 was evicted; evicts 3
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn set_mapping_isolates_sets() {
        // 4 sets x 1 way: rows 0 and 4 collide, rows 0 and 1 do not.
        let mut c = HotRowCache::new(HotRowCacheConfig::set_associative(4, 1)).unwrap();
        c.access(0);
        c.access(1);
        assert!(c.access(0));
        c.access(4); // evicts 0
        assert!(!c.access(0));
        assert!(c.access(1), "other set must be untouched");
    }

    #[test]
    fn fully_associative_has_stack_property() {
        // LRU inclusion: any trace's hits are monotone in capacity.
        let trace: Vec<u64> = (0..600u64).map(|i| (i * i + 7 * i) % 37).collect();
        let mut prev_hits = 0;
        for cap in [1u64, 2, 4, 8, 16, 37] {
            let mut c = HotRowCache::new(HotRowCacheConfig::fully_associative(cap)).unwrap();
            for &r in &trace {
                c.access(r);
            }
            assert!(
                c.stats().hits >= prev_hits,
                "capacity {cap}: hits {} < smaller cache's {prev_hits}",
                c.stats().hits
            );
            prev_hits = c.stats().hits;
        }
        // The whole-universe cache misses each distinct row exactly once.
        let mut distinct = trace.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(prev_hits, (trace.len() - distinct.len()) as u64);
    }

    #[test]
    fn stats_helpers() {
        let mut s = HotRowStats {
            hits: 3,
            misses: 1,
            evictions: 0,
            hit_blocks: 12,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        s.merge(&HotRowStats {
            hits: 1,
            misses: 3,
            evictions: 2,
            hit_blocks: 4,
        });
        assert_eq!(s.hits + s.misses, 8);
        assert_eq!(s.evictions, 2);
        assert_eq!(s.hit_blocks, 16);
        assert_eq!(HotRowStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn fingerprints_distinguish_configs() {
        let a = HotRowCacheConfig::fully_associative(1024);
        let b = HotRowCacheConfig::fully_associative(2048);
        let c = HotRowCacheConfig::set_associative(1024, 4);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(
            a.fingerprint(),
            0,
            "enabled configs never collide with disabled"
        );
        // Disabled configs are indistinguishable no matter the latent knobs.
        let mut off = HotRowCacheConfig::disabled();
        off.hit_latency_cycles = 99;
        assert_eq!(off.fingerprint(), 0);
        assert_eq!(HotRowCacheConfig::default().fingerprint(), 0);
    }
}
