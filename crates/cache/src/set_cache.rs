//! A set-associative cache with LRU replacement.

use crate::CacheError;

const LINE_BYTES: u64 = 64;

/// A set-associative, write-allocate, 64-byte-line cache.
///
/// Stores tags only (data lives elsewhere in the simulation); each set
/// keeps its ways in LRU order.
///
/// # Example
///
/// ```
/// use tensordimm_cache::Cache;
///
/// let mut c = Cache::new(32 * 1024, 8)?; // 32 KiB, 8-way (an L1d)
/// assert!(!c.access(0));      // cold miss
/// assert!(c.access(0));       // hit
/// assert!(c.access(32));      // same line
/// # Ok::<(), tensordimm_cache::CacheError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    /// `sets × ways` tags in LRU order (front = most recent), `u64::MAX`
    /// marks an empty way.
    tags: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// A cache of `capacity_bytes` with `ways`-way associativity.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidGeometry`] when the capacity is not a
    /// positive multiple of `ways * 64` or the set count is not a power of
    /// two.
    pub fn new(capacity_bytes: usize, ways: usize) -> Result<Self, CacheError> {
        if ways == 0 {
            return Err(CacheError::InvalidGeometry {
                parameter: "ways",
                value: ways,
            });
        }
        let line_ways = ways * LINE_BYTES as usize;
        if capacity_bytes == 0 || !capacity_bytes.is_multiple_of(line_ways) {
            return Err(CacheError::InvalidGeometry {
                parameter: "capacity_bytes",
                value: capacity_bytes,
            });
        }
        let sets = capacity_bytes / line_ways;
        if !sets.is_power_of_two() {
            return Err(CacheError::InvalidGeometry {
                parameter: "sets",
                value: sets,
            });
        }
        Ok(Cache {
            sets,
            ways,
            tags: vec![u64::MAX; sets * ways],
            hits: 0,
            misses: 0,
        })
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * LINE_BYTES as usize
    }

    /// Hits recorded.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Access the line containing `addr`; returns `true` on hit. Misses
    /// allocate (evicting the set's LRU way).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / LINE_BYTES;
        let set = (line as usize) & (self.sets - 1);
        let tag = line;
        let base = set * self.ways;
        let ways = &mut self.tags[base..base + self.ways];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            ways[..=pos].rotate_right(1);
            self.hits += 1;
            true
        } else {
            ways.rotate_right(1);
            ways[0] = tag;
            self.misses += 1;
            false
        }
    }

    /// Clear contents and statistics.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.reset_stats();
    }

    /// Clear statistics but keep cache contents (post-warmup measurement).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_validation() {
        assert!(Cache::new(0, 8).is_err());
        assert!(Cache::new(1024, 0).is_err());
        assert!(Cache::new(1000, 8).is_err());
        let c = Cache::new(32 * 1024, 8).unwrap();
        assert_eq!(c.sets(), 64);
        assert_eq!(c.capacity_bytes(), 32 * 1024);
    }

    #[test]
    fn lru_eviction_order() {
        // 2 sets x 2 ways: lines 0, 2, 4 map to set 0.
        let mut c = Cache::new(4 * 64, 2).unwrap();
        assert!(!c.access(0));
        assert!(!c.access(2 * 64));
        assert!(c.access(0)); // 0 now MRU
        assert!(!c.access(4 * 64)); // evicts 2 (LRU)
        assert!(c.access(0));
        assert!(!c.access(2 * 64)); // 2 was evicted
    }

    #[test]
    fn whole_line_hits() {
        let mut c = Cache::new(64 * 64, 4).unwrap();
        c.access(128);
        for off in [0u64, 1, 17, 63] {
            assert!(c.access(128 + off));
        }
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 4);
    }

    #[test]
    fn reset_clears() {
        let mut c = Cache::new(64 * 64, 4).unwrap();
        c.access(0);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.access(0));
    }

    #[test]
    fn working_set_behavior() {
        // A working set within capacity hits after warmup; beyond capacity
        // it thrashes.
        let mut c = Cache::new(1024 * 64, 8).unwrap();
        for round in 0..2 {
            for i in 0..512u64 {
                let hit = c.access(i * 64);
                if round == 1 {
                    assert!(hit, "line {i} should be resident");
                }
            }
        }
        let mut big = Cache::new(1024 * 64, 8).unwrap();
        let mut second_round_hits = 0;
        for round in 0..2 {
            for i in 0..4096u64 {
                if big.access(i * 64) && round == 1 {
                    second_round_hits += 1;
                }
            }
        }
        assert_eq!(second_round_hits, 0, "4x working set must thrash LRU");
    }
}
