//! Effective CPU gather-bandwidth model.
//!
//! Converts cache-hierarchy behavior on an embedding-gather index stream
//! into the *effective bandwidth* a CPU realizes when reading embeddings —
//! the quantity that makes the baseline design points slow. Calibrated to
//! the observation (Gupta et al., cited by the paper) that production
//! embedding kernels realize well under 10 % of CPU DRAM bandwidth:
//! sparse lookups miss the entire hierarchy, and the achievable
//! memory-level parallelism (threads × outstanding misses) cannot cover
//! the DRAM latency.

use tensordimm_embedding::{Distribution, IndexStream};

use crate::hierarchy::{Hierarchy, HierarchyConfig};
use crate::CacheError;

/// One gather workload to evaluate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatherWorkload {
    /// Total size of the embedding table in bytes.
    pub table_bytes: u64,
    /// Bytes per embedding vector.
    pub embedding_bytes: u64,
    /// Number of lookups to simulate.
    pub lookups: usize,
    /// Zipf skew (0 = uniform).
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Result of evaluating a [`GatherWorkload`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatherReport {
    /// Effective useful bandwidth of the gather, GB/s.
    pub effective_gbps: f64,
    /// Fraction of line accesses served by DRAM.
    pub memory_access_rate: f64,
    /// Average line latency in nanoseconds.
    pub avg_line_latency_ns: f64,
    /// L1 / L2 / LLC hit rates.
    pub hit_rates: [f64; 3],
}

/// CPU gather-bandwidth model: cache hierarchy + MLP-limited miss overlap.
///
/// See the crate-level example.
#[derive(Debug, Clone, PartialEq)]
pub struct GatherModel {
    /// Hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// L1 hit latency, ns.
    pub l1_latency_ns: f64,
    /// L2 hit latency, ns.
    pub l2_latency_ns: f64,
    /// LLC hit latency, ns.
    pub llc_latency_ns: f64,
    /// DRAM access latency, ns.
    pub mem_latency_ns: f64,
    /// Threads concurrently executing the gather kernel (inference servers
    /// co-locate models; intra-op parallelism is limited).
    pub gather_threads: usize,
    /// Useful outstanding misses per thread (MSHRs discounted for
    /// dependent address generation and TLB misses).
    pub effective_mshrs: usize,
    /// Peak DRAM bandwidth of the socket, GB/s.
    pub dram_peak_gbps: f64,
    /// Latency of lines covered by the hardware prefetcher (sequential
    /// lines within one embedding vector after the first).
    pub prefetched_latency_ns: f64,
}

impl GatherModel {
    /// A Skylake-SP-like socket: 100 ns loaded DRAM latency, four gather
    /// threads with three useful outstanding misses each (dependent
    /// address generation, TLB misses and framework overhead discount the
    /// architectural ten MSHRs), 8-channel DDR4-3200. Calibrated so cold
    /// sparse gathers land under 10 % of DRAM peak, matching the
    /// production measurements of Gupta et al. that the paper cites.
    pub fn xeon_like() -> Self {
        GatherModel {
            hierarchy: HierarchyConfig::xeon_like(),
            l1_latency_ns: 1.0,
            l2_latency_ns: 4.0,
            llc_latency_ns: 20.0,
            mem_latency_ns: 100.0,
            gather_threads: 4,
            effective_mshrs: 3,
            dram_peak_gbps: 204.8,
            prefetched_latency_ns: 40.0,
        }
    }

    /// Evaluate a workload.
    ///
    /// # Panics
    ///
    /// Panics if the built-in Xeon-like hierarchy geometry is invalid
    /// (impossible for the provided presets).
    pub fn evaluate(&self, workload: &GatherWorkload) -> GatherReport {
        self.try_evaluate(workload)
            .expect("preset hierarchy geometry is valid")
    }

    /// Evaluate a workload, propagating configuration errors.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidGeometry`] for a bad hierarchy.
    pub fn try_evaluate(&self, workload: &GatherWorkload) -> Result<GatherReport, CacheError> {
        let mut hierarchy = Hierarchy::new(self.hierarchy)?;
        let rows = (workload.table_bytes / workload.embedding_bytes.max(1)).max(1);
        let distribution = if workload.zipf_s > 0.0 {
            Distribution::Zipfian { s: workload.zipf_s }
        } else {
            Distribution::Uniform
        };
        let mut stream = IndexStream::new(distribution, rows, workload.seed);
        let lines_per_vec = workload.embedding_bytes.div_ceil(64).max(1);

        // Warm the hierarchy with one pass of *distinct* draws so resident
        // tables measure steady-state hit rates while cold tables still
        // miss on the fresh indices measured below.
        for _ in 0..workload.lookups {
            let row = stream.next_index();
            let base = row * workload.embedding_bytes;
            for l in 0..lines_per_vec {
                hierarchy.access(base + l * 64);
            }
        }
        hierarchy.reset_stats();

        let mut latency_sum = 0.0f64;
        let mut lines = 0u64;
        for _ in 0..workload.lookups {
            let row = stream.next_index();
            let base = row * workload.embedding_bytes;
            for l in 0..lines_per_vec {
                let level = hierarchy.access(base + l * 64);
                let mut lat = match level {
                    1 => self.l1_latency_ns,
                    2 => self.l2_latency_ns,
                    3 => self.llc_latency_ns,
                    _ => self.mem_latency_ns,
                };
                // Sequential lines within a vector ride the prefetcher
                // once it has seen two misses to train on.
                if l >= 2 && level == 0 {
                    lat = self.prefetched_latency_ns.max(self.l2_latency_ns);
                }
                latency_sum += lat;
                lines += 1;
            }
        }

        let avg_line_latency_ns = latency_sum / lines.max(1) as f64;
        // Memory-level parallelism: each thread overlaps `effective_mshrs`
        // line accesses; line rate = threads * mshrs / latency.
        let mlp = (self.gather_threads * self.effective_mshrs) as f64;
        let line_rate_per_ns = mlp / avg_line_latency_ns;
        let raw_gbps = line_rate_per_ns * 64.0; // bytes per ns == GB/s
                                                // DRAM can only supply lines so fast; hits above DRAM don't count
                                                // against the cap.
        let mem_rate = hierarchy.memory_access_rate();
        let dram_cap_gbps = if mem_rate > 0.0 {
            self.dram_peak_gbps / mem_rate
        } else {
            f64::INFINITY
        };
        let effective_gbps = raw_gbps.min(dram_cap_gbps);

        Ok(GatherReport {
            effective_gbps,
            memory_access_rate: mem_rate,
            avg_line_latency_ns,
            hit_rates: [
                hierarchy.l1().hit_rate(),
                hierarchy.l2().hit_rate(),
                hierarchy.llc().hit_rate(),
            ],
        })
    }

    /// Effective gather bandwidth in GB/s for a workload.
    pub fn effective_bandwidth_gbps(&self, workload: &GatherWorkload) -> f64 {
        self.evaluate(workload).effective_gbps
    }
}

impl Default for GatherModel {
    fn default() -> Self {
        GatherModel::xeon_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(table_bytes: u64, embedding_bytes: u64, zipf_s: f64) -> GatherWorkload {
        GatherWorkload {
            table_bytes,
            embedding_bytes,
            lookups: 5000,
            zipf_s,
            seed: 3,
        }
    }

    #[test]
    fn cold_tables_are_memory_bound() {
        let m = GatherModel::xeon_like();
        let r = m.evaluate(&wl(64 << 30, 256, 0.0));
        assert!(r.memory_access_rate > 0.9, "{}", r.memory_access_rate);
        // Small embeddings, cold table: a small fraction of DRAM peak —
        // the Gupta-et-al. effect.
        assert!(
            r.effective_gbps < 0.15 * m.dram_peak_gbps,
            "{} GB/s",
            r.effective_gbps
        );
    }

    #[test]
    fn resident_tables_are_fast() {
        let m = GatherModel::xeon_like();
        let hot = m.evaluate(&wl(1 << 20, 256, 0.0));
        let cold = m.evaluate(&wl(64 << 30, 256, 0.0));
        assert!(hot.effective_gbps > 4.0 * cold.effective_gbps);
    }

    #[test]
    fn skew_improves_bandwidth() {
        let m = GatherModel::xeon_like();
        let uniform = m.evaluate(&wl(16 << 30, 512, 0.0));
        let skewed = m.evaluate(&wl(16 << 30, 512, 1.1));
        assert!(
            skewed.effective_gbps > uniform.effective_gbps,
            "skewed {} uniform {}",
            skewed.effective_gbps,
            uniform.effective_gbps
        );
    }

    #[test]
    fn larger_embeddings_stream_better() {
        let m = GatherModel::xeon_like();
        let small = m.evaluate(&wl(64 << 30, 128, 0.0));
        let large = m.evaluate(&wl(64 << 30, 2048, 0.0));
        assert!(large.effective_gbps > small.effective_gbps);
    }

    /// Regression for the `lines_per_vec` undercount: a 160-byte vector
    /// touches three 64-byte lines, not two. With `embedding_bytes / 64`
    /// the 160B and 128B workloads modeled identical line counts (ratio
    /// ~1.0); `div_ceil` restores the tail line, whose prefetched latency
    /// (40 ns vs 100 ns cold) lifts the 160B bandwidth well clear.
    #[test]
    fn non_multiple_widths_count_the_tail_line() {
        let m = GatherModel::xeon_like();
        let b128 = m.evaluate(&wl(64 << 30, 128, 0.0)).effective_gbps;
        let b160 = m.evaluate(&wl(64 << 30, 160, 0.0)).effective_gbps;
        assert!(
            b160 > 1.1 * b128,
            "160B ({b160:.2} GB/s) must stream past 128B ({b128:.2} GB/s) \
             via its prefetched third line"
        );
    }

    #[test]
    fn report_fields_consistent() {
        let m = GatherModel::xeon_like();
        let r = m.evaluate(&wl(1 << 30, 512, 0.9));
        assert!(r.avg_line_latency_ns > 0.0);
        assert!(r.hit_rates.iter().all(|h| (0.0..=1.0).contains(h)));
        assert!(r.effective_gbps > 0.0);
    }
}
