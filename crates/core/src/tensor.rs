//! Handles to pool-resident tables and tensors.

/// A handle to an embedding lookup table resident in the node's pool.
///
/// Handles are plain descriptors; the data lives in the node. Embedding
/// vectors are padded up to a whole number of per-DIMM stripes
/// (`vec_blocks` is a multiple of the node's DIMM count) so every DIMM
/// owns an equal slice of every vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableHandle {
    pub(crate) id: u64,
    pub(crate) base_block: u64,
    pub(crate) rows: u64,
    pub(crate) dim: usize,
    pub(crate) vec_blocks: u64,
}

impl TableHandle {
    /// First pool block of the table.
    pub fn base_block(&self) -> u64 {
        self.base_block
    }

    /// Number of embedding vectors.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Embedding dimension (unpadded, in f32 elements).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Stored blocks per vector (padded to the DIMM stripe).
    pub fn vec_blocks(&self) -> u64 {
        self.vec_blocks
    }

    /// Bytes occupied in the pool (including stripe padding).
    pub fn stored_bytes(&self) -> u64 {
        self.rows * self.vec_blocks * 64
    }
}

/// A handle to a tensor of `count` embedding vectors in the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorHandle {
    pub(crate) base_block: u64,
    pub(crate) count: u64,
    pub(crate) dim: usize,
    pub(crate) vec_blocks: u64,
}

impl TensorHandle {
    /// First pool block.
    pub fn base_block(&self) -> u64 {
        self.base_block
    }

    /// Number of embedding vectors.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Embedding dimension (unpadded).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Stored blocks per vector (padded to the DIMM stripe).
    pub fn vec_blocks(&self) -> u64 {
        self.vec_blocks
    }

    /// Total stored blocks.
    pub fn blocks(&self) -> u64 {
        self.count * self.vec_blocks
    }

    /// Bytes of *useful* payload (`count × dim × 4`, excluding padding).
    pub fn payload_bytes(&self) -> u64 {
        self.count * self.dim as u64 * 4
    }

    /// Bytes occupied in the pool (including stripe padding).
    pub fn stored_bytes(&self) -> u64 {
        self.blocks() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_math() {
        let t = TensorHandle {
            base_block: 128,
            count: 4,
            dim: 100,
            vec_blocks: 32,
        };
        assert_eq!(t.base_block(), 128);
        assert_eq!(t.blocks(), 128);
        assert_eq!(t.payload_bytes(), 1600);
        assert_eq!(t.stored_bytes(), 8192);
    }

    #[test]
    fn table_math() {
        let t = TableHandle {
            id: 1,
            base_block: 0,
            rows: 10,
            dim: 512,
            vec_blocks: 32,
        };
        assert_eq!(t.stored_bytes(), 10 * 32 * 64);
        assert_eq!(t.rows(), 10);
        assert_eq!(t.dim(), 512);
    }
}
