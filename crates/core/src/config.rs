//! TensorNode configuration.

use tensordimm_nmp::NmpConfig;

/// How much timing fidelity each operation pays for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimingMode {
    /// Functional execution only; [`crate::OpReport::timing`] is `None`.
    Functional,
    /// Replay the op's access plan on one representative DIMM's
    /// cycle-level DRAM simulator (the paper's Ramulator methodology;
    /// DIMM slices are symmetric, so one DIMM's time is the node's time).
    #[default]
    Replay,
    /// Full NMP pipeline simulation (SRAM queues + 150 MHz vector ALU) on
    /// the representative DIMM.
    Pipeline,
}

/// Configuration of a [`crate::TensorNode`].
///
/// # Example
///
/// ```
/// use tensordimm_core::TensorNodeConfig;
///
/// let cfg = TensorNodeConfig::default();
/// assert_eq!(cfg.dimms, 32);                       // Table 1
/// assert!((cfg.peak_gbps() - 819.2).abs() < 1e-9); // 32 x 25.6 GB/s
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TensorNodeConfig {
    /// Number of TensorDIMMs in the pool (32 in Table 1).
    pub dimms: u64,
    /// Per-DIMM NMP core + local DRAM configuration.
    pub nmp: NmpConfig,
    /// Functional pool capacity in 64-byte blocks (node-wide).
    pub pool_blocks: u64,
    /// Timing fidelity per operation.
    pub timing: TimingMode,
}

impl TensorNodeConfig {
    /// The paper's Table 1 configuration: 32 TensorDIMMs of DDR4-3200.
    ///
    /// The functional pool defaults to 2^21 blocks (128 MiB) — enough for
    /// examples and tests; raise it for larger experiments.
    pub fn paper() -> Self {
        TensorNodeConfig {
            dimms: 32,
            nmp: NmpConfig::paper(),
            pool_blocks: 1 << 21,
            timing: TimingMode::Replay,
        }
    }

    /// A small node for fast tests (4 DIMMs, 2^16-block pool).
    pub fn small() -> Self {
        TensorNodeConfig {
            dimms: 4,
            nmp: NmpConfig::paper(),
            pool_blocks: 1 << 16,
            timing: TimingMode::Replay,
        }
    }

    /// Set the DIMM count (Fig. 12's 32/64/128 sweep), keeping the rest.
    pub fn with_dimms(mut self, dimms: u64) -> Self {
        self.dimms = dimms;
        self
    }

    /// Set the timing mode, keeping the rest.
    pub fn with_timing(mut self, timing: TimingMode) -> Self {
        self.timing = timing;
        self
    }

    /// Set the pool capacity in blocks, keeping the rest.
    pub fn with_pool_blocks(mut self, pool_blocks: u64) -> Self {
        self.pool_blocks = pool_blocks;
        self
    }

    /// Aggregate peak memory bandwidth across all NMP cores, GB/s.
    pub fn peak_gbps(&self) -> f64 {
        self.dimms as f64 * self.nmp.dram.peak_gbps()
    }

    /// Pool capacity in bytes.
    pub fn pool_bytes(&self) -> u64 {
        self.pool_blocks * 64
    }
}

impl Default for TensorNodeConfig {
    fn default() -> Self {
        TensorNodeConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matches_table1() {
        let c = TensorNodeConfig::paper();
        assert_eq!(c.dimms, 32);
        assert!((c.nmp.dram.peak_gbps() - 25.6).abs() < 1e-9);
        assert!((c.peak_gbps() - 819.2).abs() < 1e-9);
    }

    #[test]
    fn builders() {
        let c = TensorNodeConfig::paper()
            .with_dimms(128)
            .with_timing(TimingMode::Functional)
            .with_pool_blocks(1 << 10);
        assert_eq!(c.dimms, 128);
        assert_eq!(c.timing, TimingMode::Functional);
        assert_eq!(c.pool_bytes(), 64 << 10);
        assert!((c.peak_gbps() - 3276.8).abs() < 1e-9, "Fig. 12's 3.2 TB/s");
    }
}
