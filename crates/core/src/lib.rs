//! TensorDIMM and TensorNode: the paper's primary contribution.
//!
//! A [`TensorNode`] is a disaggregated pool of `N` TensorDIMMs (32 in
//! Table 1) attached to the GPU-side interconnect. Every tensor stored in
//! the pool is striped across all DIMMs in 64-byte blocks (the
//! rank-interleaved mapping of Fig. 7), so the `N` NMP cores cooperate on
//! every GATHER / REDUCE / AVERAGE with aggregate bandwidth
//! `N × 25.6 GB/s`.
//!
//! The node couples three layers of the reproduction:
//!
//! * **functional** — every operation goes through the TensorISA wire
//!   format ([`tensordimm_isa::encode()`] → decode → execute) against a real
//!   block memory, and results are bit-exact against the golden ops,
//! * **timing** — each operation can be replayed on the cycle-level DRAM
//!   simulator of one representative DIMM (all DIMMs execute symmetric
//!   slices), yielding per-op latency and bandwidth ([`OpReport`]),
//! * **system** — tensors can be shipped to a GPU over the modeled NVLINK
//!   fabric ([`TensorNode::copy_to_gpu`]).
//!
//! # Example
//!
//! The doctest runs on the 4-DIMM [`TensorNodeConfig::small`] node so the
//! suite stays fast; `TensorNodeConfig::default()` gives the paper's
//! 32-DIMM Table 1 configuration.
//!
//! ```
//! use tensordimm_core::{ReduceOp, TensorNode, TensorNodeConfig};
//!
//! let mut node = TensorNode::new(TensorNodeConfig::small())?;
//! let table = node.create_table("users", 1024, 128)?;
//! node.fill_table(&table, |row, col| row as f32 + col as f32)?;
//!
//! let gathered = node.gather(&table, &[3, 5, 7, 9])?;
//! let pairwise = node.reduce(&gathered, &gathered, ReduceOp::Add)?;
//! let host = node.read_tensor(&pairwise)?;
//! assert_eq!(host.len(), 4 * 128);
//! assert_eq!(host[0], 2.0 * (3.0 + 0.0)); // row 3, col 0, doubled
//! # Ok::<(), tensordimm_core::CoreError>(())
//! ```

pub mod alloc;
pub mod config;
pub mod node;
pub mod report;
pub mod tensor;

pub use alloc::BumpAllocator;
pub use config::{TensorNodeConfig, TimingMode};
pub use node::TensorNode;
pub use report::OpReport;
pub use tensor::{TableHandle, TensorHandle};

// The ISA types that appear in this crate's public API.
pub use tensordimm_isa::{Instruction, ReduceOp};

use std::error::Error;
use std::fmt;

/// Errors from the TensorNode runtime.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The pooled memory is exhausted.
    OutOfMemory {
        /// Blocks requested.
        requested: u64,
        /// Blocks remaining.
        available: u64,
    },
    /// Two tensors disagree in shape for a binary op.
    ShapeMismatch {
        /// Left operand blocks.
        left: u64,
        /// Right operand blocks.
        right: u64,
    },
    /// The tensor's embedding count is not a whole number of groups.
    BadGrouping {
        /// Embeddings in the tensor.
        count: u64,
        /// Requested group size.
        group: u64,
    },
    /// A gather index exceeds the table rows.
    RowOutOfRange {
        /// Offending index.
        index: u64,
        /// Table rows.
        rows: u64,
    },
    /// A gather index does not fit the 32-bit TensorISA index format.
    IndexTooWide {
        /// Offending index.
        index: u64,
    },
    /// Data length does not match the table shape.
    DataShape {
        /// Provided length.
        got: usize,
        /// Expected length.
        expected: usize,
    },
    /// A zero-sized table, tensor or batch was requested.
    Empty {
        /// What was empty.
        what: &'static str,
    },
    /// Underlying ISA failure.
    Isa(tensordimm_isa::IsaError),
    /// Underlying NMP / DRAM failure.
    Nmp(tensordimm_nmp::NmpError),
    /// Underlying interconnect failure.
    Interconnect(tensordimm_interconnect::InterconnectError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "pool exhausted: requested {requested} blocks, {available} available"
            ),
            CoreError::ShapeMismatch { left, right } => {
                write!(f, "tensor shapes differ: {left} vs {right} blocks")
            }
            CoreError::BadGrouping { count, group } => {
                write!(f, "{count} embeddings do not divide into groups of {group}")
            }
            CoreError::RowOutOfRange { index, rows } => {
                write!(f, "index {index} out of range for table of {rows} rows")
            }
            CoreError::IndexTooWide { index } => {
                write!(
                    f,
                    "index {index} does not fit the 32-bit TensorISA index format"
                )
            }
            CoreError::DataShape { got, expected } => {
                write!(f, "data length {got} does not match table size {expected}")
            }
            CoreError::Empty { what } => write!(f, "{what} must be nonzero"),
            CoreError::Isa(e) => write!(f, "isa: {e}"),
            CoreError::Nmp(e) => write!(f, "nmp: {e}"),
            CoreError::Interconnect(e) => write!(f, "interconnect: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Isa(e) => Some(e),
            CoreError::Nmp(e) => Some(e),
            CoreError::Interconnect(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tensordimm_isa::IsaError> for CoreError {
    fn from(e: tensordimm_isa::IsaError) -> Self {
        CoreError::Isa(e)
    }
}

impl From<tensordimm_nmp::NmpError> for CoreError {
    fn from(e: tensordimm_nmp::NmpError) -> Self {
        CoreError::Nmp(e)
    }
}

impl From<tensordimm_interconnect::InterconnectError> for CoreError {
    fn from(e: tensordimm_interconnect::InterconnectError) -> Self {
        CoreError::Interconnect(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_wrap() {
        let e = CoreError::OutOfMemory {
            requested: 10,
            available: 5,
        };
        assert!(!e.to_string().is_empty());
        let e: CoreError = tensordimm_isa::IsaError::UnknownOpcode(1).into();
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
