//! Per-operation reports.

use tensordimm_isa::{EncodedInstruction, ExecSummary, Instruction};
use tensordimm_nmp::NmpRunStats;

/// What one TensorISA operation did and how long it took.
#[derive(Debug, Clone, PartialEq)]
pub struct OpReport {
    /// The decoded instruction that executed.
    pub instruction: Instruction,
    /// The wire form that was broadcast to the DIMMs.
    pub encoded: EncodedInstruction,
    /// Functional work performed across all DIMMs.
    pub exec: ExecSummary,
    /// Timing of one representative DIMM's slice (slices are symmetric),
    /// when the node runs with a timing mode other than `Functional`.
    pub timing: Option<NmpRunStats>,
    /// Number of DIMMs that executed the instruction.
    pub dimms: u64,
}

impl OpReport {
    /// Elapsed time in nanoseconds (the slowest — representative — DIMM).
    pub fn elapsed_ns(&self) -> Option<f64> {
        self.timing.as_ref().map(NmpRunStats::elapsed_ns)
    }

    /// Aggregate node bandwidth achieved by the operation, GB/s
    /// (per-DIMM achieved × DIMM count).
    pub fn node_gbps(&self) -> Option<f64> {
        self.timing
            .as_ref()
            .map(|t| t.achieved_gbps() * self.dimms as f64)
    }

    /// Bytes moved across all DIMMs (reads + writes).
    pub fn bytes_moved(&self) -> u64 {
        self.exec.bytes_moved()
    }

    /// Node-wide DRAM energy of the operation (per-DIMM simulated energy
    /// scaled by the DIMM count), when timing was simulated.
    ///
    /// `ranks_per_dimm` sets the background-power contribution; the
    /// default local-channel geometry has four internal ranks.
    pub fn energy_with(
        &self,
        model: &tensordimm_dram::EnergyModel,
        ranks_per_dimm: usize,
    ) -> Option<tensordimm_dram::EnergyReport> {
        let timing = self.timing.as_ref()?;
        let per_dimm = model.report(&timing.memory, ranks_per_dimm);
        Some(tensordimm_dram::EnergyReport {
            dynamic_nj: per_dimm.dynamic_nj * self.dimms as f64,
            background_nj: per_dimm.background_nj * self.dimms as f64,
            bytes: per_dimm.bytes * self.dimms,
            seconds: per_dimm.seconds,
        })
    }

    /// [`OpReport::energy_with`] under the default DDR4-3200 model and the
    /// default four internal ranks per LR-DIMM.
    pub fn energy(&self) -> Option<tensordimm_dram::EnergyReport> {
        self.energy_with(&tensordimm_dram::EnergyModel::default(), 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensordimm_isa::{encode, ReduceOp};

    #[test]
    fn report_without_timing() {
        let instruction = Instruction::Reduce {
            input1: 0,
            input2: 32,
            output_base: 64,
            count: 32,
            op: ReduceOp::Add,
        };
        let r = OpReport {
            encoded: encode(&instruction).unwrap(),
            instruction,
            exec: ExecSummary {
                blocks_read: 64,
                blocks_written: 32,
                alu_ops: 32,
            },
            timing: None,
            dimms: 32,
        };
        assert_eq!(r.bytes_moved(), 96 * 64);
        assert!(r.elapsed_ns().is_none());
        assert!(r.node_gbps().is_none());
    }
}
