//! Pool allocation.

use crate::CoreError;

/// A bump allocator over the node's pooled block address space.
///
/// Allocations are aligned to whole *rank windows* — `node_dim` blocks —
/// so every tensor starts on DIMM 0 and stripes evenly, and (per the
/// multi-stream findings in the DRAM substrate) concurrent streams stay
/// rank-phase aligned.
///
/// # Example
///
/// ```
/// use tensordimm_core::BumpAllocator;
///
/// let mut a = BumpAllocator::new(1024, 32);
/// let x = a.alloc(40)?; // rounded up to 64 blocks
/// let y = a.alloc(1)?;
/// assert_eq!(x % 32, 0);
/// assert_eq!(y % 32, 0);
/// assert!(y >= x + 64);
/// # Ok::<(), tensordimm_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BumpAllocator {
    capacity: u64,
    align: u64,
    next: u64,
}

impl BumpAllocator {
    /// An allocator over `capacity` blocks with `align`-block alignment.
    pub fn new(capacity: u64, align: u64) -> Self {
        BumpAllocator {
            capacity,
            align: align.max(1),
            next: 0,
        }
    }

    /// Allocate `blocks`, rounded up to the alignment.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfMemory`] when the pool is exhausted.
    pub fn alloc(&mut self, blocks: u64) -> Result<u64, CoreError> {
        let rounded = blocks.div_ceil(self.align) * self.align;
        if self.next + rounded > self.capacity {
            return Err(CoreError::OutOfMemory {
                requested: rounded,
                available: self.capacity - self.next,
            });
        }
        let base = self.next;
        self.next += rounded;
        Ok(base)
    }

    /// Blocks handed out so far.
    pub fn used(&self) -> u64 {
        self.next
    }

    /// Blocks remaining.
    pub fn available(&self) -> u64 {
        self.capacity - self.next
    }

    /// Total capacity in blocks.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Release everything (handles become dangling; the node guards this).
    pub fn reset(&mut self) {
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_accounting() {
        let mut a = BumpAllocator::new(100, 8);
        assert_eq!(a.alloc(1).unwrap(), 0);
        assert_eq!(a.alloc(9).unwrap(), 8);
        assert_eq!(a.used(), 24);
        assert_eq!(a.available(), 76);
        assert_eq!(a.capacity(), 100);
    }

    #[test]
    fn exhaustion() {
        let mut a = BumpAllocator::new(16, 8);
        a.alloc(8).unwrap();
        assert!(matches!(a.alloc(9), Err(CoreError::OutOfMemory { .. })));
        // Exact fit still works.
        assert_eq!(a.alloc(8).unwrap(), 8);
        assert!(a.alloc(1).is_err());
    }

    #[test]
    fn reset() {
        let mut a = BumpAllocator::new(16, 4);
        a.alloc(4).unwrap();
        a.reset();
        assert_eq!(a.used(), 0);
        assert_eq!(a.alloc(4).unwrap(), 0);
    }

    #[test]
    fn zero_align_clamped() {
        let mut a = BumpAllocator::new(4, 0);
        assert_eq!(a.alloc(3).unwrap(), 0);
        assert_eq!(a.used(), 3);
    }
}
