//! The TensorNode: a pooled-memory device of cooperating TensorDIMMs.

use tensordimm_interconnect::{Link, TransferReport};
use tensordimm_isa::{
    decode, encode, execute_on_node, DimmContext, Instruction, ReduceOp, VecMemory,
};
use tensordimm_nmp::{DimmPowerModel, NmpCore};

use crate::alloc::BumpAllocator;
use crate::config::{TensorNodeConfig, TimingMode};
use crate::report::OpReport;
use crate::tensor::{TableHandle, TensorHandle};
use crate::CoreError;

/// A disaggregated memory node populated with TensorDIMMs (Fig. 6c).
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug, Clone)]
pub struct TensorNode {
    config: TensorNodeConfig,
    pool: VecMemory,
    allocator: BumpAllocator,
    representative_dimm: NmpCore,
    table_names: Vec<(u64, String)>,
    reports: Vec<OpReport>,
    next_table_id: u64,
}

impl TensorNode {
    /// Build a node, validating the per-DIMM configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Nmp`] for invalid DIMM configurations and
    /// [`CoreError::Empty`] for a zero-DIMM node.
    pub fn new(config: TensorNodeConfig) -> Result<Self, CoreError> {
        if config.dimms == 0 {
            return Err(CoreError::Empty { what: "dimms" });
        }
        let representative_dimm = NmpCore::new(config.nmp.clone())?;
        Ok(TensorNode {
            pool: VecMemory::new(config.pool_blocks),
            allocator: BumpAllocator::new(config.pool_blocks, config.dimms),
            representative_dimm,
            table_names: Vec::new(),
            reports: Vec::new(),
            next_table_id: 0,
            config,
        })
    }

    /// The node's configuration.
    pub fn config(&self) -> &TensorNodeConfig {
        &self.config
    }

    /// Number of TensorDIMMs.
    pub fn dimms(&self) -> u64 {
        self.config.dimms
    }

    /// Aggregate peak memory bandwidth, GB/s.
    pub fn peak_gbps(&self) -> f64 {
        self.config.peak_gbps()
    }

    /// Node power estimate in watts (Section 6.5's 13 W per LR-DIMM).
    pub fn power_watts(&self) -> f64 {
        DimmPowerModel::paper().node_watts(self.config.dimms as usize)
    }

    /// Pool blocks allocated so far.
    pub fn used_blocks(&self) -> u64 {
        self.allocator.used()
    }

    /// Pool blocks remaining.
    pub fn available_blocks(&self) -> u64 {
        self.allocator.available()
    }

    /// Reports of every operation executed, in order.
    pub fn reports(&self) -> &[OpReport] {
        &self.reports
    }

    /// The most recent operation's report.
    pub fn last_report(&self) -> Option<&OpReport> {
        self.reports.last()
    }

    /// Names and ids of the tables created on this node.
    pub fn tables(&self) -> &[(u64, String)] {
        &self.table_names
    }

    /// Blocks per stored vector for an embedding dimension: the vector's
    /// 64-byte blocks padded up to a whole stripe over all DIMMs.
    pub fn vec_blocks_for(&self, dim: usize) -> u64 {
        let raw = (dim as u64 * 4).div_ceil(64);
        raw.div_ceil(self.config.dimms) * self.config.dimms
    }

    /// Allocate an embedding table in the pool.
    ///
    /// # Errors
    ///
    /// [`CoreError::Empty`] for zero rows/dim; [`CoreError::OutOfMemory`]
    /// when the pool cannot hold the table.
    pub fn create_table(
        &mut self,
        name: &str,
        rows: u64,
        dim: usize,
    ) -> Result<TableHandle, CoreError> {
        if rows == 0 {
            return Err(CoreError::Empty { what: "rows" });
        }
        if dim == 0 {
            return Err(CoreError::Empty { what: "dim" });
        }
        let vec_blocks = self.vec_blocks_for(dim);
        let base_block = self.allocator.alloc(rows * vec_blocks)?;
        let id = self.next_table_id;
        self.next_table_id += 1;
        self.table_names.push((id, name.to_owned()));
        Ok(TableHandle {
            id,
            base_block,
            rows,
            dim,
            vec_blocks,
        })
    }

    /// Fill a table with `f(row, col)`.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid handles; returns `Ok` for symmetry
    /// with the other mutators.
    pub fn fill_table(
        &mut self,
        table: &TableHandle,
        f: impl Fn(u64, usize) -> f32,
    ) -> Result<(), CoreError> {
        let mut row_buf = vec![0.0f32; table.dim];
        for r in 0..table.rows {
            for (c, v) in row_buf.iter_mut().enumerate() {
                *v = f(r, c);
            }
            self.pool
                .write_f32_slice(table.base_block + r * table.vec_blocks, &row_buf);
        }
        Ok(())
    }

    /// Load a table from a flat row-major slice (`rows × dim`).
    ///
    /// # Errors
    ///
    /// [`CoreError::DataShape`] when the length does not match.
    pub fn load_table(&mut self, table: &TableHandle, data: &[f32]) -> Result<(), CoreError> {
        let expected = table.rows as usize * table.dim;
        if data.len() != expected {
            return Err(CoreError::DataShape {
                got: data.len(),
                expected,
            });
        }
        for (r, row) in data.chunks(table.dim).enumerate() {
            self.pool
                .write_f32_slice(table.base_block + r as u64 * table.vec_blocks, row);
        }
        Ok(())
    }

    /// Upload a tensor of `count` vectors of `dim` f32 values.
    ///
    /// # Errors
    ///
    /// [`CoreError::DataShape`] / [`CoreError::Empty`] /
    /// [`CoreError::OutOfMemory`] under the obvious conditions.
    pub fn upload_tensor(
        &mut self,
        data: &[f32],
        count: u64,
        dim: usize,
    ) -> Result<TensorHandle, CoreError> {
        if count == 0 || dim == 0 {
            return Err(CoreError::Empty {
                what: "tensor shape",
            });
        }
        if data.len() as u64 != count * dim as u64 {
            return Err(CoreError::DataShape {
                got: data.len(),
                expected: (count * dim as u64) as usize,
            });
        }
        let vec_blocks = self.vec_blocks_for(dim);
        let base_block = self.allocator.alloc(count * vec_blocks)?;
        for (i, row) in data.chunks(dim).enumerate() {
            self.pool
                .write_f32_slice(base_block + i as u64 * vec_blocks, row);
        }
        Ok(TensorHandle {
            base_block,
            count,
            dim,
            vec_blocks,
        })
    }

    /// GATHER: look up `indices` in `table`, producing a tensor of
    /// `indices.len()` vectors. Broadcasts a TensorISA GATHER to all DIMMs.
    ///
    /// # Errors
    ///
    /// [`CoreError::Empty`] for no indices, [`CoreError::RowOutOfRange`]
    /// for a bad index, [`CoreError::IndexTooWide`] for an index beyond
    /// the 32-bit TensorISA format, [`CoreError::OutOfMemory`] when the
    /// pool is full.
    pub fn gather(
        &mut self,
        table: &TableHandle,
        indices: &[u64],
    ) -> Result<TensorHandle, CoreError> {
        if indices.is_empty() {
            return Err(CoreError::Empty { what: "indices" });
        }
        // Validate and narrow in one pass, before any allocation: the
        // TensorISA index format is 32-bit, and `i as u32` would silently
        // wrap indices >= 2^32 onto the wrong rows.
        let idx_u32: Vec<u32> = indices
            .iter()
            .map(|&i| {
                if i >= table.rows {
                    return Err(CoreError::RowOutOfRange {
                        index: i,
                        rows: table.rows,
                    });
                }
                u32::try_from(i).map_err(|_| CoreError::IndexTooWide { index: i })
            })
            .collect::<Result<_, _>>()?;
        // Stage the (replicated) index list into the pool.
        let idx_blocks = (indices.len() as u64).div_ceil(16);
        let idx_base = self.allocator.alloc(idx_blocks)?;
        self.pool.write_u32_slice(idx_base, &idx_u32);

        let output_base = self
            .allocator
            .alloc(indices.len() as u64 * table.vec_blocks)?;
        let instr = Instruction::Gather {
            table_base: table.base_block,
            idx_base,
            output_base,
            count: indices.len() as u64,
            vec_blocks: table.vec_blocks,
        };
        self.run_instruction(instr, Some(indices))?;
        Ok(TensorHandle {
            base_block: output_base,
            count: indices.len() as u64,
            dim: table.dim,
            vec_blocks: table.vec_blocks,
        })
    }

    /// REDUCE: element-wise combine two equal-shaped tensors.
    ///
    /// # Errors
    ///
    /// [`CoreError::ShapeMismatch`] when shapes differ.
    pub fn reduce(
        &mut self,
        a: &TensorHandle,
        b: &TensorHandle,
        op: ReduceOp,
    ) -> Result<TensorHandle, CoreError> {
        if a.blocks() != b.blocks() || a.dim != b.dim {
            return Err(CoreError::ShapeMismatch {
                left: a.blocks(),
                right: b.blocks(),
            });
        }
        let output_base = self.allocator.alloc(a.blocks())?;
        let instr = Instruction::Reduce {
            input1: a.base_block,
            input2: b.base_block,
            output_base,
            count: a.blocks(),
            op,
        };
        self.run_instruction(instr, None)?;
        Ok(TensorHandle {
            base_block: output_base,
            count: a.count,
            dim: a.dim,
            vec_blocks: a.vec_blocks,
        })
    }

    /// AVERAGE: pool groups of `group` consecutive vectors (multi-hot
    /// pooling, Fig. 9c).
    ///
    /// # Errors
    ///
    /// [`CoreError::BadGrouping`] when `count % group != 0`.
    pub fn average(&mut self, t: &TensorHandle, group: u64) -> Result<TensorHandle, CoreError> {
        if group == 0 || !t.count.is_multiple_of(group) {
            return Err(CoreError::BadGrouping {
                count: t.count,
                group,
            });
        }
        let out_count = t.count / group;
        let output_base = self.allocator.alloc(out_count * t.vec_blocks)?;
        let instr = Instruction::Average {
            input_base: t.base_block,
            output_base,
            count: out_count,
            group,
            vec_blocks: t.vec_blocks,
        };
        self.run_instruction(instr, None)?;
        Ok(TensorHandle {
            base_block: output_base,
            count: out_count,
            dim: t.dim,
            vec_blocks: t.vec_blocks,
        })
    }

    /// Concatenate tensors of equal embedding dimension into one tensor
    /// (the "tensor concatenation" feature-interaction path of Fig. 2).
    ///
    /// Implemented entirely with the existing ISA: each source is copied
    /// into place by a GATHER whose table is the source tensor and whose
    /// index list is the identity — no new opcode required.
    ///
    /// # Errors
    ///
    /// [`CoreError::Empty`] for no sources, [`CoreError::ShapeMismatch`]
    /// when dims differ, [`CoreError::OutOfMemory`] when the pool is full.
    pub fn concat(&mut self, sources: &[TensorHandle]) -> Result<TensorHandle, CoreError> {
        let first = sources
            .first()
            .ok_or(CoreError::Empty { what: "sources" })?;
        for s in sources {
            if s.dim != first.dim || s.vec_blocks != first.vec_blocks {
                return Err(CoreError::ShapeMismatch {
                    left: first.vec_blocks,
                    right: s.vec_blocks,
                });
            }
            // The identity index list below runs 0..count through the
            // 32-bit TensorISA index format; reject sources whose rows
            // would wrap before allocating anything.
            if s.count > u64::from(u32::MAX) + 1 {
                return Err(CoreError::IndexTooWide { index: s.count - 1 });
            }
        }
        let total: u64 = sources.iter().map(|s| s.count).sum();
        let output_base = self.allocator.alloc(total * first.vec_blocks)?;
        let mut cursor = output_base;
        for s in sources {
            let indices: Vec<u64> = (0..s.count).collect();
            let idx_blocks = s.count.div_ceil(16);
            let idx_base = self.allocator.alloc(idx_blocks)?;
            let idx_u32: Vec<u32> = indices
                .iter()
                .map(|&i| u32::try_from(i).map_err(|_| CoreError::IndexTooWide { index: i }))
                .collect::<Result<_, _>>()?;
            self.pool.write_u32_slice(idx_base, &idx_u32);
            let instr = Instruction::Gather {
                table_base: s.base_block,
                idx_base,
                output_base: cursor,
                count: s.count,
                vec_blocks: s.vec_blocks,
            };
            self.run_instruction(instr, Some(&indices))?;
            cursor += s.count * s.vec_blocks;
        }
        Ok(TensorHandle {
            base_block: output_base,
            count: total,
            dim: first.dim,
            vec_blocks: first.vec_blocks,
        })
    }

    /// Run a complete embedding layer (Fig. 2 steps 1 and 2): gather a
    /// multi-hot batch from every table, pool each table's lookups with
    /// AVERAGE, and concatenate the pooled embeddings per sample.
    ///
    /// `indices_per_table[t]` holds `batch * lookups` indices for table
    /// `t`. Returns a tensor of `batch` feature vectors of dimension
    /// `tables * dim` ready for the DNN.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`TensorNode::gather`],
    /// [`TensorNode::average`] and [`TensorNode::concat`]; additionally
    /// [`CoreError::BadGrouping`] when an index list is not a whole number
    /// of `lookups`-sized samples, and [`CoreError::ShapeMismatch`] when
    /// tables disagree in dimension.
    pub fn embedding_layer(
        &mut self,
        tables: &[TableHandle],
        indices_per_table: &[Vec<u64>],
        lookups: u64,
    ) -> Result<TensorHandle, CoreError> {
        if tables.is_empty() || tables.len() != indices_per_table.len() {
            return Err(CoreError::Empty { what: "tables" });
        }
        let mut pooled = Vec::with_capacity(tables.len());
        for (table, indices) in tables.iter().zip(indices_per_table) {
            let gathered = self.gather(table, indices)?;
            pooled.push(self.average(&gathered, lookups)?);
        }
        let batch = pooled[0].count;
        if pooled.iter().any(|p| p.count != batch) {
            return Err(CoreError::ShapeMismatch {
                left: pooled[0].blocks(),
                right: pooled.iter().map(TensorHandle::blocks).max().unwrap_or(0),
            });
        }
        // Interleave per sample: feature vector b = [table0_b | table1_b | ..].
        // Build with one GATHER per table into a strided output — expressed
        // as `batch` single-vector copies per table via concat ordering.
        // For API simplicity we concatenate table-major and expose the
        // layout; downstream consumers (the MLP) read sample features with
        // `read_features`.
        self.concat(&pooled)
    }

    /// Read the feature matrix produced by [`TensorNode::embedding_layer`]
    /// as `batch` rows of `tables * dim` values (sample-major, the layout
    /// the DNN consumes).
    ///
    /// # Errors
    ///
    /// [`CoreError::BadGrouping`] if the tensor does not divide into
    /// `tables` equal segments.
    pub fn read_features(
        &self,
        features: &TensorHandle,
        tables: u64,
    ) -> Result<Vec<f32>, CoreError> {
        if tables == 0 || !features.count.is_multiple_of(tables) {
            return Err(CoreError::BadGrouping {
                count: features.count,
                group: tables,
            });
        }
        let batch = (features.count / tables) as usize;
        let dim = features.dim;
        let table_major = self.read_tensor(features)?;
        let mut sample_major = vec![0.0f32; table_major.len()];
        for t in 0..tables as usize {
            for b in 0..batch {
                let src = (t * batch + b) * dim;
                let dst = b * (tables as usize * dim) + t * dim;
                sample_major[dst..dst + dim].copy_from_slice(&table_major[src..src + dim]);
            }
        }
        Ok(sample_major)
    }

    /// Read a tensor back to the host as a flat `count × dim` vector
    /// (stripe padding removed).
    ///
    /// # Errors
    ///
    /// Currently infallible for valid handles.
    pub fn read_tensor(&self, t: &TensorHandle) -> Result<Vec<f32>, CoreError> {
        let mut out = Vec::with_capacity((t.count as usize) * t.dim);
        for i in 0..t.count {
            out.extend(
                self.pool
                    .read_f32_slice(t.base_block + i * t.vec_blocks, t.dim),
            );
        }
        Ok(out)
    }

    /// Read one table row back to the host.
    ///
    /// # Errors
    ///
    /// [`CoreError::RowOutOfRange`] for a bad row.
    pub fn read_table_row(&self, table: &TableHandle, row: u64) -> Result<Vec<f32>, CoreError> {
        if row >= table.rows {
            return Err(CoreError::RowOutOfRange {
                index: row,
                rows: table.rows,
            });
        }
        Ok(self
            .pool
            .read_f32_slice(table.base_block + row * table.vec_blocks, table.dim))
    }

    /// Model shipping a tensor's payload to a GPU over `link`
    /// (P2P `cudaMemcpy` over NVLINK in the paper's system).
    pub fn copy_to_gpu(&self, t: &TensorHandle, link: &Link) -> TransferReport {
        link.transfer(t.payload_bytes())
    }

    fn run_instruction(
        &mut self,
        instr: Instruction,
        indices: Option<&[u64]>,
    ) -> Result<(), CoreError> {
        // Production path: encode to the wire format the GPU runtime would
        // ship, decode on the node side, and execute the decoded form.
        let encoded = encode(&instr)?;
        let decoded = decode(&encoded)?;
        debug_assert_eq!(decoded, instr, "wire format must round-trip");
        let exec = execute_on_node(&decoded, &mut self.pool, self.config.dimms)?;

        let timing = match self.config.timing {
            TimingMode::Functional => None,
            TimingMode::Replay => Some(self.representative_dimm.replay_instruction(
                &decoded,
                DimmContext::new(self.config.dimms, 0),
                indices,
            )?),
            TimingMode::Pipeline => Some(self.representative_dimm.run_instruction(
                &decoded,
                DimmContext::new(self.config.dimms, 0),
                indices,
            )?),
        };

        self.reports.push(OpReport {
            instruction: decoded,
            encoded,
            exec,
            timing,
            dimms: self.config.dimms,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TimingMode;

    fn node() -> TensorNode {
        TensorNode::new(TensorNodeConfig::small()).unwrap()
    }

    #[test]
    fn table_and_gather_roundtrip() {
        let mut n = node();
        let t = n.create_table("users", 64, 32).unwrap();
        n.fill_table(&t, |r, c| r as f32 * 100.0 + c as f32)
            .unwrap();
        let g = n.gather(&t, &[5, 0, 63]).unwrap();
        let host = n.read_tensor(&g).unwrap();
        assert_eq!(host.len(), 3 * 32);
        assert_eq!(host[0], 500.0);
        assert_eq!(host[32], 0.0);
        assert_eq!(host[2 * 32 + 7], 6307.0);
    }

    #[test]
    fn gather_matches_golden() {
        let mut n = node();
        let table = tensordimm_embedding::EmbeddingTable::seeded("x", 128, 48, 9);
        let h = n.create_table("x", 128, 48).unwrap();
        n.load_table(&h, table.data()).unwrap();
        let idx = [3u64, 77, 12, 12, 127];
        let g = n.gather(&h, &idx).unwrap();
        let got = n.read_tensor(&g).unwrap();
        let want = tensordimm_embedding::ops::gather(&table, &idx).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn reduce_and_average_match_golden() {
        let mut n = node();
        let t = n.create_table("t", 16, 64).unwrap();
        n.fill_table(&t, |r, c| (r as f32) + (c as f32) * 0.5)
            .unwrap();
        let a = n.gather(&t, &[1, 2, 3, 4]).unwrap();
        let b = n.gather(&t, &[5, 6, 7, 8]).unwrap();
        let sum = n.reduce(&a, &b, ReduceOp::Add).unwrap();
        let host = n.read_tensor(&sum).unwrap();
        // Row r has value r + 0.5c: (1+5), (2+6), ...
        assert_eq!(host[0], 6.0);
        assert_eq!(host[64], 8.0);

        let pooled = n.average(&a, 2).unwrap();
        assert_eq!(pooled.count(), 2);
        let host = n.read_tensor(&pooled).unwrap();
        assert_eq!(host[0], 1.5); // avg of rows 1 and 2 at col 0
    }

    #[test]
    fn shape_and_bounds_errors() {
        let mut n = node();
        let t = n.create_table("t", 8, 16).unwrap();
        assert!(matches!(
            n.gather(&t, &[8]),
            Err(CoreError::RowOutOfRange { .. })
        ));
        assert!(matches!(n.gather(&t, &[]), Err(CoreError::Empty { .. })));
        let a = n.gather(&t, &[0, 1]).unwrap();
        let b = n.gather(&t, &[0, 1, 2]).unwrap();
        assert!(matches!(
            n.reduce(&a, &b, ReduceOp::Add),
            Err(CoreError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            n.average(&b, 2),
            Err(CoreError::BadGrouping { .. })
        ));
        assert!(n.create_table("z", 0, 4).is_err());
        assert!(n.create_table("z", 4, 0).is_err());
    }

    /// Regression for the silent `u64 → u32` index truncation: an index
    /// of exactly 2^32 used to wrap to row 0 and gather the wrong data
    /// with no error. The fabricated handle claims enough rows that the
    /// bounds check passes; the width check must fire before any pool
    /// allocation or ISA dispatch touches the (undersized) pool.
    #[test]
    fn gather_rejects_indices_beyond_u32() {
        let mut n = node();
        let fake = TableHandle {
            id: 999,
            base_block: 0,
            rows: 1 << 34,
            dim: 16,
            vec_blocks: 4,
        };
        assert_eq!(
            n.gather(&fake, &[3, 1 << 32]),
            Err(CoreError::IndexTooWide { index: 1 << 32 })
        );
        // u32::MAX itself fits the format: validation proceeds past the
        // width check (whatever the fabricated handle does downstream, it
        // must not be rejected for width).
        assert!(!matches!(
            n.gather(&fake, &[u64::from(u32::MAX)]),
            Err(CoreError::IndexTooWide { .. })
        ));
    }

    /// Same truncation bug on the concat path: its identity index list
    /// `0..count` must fit the 32-bit format, so a source of 2^32 + 1
    /// rows is rejected up front (index 2^32 would have wrapped to 0).
    #[test]
    fn concat_rejects_sources_beyond_u32_rows() {
        let mut n = node();
        let fake = TensorHandle {
            base_block: 0,
            count: (1 << 32) + 1,
            dim: 16,
            vec_blocks: 4,
        };
        assert_eq!(
            n.concat(&[fake]),
            Err(CoreError::IndexTooWide { index: 1 << 32 })
        );
        // count == 2^32 has max identity index u32::MAX: past the width
        // guard, into allocation (rejected by the small pool).
        let boundary = TensorHandle {
            count: 1 << 32,
            ..fake
        };
        assert!(matches!(
            n.concat(&[boundary]),
            Err(CoreError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn pool_exhaustion() {
        let cfg = TensorNodeConfig::small().with_pool_blocks(256);
        let mut n = TensorNode::new(cfg).unwrap();
        assert!(matches!(
            n.create_table("big", 1 << 20, 512),
            Err(CoreError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn reports_accumulate_with_timing() {
        let mut n = node();
        let t = n.create_table("t", 32, 64).unwrap();
        let a = n.gather(&t, &[0, 1, 2, 3]).unwrap();
        let _ = n.average(&a, 4).unwrap();
        assert_eq!(n.reports().len(), 2);
        let last = n.last_report().unwrap();
        assert!(matches!(last.instruction, Instruction::Average { .. }));
        assert!(last.elapsed_ns().unwrap() > 0.0);
        assert!(last.node_gbps().unwrap() > 0.0);
    }

    #[test]
    fn functional_mode_skips_timing() {
        let cfg = TensorNodeConfig::small().with_timing(TimingMode::Functional);
        let mut n = TensorNode::new(cfg).unwrap();
        let t = n.create_table("t", 8, 16).unwrap();
        let _ = n.gather(&t, &[0]).unwrap();
        assert!(n.last_report().unwrap().timing.is_none());
    }

    #[test]
    fn padding_pads_small_dims_to_stripe() {
        let n = node(); // 4 DIMMs
                        // dim 16 = 1 block, padded to 4.
        assert_eq!(n.vec_blocks_for(16), 4);
        // dim 512 = 32 blocks, already a multiple of 4.
        assert_eq!(n.vec_blocks_for(512), 32);
        // dim 100 -> 400 B -> 7 blocks -> 8.
        assert_eq!(n.vec_blocks_for(100), 8);
    }

    #[test]
    fn copy_to_gpu_uses_payload_bytes() {
        let mut n = node();
        let t = n.create_table("t", 8, 16).unwrap();
        let a = n.gather(&t, &[0, 1]).unwrap();
        let link = tensordimm_interconnect::Link::nvlink2_x6();
        let rep = n.copy_to_gpu(&a, &link);
        assert_eq!(rep.bytes, 2 * 16 * 4);
    }

    #[test]
    fn node_metadata() {
        let n = TensorNode::new(TensorNodeConfig::paper()).unwrap();
        assert_eq!(n.dimms(), 32);
        assert!((n.peak_gbps() - 819.2).abs() < 1e-9);
        assert!((n.power_watts() - 416.0).abs() < 1e-9);
        assert_eq!(n.used_blocks(), 0);
    }

    #[test]
    fn concat_preserves_order_and_values() {
        let mut n = node();
        let t = n.create_table("t", 16, 32).unwrap();
        n.fill_table(&t, |r, _| r as f32).unwrap();
        let a = n.gather(&t, &[1, 2]).unwrap();
        let b = n.gather(&t, &[7]).unwrap();
        let c = n.gather(&t, &[9, 10, 11]).unwrap();
        let cat = n.concat(&[a, b, c]).unwrap();
        assert_eq!(cat.count(), 6);
        let host = n.read_tensor(&cat).unwrap();
        let firsts: Vec<f32> = host.chunks(32).map(|v| v[0]).collect();
        assert_eq!(firsts, vec![1.0, 2.0, 7.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn concat_shape_checks() {
        let mut n = node();
        let t32 = n.create_table("a", 8, 32).unwrap();
        let t64 = n.create_table("b", 8, 64).unwrap();
        let a = n.gather(&t32, &[0]).unwrap();
        let b = n.gather(&t64, &[0]).unwrap();
        assert!(matches!(
            n.concat(&[a, b]),
            Err(CoreError::ShapeMismatch { .. })
        ));
        assert!(matches!(n.concat(&[]), Err(CoreError::Empty { .. })));
    }

    #[test]
    fn embedding_layer_end_to_end() {
        let mut n = node();
        let batch = 4usize;
        let lookups = 3u64;
        let mut tables = Vec::new();
        for t in 0..2u64 {
            let h = n.create_table(&format!("t{t}"), 32, 16).unwrap();
            n.fill_table(&h, move |r, _| (r + 100 * t) as f32).unwrap();
            tables.push(h);
        }
        // Table 0 looks up rows {0,1,2} per sample -> pooled 1.0;
        // table 1 rows {3,4,5} -> pooled 104.0.
        let idx0: Vec<u64> = (0..batch as u64 * lookups).map(|i| i % 3).collect();
        let idx1: Vec<u64> = (0..batch as u64 * lookups).map(|i| 3 + i % 3).collect();
        let features = n.embedding_layer(&tables, &[idx0, idx1], lookups).unwrap();
        assert_eq!(features.count(), 2 * batch as u64);
        let rows = n.read_features(&features, 2).unwrap();
        assert_eq!(rows.len(), batch * 2 * 16);
        for b in 0..batch {
            let base = b * 32;
            assert!((rows[base] - 1.0).abs() < 1e-6, "sample {b} table 0");
            assert!((rows[base + 16] - 104.0).abs() < 1e-6, "sample {b} table 1");
        }
    }

    #[test]
    fn op_energy_reported_in_replay_mode() {
        let mut n = node();
        let t = n.create_table("t", 64, 64).unwrap();
        let _ = n.gather(&t, &[0, 1, 2, 3]).unwrap();
        let e = n.last_report().unwrap().energy().unwrap();
        assert!(e.total_nj() > 0.0);
        assert!(e.pj_per_bit() > 1.0 && e.pj_per_bit() < 100.0);
    }

    #[test]
    fn upload_tensor_roundtrip() {
        let mut n = node();
        let data: Vec<f32> = (0..96).map(|i| i as f32).collect();
        let t = n.upload_tensor(&data, 6, 16).unwrap();
        assert_eq!(n.read_tensor(&t).unwrap(), data);
        assert!(n.upload_tensor(&data, 5, 16).is_err());
        assert!(n.upload_tensor(&[], 0, 16).is_err());
    }
}

#[cfg(test)]
mod metadata_tests {
    use super::*;

    #[test]
    fn table_registry_tracks_names() {
        let mut n = TensorNode::new(TensorNodeConfig::small()).unwrap();
        n.create_table("users", 4, 16).unwrap();
        n.create_table("items", 4, 16).unwrap();
        let names: Vec<&str> = n.tables().iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(names, vec!["users", "items"]);
        assert_eq!(n.tables()[0].0, 0);
        assert_eq!(n.tables()[1].0, 1);
    }

    #[test]
    fn allocator_accounting_via_node() {
        let mut n = TensorNode::new(TensorNodeConfig::small()).unwrap();
        let before = n.available_blocks();
        let t = n.create_table("t", 8, 64).unwrap();
        assert_eq!(n.used_blocks(), t.stored_bytes() / 64);
        assert_eq!(n.available_blocks(), before - n.used_blocks());
    }

    #[test]
    fn report_wire_format_matches_instruction() {
        let mut n = TensorNode::new(TensorNodeConfig::small()).unwrap();
        let t = n.create_table("t", 8, 16).unwrap();
        let _ = n.gather(&t, &[1, 2]).unwrap();
        let report = n.last_report().unwrap();
        let decoded = tensordimm_isa::decode(&report.encoded).unwrap();
        assert_eq!(decoded, report.instruction);
        assert!(matches!(decoded, Instruction::Gather { count: 2, .. }));
    }

    #[test]
    fn concat_logs_one_gather_per_source() {
        let mut n = TensorNode::new(TensorNodeConfig::small()).unwrap();
        let t = n.create_table("t", 8, 16).unwrap();
        let a = n.gather(&t, &[0]).unwrap();
        let b = n.gather(&t, &[1]).unwrap();
        let ops_before = n.reports().len();
        let _ = n.concat(&[a, b]).unwrap();
        assert_eq!(n.reports().len(), ops_before + 2);
        assert!(n.reports()[ops_before..]
            .iter()
            .all(|r| matches!(r.instruction, Instruction::Gather { .. })));
    }

    #[test]
    fn clone_preserves_pool_contents() {
        let mut n = TensorNode::new(TensorNodeConfig::small()).unwrap();
        let t = n.create_table("t", 4, 16).unwrap();
        n.fill_table(&t, |r, _| r as f32).unwrap();
        let snapshot = n.clone();
        assert_eq!(
            snapshot.read_table_row(&t, 3).unwrap(),
            n.read_table_row(&t, 3).unwrap()
        );
    }
}
