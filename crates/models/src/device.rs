//! Device execution-time models (the MKL / cuDNN substitute).
//!
//! DNN time is modeled per layer with a roofline:
//! `max(flops / (peak * efficiency(batch)), weight_bytes / mem_bw)` plus a
//! fixed kernel-dispatch overhead. GPU efficiency collapses at small batch
//! (under-occupancy), which is what lets `CPU-only` beat `CPU-GPU` in the
//! paper's low-batch scenarios (Fig. 4).

use crate::mlp::MlpSpec;

/// An execution-device model (CPU socket or GPU).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    name: &'static str,
    /// Peak f32 throughput in TFLOP/s.
    peak_tflops: f64,
    /// Streaming memory bandwidth for bulk tensors, GB/s (after efficiency).
    mem_bw_gbps: f64,
    /// Bandwidth at which layer weights are re-read each forward pass,
    /// GB/s. CPUs keep recommender-scale MLPs resident in the LLC, so this
    /// is aggregate LLC bandwidth; GPUs stream from HBM.
    weight_bw_gbps: f64,
    /// Per-layer kernel dispatch overhead, µs.
    kernel_overhead_us: f64,
    /// Batch at which efficiency reaches half its asymptote.
    half_batch: f64,
    /// Asymptotic efficiency at large batch.
    max_efficiency: f64,
}

impl DeviceModel {
    /// A Skylake-SP-class Xeon socket (the DGX-1 host): ~2.2 TFLOP/s fp32
    /// peak, 143 GB/s effective stream bandwidth, cheap dispatch, and
    /// efficiency that saturates quickly (CPUs do not need huge batches).
    pub fn xeon_cpu() -> Self {
        DeviceModel {
            name: "Xeon (host CPU)",
            peak_tflops: 2.2,
            mem_bw_gbps: 143.0,
            weight_bw_gbps: 800.0,
            kernel_overhead_us: 2.0,
            half_batch: 2.0,
            max_efficiency: 0.5,
        }
    }

    /// An NVIDIA V100: 14 TFLOP/s fp32, 900 GB/s HBM2 (80 % effective),
    /// ~5 µs kernel launches, and occupancy that needs batch to fill
    /// 80 SMs.
    pub fn v100_gpu() -> Self {
        DeviceModel {
            name: "V100 (GPU)",
            peak_tflops: 14.0,
            mem_bw_gbps: 720.0,
            weight_bw_gbps: 720.0,
            kernel_overhead_us: 5.0,
            half_batch: 32.0,
            max_efficiency: 0.75,
        }
    }

    /// Device name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Peak f32 TFLOP/s.
    pub fn peak_tflops(&self) -> f64 {
        self.peak_tflops
    }

    /// Effective weight-streaming bandwidth, GB/s.
    pub fn mem_bw_gbps(&self) -> f64 {
        self.mem_bw_gbps
    }

    /// Compute efficiency at a batch size (saturating curve).
    pub fn efficiency(&self, batch: usize) -> f64 {
        let b = batch as f64;
        self.max_efficiency * b / (b + self.half_batch)
    }

    /// Time for one dense layer of `flops` total work and `weight_bytes`
    /// of parameters, µs.
    pub fn layer_time_us(&self, flops: u64, weight_bytes: u64, batch: usize) -> f64 {
        let compute_us = flops as f64 / (self.peak_tflops * self.efficiency(batch)) / 1e6;
        let memory_us = weight_bytes as f64 / (self.weight_bw_gbps * 1e3);
        compute_us.max(memory_us) + self.kernel_overhead_us
    }

    /// Time for a full MLP forward pass at `batch`, µs.
    pub fn mlp_time_us(&self, spec: &MlpSpec, batch: usize) -> f64 {
        spec.widths()
            .windows(2)
            .map(|w| {
                let flops = 2 * batch as u64 * (w[0] * w[1]) as u64;
                let weight_bytes = ((w[0] * w[1] + w[1]) * 4) as u64;
                self.layer_time_us(flops, weight_bytes, batch)
            })
            .sum()
    }

    /// Time for a pure element-wise pass over `bytes` (the tensor-op cost
    /// when executed *on* this device rather than near memory), µs.
    pub fn streaming_time_us(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.mem_bw_gbps * 1e3) + self.kernel_overhead_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::MlpSpec;

    fn spec() -> MlpSpec {
        MlpSpec::new(vec![4096, 1024, 512, 1]).unwrap()
    }

    #[test]
    fn efficiency_curves() {
        let gpu = DeviceModel::v100_gpu();
        assert!(gpu.efficiency(1) < 0.05);
        assert!(gpu.efficiency(128) > 0.5);
        let cpu = DeviceModel::xeon_cpu();
        assert!(cpu.efficiency(1) > 0.15);
        assert!(cpu.efficiency(64) > 0.45);
    }

    #[test]
    fn gpu_wins_at_large_batch() {
        let cpu = DeviceModel::xeon_cpu().mlp_time_us(&spec(), 128);
        let gpu = DeviceModel::v100_gpu().mlp_time_us(&spec(), 128);
        assert!(cpu > 4.0 * gpu, "cpu {cpu} gpu {gpu}");
    }

    #[test]
    fn gpu_advantage_shrinks_at_batch_one() {
        let cpu1 = DeviceModel::xeon_cpu().mlp_time_us(&spec(), 1);
        let gpu1 = DeviceModel::v100_gpu().mlp_time_us(&spec(), 1);
        let ratio1 = cpu1 / gpu1;
        let cpu128 = DeviceModel::xeon_cpu().mlp_time_us(&spec(), 128);
        let gpu128 = DeviceModel::v100_gpu().mlp_time_us(&spec(), 128);
        let ratio128 = cpu128 / gpu128;
        assert!(
            ratio128 > 1.5 * ratio1,
            "batch-1 ratio {ratio1} vs batch-128 ratio {ratio128}"
        );
    }

    #[test]
    fn layer_time_is_roofline() {
        let gpu = DeviceModel::v100_gpu();
        // Tiny flops, huge weights: memory bound.
        let mem_bound = gpu.layer_time_us(1000, 1 << 30, 64);
        assert!(mem_bound > 1000.0);
        // Huge flops, tiny weights: compute bound.
        let compute_bound = gpu.layer_time_us(1 << 40, 64, 64);
        assert!(compute_bound > 100_000.0);
    }

    #[test]
    fn streaming_time_scales_with_bytes() {
        let gpu = DeviceModel::v100_gpu();
        let t1 = gpu.streaming_time_us(1 << 20);
        let t2 = gpu.streaming_time_us(1 << 24);
        assert!(t2 > 10.0 * (t1 - 5.0).max(0.1));
    }

    #[test]
    fn names() {
        assert!(DeviceModel::xeon_cpu().name().contains("Xeon"));
        assert!(DeviceModel::v100_gpu().name().contains("V100"));
        assert!(DeviceModel::v100_gpu().peak_tflops() > 10.0);
        assert!(DeviceModel::v100_gpu().mem_bw_gbps() > 700.0);
    }
}
