//! Dense MLP: cost model and functional forward pass.

use crate::ModelError;

/// Shape of a dense multi-layer perceptron: layer widths from input to
/// output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpSpec {
    widths: Vec<usize>,
}

impl MlpSpec {
    /// A spec from layer widths (`[input, hidden.., output]`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DegenerateSpec`] for fewer than two widths.
    pub fn new(widths: Vec<usize>) -> Result<Self, ModelError> {
        if widths.len() < 2 {
            return Err(ModelError::DegenerateSpec {
                widths: widths.len(),
            });
        }
        Ok(MlpSpec { widths })
    }

    /// Layer widths.
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.widths[0]
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        *self.widths.last().expect("validated: at least two widths")
    }

    /// Number of weight layers.
    pub fn layers(&self) -> usize {
        self.widths.len() - 1
    }

    /// Parameter count (weights + biases).
    pub fn params(&self) -> u64 {
        self.widths
            .windows(2)
            .map(|w| (w[0] * w[1] + w[1]) as u64)
            .sum()
    }

    /// Parameter bytes (f32).
    pub fn param_bytes(&self) -> u64 {
        self.params() * 4
    }

    /// FLOPs for one forward pass at `batch` (2 per MAC).
    pub fn flops(&self, batch: usize) -> u64 {
        2 * batch as u64
            * self
                .widths
                .windows(2)
                .map(|w| (w[0] * w[1]) as u64)
                .sum::<u64>()
    }
}

/// A functional f32 MLP with deterministic weights: ReLU between layers and
/// a sigmoid on the scalar output when the final width is 1 (the CTR head
/// of a recommender).
///
/// # Example
///
/// ```
/// use tensordimm_models::{Mlp, MlpSpec};
///
/// let mlp = Mlp::seeded(MlpSpec::new(vec![8, 4, 1])?, 7);
/// let out = mlp.forward(&[0.5; 8])?;
/// assert_eq!(out.len(), 1);
/// assert!(out[0] > 0.0 && out[0] < 1.0, "sigmoid output: {}", out[0]);
/// # Ok::<(), tensordimm_models::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    spec: MlpSpec,
    /// Per-layer row-major weights (`out x in`) followed by biases.
    layers: Vec<(Vec<f32>, Vec<f32>)>,
}

impl Mlp {
    /// Build with small deterministic pseudo-random weights.
    pub fn seeded(spec: MlpSpec, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            // xorshift64*
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 0.2
        };
        let layers = spec
            .widths()
            .windows(2)
            .map(|w| {
                let (n_in, n_out) = (w[0], w[1]);
                let weights = (0..n_in * n_out).map(|_| next()).collect();
                let biases = (0..n_out).map(|_| next()).collect();
                (weights, biases)
            })
            .collect();
        Mlp { spec, layers }
    }

    /// The shape.
    pub fn spec(&self) -> &MlpSpec {
        &self.spec
    }

    /// Forward one sample.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InputShape`] when `input.len()` differs from
    /// the first layer width.
    pub fn forward(&self, input: &[f32]) -> Result<Vec<f32>, ModelError> {
        if input.len() != self.spec.input_dim() {
            return Err(ModelError::InputShape {
                got: input.len(),
                expected: self.spec.input_dim(),
            });
        }
        let mut activ = input.to_vec();
        let last = self.layers.len() - 1;
        for (li, (weights, biases)) in self.layers.iter().enumerate() {
            let n_in = self.spec.widths()[li];
            let n_out = self.spec.widths()[li + 1];
            let mut out = vec![0.0f32; n_out];
            for (o, out_v) in out.iter_mut().enumerate() {
                let row = &weights[o * n_in..(o + 1) * n_in];
                let mut acc = biases[o];
                for (w, a) in row.iter().zip(&activ) {
                    acc += w * a;
                }
                *out_v = if li == last {
                    if n_out == 1 {
                        1.0 / (1.0 + (-acc).exp()) // sigmoid CTR head
                    } else {
                        acc
                    }
                } else {
                    acc.max(0.0) // ReLU
                };
            }
            activ = out;
        }
        Ok(activ)
    }

    /// Forward a batch laid out row-major (`batch × input_dim`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InputShape`] when the input is not a whole
    /// number of samples.
    pub fn forward_batch(&self, inputs: &[f32]) -> Result<Vec<f32>, ModelError> {
        let d = self.spec.input_dim();
        if d == 0 || !inputs.len().is_multiple_of(d) {
            return Err(ModelError::InputShape {
                got: inputs.len(),
                expected: d,
            });
        }
        let mut out = Vec::new();
        for sample in inputs.chunks(d) {
            out.extend(self.forward(sample)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validation_and_counts() {
        assert!(MlpSpec::new(vec![4]).is_err());
        let s = MlpSpec::new(vec![4, 3, 2]).unwrap();
        assert_eq!(s.layers(), 2);
        assert_eq!(s.input_dim(), 4);
        assert_eq!(s.output_dim(), 2);
        // (4*3+3) + (3*2+2) = 23.
        assert_eq!(s.params(), 23);
        assert_eq!(s.param_bytes(), 92);
        // 2 * (12 + 6) per sample.
        assert_eq!(s.flops(1), 36);
        assert_eq!(s.flops(10), 360);
    }

    #[test]
    fn forward_is_deterministic() {
        let spec = MlpSpec::new(vec![8, 8, 1]).unwrap();
        let a = Mlp::seeded(spec.clone(), 5);
        let b = Mlp::seeded(spec, 5);
        let x = [0.25f32; 8];
        assert_eq!(a.forward(&x).unwrap(), b.forward(&x).unwrap());
    }

    #[test]
    fn sigmoid_head_bounds_output() {
        let mlp = Mlp::seeded(MlpSpec::new(vec![16, 8, 1]).unwrap(), 3);
        for i in 0..10 {
            let x = vec![i as f32 * 0.3 - 1.5; 16];
            let y = mlp.forward(&x).unwrap()[0];
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn relu_zeroes_negatives() {
        // With an identity-free check: a single layer net with ReLU off at
        // the head (n_out > 1) returns raw affine outputs.
        let mlp = Mlp::seeded(MlpSpec::new(vec![4, 2]).unwrap(), 1);
        let y = mlp.forward(&[1.0, -1.0, 0.5, 2.0]).unwrap();
        assert_eq!(y.len(), 2);
    }

    #[test]
    fn batch_matches_per_sample() {
        let mlp = Mlp::seeded(MlpSpec::new(vec![4, 4, 1]).unwrap(), 9);
        let a = [0.1f32, 0.2, 0.3, 0.4];
        let b = [0.9f32, -0.2, 0.0, 1.0];
        let batch: Vec<f32> = a.iter().chain(&b).copied().collect();
        let batched = mlp.forward_batch(&batch).unwrap();
        assert_eq!(batched[0], mlp.forward(&a).unwrap()[0]);
        assert_eq!(batched[1], mlp.forward(&b).unwrap()[0]);
    }

    #[test]
    fn shape_errors() {
        let mlp = Mlp::seeded(MlpSpec::new(vec![4, 1]).unwrap(), 0);
        assert!(mlp.forward(&[1.0; 3]).is_err());
        assert!(mlp.forward_batch(&[1.0; 7]).is_err());
    }
}
