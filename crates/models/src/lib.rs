//! Recommender-system workload models and device compute models.
//!
//! The paper evaluates four DNN-based recommender systems (Table 2):
//!
//! | Network  | Lookup tables | Max reduction | FC/MLP layers |
//! |----------|---------------|---------------|---------------|
//! | NCF      | 4             | 2             | 4             |
//! | YouTube  | 2             | 50            | 4             |
//! | Fox      | 2             | 50            | 1             |
//! | Facebook | 8             | 25            | 6             |
//!
//! with a default embedding dimension of 512 and batch sizes 1–128.
//! [`catalog`] encodes those configurations; [`mlp`] provides both a
//! parameter/FLOP model and a functional f32 forward pass (the cuDNN/MKL
//! substitute); [`device`] models CPU and GPU execution time with a
//! roofline (`max(compute, weight streaming)` + kernel overhead).
//!
//! # Example
//!
//! ```
//! use tensordimm_models::{Workload, DeviceModel};
//!
//! let fb = Workload::facebook();
//! assert_eq!(fb.tables, 8);
//! assert_eq!(fb.lookups_per_table, 25);
//! // Embedding traffic for one batch-64 inference:
//! let bytes = fb.gathered_bytes(64);
//! assert_eq!(bytes, 8 * 25 * 64 * 512 * 4);
//! // The V100 runs the MLP far faster than the host CPU:
//! let cpu = DeviceModel::xeon_cpu().mlp_time_us(&fb.mlp, 64);
//! let gpu = DeviceModel::v100_gpu().mlp_time_us(&fb.mlp, 64);
//! assert!(cpu > 5.0 * gpu);
//! ```

pub mod catalog;
pub mod device;
pub mod mlp;

pub use catalog::{Workload, WorkloadName};
pub use device::DeviceModel;
pub use mlp::{Mlp, MlpSpec};

use std::error::Error;
use std::fmt;

/// Errors from the workload models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// An MLP input vector does not match the first layer width.
    InputShape {
        /// Provided input length.
        got: usize,
        /// Expected input length.
        expected: usize,
    },
    /// An MLP spec has fewer than two widths.
    DegenerateSpec {
        /// Number of widths provided.
        widths: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InputShape { got, expected } => {
                write!(
                    f,
                    "input length {got} does not match first layer width {expected}"
                )
            }
            ModelError::DegenerateSpec { widths } => {
                write!(f, "an MLP needs at least two widths, got {widths}")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert!(!ModelError::InputShape {
            got: 1,
            expected: 2
        }
        .to_string()
        .is_empty());
        assert!(!ModelError::DegenerateSpec { widths: 1 }
            .to_string()
            .is_empty());
    }
}
