//! The four evaluated workloads (paper Table 2).

use crate::mlp::MlpSpec;

/// Workload identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadName {
    /// Neural collaborative filtering (MLPerf).
    Ncf,
    /// The YouTube candidate-ranking network.
    YouTube,
    /// The Fox movie-recommendation network.
    Fox,
    /// Facebook's deep-learning recommendation model.
    Facebook,
}

impl WorkloadName {
    /// All four, in the paper's order.
    pub fn all() -> [WorkloadName; 4] {
        [
            WorkloadName::Ncf,
            WorkloadName::YouTube,
            WorkloadName::Fox,
            WorkloadName::Facebook,
        ]
    }
}

impl std::fmt::Display for WorkloadName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WorkloadName::Ncf => "NCF",
            WorkloadName::YouTube => "YouTube",
            WorkloadName::Fox => "Fox",
            WorkloadName::Facebook => "Facebook",
        };
        f.write_str(s)
    }
}

/// One recommender workload: embedding-layer shape plus DNN shape.
///
/// Embedding traffic per inference follows Fig. 2: each of `tables` lookup
/// tables is queried `lookups_per_table` times per sample (Table 2's "max
/// reduction"), the gathered embeddings are pooled per table, and the
/// pooled embeddings (one per table) feed the MLP.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Which workload.
    pub name: WorkloadName,
    /// Number of embedding lookup tables.
    pub tables: usize,
    /// Embeddings gathered and pooled per table per sample.
    pub lookups_per_table: usize,
    /// Embedding dimension (512 by default in the paper).
    pub embedding_dim: usize,
    /// Rows per lookup table (5 M in the paper's Fig. 3 experiment).
    pub rows_per_table: u64,
    /// The DNN the pooled embeddings feed.
    pub mlp: MlpSpec,
}

impl Workload {
    fn build(
        name: WorkloadName,
        tables: usize,
        lookups: usize,
        hidden: &[usize],
        embedding_dim: usize,
    ) -> Self {
        let mut widths = vec![tables * embedding_dim];
        widths.extend_from_slice(hidden);
        widths.push(1);
        Workload {
            name,
            tables,
            lookups_per_table: lookups,
            embedding_dim,
            rows_per_table: 5_000_000,
            mlp: MlpSpec::new(widths).expect("catalog widths are nonempty"),
        }
    }

    /// NCF: 4 tables, reduction 2, 4 FC layers.
    pub fn ncf() -> Self {
        Workload::build(WorkloadName::Ncf, 4, 2, &[1024, 512, 256], 512)
    }

    /// YouTube: 2 tables, reduction 50, 4 MLP layers.
    pub fn youtube() -> Self {
        Workload::build(WorkloadName::YouTube, 2, 50, &[1024, 512, 256], 512)
    }

    /// Fox: 2 tables, reduction 50, 1 FC layer.
    pub fn fox() -> Self {
        Workload::build(WorkloadName::Fox, 2, 50, &[], 512)
    }

    /// Facebook: 8 tables, reduction 25, 6 MLP layers.
    pub fn facebook() -> Self {
        Workload::build(
            WorkloadName::Facebook,
            8,
            25,
            &[1024, 768, 512, 256, 128],
            512,
        )
    }

    /// Look up a workload by name.
    pub fn by_name(name: WorkloadName) -> Self {
        match name {
            WorkloadName::Ncf => Workload::ncf(),
            WorkloadName::YouTube => Workload::youtube(),
            WorkloadName::Fox => Workload::fox(),
            WorkloadName::Facebook => Workload::facebook(),
        }
    }

    /// All four workloads with default configuration.
    pub fn all() -> Vec<Workload> {
        WorkloadName::all().map(Workload::by_name).to_vec()
    }

    /// Scale the embedding dimension by `factor` (the Fig. 12/15/16
    /// "embedding (2x/4x/8x)" sweeps), rebuilding the MLP input width.
    pub fn scaled_embeddings(&self, factor: usize) -> Workload {
        let mut scaled = self.clone();
        scaled.embedding_dim = self.embedding_dim * factor;
        let mut widths = self.mlp.widths().to_vec();
        widths[0] = scaled.tables * scaled.embedding_dim;
        scaled.mlp = MlpSpec::new(widths).expect("same arity as source spec");
        scaled
    }

    /// Bytes of one embedding vector.
    pub fn embedding_bytes(&self) -> u64 {
        self.embedding_dim as u64 * 4
    }

    /// Embeddings gathered per sample (all tables).
    pub fn lookups_per_sample(&self) -> u64 {
        (self.tables * self.lookups_per_table) as u64
    }

    /// Bytes gathered from the tables for a batch (before pooling).
    pub fn gathered_bytes(&self, batch: usize) -> u64 {
        batch as u64 * self.lookups_per_sample() * self.embedding_bytes()
    }

    /// Bytes after per-table pooling (what the DNN consumes / what an NMP
    /// reduction ships to the GPU): one vector per table per sample.
    pub fn pooled_bytes(&self, batch: usize) -> u64 {
        batch as u64 * self.tables as u64 * self.embedding_bytes()
    }

    /// The communication-compression factor NMP reduction provides
    /// (`gathered / pooled` = lookups per table).
    pub fn reduction_factor(&self) -> u64 {
        self.lookups_per_table as u64
    }

    /// Total embedding-table footprint in bytes.
    pub fn table_footprint_bytes(&self) -> u64 {
        self.tables as u64 * self.rows_per_table * self.embedding_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_configuration() {
        let specs = [
            (Workload::ncf(), 4, 2, 4),
            (Workload::youtube(), 2, 50, 4),
            (Workload::fox(), 2, 50, 1),
            (Workload::facebook(), 8, 25, 6),
        ];
        for (w, tables, lookups, layers) in specs {
            assert_eq!(w.tables, tables, "{}", w.name);
            assert_eq!(w.lookups_per_table, lookups, "{}", w.name);
            assert_eq!(w.mlp.layers(), layers, "{}", w.name);
            assert_eq!(w.embedding_dim, 512, "{}", w.name);
        }
    }

    #[test]
    fn traffic_accounting() {
        let w = Workload::youtube();
        // 2 tables x 50 lookups x 2 KiB x batch.
        assert_eq!(w.gathered_bytes(1), 2 * 50 * 2048);
        assert_eq!(w.pooled_bytes(1), 2 * 2048);
        assert_eq!(w.reduction_factor(), 50);
        assert_eq!(w.gathered_bytes(64), 64 * 2 * 50 * 2048);
    }

    #[test]
    fn mlp_input_matches_pooled_width() {
        for w in Workload::all() {
            assert_eq!(w.mlp.input_dim(), w.tables * w.embedding_dim, "{}", w.name);
            assert_eq!(w.mlp.output_dim(), 1, "{}", w.name);
        }
    }

    #[test]
    fn embedding_scaling() {
        let w = Workload::facebook().scaled_embeddings(4);
        assert_eq!(w.embedding_dim, 2048);
        assert_eq!(w.mlp.input_dim(), 8 * 2048);
        assert_eq!(w.mlp.layers(), Workload::facebook().mlp.layers());
        assert_eq!(
            w.table_footprint_bytes(),
            4 * Workload::facebook().table_footprint_bytes()
        );
    }

    #[test]
    fn footprints_exceed_gpu_memory() {
        // The paper's premise: tables do not fit the 16-32 GB of a GPU.
        for w in Workload::all() {
            assert!(
                w.table_footprint_bytes() > 16 << 30,
                "{} fits in GPU memory",
                w.name
            );
        }
    }

    #[test]
    fn by_name_and_display() {
        for name in WorkloadName::all() {
            let w = Workload::by_name(name);
            assert_eq!(w.name, name);
            assert!(!name.to_string().is_empty());
        }
    }
}
