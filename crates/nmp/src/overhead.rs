//! Implementation-overhead models (paper Table 3 and Section 6.5).
//!
//! The paper synthesizes the NMP core for a Xilinx Virtex UltraScale+
//! VCU1525 and reports per-component utilization, and estimates DIMM/node
//! power with Micron's DDR4 system power calculator. No FPGA tools exist in
//! this environment, so this module substitutes:
//!
//! * the reported utilization numbers as reference constants, plus a simple
//!   first-order scaling model for configuration sweeps,
//! * the bandwidth-delay SRAM sizing rule of Section 4.2,
//! * a per-DIMM power constant derived from the paper's Micron-calculator
//!   result (13 W per 128 GB LR-DIMM) with linear scaling in DIMM count.

/// FPGA resource utilization of one NMP-core component, in percent of a
/// VCU1525 (as reported in Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaUtilization {
    /// Component name.
    pub component: &'static str,
    /// Look-up tables, %.
    pub lut: f64,
    /// Flip-flops, %.
    pub ff: f64,
    /// DSP slices, %.
    pub dsp: f64,
    /// Block RAM, %.
    pub bram: f64,
}

impl FpgaUtilization {
    /// Table 3, row "SRAM queues".
    pub fn sram_queues() -> Self {
        FpgaUtilization {
            component: "SRAM queues",
            lut: 0.00,
            ff: 0.00,
            dsp: 0.00,
            bram: 0.01,
        }
    }

    /// Table 3, row "FPU" (single-precision floating point).
    pub fn fpu() -> Self {
        FpgaUtilization {
            component: "FPU",
            lut: 0.19,
            ff: 0.01,
            dsp: 0.20,
            bram: 0.00,
        }
    }

    /// Table 3, row "ALU" (fixed point).
    pub fn alu() -> Self {
        FpgaUtilization {
            component: "ALU",
            lut: 0.09,
            ff: 0.01,
            dsp: 0.01,
            bram: 0.00,
        }
    }

    /// All Table 3 rows in order.
    pub fn table3() -> [FpgaUtilization; 3] {
        [Self::sram_queues(), Self::fpu(), Self::alu()]
    }

    /// First-order scaling for a different lane count: the paper's numbers
    /// assume 16 lanes; DSP/LUT scale linearly with lanes, BRAM with queue
    /// bytes.
    pub fn scaled(&self, lanes: usize, queue_bytes: usize) -> FpgaUtilization {
        let lane_factor = lanes as f64 / 16.0;
        let queue_factor = queue_bytes as f64 / 512.0;
        FpgaUtilization {
            component: self.component,
            lut: self.lut * lane_factor,
            ff: self.ff * lane_factor,
            dsp: self.dsp * lane_factor,
            bram: self.bram * queue_factor,
        }
    }
}

/// The bandwidth-delay-product SRAM sizing rule (Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramSizing {
    /// Local channel bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Round-trip fill latency in nanoseconds (20 ns in the paper).
    pub latency_ns: f64,
}

impl SramSizing {
    /// The paper's sizing point: 25.6 GB/s × 20 ns.
    pub fn paper() -> Self {
        SramSizing {
            bandwidth_gbps: 25.6,
            latency_ns: 20.0,
        }
    }

    /// Required queue capacity in bytes (bandwidth × delay).
    pub fn queue_bytes(&self) -> f64 {
        self.bandwidth_gbps * self.latency_ns
    }

    /// Total SRAM across the three queues (A, B, C) in bytes.
    pub fn total_bytes(&self) -> f64 {
        3.0 * self.queue_bytes()
    }
}

/// Power model for TensorDIMMs and the TensorNode (Section 6.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DimmPowerModel {
    /// Power of one fully-utilized LR-DIMM in watts (13 W for the 128 GB
    /// LR-DIMM the paper evaluates with Micron's calculator).
    pub watts_per_dimm: f64,
    /// Capacity of one DIMM in GiB.
    pub dimm_capacity_gib: f64,
}

impl DimmPowerModel {
    /// The paper's reference point: 13 W per 128 GB LR-DIMM.
    pub fn paper() -> Self {
        DimmPowerModel {
            watts_per_dimm: 13.0,
            dimm_capacity_gib: 128.0,
        }
    }

    /// Power of a TensorNode with `dimms` TensorDIMMs, watts.
    pub fn node_watts(&self, dimms: usize) -> f64 {
        self.watts_per_dimm * dimms as f64
    }

    /// Node capacity in GiB.
    pub fn node_capacity_gib(&self, dimms: usize) -> f64 {
        self.dimm_capacity_gib * dimms as f64
    }

    /// Whether the node fits an accelerator-module power envelope
    /// (the OCP accelerator module's 350–700 W TDP cited in Section 6.5).
    pub fn fits_oam_envelope(&self, dimms: usize) -> bool {
        self.node_watts(dimms) <= 700.0
    }
}

/// Aggregate overhead summary for one NMP core configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NmpOverheads {
    /// Per-component FPGA utilization.
    pub utilization: Vec<FpgaUtilization>,
    /// SRAM sizing rule used.
    pub sram: SramSizing,
    /// Power model used.
    pub power: DimmPowerModel,
}

impl NmpOverheads {
    /// The paper's configuration (16 lanes, 512 B queues, 13 W DIMMs).
    pub fn paper() -> Self {
        NmpOverheads {
            utilization: FpgaUtilization::table3().to_vec(),
            sram: SramSizing::paper(),
            power: DimmPowerModel::paper(),
        }
    }

    /// Total LUT percentage across components.
    pub fn total_lut(&self) -> f64 {
        self.utilization.iter().map(|u| u.lut).sum()
    }

    /// Total BRAM percentage across components.
    pub fn total_bram(&self) -> f64 {
        self.utilization.iter().map(|u| u.bram).sum()
    }
}

impl Default for NmpOverheads {
    fn default() -> Self {
        NmpOverheads::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_sizing_matches_paper() {
        let s = SramSizing::paper();
        assert!((s.queue_bytes() - 512.0).abs() < 1e-9);
        assert!((s.total_bytes() - 1536.0).abs() < 1e-9, "1.5 KB overall");
    }

    #[test]
    fn node_power_matches_paper() {
        let p = DimmPowerModel::paper();
        assert!((p.node_watts(32) - 416.0).abs() < 1e-9);
        assert!(p.fits_oam_envelope(32));
        assert!(!p.fits_oam_envelope(64));
        assert!((p.node_capacity_gib(32) - 4096.0).abs() < 1e-9);
    }

    #[test]
    fn table3_rows() {
        let rows = FpgaUtilization::table3();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1].component, "FPU");
        assert!(rows[1].lut > rows[2].lut, "FPU larger than fixed ALU");
        // Every entry is a tiny fraction of the FPGA.
        for r in rows {
            assert!(r.lut <= 0.2 && r.bram <= 0.01);
        }
    }

    #[test]
    fn scaling_model() {
        let wide = FpgaUtilization::fpu().scaled(32, 1024);
        assert!((wide.lut - 0.38).abs() < 1e-9);
        assert!((wide.bram - 0.0).abs() < 1e-9);
        let queues = FpgaUtilization::sram_queues().scaled(16, 1024);
        assert!((queues.bram - 0.02).abs() < 1e-9);
    }

    #[test]
    fn overheads_aggregate() {
        let o = NmpOverheads::paper();
        assert!((o.total_lut() - 0.28).abs() < 1e-9);
        assert!((o.total_bram() - 0.01).abs() < 1e-9);
    }
}
