//! NMP-local address lowering.
//!
//! A TensorISA instruction names tensors by *global* 64-byte block
//! addresses within the TensorNode's pooled address space. The paper's
//! rank-interleaved mapping (Fig. 7) assigns global block `b` to DIMM
//! `b % node_dim`; within that DIMM the block lives at local block
//! `b / node_dim`. The NMP-local memory controller performs this lowering
//! before generating DRAM commands for its own chips.

use tensordimm_isa::{AccessKind, AccessPlan, BlockAccess};

use tensordimm_dram::{Request, Trace};

/// Lowers global (node-wide) block addresses to one DIMM's local bytes.
///
/// # Example
///
/// ```
/// use tensordimm_nmp::LocalAddressMap;
///
/// let map = LocalAddressMap::new(32, 0);
/// // Global block 64 lives on DIMM 64 % 32 == 0 at local block 2.
/// assert_eq!(map.local_byte_addr(64), Some(2 * 64));
/// // Global block 65 belongs to DIMM 1, not this one.
/// assert_eq!(map.local_byte_addr(65), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalAddressMap {
    node_dim: u64,
    tid: u64,
}

impl LocalAddressMap {
    /// The mapping for DIMM `tid` of a `node_dim`-DIMM node.
    pub fn new(node_dim: u64, tid: u64) -> Self {
        LocalAddressMap { node_dim, tid }
    }

    /// Number of DIMMs in the node.
    pub fn node_dim(&self) -> u64 {
        self.node_dim
    }

    /// This DIMM's id.
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// Local byte address of a global block owned by this DIMM, or `None`
    /// if the block is striped to another DIMM.
    pub fn local_byte_addr(&self, global_block: u64) -> Option<u64> {
        if global_block % self.node_dim == self.tid {
            Some(global_block / self.node_dim * 64)
        } else {
            None
        }
    }

    /// Local byte address for *replicated* data (the GATHER index list is
    /// read by every DIMM): the block is mapped into local space by the
    /// same division, regardless of its stripe residue.
    pub fn replicated_byte_addr(&self, global_block: u64) -> u64 {
        global_block / self.node_dim * 64
    }

    /// Lower a whole access plan into a local DRAM trace.
    ///
    /// Accesses striped to this DIMM use [`Self::local_byte_addr`]; accesses
    /// outside the stripe (index-list reads) use the replicated mapping.
    /// Addresses are wrapped into `capacity_bytes` — the lowering is
    /// timing-faithful (stride and locality preserved) rather than
    /// allocation-faithful; the functional data path lives in the ISA
    /// executor.
    pub fn lower_plan(&self, plan: &AccessPlan, capacity_bytes: u64) -> Trace {
        let mut trace = Trace::new();
        for access in plan {
            let byte = self.lower_access(access) % capacity_bytes;
            match access.kind {
                AccessKind::Read => {
                    trace.push(tensordimm_dram::TraceEntry::now(Request::read(byte)))
                }
                AccessKind::Write => {
                    trace.push(tensordimm_dram::TraceEntry::now(Request::write(byte)))
                }
            };
        }
        trace
    }

    fn lower_access(&self, access: &BlockAccess) -> u64 {
        self.local_byte_addr(access.block)
            .unwrap_or_else(|| self.replicated_byte_addr(access.block))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensordimm_isa::{DimmContext, Instruction, ReduceOp};

    #[test]
    fn stripe_ownership() {
        let map = LocalAddressMap::new(4, 2);
        assert_eq!(map.local_byte_addr(2), Some(0));
        assert_eq!(map.local_byte_addr(6), Some(64));
        assert_eq!(map.local_byte_addr(3), None);
        assert_eq!(map.node_dim(), 4);
        assert_eq!(map.tid(), 2);
    }

    #[test]
    fn replicated_mapping_ignores_residue() {
        let map = LocalAddressMap::new(4, 2);
        assert_eq!(map.replicated_byte_addr(3), 0);
        assert_eq!(map.replicated_byte_addr(7), 64);
    }

    #[test]
    fn consecutive_owned_blocks_become_sequential_locally() {
        // The heart of the bandwidth-scaling claim: the stripe owned by one
        // DIMM is *contiguous* in its local DRAM, so every DIMM streams.
        let map = LocalAddressMap::new(32, 5);
        let mut prev = None;
        for i in 0..100u64 {
            let g = 5 + 32 * i;
            let local = map.local_byte_addr(g).unwrap();
            if let Some(p) = prev {
                assert_eq!(local, p + 64);
            }
            prev = Some(local);
        }
    }

    #[test]
    fn lower_reduce_plan_to_trace() {
        let r = Instruction::Reduce {
            input1: 0,
            input2: 1024,
            output_base: 2048,
            count: 64,
            op: ReduceOp::Add,
        };
        let plan = AccessPlan::for_dimm(&r, DimmContext::new(4, 1), None).unwrap();
        let map = LocalAddressMap::new(4, 1);
        let trace = map.lower_plan(&plan, 1 << 30);
        assert_eq!(trace.len(), plan.len());
        assert_eq!(trace.reads() as u64, plan.reads());
        assert_eq!(trace.writes() as u64, plan.writes());
        // First read: global block 1 -> local block 0.
        assert_eq!(trace.entries()[0].request.addr, 0);
        // Second read: global block 1024 + 1 -> local block 256.
        assert_eq!(trace.entries()[1].request.addr, 256 * 64);
    }

    #[test]
    fn lowering_wraps_capacity() {
        let map = LocalAddressMap::new(1, 0);
        let r = Instruction::Reduce {
            input1: 1 << 40,
            input2: 0,
            output_base: 64,
            count: 1,
            op: ReduceOp::Add,
        };
        let plan = AccessPlan::for_dimm(&r, DimmContext::new(1, 0), None).unwrap();
        let trace = map.lower_plan(&plan, 1 << 20);
        for e in trace.entries() {
            assert!(e.request.addr < 1 << 20);
        }
    }
}
