//! The TensorDIMM near-memory-processing (NMP) core.
//!
//! Section 4.2 of the paper places an NMP core inside the buffer device of a
//! commodity buffered DIMM. The core consists of:
//!
//! * a DDR PHY + protocol engine (modeled by the [`tensordimm_dram`]
//!   channel it drives),
//! * an **NMP-local memory controller** that decodes TensorISA instructions
//!   into DRAM command streams ([`mem_ctrl`]),
//! * **input (A, B) and output (C) SRAM queues** sized by the
//!   bandwidth-delay product — 25.6 GB/s × 20 ns = 512 B each ([`queue`]),
//! * a **16-wide vector ALU at 150 MHz** performing the element-wise
//!   operations ([`alu`]).
//!
//! [`core::NmpCore`] ties these together in a pipeline simulation:
//! reads are issued to the local DRAM while the input queues have space,
//! the ALU consumes completed pairs at its own clock, and results drain
//! back to DRAM through the output queue. [`overhead`] reproduces the
//! implementation-cost analysis (Table 3 and Section 6.5).
//!
//! # Example
//!
//! Run a REDUCE slice on one DIMM and inspect the achieved local bandwidth:
//!
//! ```
//! use tensordimm_isa::{DimmContext, Instruction, ReduceOp};
//! use tensordimm_nmp::{NmpConfig, NmpCore};
//!
//! let mut core = NmpCore::new(NmpConfig::default())?;
//! let reduce = Instruction::Reduce {
//!     input1: 0,
//!     input2: 1 << 16,
//!     output_base: 1 << 17,
//!     count: 32 * 512, // 1 MiB tensor over 32 DIMMs
//!     op: ReduceOp::Add,
//! };
//! let stats = core.run_instruction(&reduce, DimmContext::new(32, 0), None)?;
//! assert!(stats.achieved_gbps() > 10.0, "got {}", stats.achieved_gbps());
//! # Ok::<(), tensordimm_nmp::NmpError>(())
//! ```

pub mod alu;
pub mod core;
pub mod mem_ctrl;
pub mod overhead;
pub mod queue;

pub use crate::core::{NmpCore, NmpRunStats};
pub use alu::VectorAlu;
pub use mem_ctrl::LocalAddressMap;
pub use overhead::{DimmPowerModel, FpgaUtilization, NmpOverheads, SramSizing};
pub use queue::SramQueue;

use std::error::Error;
use std::fmt;

use tensordimm_dram::DramError;
use tensordimm_isa::IsaError;

/// Configuration of one NMP core and its local DRAM.
#[derive(Debug, Clone, PartialEq)]
pub struct NmpConfig {
    /// The DIMM-local DRAM channel (defaults to DDR4-3200, 25.6 GB/s).
    pub dram: tensordimm_dram::DramConfig,
    /// Vector ALU lanes (16 in the paper: one 64-byte block per op).
    pub alu_lanes: usize,
    /// Vector ALU clock in MHz (150 in the paper).
    pub alu_clock_mhz: u64,
    /// Capacity of each input SRAM queue (A and B) in bytes.
    pub input_queue_bytes: usize,
    /// Capacity of the output SRAM queue (C) in bytes.
    pub output_queue_bytes: usize,
    /// Hot-row SRAM cache in front of the local DRAM gather path
    /// (disabled by default: the paper's TensorDIMM has no such tier —
    /// RecNMP-style hot-entry caching is an opt-in extension).
    pub hot_rows: tensordimm_cache::HotRowCacheConfig,
    /// Cross-check every `run_plan` replay against the static analyzer
    /// (`tensordimm_analysis`): the replayed DRAM request counts must
    /// match the statically predicted ones and the cycle count must
    /// dominate the physical lower bound. Off by default — the check runs
    /// after timing completes, so disabling it is bit-identical and adds
    /// zero hot-path work; tests and CI turn it on.
    pub verify: bool,
}

impl NmpConfig {
    /// The paper's configuration: DDR4-3200 local channel, 16-wide ALU at
    /// 150 MHz, 512-byte queues (Section 4.2).
    pub fn paper() -> Self {
        NmpConfig {
            dram: tensordimm_dram::DramConfig::ddr4_3200_channel(),
            alu_lanes: 16,
            alu_clock_mhz: 150,
            input_queue_bytes: 512,
            output_queue_bytes: 512,
            hot_rows: tensordimm_cache::HotRowCacheConfig::disabled(),
            verify: false,
        }
    }

    /// Input queue capacity in 64-byte entries.
    pub fn input_queue_entries(&self) -> usize {
        self.input_queue_bytes / 64
    }

    /// Output queue capacity in 64-byte entries.
    pub fn output_queue_entries(&self) -> usize {
        self.output_queue_bytes / 64
    }

    /// DRAM-clock cycles per ALU operation (one 64-byte block pair).
    pub fn alu_interval_cycles(&self) -> f64 {
        self.dram.timing.clock_mhz as f64 / self.alu_clock_mhz as f64
    }
}

impl Default for NmpConfig {
    fn default() -> Self {
        NmpConfig::paper()
    }
}

/// Errors from the NMP core.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NmpError {
    /// The local DRAM configuration is invalid.
    Dram(DramError),
    /// The instruction is malformed for this node.
    Isa(IsaError),
    /// The hot-row cache geometry is invalid.
    Cache(tensordimm_cache::CacheError),
    /// A queue capacity is too small to hold even one 64-byte entry.
    QueueTooSmall {
        /// Offending capacity in bytes.
        bytes: usize,
    },
    /// Verify mode found the replay and the static analyzer in
    /// disagreement (see [`NmpConfig::verify`]).
    Verify(tensordimm_analysis::VerifyFailure),
}

impl fmt::Display for NmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NmpError::Dram(e) => write!(f, "local DRAM error: {e}"),
            NmpError::Isa(e) => write!(f, "instruction error: {e}"),
            NmpError::Cache(e) => write!(f, "hot-row cache error: {e}"),
            NmpError::QueueTooSmall { bytes } => {
                write!(f, "SRAM queue of {bytes} bytes cannot hold a 64-byte entry")
            }
            NmpError::Verify(e) => write!(f, "verify mode: {e}"),
        }
    }
}

impl Error for NmpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NmpError::Dram(e) => Some(e),
            NmpError::Isa(e) => Some(e),
            NmpError::Cache(e) => Some(e),
            NmpError::QueueTooSmall { .. } => None,
            NmpError::Verify(e) => Some(e),
        }
    }
}

impl From<tensordimm_analysis::VerifyFailure> for NmpError {
    fn from(e: tensordimm_analysis::VerifyFailure) -> Self {
        NmpError::Verify(e)
    }
}

impl From<DramError> for NmpError {
    fn from(e: DramError) -> Self {
        NmpError::Dram(e)
    }
}

impl From<IsaError> for NmpError {
    fn from(e: IsaError) -> Self {
        NmpError::Isa(e)
    }
}

impl From<tensordimm_cache::CacheError> for NmpError {
    fn from(e: tensordimm_cache::CacheError) -> Self {
        NmpError::Cache(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_constants() {
        let c = NmpConfig::paper();
        assert_eq!(c.alu_lanes, 16);
        assert_eq!(c.alu_clock_mhz, 150);
        assert_eq!(c.input_queue_entries(), 8);
        assert_eq!(c.output_queue_entries(), 8);
        // 1600 MHz DRAM clock / 150 MHz ALU.
        assert!((c.alu_interval_cycles() - 10.666).abs() < 1e-2);
    }

    #[test]
    fn error_wrapping() {
        let e: NmpError = DramError::InvalidGeometry {
            parameter: "rows",
            value: 3,
        }
        .into();
        assert!(e.to_string().contains("rows"));
        let e: NmpError = IsaError::UnknownOpcode(9).into();
        assert!(e.to_string().contains("opcode"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
