//! The NMP core pipeline simulation.
//!
//! Models the life of one TensorISA instruction on one TensorDIMM:
//!
//! 1. the NMP-local memory controller issues the instruction's DRAM reads
//!    in order while the input SRAM queues have space,
//! 2. completed reads feed the vector ALU at its 150 MHz clock,
//! 3. results drain through the output queue back to DRAM as writes.
//!
//! The memory side is the cycle-level simulator of [`tensordimm_dram`];
//! the ALU and queues are the models in [`crate::alu`] and [`crate::queue`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tensordimm_cache::{HotRowCache, HotRowStats};
use tensordimm_dram::{MemoryStats, MemorySystem, Request, RequestKind};
use tensordimm_isa::{AccessKind, AccessPlan, DimmContext, Instruction};

use crate::alu::VectorAlu;
use crate::mem_ctrl::LocalAddressMap;
use crate::{NmpConfig, NmpError};

/// Outcome of running one instruction slice on one DIMM.
#[derive(Debug, Clone, PartialEq)]
pub struct NmpRunStats {
    /// DRAM-clock cycles from issue to drain.
    pub cycles: u64,
    /// Local-memory statistics.
    pub memory: MemoryStats,
    /// Blocks read from local DRAM.
    pub reads: u64,
    /// Blocks written to local DRAM.
    pub writes: u64,
    /// Vector-ALU operations performed.
    pub alu_ops: u64,
    /// Cycles the read stream stalled on a full input queue.
    pub input_stall_cycles: u64,
    /// Cycles the write stream stalled waiting for operands or the ALU.
    pub output_wait_cycles: u64,
    /// Hot-row cache counters (all zero when the cache is disabled).
    pub hot_rows: HotRowStats,
}

impl NmpRunStats {
    /// Elapsed time in nanoseconds.
    pub fn elapsed_ns(&self) -> f64 {
        self.cycles as f64 * self.memory.timing.ns_per_cycle()
    }

    /// Achieved local bandwidth in GB/s (blocks moved over elapsed time).
    pub fn achieved_gbps(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        (self.reads + self.writes) as f64 * 64.0 / self.elapsed_ns()
    }

    /// Delivered gather bandwidth in GB/s: DRAM traffic *plus* the blocks
    /// the hot-row cache served from SRAM. This is what the gather
    /// consumer observes; it equals [`NmpRunStats::achieved_gbps`]
    /// bit-for-bit when the cache is disabled or never hits.
    pub fn delivered_gbps(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        (self.reads + self.writes + self.hot_rows.hit_blocks) as f64 * 64.0 / self.elapsed_ns()
    }

    /// Achieved / peak local bandwidth.
    pub fn utilization(&self) -> f64 {
        let peak = self.memory.peak_gbps();
        if peak == 0.0 {
            0.0
        } else {
            self.achieved_gbps() / peak
        }
    }
}

/// One TensorDIMM's NMP core: local DRAM + queues + vector ALU.
///
/// See the crate-level example for usage.
#[derive(Debug, Clone)]
pub struct NmpCore {
    config: NmpConfig,
}

impl NmpCore {
    /// Build a core, validating its configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NmpError::Dram`] for an invalid local-DRAM configuration,
    /// [`NmpError::Cache`] for a bad hot-row cache geometry, or
    /// [`NmpError::QueueTooSmall`] for queues below one 64-byte entry.
    pub fn new(config: NmpConfig) -> Result<Self, NmpError> {
        config.dram.validate()?;
        config.hot_rows.validate()?;
        if config.input_queue_entries() == 0 {
            return Err(NmpError::QueueTooSmall {
                bytes: config.input_queue_bytes,
            });
        }
        if config.output_queue_entries() == 0 {
            return Err(NmpError::QueueTooSmall {
                bytes: config.output_queue_bytes,
            });
        }
        Ok(NmpCore { config })
    }

    /// The core's configuration.
    pub fn config(&self) -> &NmpConfig {
        &self.config
    }

    /// Execute `ctx.tid`'s slice of `instr` and report timing statistics.
    ///
    /// `indices` carries the runtime index values for GATHER (ignored for
    /// the other opcodes). The simulation is timing-only; pair it with
    /// [`tensordimm_isa::execute_on_dimm`] for the functional result.
    ///
    /// # Errors
    ///
    /// Propagates instruction-validation and DRAM-configuration errors.
    pub fn run_instruction(
        &mut self,
        instr: &Instruction,
        ctx: DimmContext,
        indices: Option<&[u64]>,
    ) -> Result<NmpRunStats, NmpError> {
        let plan = AccessPlan::for_dimm(instr, ctx, indices)?;
        self.run_plan(instr, &plan, ctx)
    }

    /// Replay `ctx.tid`'s slice of `instr` through the local DRAM without
    /// modeling the SRAM queues or the vector ALU — the methodology of the
    /// paper's cycle-level evaluation (Section 5), which feeds op traces
    /// into Ramulator and measures pure DRAM bandwidth utilization.
    ///
    /// Use [`NmpCore::run_instruction`] for the full pipeline model; use
    /// this for apples-to-apples reproduction of Figs. 11–12.
    ///
    /// # Errors
    ///
    /// Propagates instruction-validation and DRAM-configuration errors.
    pub fn replay_instruction(
        &mut self,
        instr: &Instruction,
        ctx: DimmContext,
        indices: Option<&[u64]>,
    ) -> Result<NmpRunStats, NmpError> {
        let plan = AccessPlan::for_dimm(instr, ctx, indices)?;
        let map = LocalAddressMap::new(ctx.node_dim, ctx.tid);
        let memory = MemorySystem::new(self.config.dram.clone())?;
        let trace = map.lower_plan(&plan, self.config.dram.capacity_bytes());
        let mut runner = tensordimm_dram::TraceRunner::new(memory);
        let stats = runner.run(&trace)?;
        Ok(NmpRunStats {
            cycles: stats.totals.cycles,
            reads: stats.totals.reads,
            writes: stats.totals.writes,
            alu_ops: 0,
            input_stall_cycles: 0,
            output_wait_cycles: 0,
            hot_rows: HotRowStats::default(),
            memory: stats,
        })
    }

    /// Execute a pre-computed access plan (used by the node-level runtime,
    /// which shares one plan across symmetric DIMMs).
    ///
    /// # Errors
    ///
    /// Returns [`NmpError::Dram`] if the local memory cannot be constructed.
    pub fn run_plan(
        &mut self,
        instr: &Instruction,
        plan: &AccessPlan,
        ctx: DimmContext,
    ) -> Result<NmpRunStats, NmpError> {
        let map = LocalAddressMap::new(ctx.node_dim, ctx.tid);
        let mut memory = MemorySystem::new(self.config.dram.clone())?;
        let capacity = self.config.dram.capacity_bytes();
        let mut alu = VectorAlu::new(self.config.alu_clock_mhz, self.config.dram.timing.clock_mhz);
        let alu_ops_per_write: u64 = match instr {
            Instruction::Gather { .. } => 0, // forwarded input -> output
            Instruction::Reduce { .. } => 1,
            Instruction::Average { group, .. } => group + 1,
        };

        // The optional hot-row SRAM tier: consulted once per gathered row
        // (on its first owned block); a hit drops the row's DRAM reads
        // from the stream entirely and sources its writes from SRAM.
        let mut cache = if self.config.hot_rows.is_enabled() {
            Some(HotRowCache::new(self.config.hot_rows)?)
        } else {
            None
        };

        // Split the plan into an ordered read stream and an ordered write
        // stream; each write records how many reads precede it (its operand
        // dependences are a subset of that prefix) and whether its operand
        // comes from the hot-row cache instead of DRAM.
        let mut reads: Vec<u64> = Vec::with_capacity(plan.len());
        // (local addr, required reads, operand from cache)
        let mut writes: Vec<(u64, u64, bool)> = Vec::new();
        // Whether the gather row currently being streamed hit the cache
        // (spans the row's whole read/write block sequence; non-gather
        // accesses carry no row tag and never set it).
        let mut row_hit = false;
        for access in plan {
            let local = map
                .local_byte_addr(access.block)
                .unwrap_or_else(|| map.replicated_byte_addr(access.block))
                % capacity;
            match access.kind {
                AccessKind::Read => {
                    match (&mut cache, access.row) {
                        (Some(c), Some(row)) => {
                            if row.first_block {
                                row_hit = c.access(row.row);
                            }
                            if row_hit {
                                c.credit_hit_blocks(1);
                            } else {
                                reads.push(local);
                            }
                        }
                        _ => reads.push(local),
                    };
                }
                AccessKind::Write => {
                    // `row_hit` is only ever set while a gather row that
                    // hit the cache is being streamed, and each gather
                    // write directly follows its row's read slot.
                    writes.push((local, reads.len() as u64, row_hit));
                }
            }
        }

        let input_capacity = 2 * self.config.input_queue_entries(); // A and B
        let output_capacity = self.config.output_queue_entries();

        let mut read_pos = 0usize;
        let mut write_pos = 0usize;
        let mut reads_retired: u64 = 0;
        let mut read_done_times: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
        let mut pending_write_ready: Option<f64> = None;
        // The SRAM read port serializes hit-row streaming: each cached
        // block becomes available `hit_latency_cycles` after the port
        // frees up.
        let mut sram_free_at = 0.0f64;
        let hit_latency = self.config.hot_rows.hit_latency_cycles as f64;
        let mut input_stall_cycles = 0u64;
        let mut output_wait_cycles = 0u64;
        // Reused across drains so the hot loop never allocates per cycle.
        let mut drained: Vec<tensordimm_dram::request::Completion> = Vec::new();
        // The output (C) queue drains into the controller's write queue: a
        // result occupies SRAM only until the controller accepts it (posted
        // write), so back-pressure comes from the controller's queue depth
        // via `push` returning false. The SRAM capacity itself bounds how
        // far the ALU may run ahead of controller acceptance — with the
        // one-write-per-ALU-op issue discipline below, that window is the
        // single `pending_write_ready` slot plus `output_capacity` entries
        // already handed over, which the controller depth dominates.
        let _ = output_capacity;

        // Event-driven co-simulation: each iteration replays exactly one
        // cycle's worth of the original tick-stepped pipeline, but when an
        // iteration makes no progress the loop jumps straight to the next
        // cycle anything can change — a DRAM event, a read retirement, or
        // the ALU finishing — crediting the stall counters for the skipped
        // span. All gating state (SRAM occupancy, operand counts, ALU
        // readiness) is frozen between those instants, so the replay is
        // bit-identical to ticking through every cycle.
        while read_pos < reads.len() || write_pos < writes.len() || memory.is_busy() {
            let now = memory.cycle();

            // Retire finished reads (frees input SRAM-queue entries).
            while let Some(&Reverse(t)) = read_done_times.peek() {
                if t <= now {
                    read_done_times.pop();
                    reads_retired += 1;
                } else {
                    break;
                }
            }

            let mut progressed = false;
            let mut input_blocked = false;
            let mut output_blocked = false;

            // Issue the next read while the input queues have space.
            // Outstanding = issued to the controller but not yet retired.
            if read_pos < reads.len() {
                if read_pos as u64 - reads_retired < input_capacity as u64 {
                    let req = Request::read(reads[read_pos]).with_id(read_pos as u64);
                    if memory.push(req).expect("lowered addresses are in range") {
                        read_pos += 1;
                        progressed = true;
                    }
                } else {
                    input_stall_cycles += 1;
                    input_blocked = true;
                }
            }

            // Issue the next write once its operands arrived and the ALU
            // (if involved) has produced the result. Cache-sourced writes
            // wait on the SRAM read port instead of a DRAM read.
            if write_pos < writes.len() {
                let (addr, required, from_cache) = writes[write_pos];
                if reads_retired >= required {
                    let ready = *pending_write_ready.get_or_insert_with(|| {
                        if from_cache {
                            sram_free_at = sram_free_at.max(now as f64) + hit_latency;
                            sram_free_at
                        } else if alu_ops_per_write == 0 {
                            now as f64
                        } else {
                            alu.issue(now as f64, alu_ops_per_write)
                        }
                    });
                    if (now as f64) >= ready {
                        if memory
                            .push(Request::write(addr))
                            .expect("lowered addresses are in range")
                        {
                            write_pos += 1;
                            pending_write_ready = None;
                            progressed = true;
                        }
                    } else {
                        output_wait_cycles += 1;
                        output_blocked = true;
                    }
                } else {
                    output_wait_cycles += 1;
                    output_blocked = true;
                }
            }

            // Register newly issued read bursts' completion times.
            drained.clear();
            memory.drain_completions_into(&mut drained);
            for completion in &drained {
                if completion.request.kind == RequestKind::Read {
                    read_done_times.push(Reverse(completion.finished_at));
                }
            }

            if progressed {
                memory.tick();
                continue;
            }

            // No stream moved this cycle: wake at the next instant anything
            // can — the memory's next event (command issuable, refresh,
            // burst completion), the next read retirement, or ALU
            // readiness.
            let mut wake = memory.next_event_cycle().unwrap_or(u64::MAX);
            if let Some(&Reverse(t)) = read_done_times.peek() {
                wake = wake.min(t);
            }
            if let Some(ready) = pending_write_ready {
                wake = wake.min(ready.ceil() as u64);
            }
            if wake == u64::MAX {
                // Nothing to wait for (cannot happen while the loop
                // condition holds, but never wedge): fall back to a tick.
                memory.tick();
                continue;
            }
            let target = wake.max(now + 1);
            // The skipped cycles [now + 1, target) repeat this iteration's
            // blocked state; credit the stall counters as the tick loop
            // would have.
            let span = target - now - 1;
            if span > 0 {
                if input_blocked {
                    input_stall_cycles += span;
                }
                if output_blocked {
                    output_wait_cycles += span;
                }
            }
            memory.advance_to(target);
        }

        let stats = memory.stats();
        let stats = NmpRunStats {
            cycles: memory.cycle(),
            reads: stats.totals.reads,
            writes: stats.totals.writes,
            alu_ops: alu.ops(),
            input_stall_cycles,
            output_wait_cycles,
            hot_rows: cache.map(|c| c.stats()).unwrap_or_default(),
            memory: stats,
        };
        if self.config.verify {
            self.verify_run(plan, ctx, &stats)?;
        }
        Ok(stats)
    }

    /// Cross-check a finished replay against the static analyzer: the
    /// DRAM request counts must match its prediction exactly and the
    /// cycle count must dominate the physical lower bound. Runs only in
    /// verify mode, after timing completes — the replay itself is
    /// untouched.
    fn verify_run(
        &self,
        plan: &AccessPlan,
        ctx: DimmContext,
        stats: &NmpRunStats,
    ) -> Result<(), NmpError> {
        let analysis = match tensordimm_analysis::analyze_plan(
            plan,
            ctx,
            &self.config.dram,
            self.config.hot_rows,
        ) {
            Ok(a) => a,
            Err(tensordimm_analysis::AnalysisError::Isa(e)) => return Err(NmpError::Isa(e)),
            Err(tensordimm_analysis::AnalysisError::Dram(e)) => return Err(NmpError::Dram(e)),
            Err(tensordimm_analysis::AnalysisError::Cache(e)) => return Err(NmpError::Cache(e)),
        };
        if analysis.dram_reads != stats.reads || analysis.dram_writes != stats.writes {
            return Err(NmpError::Verify(
                tensordimm_analysis::VerifyFailure::PlanMismatch {
                    expected_reads: analysis.dram_reads,
                    expected_writes: analysis.dram_writes,
                    actual_reads: stats.reads,
                    actual_writes: stats.writes,
                },
            ));
        }
        let lower_bound = analysis.lower_bound();
        if stats.cycles < lower_bound {
            return Err(NmpError::Verify(
                tensordimm_analysis::VerifyFailure::BoundExceeded {
                    lower_bound,
                    cycles: stats.cycles,
                },
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensordimm_isa::ReduceOp;

    fn no_refresh() -> NmpConfig {
        let mut c = NmpConfig::paper();
        c.dram.refresh_enabled = false;
        c
    }

    fn reduce(count: u64) -> Instruction {
        Instruction::Reduce {
            input1: 0,
            input2: 1 << 20,
            output_base: 1 << 21,
            count,
            op: ReduceOp::Add,
        }
    }

    #[test]
    fn reduce_streams_near_local_peak() {
        let mut core = NmpCore::new(no_refresh()).unwrap();
        let stats = core
            .run_instruction(&reduce(32 * 1024), DimmContext::new(32, 0), None)
            .unwrap();
        // 2 reads + 1 write per op, all sequential locally: expect >70% of
        // the 25.6 GB/s local channel.
        assert!(
            stats.utilization() > 0.7,
            "utilization {:.3}",
            stats.utilization()
        );
        assert_eq!(stats.reads, 2 * 1024);
        assert_eq!(stats.writes, 1024);
        assert_eq!(stats.alu_ops, 1024);
    }

    #[test]
    fn gather_has_no_alu_ops() {
        let mut core = NmpCore::new(no_refresh()).unwrap();
        let indices: Vec<u64> = (0..256).map(|i| (i * 37) % 1024).collect();
        let g = Instruction::Gather {
            table_base: 0,
            idx_base: 1 << 22,
            output_base: 1 << 23,
            count: indices.len() as u64,
            vec_blocks: 32,
        };
        let stats = core
            .run_instruction(&g, DimmContext::new(32, 3), Some(&indices))
            .unwrap();
        assert_eq!(stats.alu_ops, 0);
        // One block per embedding on this DIMM plus index blocks.
        assert_eq!(stats.reads, 256 + 16);
        assert_eq!(stats.writes, 256);
    }

    #[test]
    fn average_alu_ops_scale_with_group() {
        let mut core = NmpCore::new(no_refresh()).unwrap();
        let a = Instruction::Average {
            input_base: 0,
            output_base: 1 << 22,
            count: 64,
            group: 8,
            vec_blocks: 32,
        };
        let stats = core
            .run_instruction(&a, DimmContext::new(32, 0), None)
            .unwrap();
        // 64 outputs x 1 owned block each x (8 accumulates + 1 scale).
        assert_eq!(stats.alu_ops, 64 * 9);
        assert_eq!(stats.reads, 64 * 8);
        assert_eq!(stats.writes, 64);
    }

    /// The tentpole behavior: a head-sized hot-row cache on a repetitive
    /// gather skips the hot rows' DRAM reads, finishes in fewer cycles,
    /// and reports the skipped traffic in `hot_rows` / `delivered_gbps`.
    #[test]
    fn hot_row_cache_skips_dram_and_shortens_gathers() {
        use tensordimm_cache::HotRowCacheConfig;
        // 256 lookups over only 16 distinct rows: a 16-row cache captures
        // every revisit.
        let indices: Vec<u64> = (0..256).map(|i| (i * 37) % 16).collect();
        let g = Instruction::Gather {
            table_base: 0,
            idx_base: 1 << 22,
            output_base: 1 << 23,
            count: indices.len() as u64,
            vec_blocks: 32,
        };
        let ctx = DimmContext::new(32, 3);
        let mut cold = NmpCore::new(no_refresh()).unwrap();
        let base = cold.run_instruction(&g, ctx, Some(&indices)).unwrap();
        assert_eq!(base.hot_rows, tensordimm_cache::HotRowStats::default());
        assert_eq!(base.delivered_gbps(), base.achieved_gbps());

        let mut cfg = no_refresh();
        cfg.hot_rows = HotRowCacheConfig::fully_associative(16);
        let mut warm = NmpCore::new(cfg).unwrap();
        let s = warm.run_instruction(&g, ctx, Some(&indices)).unwrap();
        assert_eq!(s.hot_rows.misses, 16, "one cold miss per distinct row");
        assert_eq!(s.hot_rows.hits, 256 - 16);
        assert_eq!(s.hot_rows.evictions, 0);
        // Each hit row owns one block on this DIMM (32 vec_blocks / 32).
        assert_eq!(s.hot_rows.hit_blocks, s.hot_rows.hits);
        assert_eq!(s.reads, base.reads - s.hot_rows.hit_blocks);
        assert_eq!(s.writes, base.writes, "outputs still drain to DRAM");
        assert!(
            s.cycles < base.cycles,
            "cached {} vs uncached {} cycles",
            s.cycles,
            base.cycles
        );
        assert!(s.delivered_gbps() > s.achieved_gbps());
        assert!(s.delivered_gbps() > base.delivered_gbps());
    }

    /// A zero-capacity cache must not perturb the pipeline at all — the
    /// whole stats struct (completions, stalls, DRAM totals) is
    /// byte-identical to a build with no cache plumbing exercised.
    #[test]
    fn disabled_cache_is_bit_identical() {
        use tensordimm_cache::HotRowCacheConfig;
        let indices: Vec<u64> = (0..256).map(|i| (i * 37) % 1024).collect();
        let g = Instruction::Gather {
            table_base: 0,
            idx_base: 1 << 22,
            output_base: 1 << 23,
            count: indices.len() as u64,
            vec_blocks: 32,
        };
        let ctx = DimmContext::new(32, 3);
        let mut plain = NmpCore::new(NmpConfig::paper()).unwrap();
        let mut zeroed_cfg = NmpConfig::paper();
        zeroed_cfg.hot_rows = HotRowCacheConfig {
            capacity_rows: 0,
            ways: 4,
            hit_latency_cycles: 77,
        };
        let mut zeroed = NmpCore::new(zeroed_cfg).unwrap();
        let a = plain.run_instruction(&g, ctx, Some(&indices)).unwrap();
        let b = zeroed.run_instruction(&g, ctx, Some(&indices)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_cache_geometry_is_rejected() {
        use tensordimm_cache::HotRowCacheConfig;
        let mut cfg = NmpConfig::paper();
        cfg.hot_rows = HotRowCacheConfig::set_associative(48, 4); // 12 sets
        assert!(matches!(NmpCore::new(cfg), Err(NmpError::Cache(_))));
    }

    /// Verify mode re-derives the replay's DRAM traffic and cycle lower
    /// bound statically; it must pass on every opcode and change nothing
    /// in the reported stats (the check runs after timing completes).
    #[test]
    fn verify_mode_is_bit_identical_and_passes() {
        let indices: Vec<u64> = (0..256).map(|i| (i * 37) % 1024).collect();
        let ctx = DimmContext::new(32, 3);
        let programs: Vec<(Instruction, Option<&[u64]>)> = vec![
            (
                Instruction::Gather {
                    table_base: 0,
                    idx_base: 1 << 22,
                    output_base: 1 << 23,
                    count: indices.len() as u64,
                    vec_blocks: 32,
                },
                Some(&indices),
            ),
            (reduce(32 * 1024), None),
            (
                Instruction::Average {
                    input_base: 0,
                    output_base: 1 << 22,
                    count: 64,
                    group: 8,
                    vec_blocks: 32,
                },
                None,
            ),
        ];
        for refresh in [false, true] {
            for (instr, idx) in &programs {
                let mut cfg = NmpConfig::paper();
                cfg.dram.refresh_enabled = refresh;
                let mut plain = NmpCore::new(cfg.clone()).unwrap();
                cfg.verify = true;
                let mut checked = NmpCore::new(cfg).unwrap();
                let a = plain.run_instruction(instr, ctx, *idx).unwrap();
                let b = checked.run_instruction(instr, ctx, *idx).unwrap();
                assert_eq!(a, b, "verify mode perturbed {instr:?}");
            }
        }
    }

    /// Verify mode also holds with the hot-row SRAM tier enabled — the
    /// analyzer mirrors the cache's hit/skip bookkeeping exactly.
    #[test]
    fn verify_mode_passes_with_hot_row_cache() {
        use tensordimm_cache::HotRowCacheConfig;
        let indices: Vec<u64> = (0..256).map(|i| (i * 37) % 16).collect();
        let g = Instruction::Gather {
            table_base: 0,
            idx_base: 1 << 22,
            output_base: 1 << 23,
            count: indices.len() as u64,
            vec_blocks: 32,
        };
        let mut cfg = NmpConfig::paper();
        cfg.hot_rows = HotRowCacheConfig::fully_associative(16);
        let mut plain = NmpCore::new(cfg.clone()).unwrap();
        cfg.verify = true;
        let mut checked = NmpCore::new(cfg).unwrap();
        let ctx = DimmContext::new(32, 3);
        let a = plain.run_instruction(&g, ctx, Some(&indices)).unwrap();
        let b = checked.run_instruction(&g, ctx, Some(&indices)).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.hot_rows.hits, 256 - 16);
    }

    #[test]
    fn tiny_queues_hurt_bandwidth() {
        let mut fast = NmpCore::new(no_refresh()).unwrap();
        let mut slow_cfg = no_refresh();
        slow_cfg.input_queue_bytes = 64; // one entry
        slow_cfg.output_queue_bytes = 64;
        let mut slow = NmpCore::new(slow_cfg).unwrap();
        let instr = reduce(32 * 512);
        let ctx = DimmContext::new(32, 0);
        let f = fast.run_instruction(&instr, ctx, None).unwrap();
        let s = slow.run_instruction(&instr, ctx, None).unwrap();
        assert!(
            f.achieved_gbps() > s.achieved_gbps() * 1.3,
            "queue sizing had no effect: fast {:.2} vs slow {:.2}",
            f.achieved_gbps(),
            s.achieved_gbps()
        );
    }

    #[test]
    fn zero_entry_queue_rejected() {
        let mut cfg = NmpConfig::paper();
        cfg.input_queue_bytes = 32;
        assert!(matches!(
            NmpCore::new(cfg),
            Err(NmpError::QueueTooSmall { .. })
        ));
    }

    #[test]
    fn stats_unit_conversions() {
        let mut core = NmpCore::new(no_refresh()).unwrap();
        let stats = core
            .run_instruction(&reduce(32 * 64), DimmContext::new(32, 0), None)
            .unwrap();
        assert!(stats.elapsed_ns() > 0.0);
        assert!(stats.achieved_gbps() > 0.0);
        assert!(stats.utilization() <= 1.0);
    }
}

#[cfg(test)]
mod event_engine_pins {
    use super::*;
    use tensordimm_isa::ReduceOp;

    /// Exact counters captured from the tick-stepped pipeline before the
    /// event-driven rewrite. The rewrite must replay the pipeline
    /// bit-identically, so any drift here means the time-skipping logic
    /// overshot an event.
    #[test]
    fn run_plan_matches_tick_stepped_baseline() {
        let reduce = Instruction::Reduce {
            input1: 0,
            input2: 1 << 20,
            output_base: 1 << 21,
            count: 32 * 1024,
            op: ReduceOp::Add,
        };
        let indices: Vec<u64> = (0..256).map(|i| (i * 37) % 1024).collect();
        let gather = Instruction::Gather {
            table_base: 0,
            idx_base: 1 << 22,
            output_base: 1 << 23,
            count: indices.len() as u64,
            vec_blocks: 32,
        };

        // (instr, refresh, [cycles, in_stall, out_wait, busy, refreshes,
        //  activates, precharges, row_hits, row_misses, read_latency_sum])
        type PinCase<'a> = (&'a Instruction, Option<&'a [u64]>, bool, [u64; 10]);
        let cases: [PinCase; 3] = [
            (
                &reduce,
                None,
                true,
                [17644, 15330, 16486, 17625, 2, 1271, 1219, 1914, 94, 278763],
            ),
            (
                &reduce,
                None,
                false,
                [17052, 14747, 15917, 17033, 0, 1272, 1208, 1917, 77, 269572],
            ),
            (
                &gather,
                Some(&indices),
                true,
                [2383, 1885, 1982, 2364, 0, 216, 152, 325, 65, 35039],
            ),
        ];
        for (instr, idx, refresh, expect) in cases {
            let mut cfg = NmpConfig::paper();
            cfg.dram.refresh_enabled = refresh;
            let mut core = NmpCore::new(cfg).unwrap();
            let s = core
                .run_instruction(instr, DimmContext::new(32, 0), idx)
                .unwrap();
            let got = [
                s.cycles,
                s.input_stall_cycles,
                s.output_wait_cycles,
                s.memory.totals.busy_cycles,
                s.memory.totals.refreshes,
                s.memory.totals.activates,
                s.memory.totals.precharges,
                s.memory.totals.row_hits,
                s.memory.totals.row_misses,
                s.memory.totals.read_latency_sum,
            ];
            assert_eq!(got, expect, "drift vs tick-stepped baseline: {instr:?}");
        }
    }
}

#[cfg(test)]
mod stall_tests {
    use super::*;
    use tensordimm_isa::ReduceOp;

    #[test]
    fn tiny_queues_report_input_stalls() {
        let mut cfg = NmpConfig::paper();
        cfg.dram.refresh_enabled = false;
        cfg.input_queue_bytes = 64;
        let mut core = NmpCore::new(cfg).unwrap();
        let r = Instruction::Reduce {
            input1: 0,
            input2: 1 << 16,
            output_base: 1 << 17,
            count: 32 * 256,
            op: ReduceOp::Add,
        };
        let stats = core
            .run_instruction(&r, DimmContext::new(32, 0), None)
            .unwrap();
        assert!(
            stats.input_stall_cycles > stats.cycles / 10,
            "one-entry queues should stall the read stream: {} of {}",
            stats.input_stall_cycles,
            stats.cycles
        );
    }

    #[test]
    fn replay_reports_no_pipeline_stalls() {
        let mut core = NmpCore::new(NmpConfig::paper()).unwrap();
        let r = Instruction::Reduce {
            input1: 0,
            input2: 1 << 16,
            output_base: 1 << 17,
            count: 32 * 64,
            op: ReduceOp::Add,
        };
        let stats = core
            .replay_instruction(&r, DimmContext::new(32, 0), None)
            .unwrap();
        assert_eq!(stats.input_stall_cycles, 0);
        assert_eq!(stats.output_wait_cycles, 0);
        assert_eq!(stats.alu_ops, 0, "replay does not model the ALU");
        assert_eq!(stats.reads, 2 * 64);
        assert_eq!(stats.writes, 64);
    }

    #[test]
    fn slower_alu_lengthens_average_not_gather() {
        let gather_idx: Vec<u64> = (0..256).map(|i| i * 3 % 1024).collect();
        let gather = Instruction::Gather {
            table_base: 0,
            idx_base: 1 << 20,
            output_base: 1 << 21,
            count: 256,
            vec_blocks: 32,
        };
        let average = Instruction::Average {
            input_base: 0,
            output_base: 1 << 21,
            count: 64,
            group: 25,
            vec_blocks: 32,
        };
        let run = |mhz: u64, instr: &Instruction, idx: Option<&[u64]>| {
            let mut cfg = NmpConfig::paper();
            cfg.dram.refresh_enabled = false;
            cfg.alu_clock_mhz = mhz;
            NmpCore::new(cfg)
                .unwrap()
                .run_instruction(instr, DimmContext::new(32, 0), idx)
                .unwrap()
                .cycles
        };
        // GATHER bypasses the ALU entirely: clock is irrelevant.
        let g_slow = run(10, &gather, Some(&gather_idx));
        let g_fast = run(1600, &gather, Some(&gather_idx));
        assert_eq!(g_slow, g_fast);
        // AVERAGE funnels group+1 blocks per output through the ALU.
        let a_slow = run(75, &average, None);
        let a_fast = run(1600, &average, None);
        assert!(a_slow > 2 * a_fast, "slow {a_slow} vs fast {a_fast}");
    }
}
