//! SRAM staging queues.
//!
//! The buffer device holds three small SRAM queues (Section 4.2): two input
//! queues (A and B) staging data read out of the DRAM chips, and one output
//! queue (C) staging ALU results until the NMP-local memory controller
//! drains them back to DRAM. Their size follows the bandwidth-delay
//! product of the local channel (25.6 GB/s × 20 ns = 512 B).

/// An occupancy-tracking model of one SRAM queue (64-byte entries).
///
/// The queue does not hold data — the functional path lives in the ISA
/// executor — it models back-pressure: a full input queue stalls DRAM reads
/// and a full output queue stalls the ALU.
///
/// # Example
///
/// ```
/// use tensordimm_nmp::SramQueue;
///
/// let mut q = SramQueue::new(512); // eight 64-byte entries
/// assert_eq!(q.capacity(), 8);
/// assert!(q.push());
/// assert_eq!(q.occupancy(), 1);
/// assert!(q.pop());
/// assert!(!q.pop());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SramQueue {
    capacity: usize,
    occupancy: usize,
    peak_occupancy: usize,
    pushes: u64,
    full_rejections: u64,
}

impl SramQueue {
    /// A queue of `bytes / 64` entries.
    pub fn new(bytes: usize) -> Self {
        SramQueue {
            capacity: bytes / 64,
            occupancy: 0,
            peak_occupancy: 0,
            pushes: 0,
            full_rejections: 0,
        }
    }

    /// Capacity in 64-byte entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy in entries.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Highest occupancy observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Whether the queue is full.
    pub fn is_full(&self) -> bool {
        self.occupancy >= self.capacity
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.occupancy == 0
    }

    /// Successful pushes so far.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Pushes rejected because the queue was full.
    pub fn full_rejections(&self) -> u64 {
        self.full_rejections
    }

    /// Stage one entry; returns `false` (and counts a rejection) when full.
    pub fn push(&mut self) -> bool {
        if self.is_full() {
            self.full_rejections += 1;
            return false;
        }
        self.occupancy += 1;
        self.peak_occupancy = self.peak_occupancy.max(self.occupancy);
        self.pushes += 1;
        true
    }

    /// Drain one entry; returns `false` when empty.
    pub fn pop(&mut self) -> bool {
        if self.is_empty() {
            return false;
        }
        self.occupancy -= 1;
        true
    }

    /// Reset occupancy and statistics.
    pub fn reset(&mut self) {
        self.occupancy = 0;
        self.peak_occupancy = 0;
        self.pushes = 0;
        self.full_rejections = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_from_bytes() {
        assert_eq!(SramQueue::new(512).capacity(), 8);
        assert_eq!(SramQueue::new(100).capacity(), 1);
        assert_eq!(SramQueue::new(63).capacity(), 0);
    }

    #[test]
    fn fill_and_drain() {
        let mut q = SramQueue::new(128);
        assert!(q.push());
        assert!(q.push());
        assert!(!q.push(), "third push must fail on 2-entry queue");
        assert_eq!(q.full_rejections(), 1);
        assert_eq!(q.peak_occupancy(), 2);
        assert!(q.pop());
        assert!(q.push(), "space after pop");
        assert_eq!(q.pushes(), 3);
    }

    #[test]
    fn reset_clears_state() {
        let mut q = SramQueue::new(128);
        q.push();
        q.push();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.pushes(), 0);
        assert_eq!(q.peak_occupancy(), 0);
    }
}
