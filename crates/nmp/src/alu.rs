//! The 16-wide vector ALU.
//!
//! The ALU is clocked at 150 MHz and processes one 64-byte block (sixteen
//! f32 lanes) per cycle. The paper argues this is sufficient because every
//! accelerated operation moves at least three 64-byte bursts over the
//! 25.6 GB/s local bus per ALU operation (two operand reads and one result
//! write for REDUCE), capping the required ALU rate at ~133 M op/s.

/// A throughput/latency model of the NMP vector ALU.
///
/// Functionally the ALU is [`tensordimm_isa::Vec16::reduce`]; this type
/// models *when* operations complete. Time is expressed in DRAM controller
/// cycles so the ALU composes directly with the local memory simulation.
///
/// # Example
///
/// ```
/// use tensordimm_nmp::VectorAlu;
///
/// // 150 MHz ALU against a 1600 MHz DRAM clock.
/// let mut alu = VectorAlu::new(150, 1600);
/// let done1 = alu.issue(100.0, 1);
/// let done2 = alu.issue(100.0, 1); // must wait for the first op
/// assert!(done2 > done1);
/// assert_eq!(alu.ops(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VectorAlu {
    /// DRAM cycles per ALU operation.
    interval: f64,
    /// Time (in DRAM cycles) when the ALU becomes free.
    free_at: f64,
    ops: u64,
    busy: f64,
}

impl VectorAlu {
    /// An ALU at `alu_clock_mhz` servicing one block op per ALU cycle,
    /// measured against a `dram_clock_mhz` timebase.
    pub fn new(alu_clock_mhz: u64, dram_clock_mhz: u64) -> Self {
        VectorAlu {
            interval: dram_clock_mhz as f64 / alu_clock_mhz.max(1) as f64,
            free_at: 0.0,
            ops: 0,
            busy: 0.0,
        }
    }

    /// DRAM cycles consumed per ALU operation.
    pub fn interval(&self) -> f64 {
        self.interval
    }

    /// Issue `ops` back-to-back operations whose operands are ready at
    /// `ready_at` (DRAM cycles); returns the completion time.
    pub fn issue(&mut self, ready_at: f64, ops: u64) -> f64 {
        let start = self.free_at.max(ready_at);
        let work = self.interval * ops as f64;
        self.free_at = start + work;
        self.ops += ops;
        self.busy += work;
        self.free_at
    }

    /// When the ALU next becomes free (DRAM cycles).
    pub fn free_at(&self) -> f64 {
        self.free_at
    }

    /// Operations executed.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Total busy time in DRAM cycles.
    pub fn busy_cycles(&self) -> f64 {
        self.busy
    }

    /// Peak throughput in f32 operations per second (lanes × clock).
    pub fn peak_flops(lanes: usize, alu_clock_mhz: u64) -> f64 {
        lanes as f64 * alu_clock_mhz as f64 * 1e6
    }

    /// Reset to idle.
    pub fn reset(&mut self) {
        self.free_at = 0.0;
        self.ops = 0;
        self.busy = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_of_ops() {
        let mut alu = VectorAlu::new(160, 1600); // interval = 10 cycles
        assert_eq!(alu.interval(), 10.0);
        let d1 = alu.issue(0.0, 1);
        assert_eq!(d1, 10.0);
        // Operand ready late: starts then.
        let d2 = alu.issue(100.0, 1);
        assert_eq!(d2, 110.0);
        // Operand ready early: starts when ALU frees.
        let d3 = alu.issue(0.0, 2);
        assert_eq!(d3, 130.0);
        assert_eq!(alu.ops(), 4);
        assert_eq!(alu.busy_cycles(), 40.0);
    }

    #[test]
    fn paper_alu_peak_flops() {
        // 16 lanes x 150 MHz = 2.4 GFLOP/s per DIMM.
        assert!((VectorAlu::peak_flops(16, 150) - 2.4e9).abs() < 1.0);
    }

    #[test]
    fn reset() {
        let mut alu = VectorAlu::new(150, 1600);
        alu.issue(0.0, 5);
        alu.reset();
        assert_eq!(alu.ops(), 0);
        assert_eq!(alu.free_at(), 0.0);
    }

    #[test]
    fn zero_clock_is_clamped() {
        let alu = VectorAlu::new(0, 1600);
        assert!(alu.interval().is_finite());
    }
}
