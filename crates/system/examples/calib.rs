//! Full design-point matrix: every workload x batch x design with
//! per-phase breakdowns and the headline geomeans. This is the
//! calibration view used while fitting the model to the paper's bands.
//!
//! Run with: `cargo run --release -p tensordimm-system --example calib`

use tensordimm_models::Workload;
use tensordimm_system::{geometric_mean, DesignPoint, SystemModel};

fn main() {
    let m = SystemModel::paper_defaults();
    println!(
        "{:>10} {:>5} | {:>9} {:>9} {:>9} {:>9} {:>9} | cpu_gbps",
        "workload", "batch", "CPU-only", "CPU-GPU", "PMEM", "TDIMM", "GPU-only"
    );
    let mut vs_cpu = vec![];
    let mut vs_h = vec![];
    let mut vs_o = vec![];
    for w in Workload::all() {
        for b in [1usize, 8, 64, 128] {
            let t: Vec<f64> = DesignPoint::all()
                .iter()
                .map(|&d| m.evaluate(&w, b, d).total_us())
                .collect();
            println!(
                "{:>10} {:>5} | {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} | {:.1}",
                w.name.to_string(),
                b,
                t[0],
                t[1],
                t[2],
                t[3],
                t[4],
                m.cpu_gather_gbps(&w)
            );
            if b >= 8 {
                vs_cpu.push(t[0] / t[3]);
                vs_h.push(t[1] / t[3]);
                vs_o.push(t[4] / t[3]);
            }
        }
    }
    println!(
        "geomean (batch>=8): TDIMM vs CPU-only {:.2}x, vs CPU-GPU {:.2}x, frac of oracle {:.2}",
        geometric_mean(&vs_cpu),
        geometric_mean(&vs_h),
        geometric_mean(&vs_o)
    );
    // Fig 13 breakdown at batch 64 for Facebook
    let w = Workload::facebook();
    for d in DesignPoint::all() {
        let b = m.evaluate(&w, 64, d);
        println!(
            "{:>9}: lookup {:>8.1} xfer {:>8.1} dnn {:>7.1} other {:>5.1} total {:>8.1}",
            d.label(),
            b.lookup_us,
            b.transfer_us,
            b.dnn_us,
            b.other_us,
            b.total_us()
        );
    }
}
