//! Multi-GPU serving throughput: several GPUs sharing one TensorNode.
//!
//! The paper's system (Fig. 6c) hangs the TensorNode off the GPU-side
//! NVSwitch, which is non-blocking except at shared endpoints — and the
//! node's own port *is* shared when several GPUs run inference against the
//! same embedding pool. This module combines the per-inference latency
//! model with the crossbar contention model to estimate node-level
//! serving throughput, quantifying the paper's argument that NMP
//! reduction (shipping pooled instead of gathered tensors) is what lets a
//! single node feed many GPUs.

use tensordimm_interconnect::InterconnectError;
use tensordimm_models::Workload;

use crate::breakdown::PhaseBreakdown;
use crate::design::DesignPoint;
use crate::model::SystemModel;

/// Throughput of `gpus` GPUs concurrently serving one workload from a
/// shared TensorNode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingReport {
    /// GPUs sharing the node.
    pub gpus: usize,
    /// Per-inference latency seen by each GPU, µs (compute/lookup phases
    /// plus the contended transfer).
    pub latency_us: f64,
    /// Aggregate inferences per second across all GPUs.
    pub inferences_per_sec: f64,
    /// Whether the node's switch port is the bottleneck.
    pub port_bound: bool,
}

/// Cost of one batch dispatched to a GPU while `active_gpus` GPUs in total
/// (including this one) are concurrently reading from the shared TensorNode.
///
/// This is the per-batch unit the request-level serving simulator prices
/// every formed batch with; [`node_sharing`] derives its steady-state
/// round latency from the same quantity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchCost {
    /// Wall-clock time from dispatch to completion, µs.
    pub service_us: f64,
    /// Whether the node's switch port (rather than its internal DRAM
    /// bandwidth) is the binding shared resource.
    pub port_bound: bool,
}

/// Price one batch for any design point, with `active_gpus` GPUs
/// concurrently in flight.
///
/// For the node-backed designs (`Pmem`, `Tdimm`) the cost applies the
/// shared-node contention math: the node's internal lookup bandwidth and
/// its single switch port are divided across all active GPUs. The
/// remaining designs have no shared TensorNode, so their cost is the solo
/// [`SystemModel::evaluate`] latency regardless of concurrency (CPU-side
/// contention for `CpuOnly`/`CpuGpu` is not modeled).
///
/// # Errors
///
/// Returns [`InterconnectError::InvalidLink`] when `active_gpus` is zero.
pub fn price_batch(
    model: &SystemModel,
    workload: &Workload,
    batch: usize,
    design: DesignPoint,
    active_gpus: usize,
) -> Result<BatchCost, InterconnectError> {
    let solo = model.evaluate(workload, batch, design);
    contended_cost(model, workload, batch, design, active_gpus, &solo)
}

/// The shared-node contention math behind [`price_batch`], parameterized
/// over the solo per-phase breakdown so pricing backends (see
/// [`crate::pricer`]) can substitute a cycle-measured lookup phase while
/// reusing the identical crossbar/shared-bandwidth model.
///
/// # Errors
///
/// Returns [`InterconnectError::InvalidLink`] when `active_gpus` is zero.
pub(crate) fn contended_cost(
    model: &SystemModel,
    workload: &Workload,
    batch: usize,
    design: DesignPoint,
    active_gpus: usize,
    solo: &PhaseBreakdown,
) -> Result<BatchCost, InterconnectError> {
    if active_gpus == 0 {
        return Err(InterconnectError::InvalidLink {
            parameter: "active_gpus",
        });
    }
    if !matches!(design, DesignPoint::Pmem | DesignPoint::Tdimm) {
        return Ok(BatchCost {
            service_us: solo.total_us(),
            port_bound: false,
        });
    }
    let bytes = match design {
        DesignPoint::Tdimm => workload.pooled_bytes(batch),
        _ => workload.gathered_bytes(batch),
    };
    // All active GPUs pull their transfer from node port 0 concurrently;
    // the model memoizes the result per (bytes, active_gpus) and prices it
    // with the configured backend (analytic crossbar or measured fabric).
    let contended_transfer_us = model.contended_node_transfer_us(bytes, active_gpus)?;

    let other_phases_us = solo.lookup_us + solo.dnn_us + solo.other_us;
    // The node-side lookup phase is also shared: N GPUs' gathers divide the
    // node's internal bandwidth.
    let shared_lookup_us = solo.lookup_us * active_gpus as f64;
    // Per-GPU latency: its own compute + the contended transfer; the
    // node-internal phases pipeline across GPUs, so the effective per-round
    // latency is whichever shared resource saturates first.
    let service_us = (other_phases_us + contended_transfer_us)
        .max(shared_lookup_us + solo.dnn_us + solo.other_us);
    Ok(BatchCost {
        service_us,
        port_bound: contended_transfer_us > shared_lookup_us,
    })
}

/// Estimate node-sharing throughput for a design point.
///
/// Only `Pmem` and `Tdimm` read from the node; other designs are rejected.
///
/// # Errors
///
/// Returns [`InterconnectError::InvalidLink`] (via [`price_batch`]) for a
/// zero-GPU configuration, and [`InterconnectError::NoRoute`] when the
/// design point does not use the TensorNode.
pub fn node_sharing(
    model: &SystemModel,
    workload: &Workload,
    batch: usize,
    design: DesignPoint,
    gpus: usize,
) -> Result<ServingReport, InterconnectError> {
    if !matches!(design, DesignPoint::Pmem | DesignPoint::Tdimm) {
        return Err(InterconnectError::NoRoute {
            from: tensordimm_interconnect::Device::TensorNode,
            to: tensordimm_interconnect::Device::Cpu,
        });
    }
    let cost = price_batch(model, workload, batch, design, gpus)?;
    Ok(ServingReport {
        gpus,
        latency_us: cost.service_us,
        inferences_per_sec: gpus as f64 / (cost.service_us * 1e-6),
        port_bound: cost.port_bound,
    })
}

/// Sweep GPU counts for one design.
///
/// # Errors
///
/// Same conditions as [`node_sharing`].
pub fn sharing_sweep(
    model: &SystemModel,
    workload: &Workload,
    batch: usize,
    design: DesignPoint,
    gpu_counts: &[usize],
) -> Result<Vec<ServingReport>, InterconnectError> {
    gpu_counts
        .iter()
        .map(|&g| node_sharing(model, workload, batch, design, g))
        .collect()
}

// Re-exported so callers don't need a direct interconnect dependency.
pub use tensordimm_interconnect::InterconnectError as ServingError;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SystemModel;

    #[test]
    fn tdimm_scales_to_more_gpus_than_pmem() {
        let model = SystemModel::paper_defaults();
        let w = Workload::facebook();
        let tdimm =
            sharing_sweep(&model, &w, 64, DesignPoint::Tdimm, &[1, 8, 16]).expect("valid designs");
        let pmem =
            sharing_sweep(&model, &w, 64, DesignPoint::Pmem, &[1, 8, 16]).expect("valid designs");
        // Throughput at 16 GPUs relative to 1 GPU: TDIMM keeps scaling,
        // PMEM saturates on the node port.
        let tdimm_scaling = tdimm[2].inferences_per_sec / tdimm[0].inferences_per_sec;
        let pmem_scaling = pmem[2].inferences_per_sec / pmem[0].inferences_per_sec;
        assert!(
            tdimm_scaling > 1.5 * pmem_scaling,
            "tdimm {tdimm_scaling:.1}x vs pmem {pmem_scaling:.1}x"
        );
        assert!(pmem[2].port_bound, "PMEM at 16 GPUs should be port-bound");
    }

    #[test]
    fn throughput_grows_monotonically_for_tdimm_small_counts() {
        let model = SystemModel::paper_defaults();
        let w = Workload::youtube();
        let reports =
            sharing_sweep(&model, &w, 64, DesignPoint::Tdimm, &[1, 2, 4]).expect("valid designs");
        assert!(reports[1].inferences_per_sec > reports[0].inferences_per_sec);
        assert!(reports[2].inferences_per_sec > reports[1].inferences_per_sec);
    }

    #[test]
    fn non_node_designs_rejected() {
        let model = SystemModel::paper_defaults();
        let w = Workload::ncf();
        for d in [
            DesignPoint::CpuOnly,
            DesignPoint::CpuGpu,
            DesignPoint::GpuOnly,
        ] {
            assert!(node_sharing(&model, &w, 64, d, 4).is_err(), "{d}");
        }
        assert!(node_sharing(&model, &w, 64, DesignPoint::Tdimm, 0).is_err());
    }

    #[test]
    fn price_batch_matches_node_sharing_for_node_designs() {
        let model = SystemModel::paper_defaults();
        let w = Workload::facebook();
        for d in [DesignPoint::Pmem, DesignPoint::Tdimm] {
            let cost = price_batch(&model, &w, 64, d, 8).expect("valid");
            let report = node_sharing(&model, &w, 64, d, 8).expect("valid");
            assert_eq!(cost.service_us, report.latency_us, "{d}");
            assert_eq!(cost.port_bound, report.port_bound, "{d}");
        }
    }

    #[test]
    fn price_batch_non_node_designs_ignore_concurrency() {
        let model = SystemModel::paper_defaults();
        let w = Workload::youtube();
        for d in [
            DesignPoint::CpuOnly,
            DesignPoint::CpuGpu,
            DesignPoint::GpuOnly,
        ] {
            let solo = model.evaluate(&w, 64, d).total_us();
            for gpus in [1usize, 4, 16] {
                let cost = price_batch(&model, &w, 64, d, gpus).expect("valid");
                assert_eq!(cost.service_us, solo, "{d} at {gpus} GPUs");
                assert!(!cost.port_bound);
            }
        }
        assert!(price_batch(&model, &w, 64, DesignPoint::GpuOnly, 0).is_err());
    }

    #[test]
    fn price_batch_contention_grows_with_active_gpus() {
        let model = SystemModel::paper_defaults();
        let w = Workload::facebook();
        for d in [DesignPoint::Pmem, DesignPoint::Tdimm] {
            let solo = price_batch(&model, &w, 64, d, 1).expect("valid").service_us;
            let shared = price_batch(&model, &w, 64, d, 8).expect("valid").service_us;
            assert!(shared > solo, "{d}: shared {shared} vs solo {solo}");
        }
    }

    #[test]
    fn report_consistency() {
        let model = SystemModel::paper_defaults();
        let w = Workload::fox();
        let r = node_sharing(&model, &w, 64, DesignPoint::Tdimm, 4).expect("valid");
        assert_eq!(r.gpus, 4);
        assert!(r.latency_us > 0.0);
        assert!((r.inferences_per_sec - 4.0 / (r.latency_us * 1e-6)).abs() < 1e-6);
    }
}
