//! The latency model for the five design points.

use std::collections::HashMap;
use std::sync::Mutex;

use tensordimm_cache::{GatherModel, GatherWorkload};
use tensordimm_interconnect::fabric::Fabric;
use tensordimm_interconnect::{Device, Flow, InterconnectError, Switch, Topology, TopologyKind};
use tensordimm_models::{DeviceModel, Workload};

use crate::breakdown::PhaseBreakdown;
use crate::design::DesignPoint;

/// Which engine prices the contended node → GPU transfer when several
/// GPUs read from the shared TensorNode at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransferBackend {
    /// The closed-form max-min fluid allocation on the NVSwitch crossbar
    /// ([`Switch::concurrent_transfer_us`]) — fast, and the oracle the
    /// fabric is validated against.
    #[default]
    Analytic,
    /// Measured on the cycle-level message [`Fabric`] over the given
    /// layout: hop-by-hop forwarding under finite per-link bandwidth.
    /// `Fabric(TopologyKind::FullyConnected)` models the same non-blocking
    /// crossbar as `Analytic` and agrees with it within a few percent;
    /// `Line`/`Ring` expose what cheaper physical layouts would cost.
    Fabric(TopologyKind),
}

/// All the calibration knobs of the system model.
///
/// Bandwidth-efficiency constants default to values measured on this
/// repository's own cycle-level DRAM simulator (see `EXPERIMENTS.md`);
/// device and link constants are the published numbers the paper uses.
#[derive(Debug, Clone)]
pub struct SystemModelConfig {
    /// Host CPU execution model.
    pub cpu: DeviceModel,
    /// GPU execution model.
    pub gpu: DeviceModel,
    /// Interconnect topology (PCIe + NVLINK/NVSwitch).
    pub topology: Topology,
    /// CPU cache-hierarchy gather model.
    pub cpu_gather: GatherModel,
    /// Popularity skew of inference traffic.
    pub zipf_s: f64,
    /// Lookups simulated per cache-model evaluation.
    pub gather_sim_lookups: usize,
    /// TensorNode aggregate peak bandwidth, GB/s (819.2 for Table 1).
    pub node_peak_gbps: f64,
    /// Fraction of node peak achieved on random gathers (measured on the
    /// DRAM simulator).
    pub node_gather_utilization: f64,
    /// Fraction of node peak achieved on streaming reduce/average.
    pub node_stream_utilization: f64,
    /// GPU HBM2 bandwidth, GB/s.
    pub gpu_hbm_gbps: f64,
    /// Fraction of HBM peak achieved on GPU-local gathers.
    pub gpu_gather_utilization: f64,
    /// Fraction of node peak achieved by PMEM's NMP-less remote reads.
    pub pmem_read_utilization: f64,
    /// Model the TensorNode's gather+pool as a fused near-memory pass
    /// (one table read + one pooled write), matching the paper's Fig. 5
    /// timing model. `false` charges the unfused three-pass ISA sequence
    /// (GATHER write-back + AVERAGE re-read) for ablation.
    pub fused_gather_pool: bool,
    /// Per-TensorISA-instruction dispatch overhead on the TDIMM path, µs
    /// (runtime encode + broadcast + completion sync; one GATHER and one
    /// AVERAGE per table per inference).
    pub node_op_overhead_us: f64,
    /// Fixed per-inference framework overhead, µs.
    pub other_fixed_us: f64,
    /// Per-sample framework overhead, µs.
    pub other_per_sample_us: f64,
    /// Engine pricing the contended node → GPU transfer.
    pub transfer: TransferBackend,
}

impl SystemModelConfig {
    /// The paper's system: DGX-1V-like host/GPU/links, Table 1 TensorNode,
    /// simulator-measured DRAM efficiencies.
    pub fn paper_defaults() -> Self {
        SystemModelConfig {
            cpu: DeviceModel::xeon_cpu(),
            gpu: DeviceModel::v100_gpu(),
            topology: Topology::dgx_like(8),
            cpu_gather: GatherModel::xeon_like(),
            zipf_s: 0.9,
            gather_sim_lookups: 2000,
            node_peak_gbps: 819.2,
            node_gather_utilization: 0.87,
            node_stream_utilization: 0.95,
            gpu_hbm_gbps: 900.0,
            gpu_gather_utilization: 0.85,
            pmem_read_utilization: 0.87,
            fused_gather_pool: true,
            node_op_overhead_us: 1.5,
            other_fixed_us: 10.0,
            other_per_sample_us: 0.1,
            transfer: TransferBackend::Analytic,
        }
    }
}

/// Evaluates inference latency for (workload, batch, design point).
///
/// CPU gather bandwidths are produced by the cache-hierarchy simulator and
/// memoized per (table footprint, embedding size). The memo sits behind a
/// `Mutex` so one model can be shared (`&SystemModel` is `Sync`) by the
/// parallel sweep workers and the concurrent cycle-pricer warm-up.
#[derive(Debug)]
pub struct SystemModel {
    config: SystemModelConfig,
    cpu_bw_cache: Mutex<HashMap<(u64, u64), f64>>,
    /// Contended node → GPU transfer times, keyed by (bytes, active GPUs).
    /// The serving sweeps price the same few (workload, batch, gpus)
    /// combinations millions of times; without this memo the analytic
    /// backend cloned the GPU link and built a fresh `Switch` (plus a flow
    /// `Vec`) per priced batch, and the fabric backend would re-simulate.
    transfer_cache: Mutex<HashMap<(u64, usize), f64>>,
}

impl Clone for SystemModel {
    fn clone(&self) -> Self {
        SystemModel {
            config: self.config.clone(),
            cpu_bw_cache: Mutex::new(self.cpu_bw_cache.lock().expect("cache lock").clone()),
            transfer_cache: Mutex::new(self.transfer_cache.lock().expect("cache lock").clone()),
        }
    }
}

impl SystemModel {
    /// DIMMs in the paper's Table 1 TensorNode — the provisioning the
    /// default `node_peak_gbps` (819.2 GB/s) corresponds to.
    pub const PAPER_NODE_DIMMS: u64 = 32;

    /// Build from a configuration.
    pub fn new(config: SystemModelConfig) -> Self {
        SystemModel {
            config,
            cpu_bw_cache: Mutex::new(HashMap::new()),
            transfer_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The paper-default model.
    pub fn paper_defaults() -> Self {
        SystemModel::new(SystemModelConfig::paper_defaults())
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemModelConfig {
        &self.config
    }

    /// Replace the topology (Fig. 16's link-bandwidth knob).
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.config.topology = topology;
        self.transfer_cache.lock().expect("cache lock").clear();
        self
    }

    /// Replace the contended-transfer pricing engine.
    pub fn with_transfer(mut self, transfer: TransferBackend) -> Self {
        self.config.transfer = transfer;
        self.transfer_cache.lock().expect("cache lock").clear();
        self
    }

    /// Shard-sliced pricing: re-provision the TensorNode with `dimms`
    /// DIMMs instead of the paper's [`SystemModel::PAPER_NODE_DIMMS`].
    /// Aggregate gather/stream bandwidth is rank-parallel (the paper's
    /// Fig. 7 scaling argument), so the node peak scales linearly in the
    /// DIMM count while per-DIMM efficiency knobs stay put. The cluster
    /// layer uses this to price heterogeneous nodes honestly: a 16-DIMM
    /// shard is *not* a 32-DIMM node that happens to hold less data.
    ///
    /// Scaling is relative to the paper's 32-DIMM node, not the current
    /// peak, so the call is idempotent-per-`dimms` rather than
    /// compounding.
    ///
    /// # Panics
    ///
    /// Panics when `dimms` is zero.
    pub fn with_node_dimms(mut self, dimms: u64) -> Self {
        assert!(dimms > 0, "a TensorNode needs at least one DIMM");
        let per_dimm =
            SystemModelConfig::paper_defaults().node_peak_gbps / Self::PAPER_NODE_DIMMS as f64;
        self.config.node_peak_gbps = per_dimm * dimms as f64;
        self
    }

    /// Effective CPU gather bandwidth for a workload, GB/s (memoized
    /// cache-hierarchy simulation).
    pub fn cpu_gather_gbps(&self, workload: &Workload) -> f64 {
        let key = (workload.table_footprint_bytes(), workload.embedding_bytes());
        if let Some(&bw) = self.cpu_bw_cache.lock().expect("cache lock").get(&key) {
            return bw;
        }
        // Simulate outside the lock: concurrent cold misses on the same
        // key may both simulate, but the simulation is a deterministic
        // pure function of the key, so both insert the identical value.
        let bw = self
            .config
            .cpu_gather
            .effective_bandwidth_gbps(&GatherWorkload {
                table_bytes: key.0,
                embedding_bytes: key.1,
                lookups: self.config.gather_sim_lookups,
                zipf_s: self.config.zipf_s,
                seed: 0x7d1,
            });
        self.cpu_bw_cache
            .lock()
            .expect("cache lock")
            .insert(key, bw);
        bw
    }

    /// Completion time (µs) of the slowest of `active_gpus` concurrent
    /// node → GPU transfers of `bytes` each, all leaving the TensorNode's
    /// single port, priced by the configured [`TransferBackend`] and
    /// memoized per `(bytes, active_gpus)`.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidLink`] when `active_gpus` is
    /// zero.
    pub fn contended_node_transfer_us(
        &self,
        bytes: u64,
        active_gpus: usize,
    ) -> Result<f64, InterconnectError> {
        if active_gpus == 0 {
            return Err(InterconnectError::InvalidLink {
                parameter: "active_gpus",
            });
        }
        let key = (bytes, active_gpus);
        if let Some(&t) = self.transfer_cache.lock().expect("cache lock").get(&key) {
            return Ok(t);
        }
        // Compute outside the lock (like `cpu_gather_gbps`): both engines
        // are deterministic pure functions of the key and the config, so a
        // concurrent cold miss inserts the identical value.
        let link = self.config.topology.gpu_link().clone();
        let t = match self.config.transfer {
            TransferBackend::Analytic => {
                // Node port 0, GPUs 1..=active_gpus, all pulling at once.
                let switch = Switch::new(active_gpus + 1, link)?;
                let flows: Vec<Flow> = (0..active_gpus)
                    .map(|g| Flow {
                        from: 0,
                        to: g + 1,
                        bytes,
                    })
                    .collect();
                switch
                    .concurrent_transfer_us(&flows)?
                    .into_iter()
                    .fold(0.0f64, f64::max)
            }
            TransferBackend::Fabric(kind) => {
                let mut fabric = Fabric::new(kind.build(active_gpus + 1, link)?);
                for g in 0..active_gpus {
                    fabric.inject(0, g + 1, bytes)?;
                }
                // Tick fine enough that phase quantization stays well
                // under the ±10% analytic-agreement gate: ~2k ticks over a
                // serialized-egress estimate of the run, clamped away from
                // degenerate sizes.
                let est_us = fabric.topology().local_handoff_us()
                    + fabric.topology().hop_latency_us()
                    + (bytes as f64 * active_gpus as f64)
                        / (fabric.topology().link_capacity_gbps() * 1e3);
                let tick_us = (est_us / 2048.0).clamp(1e-3, 100.0);
                fabric
                    .run_until_idle(tick_us)?
                    .into_iter()
                    .map(|d| d.delivered_us)
                    .fold(0.0f64, f64::max)
            }
        };
        self.transfer_cache
            .lock()
            .expect("cache lock")
            .insert(key, t);
        Ok(t)
    }

    /// Per-phase latency of one inference.
    pub fn evaluate(
        &self,
        workload: &Workload,
        batch: usize,
        design: DesignPoint,
    ) -> PhaseBreakdown {
        self.evaluate_with_node_peak(workload, batch, design, self.config.node_peak_gbps)
    }

    /// [`SystemModel::evaluate`] with the node bandwidth scaled by
    /// `factor` — a TensorNode serving with `alive`/`total` DIMMs keeps
    /// `alive/total` of its aggregated peak (the Fig. 7 stripe mapping
    /// spreads every gather over all DIMMs symmetrically). Only the
    /// node-backed designs (`Pmem`, `Tdimm`) are affected.
    pub fn evaluate_degraded(
        &self,
        workload: &Workload,
        batch: usize,
        design: DesignPoint,
        factor: f64,
    ) -> PhaseBreakdown {
        self.evaluate_with_node_peak(workload, batch, design, self.config.node_peak_gbps * factor)
    }

    /// The evaluation body, parameterized over the effective TensorNode
    /// peak bandwidth (GB/s). `evaluate` passes the configured peak;
    /// degraded-mode pricing passes a reduced one.
    pub(crate) fn evaluate_with_node_peak(
        &self,
        workload: &Workload,
        batch: usize,
        design: DesignPoint,
        node_peak_gbps: f64,
    ) -> PhaseBreakdown {
        let cfg = &self.config;
        let gathered = workload.gathered_bytes(batch);
        let pooled = workload.pooled_bytes(batch);
        let other_us = cfg.other_fixed_us + cfg.other_per_sample_us * batch as f64;
        let us_per_byte = |gbps: f64| 1.0 / (gbps * 1e3);

        match design {
            DesignPoint::CpuOnly => {
                let gather_us = gathered as f64 * us_per_byte(self.cpu_gather_gbps(workload));
                // Pooling runs on the CPU over the gathered tensor.
                let pool_us = cfg.cpu.streaming_time_us(gathered + pooled);
                PhaseBreakdown {
                    lookup_us: gather_us + pool_us,
                    transfer_us: 0.0,
                    dnn_us: cfg.cpu.mlp_time_us(&workload.mlp, batch),
                    other_us,
                }
            }
            DesignPoint::CpuGpu => {
                let gather_us = gathered as f64 * us_per_byte(self.cpu_gather_gbps(workload));
                let transfer_us = self
                    .config
                    .topology
                    .transfer_time_us(Device::Cpu, Device::Gpu(0), gathered)
                    .expect("CPU->GPU route exists in a DGX-like topology");
                // Pooling happens on the GPU after the copy.
                let dnn_us = cfg.gpu.streaming_time_us(gathered + pooled)
                    + cfg.gpu.mlp_time_us(&workload.mlp, batch);
                PhaseBreakdown {
                    lookup_us: gather_us,
                    transfer_us,
                    dnn_us,
                    other_us,
                }
            }
            DesignPoint::Pmem => {
                // Pooled memory without NMP: raw gathered embeddings are
                // read from the node's DIMMs and cross NVLINK; the GPU pools.
                let lookup_us =
                    gathered as f64 * us_per_byte(node_peak_gbps * cfg.pmem_read_utilization);
                let transfer_us = self
                    .config
                    .topology
                    .transfer_time_us(Device::TensorNode, Device::Gpu(0), gathered)
                    .expect("node->GPU route exists in a DGX-like topology");
                let dnn_us = cfg.gpu.streaming_time_us(gathered + pooled)
                    + cfg.gpu.mlp_time_us(&workload.mlp, batch);
                PhaseBreakdown {
                    lookup_us,
                    transfer_us,
                    dnn_us,
                    other_us,
                }
            }
            DesignPoint::Tdimm => {
                // Fused (the paper's Fig. 5 model): one pass reads the
                // gathered embeddings from the tables and writes the pooled
                // tensor. Unfused: GATHER writes the gathered tensor back
                // and AVERAGE re-reads it.
                let (gather_us, pool_us) = if cfg.fused_gather_pool {
                    (
                        gathered as f64 * us_per_byte(node_peak_gbps * cfg.node_gather_utilization),
                        pooled as f64 * us_per_byte(node_peak_gbps * cfg.node_stream_utilization),
                    )
                } else {
                    (
                        2.0 * gathered as f64
                            * us_per_byte(node_peak_gbps * cfg.node_gather_utilization),
                        (gathered + pooled) as f64
                            * us_per_byte(node_peak_gbps * cfg.node_stream_utilization),
                    )
                };
                let transfer_us = self
                    .config
                    .topology
                    .transfer_time_us(Device::TensorNode, Device::Gpu(0), pooled)
                    .expect("node->GPU route exists in a DGX-like topology");
                // One GATHER + one AVERAGE instruction per table.
                let dispatch_us = 2.0 * workload.tables as f64 * cfg.node_op_overhead_us;
                PhaseBreakdown {
                    lookup_us: gather_us + pool_us + dispatch_us,
                    transfer_us,
                    dnn_us: cfg.gpu.mlp_time_us(&workload.mlp, batch),
                    other_us,
                }
            }
            DesignPoint::GpuOnly => {
                // Oracle: gather + pool directly in HBM.
                let lookup_us = (gathered + pooled) as f64
                    * us_per_byte(cfg.gpu_hbm_gbps * cfg.gpu_gather_utilization)
                    + 5.0; // one fused-kernel launch
                PhaseBreakdown {
                    lookup_us,
                    transfer_us: 0.0,
                    dnn_us: cfg.gpu.mlp_time_us(&workload.mlp, batch),
                    other_us,
                }
            }
        }
    }

    /// `total(b) / total(a)`: how many times faster design `a` is.
    pub fn speedup(
        &self,
        workload: &Workload,
        batch: usize,
        a: DesignPoint,
        b: DesignPoint,
    ) -> f64 {
        self.evaluate(workload, batch, b).total_us() / self.evaluate(workload, batch, a).total_us()
    }

    /// Performance normalized to the GPU-only oracle (the y-axis of
    /// Figs. 4 and 14): `total(GpuOnly) / total(design)`, 1.0 = oracle.
    pub fn normalized(&self, workload: &Workload, batch: usize, design: DesignPoint) -> f64 {
        self.speedup(workload, batch, design, DesignPoint::GpuOnly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SystemModel {
        SystemModel::paper_defaults()
    }

    #[test]
    fn oracle_is_fastest_at_batch() {
        let m = model();
        for w in Workload::all() {
            let oracle = m.evaluate(&w, 64, DesignPoint::GpuOnly).total_us();
            for d in [
                DesignPoint::CpuOnly,
                DesignPoint::CpuGpu,
                DesignPoint::Pmem,
                DesignPoint::Tdimm,
            ] {
                assert!(
                    m.evaluate(&w, 64, d).total_us() >= oracle * 0.999,
                    "{d} beat the oracle on {}",
                    w.name
                );
            }
        }
    }

    #[test]
    fn tdimm_beats_pmem_beats_cpugpu() {
        let m = model();
        for w in Workload::all() {
            let t = m.evaluate(&w, 64, DesignPoint::Tdimm).total_us();
            let p = m.evaluate(&w, 64, DesignPoint::Pmem).total_us();
            let h = m.evaluate(&w, 64, DesignPoint::CpuGpu).total_us();
            // NCF's reduction factor is only 2, so TDIMM and PMEM are a
            // near-tie there (as in the paper's Fig. 14); everywhere else
            // TDIMM must win outright.
            assert!(t < p * 1.02, "{}: TDIMM {t} vs PMEM {p}", w.name);
            assert!(p < h, "{}: PMEM {p} vs CPU-GPU {h}", w.name);
        }
    }

    #[test]
    fn cpu_only_wins_at_batch_one_for_ncf() {
        // The Fig. 4 crossover: at batch 1 the PCIe copy + GPU
        // under-occupancy make the hybrid slower than staying on the CPU.
        let m = model();
        let w = Workload::ncf();
        let cpu = m.evaluate(&w, 1, DesignPoint::CpuOnly).total_us();
        let hybrid = m.evaluate(&w, 1, DesignPoint::CpuGpu).total_us();
        assert!(cpu < hybrid, "cpu {cpu} hybrid {hybrid}");
        // And loses at large batch.
        let cpu = m.evaluate(&w, 128, DesignPoint::CpuOnly).total_us();
        let hybrid = m.evaluate(&w, 128, DesignPoint::CpuGpu).total_us();
        assert!(cpu > hybrid, "cpu {cpu} hybrid {hybrid}");
    }

    #[test]
    fn tdimm_transfer_shrinks_by_reduction_factor() {
        let m = model();
        let w = Workload::youtube(); // reduction factor 50
        let tdimm = m.evaluate(&w, 64, DesignPoint::Tdimm);
        let pmem = m.evaluate(&w, 64, DesignPoint::Pmem);
        // Setup latencies keep it from exactly 50x, but it must be large.
        assert!(
            pmem.transfer_us > 10.0 * tdimm.transfer_us,
            "pmem {} tdimm {}",
            pmem.transfer_us,
            tdimm.transfer_us
        );
    }

    #[test]
    fn breakdown_phases_match_design_structure() {
        let m = model();
        let w = Workload::facebook();
        assert_eq!(m.evaluate(&w, 64, DesignPoint::CpuOnly).transfer_us, 0.0);
        assert_eq!(m.evaluate(&w, 64, DesignPoint::GpuOnly).transfer_us, 0.0);
        assert!(m.evaluate(&w, 64, DesignPoint::CpuGpu).transfer_us > 0.0);
        assert!(m.evaluate(&w, 64, DesignPoint::Tdimm).transfer_us > 0.0);
    }

    #[test]
    fn speedup_and_normalized_are_consistent() {
        let m = model();
        let w = Workload::fox();
        let s = m.speedup(&w, 64, DesignPoint::Tdimm, DesignPoint::CpuOnly);
        assert!(s > 1.0);
        let n = m.normalized(&w, 64, DesignPoint::Tdimm);
        assert!((0.0..=1.001).contains(&n));
    }

    #[test]
    fn cpu_bandwidth_is_memoized() {
        let m = model();
        let w = Workload::facebook();
        let a = m.cpu_gather_gbps(&w);
        let b = m.cpu_gather_gbps(&w);
        assert_eq!(a, b);
        assert!(a > 1.0 && a < 204.8, "cpu gather bw {a}");
    }

    #[test]
    fn larger_embeddings_widen_the_gap() {
        // Fig. 15's trend: scaling embeddings up makes TDIMM's advantage
        // over CPU-GPU grow.
        let m = model();
        let base = Workload::facebook();
        let big = base.scaled_embeddings(8);
        let s_base = m.speedup(&base, 64, DesignPoint::Tdimm, DesignPoint::CpuGpu);
        let s_big = m.speedup(&big, 64, DesignPoint::Tdimm, DesignPoint::CpuGpu);
        assert!(s_big > s_base, "base {s_base} scaled {s_big}");
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;
    use tensordimm_models::Workload;

    #[test]
    fn unfused_config_slows_tdimm_only() {
        let fused = SystemModel::paper_defaults();
        let unfused = SystemModel::new(SystemModelConfig {
            fused_gather_pool: false,
            ..SystemModelConfig::paper_defaults()
        });
        let w = Workload::youtube();
        let t_f = fused.evaluate(&w, 64, DesignPoint::Tdimm).total_us();
        let t_u = unfused.evaluate(&w, 64, DesignPoint::Tdimm).total_us();
        assert!(t_u > t_f, "unfused {t_u} should exceed fused {t_f}");
        // Non-NMP designs are untouched by the fusion knob.
        for d in [
            DesignPoint::CpuOnly,
            DesignPoint::CpuGpu,
            DesignPoint::Pmem,
            DesignPoint::GpuOnly,
        ] {
            assert_eq!(
                fused.evaluate(&w, 64, d).total_us(),
                unfused.evaluate(&w, 64, d).total_us(),
                "{d}"
            );
        }
    }

    #[test]
    fn dispatch_overhead_scales_with_tables() {
        let model = SystemModel::paper_defaults();
        let few = Workload::youtube(); // 2 tables
        let many = Workload::facebook(); // 8 tables
        let overhead = model.config().node_op_overhead_us;
        let few_dispatch = 2.0 * few.tables as f64 * overhead;
        let many_dispatch = 2.0 * many.tables as f64 * overhead;
        assert!(many_dispatch == 4.0 * few_dispatch);
        // And it is visible in the lookup phase.
        let zero = SystemModel::new(SystemModelConfig {
            node_op_overhead_us: 0.0,
            ..SystemModelConfig::paper_defaults()
        });
        let with = model.evaluate(&many, 64, DesignPoint::Tdimm).lookup_us;
        let without = zero.evaluate(&many, 64, DesignPoint::Tdimm).lookup_us;
        assert!((with - without - many_dispatch).abs() < 1e-9);
    }

    #[test]
    fn batch_one_is_overhead_dominated_for_tdimm() {
        let model = SystemModel::paper_defaults();
        let w = Workload::ncf();
        let b = model.evaluate(&w, 1, DesignPoint::Tdimm);
        // At batch 1, fixed costs outweigh the streaming terms.
        assert!(b.other_us + b.transfer_us + b.dnn_us > b.lookup_us);
    }
}

#[cfg(test)]
mod transfer_tests {
    use super::*;

    #[test]
    fn fully_connected_fabric_agrees_with_analytic() {
        let analytic = SystemModel::paper_defaults();
        let fabric = SystemModel::paper_defaults()
            .with_transfer(TransferBackend::Fabric(TopologyKind::FullyConnected));
        for gpus in [1usize, 4, 8] {
            for bytes in [1u64 << 20, 16 << 20, 64 << 20] {
                let a = analytic
                    .contended_node_transfer_us(bytes, gpus)
                    .expect("nonzero gpus");
                let f = fabric
                    .contended_node_transfer_us(bytes, gpus)
                    .expect("nonzero gpus");
                let err = (f - a).abs() / a;
                assert!(
                    err < 0.10,
                    "{gpus} gpus, {bytes} bytes: fabric {f} vs analytic {a}"
                );
            }
        }
    }

    #[test]
    fn restrictive_layouts_cost_more() {
        let time = |kind| {
            SystemModel::paper_defaults()
                .with_transfer(TransferBackend::Fabric(kind))
                .contended_node_transfer_us(16 << 20, 8)
                .expect("nonzero gpus")
        };
        let line = time(TopologyKind::Line);
        let ring = time(TopologyKind::Ring);
        let full = time(TopologyKind::FullyConnected);
        assert!(
            line >= ring && ring >= full,
            "line {line} ring {ring} full {full}"
        );
        assert!(line > 1.2 * full, "line {line} vs full {full}");
    }

    #[test]
    fn node_dimm_slicing_scales_node_bandwidth() {
        let w = Workload::facebook();
        let full = SystemModel::paper_defaults().with_node_dimms(SystemModel::PAPER_NODE_DIMMS);
        assert_eq!(
            full.config().node_peak_gbps,
            SystemModelConfig::paper_defaults().node_peak_gbps,
            "32 DIMMs is the paper node, bit-identically"
        );
        let half = SystemModel::paper_defaults().with_node_dimms(16);
        assert_eq!(half.config().node_peak_gbps, 819.2 / 2.0);
        assert!(
            half.evaluate(&w, 64, DesignPoint::Tdimm).total_us()
                > full.evaluate(&w, 64, DesignPoint::Tdimm).total_us(),
            "half the ranks must gather slower"
        );
        // Relative-to-paper scaling: the call does not compound.
        let twice = SystemModel::paper_defaults()
            .with_node_dimms(16)
            .with_node_dimms(16);
        assert_eq!(twice.config().node_peak_gbps, 819.2 / 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one DIMM")]
    fn node_dimm_slicing_rejects_zero() {
        let _ = SystemModel::paper_defaults().with_node_dimms(0);
    }

    #[test]
    fn transfer_cache_is_invalidated_by_reconfiguration() {
        let m = SystemModel::paper_defaults();
        let before = m
            .contended_node_transfer_us(1 << 20, 4)
            .expect("nonzero gpus");
        assert_eq!(
            before,
            m.contended_node_transfer_us(1 << 20, 4)
                .expect("nonzero gpus"),
            "memo hit must be identical"
        );
        let faster = m.clone().with_topology(Topology::dgx_like(8).with_gpu_link(
            tensordimm_interconnect::Link::nvlink_class(300.0).expect("valid link"),
        ));
        let after = faster
            .contended_node_transfer_us(1 << 20, 4)
            .expect("nonzero gpus");
        assert!(
            after < before,
            "faster link must invalidate: {after} vs {before}"
        );
        assert!(m.contended_node_transfer_us(1 << 20, 0).is_err());
    }
}
