//! The five evaluated design points.

use std::fmt;

/// One way of deploying the recommender (Section 6's five designs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignPoint {
    /// Embeddings and DNN both on the host CPU.
    CpuOnly,
    /// Embeddings gathered on the CPU, copied over PCIe, DNN on the GPU.
    CpuGpu,
    /// Pooled memory on the GPU interconnect without NMP (`PMEM`).
    Pmem,
    /// The proposal: TensorNode with NMP TensorDIMMs (`TDIMM`).
    Tdimm,
    /// Oracle GPU with infinite local memory (`GPU-only`).
    GpuOnly,
}

impl DesignPoint {
    /// All five, in the paper's presentation order.
    pub fn all() -> [DesignPoint; 5] {
        [
            DesignPoint::CpuOnly,
            DesignPoint::CpuGpu,
            DesignPoint::Pmem,
            DesignPoint::Tdimm,
            DesignPoint::GpuOnly,
        ]
    }

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            DesignPoint::CpuOnly => "CPU-only",
            DesignPoint::CpuGpu => "CPU-GPU",
            DesignPoint::Pmem => "PMEM",
            DesignPoint::Tdimm => "TDIMM",
            DesignPoint::GpuOnly => "GPU-only",
        }
    }

    /// Whether the DNN runs on the GPU for this design.
    pub fn dnn_on_gpu(&self) -> bool {
        !matches!(self, DesignPoint::CpuOnly)
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_order() {
        let all = DesignPoint::all();
        assert_eq!(all.len(), 5);
        assert_eq!(all[0].label(), "CPU-only");
        assert_eq!(all[3].to_string(), "TDIMM");
        assert!(!DesignPoint::CpuOnly.dnn_on_gpu());
        assert!(DesignPoint::Tdimm.dnn_on_gpu());
    }
}
