//! End-to-end system model: the five recommender design points.
//!
//! Section 6 of the paper compares five ways of deploying a recommender
//! whose embedding tables exceed GPU memory:
//!
//! * [`DesignPoint::CpuOnly`] — embeddings *and* DNN on the host CPU,
//! * [`DesignPoint::CpuGpu`] — embeddings gathered on the CPU, shipped over
//!   PCIe with `cudaMemcpy`, DNN on the GPU,
//! * [`DesignPoint::Pmem`] — a pooled-memory node on the GPU interconnect
//!   *without* NMP: raw embeddings cross NVLINK, the GPU pools them,
//! * [`DesignPoint::Tdimm`] — the proposal: NMP gather + reduction inside
//!   the TensorNode, only pooled tensors cross NVLINK,
//! * [`DesignPoint::GpuOnly`] — the unbuildable oracle with infinite GPU
//!   memory.
//!
//! [`SystemModel::evaluate`] produces the per-phase latency breakdown of
//! Fig. 13 (embedding lookup / `cudaMemcpy` / DNN computation / else) from
//! which Figs. 4, 14, 15 and 16 all derive.
//!
//! # Example
//!
//! ```
//! use tensordimm_system::{DesignPoint, SystemModel};
//! use tensordimm_models::Workload;
//!
//! let model = SystemModel::paper_defaults();
//! let w = Workload::facebook();
//! let tdimm = model.evaluate(&w, 64, DesignPoint::Tdimm);
//! let cpu = model.evaluate(&w, 64, DesignPoint::CpuOnly);
//! let oracle = model.evaluate(&w, 64, DesignPoint::GpuOnly);
//! assert!(cpu.total_us() > 3.0 * tdimm.total_us());
//! assert!(tdimm.total_us() < 1.5 * oracle.total_us());
//! ```

pub mod breakdown;
pub mod design;
pub mod model;
pub mod pricer;
pub mod serving;
pub mod sweep;

pub use breakdown::PhaseBreakdown;
pub use design::DesignPoint;
pub use model::{SystemModel, SystemModelConfig, TransferBackend};
pub use pricer::{
    AnalyticPricer, BatchPricer, CycleKey, CycleMeasure, CyclePricer, CyclePricerConfig,
    DegradedNode, PricingBackend,
};
pub use serving::{node_sharing, price_batch, sharing_sweep, BatchCost, ServingReport};
pub use sweep::{geometric_mean, normalized_performance, speedup_matrix, SweepPoint};
pub use tensordimm_cache::{HotRowCacheConfig, HotRowStats};
pub use tensordimm_interconnect::TopologyKind;

#[cfg(test)]
mod tests {
    use super::*;
    use tensordimm_models::Workload;

    /// The headline claims of the paper, as loose shape assertions:
    /// average TDIMM speedups of 6.2x over CPU-only and 8.9x over CPU-GPU
    /// at default embedding size, and ~84% of the GPU-only oracle.
    #[test]
    fn headline_shape_holds() {
        let model = SystemModel::paper_defaults();
        let batches = [8usize, 64, 128]; // the Fig. 14/15 batch grid
        let mut vs_cpu = Vec::new();
        let mut vs_hybrid = Vec::new();
        let mut vs_oracle = Vec::new();
        for w in Workload::all() {
            for &b in &batches {
                let t = model.evaluate(&w, b, DesignPoint::Tdimm).total_us();
                let c = model.evaluate(&w, b, DesignPoint::CpuOnly).total_us();
                let h = model.evaluate(&w, b, DesignPoint::CpuGpu).total_us();
                let o = model.evaluate(&w, b, DesignPoint::GpuOnly).total_us();
                vs_cpu.push(c / t);
                vs_hybrid.push(h / t);
                vs_oracle.push(o / t);
            }
        }
        let g_cpu = geometric_mean(&vs_cpu);
        let g_hybrid = geometric_mean(&vs_hybrid);
        let g_oracle = geometric_mean(&vs_oracle);
        assert!(
            (4.0..12.0).contains(&g_cpu),
            "TDIMM vs CPU-only geomean speedup {g_cpu} (paper: 6.2x)"
        );
        assert!(
            (6.0..16.0).contains(&g_hybrid),
            "TDIMM vs CPU-GPU geomean speedup {g_hybrid} (paper: 8.9x)"
        );
        assert!(
            (0.70..0.98).contains(&g_oracle),
            "TDIMM fraction of oracle {g_oracle} (paper: 0.84)"
        );
    }
}
