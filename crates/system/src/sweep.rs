//! Sweep helpers for the figure harnesses.

use tensordimm_models::Workload;

use crate::design::DesignPoint;
use crate::model::SystemModel;

/// One evaluated point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Workload name.
    pub workload: String,
    /// Batch size.
    pub batch: usize,
    /// Design point.
    pub design: DesignPoint,
    /// Total inference latency, µs.
    pub total_us: f64,
    /// Performance normalized to GPU-only (1.0 = oracle).
    pub normalized: f64,
}

/// Geometric mean of positive values (the paper's summary statistic).
///
/// Returns 0.0 for an empty slice.
///
/// # Example
///
/// ```
/// use tensordimm_system::geometric_mean;
///
/// assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// assert_eq!(geometric_mean(&[]), 0.0);
/// ```
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Evaluate every (workload × batch × design) combination, normalized to
/// the GPU-only oracle — the data behind Figs. 4 and 14.
pub fn normalized_performance(
    model: &SystemModel,
    workloads: &[Workload],
    batches: &[usize],
) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for w in workloads {
        for &batch in batches {
            for design in DesignPoint::all() {
                out.push(SweepPoint {
                    workload: w.name.to_string(),
                    batch,
                    design,
                    total_us: model.evaluate(w, batch, design).total_us(),
                    normalized: model.normalized(w, batch, design),
                });
            }
        }
    }
    out
}

/// Average TDIMM speedups over the two baselines for embedding scales —
/// the data behind Fig. 15. Returns rows of
/// `(scale factor, batch, speedup vs CPU-only, speedup vs CPU-GPU)`,
/// each geometric-mean'd across `workloads`.
pub fn speedup_matrix(
    model: &SystemModel,
    workloads: &[Workload],
    scales: &[usize],
    batches: &[usize],
) -> Vec<(usize, usize, f64, f64)> {
    let mut rows = Vec::new();
    for &scale in scales {
        for &batch in batches {
            let mut vs_cpu = Vec::new();
            let mut vs_hybrid = Vec::new();
            for w in workloads {
                let scaled = w.scaled_embeddings(scale);
                vs_cpu.push(model.speedup(
                    &scaled,
                    batch,
                    DesignPoint::Tdimm,
                    DesignPoint::CpuOnly,
                ));
                vs_hybrid.push(model.speedup(
                    &scaled,
                    batch,
                    DesignPoint::Tdimm,
                    DesignPoint::CpuGpu,
                ));
            }
            rows.push((
                scale,
                batch,
                geometric_mean(&vs_cpu),
                geometric_mean(&vs_hybrid),
            ));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_covers_grid() {
        let model = SystemModel::paper_defaults();
        let workloads = [Workload::ncf(), Workload::fox()];
        let points = normalized_performance(&model, &workloads, &[8, 64]);
        assert_eq!(points.len(), 2 * 2 * 5);
        for p in &points {
            assert!(p.total_us > 0.0);
            assert!(p.normalized > 0.0 && p.normalized <= 1.001, "{p:?}");
        }
        // Oracle rows normalize to 1.
        assert!(points
            .iter()
            .filter(|p| p.design == DesignPoint::GpuOnly)
            .all(|p| (p.normalized - 1.0).abs() < 1e-9));
    }

    #[test]
    fn speedups_grow_with_scale() {
        let model = SystemModel::paper_defaults();
        let workloads = Workload::all();
        let rows = speedup_matrix(&model, &workloads, &[1, 4], &[64]);
        assert_eq!(rows.len(), 2);
        let (_, _, cpu1, hybrid1) = rows[0];
        let (_, _, cpu4, hybrid4) = rows[1];
        assert!(cpu4 > cpu1, "vs cpu: {cpu1} -> {cpu4}");
        assert!(hybrid4 > hybrid1, "vs hybrid: {hybrid1} -> {hybrid4}");
    }
}
