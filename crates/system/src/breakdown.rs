//! Per-phase latency breakdown (the Fig. 13 quantities).

/// Latency of one inference split into the paper's four phases.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseBreakdown {
    /// Embedding lookup (gather + any near-data pooling), µs.
    pub lookup_us: f64,
    /// Embedding copy to the GPU (`cudaMemcpy`), µs.
    pub transfer_us: f64,
    /// DNN computation (including on-device pooling where applicable), µs.
    pub dnn_us: f64,
    /// Everything else (feature prep, launches, framework), µs.
    pub other_us: f64,
}

impl PhaseBreakdown {
    /// Total inference latency, µs.
    pub fn total_us(&self) -> f64 {
        self.lookup_us + self.transfer_us + self.dnn_us + self.other_us
    }

    /// The four phases as labeled fractions of the total (the stacked-bar
    /// form of Fig. 13).
    pub fn fractions(&self) -> [(&'static str, f64); 4] {
        let t = self.total_us().max(f64::MIN_POSITIVE);
        [
            ("Embedding lookup", self.lookup_us / t),
            ("cudaMemcpy", self.transfer_us / t),
            ("Computation", self.dnn_us / t),
            ("Else", self.other_us / t),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let b = PhaseBreakdown {
            lookup_us: 10.0,
            transfer_us: 20.0,
            dnn_us: 60.0,
            other_us: 10.0,
        };
        assert!((b.total_us() - 100.0).abs() < 1e-12);
        let f = b.fractions();
        assert_eq!(f[0].0, "Embedding lookup");
        assert!((f[2].1 - 0.6).abs() < 1e-12);
        let sum: f64 = f.iter().map(|(_, v)| v).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_is_safe() {
        let b = PhaseBreakdown::default();
        assert_eq!(b.total_us(), 0.0);
        let f = b.fractions();
        assert!(f.iter().all(|(_, v)| v.is_finite()));
    }
}
