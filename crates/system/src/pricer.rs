//! Pluggable batch-pricing backends for the serving layer.
//!
//! The request-level serving simulator prices every sealed batch through a
//! [`BatchPricer`]. Two backends are provided:
//!
//! * [`AnalyticPricer`] — the closed-form model: [`SystemModel::evaluate`]
//!   plus the shared-TensorNode contention math of
//!   [`crate::serving::price_batch`]. Fast (µs per price) but blind to
//!   DRAM-level behaviour: its node-side lookup phase is `bytes / (peak ×
//!   utilization-constant)`.
//! * [`CyclePricer`] — cycle-calibrated: the batch's embedding gathers are
//!   lowered to a TensorISA `GATHER` access plan over one DIMM's slice
//!   (the batch's own Zipf row draws, via
//!   [`tensordimm_embedding::zipf_lookup_rows`]) and replayed through
//!   [`NmpCore::run_plan`] on the event-driven DRAM engine. The replay's
//!   completion cycles convert to microseconds and replace the analytic
//!   lookup phase, so rank-level parallelism, row-buffer locality and
//!   refresh interference show up in serving tail latency. Replays are
//!   memoized in a latency table keyed by `(workload, batch, dimms)` and
//!   shared across the node designs (which execute the identical gather
//!   pattern — see [`CycleKey`]), so steady-state serving runs pay the
//!   cycle cost once per distinct batch shape.
//!
//! Both backends share the identical contention model, so they diverge
//! only where the cycle simulation disagrees with the utilization
//! constants (see `EXPERIMENTS.md`, "Analytic vs cycle-calibrated
//! serving", and the `sweep_backend_compare` binary).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use tensordimm_cache::{HotRowCacheConfig, HotRowStats};
use tensordimm_dram::DramConfig;
use tensordimm_embedding::zipf_lookup_rows;
use tensordimm_interconnect::InterconnectError;
use tensordimm_isa::{AccessPlan, DimmContext, Instruction};
use tensordimm_models::Workload;
use tensordimm_nmp::{NmpConfig, NmpCore};

use crate::design::DesignPoint;
use crate::model::SystemModel;
use crate::serving::{contended_cost, price_batch, BatchCost};

/// Which pricing backend a serving run should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PricingBackend {
    /// Closed-form analytic model (the default; fastest).
    #[default]
    Analytic,
    /// Cycle-calibrated: node lookups replayed on the event-driven
    /// DRAM/NMP co-simulator, memoized per batch shape.
    CycleCalibrated,
}

impl PricingBackend {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            PricingBackend::Analytic => "analytic",
            PricingBackend::CycleCalibrated => "cycle-calibrated",
        }
    }

    /// Construct the backend over `model` with default knobs.
    pub fn build<'a>(self, model: &'a SystemModel) -> Box<dyn BatchPricer + 'a> {
        self.build_with_hot_rows(model, HotRowCacheConfig::disabled())
    }

    /// Construct the backend with an explicit hot-row cache tier in front
    /// of the gather replay. The analytic backend has no replay and
    /// ignores the knob; the cycle backend folds it into its NMP
    /// configuration (and thus into every [`CycleKey`]).
    pub fn build_with_hot_rows<'a>(
        self,
        model: &'a SystemModel,
        hot_rows: HotRowCacheConfig,
    ) -> Box<dyn BatchPricer + 'a> {
        match self {
            PricingBackend::Analytic => Box::new(AnalyticPricer::new(model)),
            PricingBackend::CycleCalibrated => {
                let mut cfg = CyclePricerConfig::paper_defaults();
                cfg.nmp.hot_rows = hot_rows;
                Box::new(CyclePricer::with_config(model, cfg))
            }
        }
    }
}

/// The degraded-capacity view of the TensorNode a batch is priced
/// against: how many DIMM ranks are serving, any gray-failure latency
/// inflation, and rows a transient fault forces the batch to re-read.
///
/// [`DegradedNode::healthy`] is the identity: pricing against it is
/// required (and tested) to be bit-identical to the plain
/// [`BatchPricer::price`] path, so fault-aware callers with an empty
/// schedule reproduce fault-free runs exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedNode {
    /// DIMM ranks currently serving (`>= 1`; a node with zero alive
    /// ranks cannot dispatch and is rejected).
    pub dimms_alive: u64,
    /// DIMM ranks configured.
    pub dimms_total: u64,
    /// Gray-failure service-time inflation (`1.0` = healthy; applied to
    /// the whole batch cost without removing capacity).
    pub latency_multiplier: f64,
    /// Rows this batch must re-read after transient faults (charged as
    /// extra gather traffic at the degraded bandwidth).
    pub reread_rows: u64,
}

impl DegradedNode {
    /// The identity view of a `dimms_total`-rank node.
    pub fn healthy(dimms_total: u64) -> Self {
        DegradedNode {
            dimms_alive: dimms_total,
            dimms_total,
            latency_multiplier: 1.0,
            reread_rows: 0,
        }
    }

    /// Whether this view degrades nothing.
    pub fn is_healthy(&self) -> bool {
        self.dimms_alive == self.dimms_total
            && self.latency_multiplier == 1.0
            && self.reread_rows == 0
    }

    /// Surviving fraction of the node's aggregated bandwidth: the
    /// Fig. 7 stripe mapping spreads every gather over all ranks
    /// symmetrically, so `alive/total` of the peak survives.
    pub fn bandwidth_factor(&self) -> f64 {
        self.dimms_alive as f64 / self.dimms_total as f64
    }

    /// Hashable identity for price memoization: two views with equal
    /// fingerprints price identically.
    pub fn fingerprint(&self) -> (u64, u64, u64, u64) {
        (
            self.dimms_alive,
            self.dimms_total,
            self.latency_multiplier.to_bits(),
            self.reread_rows,
        )
    }

    /// Check the view is priceable.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidLink`] when no rank is alive,
    /// `dimms_alive > dimms_total`, or the multiplier is not a finite
    /// value `>= 1`.
    pub fn validate(&self) -> Result<(), InterconnectError> {
        if self.dimms_alive == 0 || self.dimms_alive > self.dimms_total {
            return Err(InterconnectError::InvalidLink {
                parameter: "dimms_alive",
            });
        }
        if !self.latency_multiplier.is_finite() || self.latency_multiplier < 1.0 {
            return Err(InterconnectError::InvalidLink {
                parameter: "latency_multiplier",
            });
        }
        Ok(())
    }
}

/// Prices one dispatched batch at a given concurrency.
///
/// Implementations must be deterministic: the same `(workload, batch,
/// design, active_gpus)` must always return the bit-identical cost, so a
/// serving run replays exactly per seed regardless of backend — *including
/// across threads*. `Send + Sync` is a supertrait so one pricer instance
/// (and its memoized state) can be shared by every worker of a parallel
/// sweep.
pub trait BatchPricer: Send + Sync {
    /// Cost of one `batch`-request batch of `workload` on `design`, with
    /// `active_gpus` GPUs (including this one) concurrently in flight.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidLink`] when `active_gpus` is
    /// zero (no backend can price a batch with nothing running it).
    fn price(
        &self,
        workload: &Workload,
        batch: usize,
        design: DesignPoint,
        active_gpus: usize,
    ) -> Result<BatchCost, InterconnectError>;

    /// [`BatchPricer::price`] against a degraded TensorNode.
    ///
    /// The default implementation is conservative: for node designs it
    /// scales the healthy cost by `total/alive` (lost ranks slow the
    /// whole batch, not just the node phases) and by the gray multiplier,
    /// and ignores `reread_rows`; non-node designs are unaffected (their
    /// memory paths are not the TensorNode's). Both built-in backends
    /// override this to degrade only the node-side phases exactly. Every
    /// implementation must price a [`DegradedNode::healthy`] view
    /// bit-identically to `price`.
    ///
    /// # Errors
    ///
    /// As [`price`](BatchPricer::price), plus
    /// [`InterconnectError::InvalidLink`] for an unpriceable view (see
    /// [`DegradedNode::validate`]).
    fn price_degraded(
        &self,
        workload: &Workload,
        batch: usize,
        design: DesignPoint,
        active_gpus: usize,
        degraded: DegradedNode,
    ) -> Result<BatchCost, InterconnectError> {
        degraded.validate()?;
        let mut cost = self.price(workload, batch, design, active_gpus)?;
        if matches!(design, DesignPoint::Pmem | DesignPoint::Tdimm) {
            cost.service_us *= degraded.latency_multiplier / degraded.bandwidth_factor();
        }
        Ok(cost)
    }

    /// Which backend this is.
    fn backend(&self) -> PricingBackend;
}

/// Extra gather traffic of `reread_rows` forced re-reads, priced at the
/// (degraded) effective gather bandwidth.
fn reread_us(workload: &Workload, reread_rows: u64, gather_gbps: f64) -> f64 {
    reread_rows as f64 * workload.embedding_bytes() as f64 / (gather_gbps * 1e3)
}

/// The closed-form analytic backend: delegates to
/// [`crate::serving::price_batch`].
#[derive(Debug, Clone)]
pub struct AnalyticPricer<'a> {
    model: &'a SystemModel,
}

impl<'a> AnalyticPricer<'a> {
    /// An analytic pricer over `model`.
    pub fn new(model: &'a SystemModel) -> Self {
        AnalyticPricer { model }
    }
}

impl BatchPricer for AnalyticPricer<'_> {
    fn price(
        &self,
        workload: &Workload,
        batch: usize,
        design: DesignPoint,
        active_gpus: usize,
    ) -> Result<BatchCost, InterconnectError> {
        price_batch(self.model, workload, batch, design, active_gpus)
    }

    /// Exact degraded pricing: the node-side phases are re-evaluated at
    /// the surviving `alive/total` bandwidth fraction
    /// ([`SystemModel::evaluate_degraded`]), forced re-reads are charged
    /// as extra gather traffic at the degraded bandwidth, and the gray
    /// multiplier inflates the final contended cost.
    fn price_degraded(
        &self,
        workload: &Workload,
        batch: usize,
        design: DesignPoint,
        active_gpus: usize,
        degraded: DegradedNode,
    ) -> Result<BatchCost, InterconnectError> {
        degraded.validate()?;
        if degraded.is_healthy() || !matches!(design, DesignPoint::Pmem | DesignPoint::Tdimm) {
            return self.price(workload, batch, design, active_gpus);
        }
        let cfg = self.model.config();
        let factor = degraded.bandwidth_factor();
        let node_peak = cfg.node_peak_gbps * factor;
        let mut solo = self
            .model
            .evaluate_with_node_peak(workload, batch, design, node_peak);
        let gather_gbps = match design {
            DesignPoint::Pmem => node_peak * cfg.pmem_read_utilization,
            _ => node_peak * cfg.node_gather_utilization,
        };
        solo.lookup_us += reread_us(workload, degraded.reread_rows, gather_gbps);
        let mut cost = contended_cost(self.model, workload, batch, design, active_gpus, &solo)?;
        cost.service_us *= degraded.latency_multiplier;
        Ok(cost)
    }

    fn backend(&self) -> PricingBackend {
        PricingBackend::Analytic
    }
}

/// Knobs of the cycle-calibrated backend.
#[derive(Debug, Clone, PartialEq)]
pub struct CyclePricerConfig {
    /// The NMP core (and its local DRAM channel) each replay runs on.
    pub nmp: NmpConfig,
    /// DIMMs in the TensorNode (32 for the paper's Table 1 node); one
    /// DIMM's symmetric slice is replayed and scaled by this count.
    pub dimms: u64,
    /// Cap on gather lookups replayed per measurement. Batches whose
    /// traffic exceeds the cap are measured on a prefix — bandwidth, not
    /// absolute latency, is what the replay calibrates, and DDR4 gather
    /// streams reach steady state within a few hundred lookups.
    pub max_replayed_lookups: usize,
}

impl CyclePricerConfig {
    /// The calibration setup of `EXPERIMENTS.md`: the paper's NMP core
    /// with trace-replay DRAM queue depths (the reorder window a
    /// Ramulator-style replay enjoys — the same deepening
    /// `bench::traffic` applies when measuring the analytic constants),
    /// 32 DIMMs, 2 000-lookup replay cap (matching the analytic model's
    /// `gather_sim_lookups`).
    pub fn paper_defaults() -> Self {
        let mut nmp = NmpConfig::paper();
        nmp.dram.read_queue_depth = 256;
        nmp.dram.write_queue_depth = 256;
        nmp.dram.write_high_watermark = 192;
        nmp.dram.write_low_watermark = 64;
        CyclePricerConfig {
            nmp,
            dimms: 32,
            max_replayed_lookups: 2000,
        }
    }

    /// The exact gather this configuration replays for `(workload, batch)`
    /// at Zipf skew `zipf_s`: the lowered instruction, its runtime index
    /// list and the per-DIMM context. This *is* the trace
    /// [`CyclePricer`] measures — exposed so static-analysis gates
    /// (`sweep_static_check`) can verify and lower-bound the same plan the
    /// pricer prices, without re-deriving the lowering recipe.
    pub fn lowered_gather(
        &self,
        zipf_s: f64,
        workload: &Workload,
        batch: usize,
    ) -> (Instruction, Vec<u64>, DimmContext) {
        let dimms = self.dimms.max(1);
        let vec_blocks = workload.embedding_bytes().div_ceil(64);
        // Whole-stripe padding, as the node's allocator provisions.
        let vb = vec_blocks.div_ceil(dimms) * dimms;
        // `.max(1)` guards a zero cap (and a zero-lookup workload): the
        // measurement always replays at least one gather.
        let lookups = (batch.max(1) as u64 * workload.lookups_per_sample())
            .min(self.max_replayed_lookups as u64)
            .max(1);
        let rows = workload.rows_per_table.max(1);
        // Deterministic per batch shape: the trace is part of the key.
        let seed = 0xc1c1e ^ (batch as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ rows;
        let indices = zipf_lookup_rows(lookups as usize, rows, zipf_s, seed);
        // Distinct stripe-aligned operand regions (block addresses); the
        // NMP-local address map folds them into DIMM capacity.
        let region = (rows.max(lookups) + 1) * vb;
        let instr = Instruction::Gather {
            table_base: 0,
            idx_base: 3 * region,
            output_base: region,
            count: lookups,
            vec_blocks: vb,
        };
        (instr, indices, DimmContext::new(dimms, 0))
    }
}

impl Default for CyclePricerConfig {
    fn default() -> Self {
        CyclePricerConfig::paper_defaults()
    }
}

/// Latency-table key: which measurements are interchangeable. Workloads
/// are fingerprinted by every field the gather trace depends on, so e.g.
/// a `scaled_embeddings` variant never aliases its base workload. The
/// design point is deliberately *not* part of the key: PMEM's NMP-less
/// remote reads execute the identical gather access pattern on the same
/// DIMMs (only the consumer differs — see EXPERIMENTS.md), so PMEM and
/// TDIMM share one measurement instead of paying two identical replays.
/// The final field is the hot-row cache fingerprint
/// ([`HotRowCacheConfig::fingerprint`]): bandwidth measured with a cache
/// in front of DRAM must never alias an uncached measurement.
pub type CycleKey = (u64, u64, u64, usize, u64, u64);

/// One memoized replay: the measured aggregate bandwidth plus the hot-row
/// cache counters of the replay that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleMeasure {
    /// Aggregate delivered node gather bandwidth, GB/s.
    pub gbps: f64,
    /// Hot-row cache counters of the replay (zero when disabled).
    pub hot_rows: HotRowStats,
}

fn workload_fingerprint(w: &Workload) -> (u64, u64, u64) {
    (
        w.embedding_bytes(),
        w.lookups_per_sample(),
        w.rows_per_table,
    )
}

/// How many independent `Mutex`-guarded slices the latency table is split
/// into: concurrent warm-up replays for *different* keys never contend on
/// one lock (the shard mutex is only held for the map probe, never across
/// a replay).
const TABLE_SHARDS: usize = 8;

/// The invalidation unit: replay knobs plus the latency table they
/// produced, swapped/cleared together under one `RwLock` so a
/// reconfiguration can never race a concurrent replay into the fresh
/// table.
struct CycleState {
    config: CyclePricerConfig,
    /// Memoized replay measurements keyed by `(workload fingerprint,
    /// batch, dimms, hot-row fingerprint)` (shared by the node designs —
    /// see [`CycleKey`]). Each entry is a per-key [`OnceLock`] cell:
    /// concurrent cold misses on the *same* key block on one replay
    /// instead of duplicating it.
    shards: Vec<Mutex<HashMap<CycleKey, Arc<OnceLock<CycleMeasure>>>>>,
}

impl CycleState {
    fn fresh(config: CyclePricerConfig) -> Self {
        CycleState {
            config,
            shards: (0..TABLE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard_of(key: &CycleKey) -> usize {
        // Deterministic mix of the key fields; batch (`key.3`) is the
        // field that actually varies within one sweep.
        let mix = key
            .0
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(key.1)
            .wrapping_add(key.2)
            .wrapping_add(key.3 as u64)
            .wrapping_add(key.4)
            .wrapping_add(key.5);
        (mix % TABLE_SHARDS as u64) as usize
    }

    /// The memo cell for `key`, inserted empty if absent.
    fn cell(&self, key: &CycleKey) -> Arc<OnceLock<CycleMeasure>> {
        let mut shard = self.shards[Self::shard_of(key)].lock().expect("shard lock");
        Arc::clone(shard.entry(*key).or_default())
    }
}

/// The cycle-calibrated backend.
///
/// Holds an interior-mutable memoized latency table; the table is tied to
/// the `(SystemModel, CyclePricerConfig)` pair the pricer was built over
/// and is invalidated whenever either changes ([`CyclePricer::set_config`]
/// clears it; the model is borrowed immutably, so it cannot drift under a
/// live pricer).
///
/// The pricer is `Sync`: one instance can serve every worker of a
/// parallel sweep. The table is sharded ([`TABLE_SHARDS`] mutexes, held
/// only for map probes) and each entry is a [`OnceLock`] cell, so cold
/// misses for distinct keys replay concurrently while concurrent misses
/// for the *same* key serialize behind exactly one replay
/// ([`CyclePricer::replay_count`] counts them; see the concurrent-warm
/// stress tests). Reconfiguration ([`CyclePricer::set_config`] /
/// [`CyclePricer::set_dram_config`]) takes the state's write lock, so it
/// waits out in-flight replays and can never leak a measurement taken
/// under the old knobs into the fresh table.
pub struct CyclePricer<'a> {
    model: &'a SystemModel,
    state: RwLock<CycleState>,
    /// Cold replays performed over this pricer's lifetime (monotone;
    /// survives invalidation).
    replays: AtomicU64,
}

impl<'a> CyclePricer<'a> {
    /// A cycle-calibrated pricer over `model` with
    /// [`CyclePricerConfig::paper_defaults`].
    pub fn new(model: &'a SystemModel) -> Self {
        CyclePricer::with_config(model, CyclePricerConfig::paper_defaults())
    }

    /// A pricer with explicit knobs.
    pub fn with_config(model: &'a SystemModel, config: CyclePricerConfig) -> Self {
        CyclePricer {
            model,
            state: RwLock::new(CycleState::fresh(config)),
            replays: AtomicU64::new(0),
        }
    }

    /// The knobs in use (a snapshot — the live value can change under
    /// [`CyclePricer::set_config`]).
    pub fn config(&self) -> CyclePricerConfig {
        self.state.read().expect("state lock").config.clone()
    }

    /// Replace the replay knobs, invalidating the memoized latency table
    /// (cached cycles measured under the old DRAM timing would otherwise
    /// leak into prices for the new one). Takes `&self`: the swap happens
    /// under the state's write lock, so concurrent readers either finish
    /// on the old `(config, table)` pair or start on the new one — never
    /// a mix.
    pub fn set_config(&self, config: CyclePricerConfig) {
        *self.state.write().expect("state lock") = CycleState::fresh(config);
    }

    /// Replace only the local-DRAM configuration (e.g. a timing or
    /// scheduler knob), invalidating the latency table.
    pub fn set_dram_config(&self, dram: DramConfig) {
        let mut state = self.state.write().expect("state lock");
        let mut config = state.config.clone();
        config.nmp.dram = dram;
        *state = CycleState::fresh(config);
    }

    /// Replace only the hot-row cache configuration, invalidating the
    /// latency table (measurements taken behind a different cache tier
    /// must never be served for the new one). The fingerprint is also in
    /// [`CycleKey`], so even a stale read could not alias — the clear
    /// keeps the table from accumulating dead entries.
    pub fn set_hot_row_config(&self, hot_rows: HotRowCacheConfig) {
        let mut state = self.state.write().expect("state lock");
        let mut config = state.config.clone();
        config.nmp.hot_rows = hot_rows;
        *state = CycleState::fresh(config);
    }

    /// Entries currently memoized (initialized cells only).
    pub fn cached_entries(&self) -> usize {
        self.cached_table().len()
    }

    /// Snapshot of the memoized latency table, sorted by key — the
    /// bit-identity witness the thread-count-invariance tests compare.
    pub fn cached_table(&self) -> Vec<(CycleKey, f64)> {
        self.cached_measures()
            .into_iter()
            .map(|(k, m)| (k, m.gbps))
            .collect()
    }

    /// Snapshot of the hot-row cache counters behind each memoized
    /// measurement, sorted by key (all-zero stats when the cache is
    /// disabled) — what the serving sweeps aggregate hit rates from.
    pub fn cached_hot_row_table(&self) -> Vec<(CycleKey, HotRowStats)> {
        self.cached_measures()
            .into_iter()
            .map(|(k, m)| (k, m.hot_rows))
            .collect()
    }

    fn cached_measures(&self) -> Vec<(CycleKey, CycleMeasure)> {
        let state = self.state.read().expect("state lock");
        let mut out: Vec<(CycleKey, CycleMeasure)> = state
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("shard lock")
                    .iter()
                    .filter_map(|(k, cell)| cell.get().map(|&v| (*k, v)))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Cold replays performed so far (monotone over the pricer's
    /// lifetime). `warm`/`price` calls served from the table do not move
    /// it; the concurrent-warm stress test pins it to the number of
    /// *distinct* keys.
    pub fn replay_count(&self) -> u64 {
        self.replays.load(Ordering::SeqCst)
    }

    /// Replay every distinct batch shape in `shapes` concurrently on up
    /// to `workers` threads, filling the latency table so later
    /// (sequential or parallel) pricing is served from memo hits. Returns
    /// the number of fresh measurements *this call's* closures performed —
    /// a key measured by a racing `price`/`warm` on another thread counts
    /// toward that caller, not this one (the global tally is
    /// [`CyclePricer::replay_count`]).
    ///
    /// Shapes that alias the same [`CycleKey`] (duplicates, or workloads
    /// with identical gather fingerprints) are deduplicated up front, and
    /// the per-key [`OnceLock`] cells make even racing external `price`
    /// calls share one replay — warming is idempotent and never measures
    /// a key twice.
    pub fn warm(&self, shapes: &[(Workload, usize)], workers: usize) -> u64 {
        let config = self.config();
        let dimms = config.dimms;
        let hot_rows = config.nmp.hot_rows.fingerprint();
        let mut seen = std::collections::HashSet::new();
        let distinct: Vec<&(Workload, usize)> = shapes
            .iter()
            .filter(|(w, batch)| {
                let (emb, lps, rows) = workload_fingerprint(w);
                seen.insert((emb, lps, rows, *batch, dimms, hot_rows))
            })
            .collect();
        let fresh = AtomicU64::new(0);
        tensordimm_exec::par_map(&distinct, workers, |_, (w, batch)| {
            self.measured_counted(w, *batch, Some(&fresh));
        });
        fresh.load(Ordering::SeqCst)
    }

    /// Measured aggregate TensorNode gather bandwidth for this batch
    /// shape, GB/s (memoized; both node designs share the measurement —
    /// see [`CycleKey`]). Replays one DIMM's slice of the batch's
    /// `GATHER` — the batch's own Zipf row draws over the workload's
    /// tables — through the NMP core on the event-driven DRAM path, and
    /// scales by the DIMM count (slices are symmetric under the Fig. 7
    /// stripe mapping).
    pub fn measured_node_gbps(&self, workload: &Workload, batch: usize) -> f64 {
        self.measured_counted(workload, batch, None).gbps
    }

    /// The hot-row cache counters of this batch shape's (memoized)
    /// replay — all zero when the cache is disabled. Shares the memo cell
    /// with [`CyclePricer::measured_node_gbps`], so asking for the stats
    /// never pays a second replay.
    pub fn measured_hot_rows(&self, workload: &Workload, batch: usize) -> HotRowStats {
        self.measured_counted(workload, batch, None).hot_rows
    }

    /// The memoized measurement, also bumping `fresh` when the replay was
    /// performed by *this* call (rather than served from the table or a
    /// racing initializer).
    fn measured_counted(
        &self,
        workload: &Workload,
        batch: usize,
        fresh: Option<&AtomicU64>,
    ) -> CycleMeasure {
        let state = self.state.read().expect("state lock");
        let (emb, lps, rows) = workload_fingerprint(workload);
        let key = (
            emb,
            lps,
            rows,
            batch,
            state.config.dimms,
            state.config.nmp.hot_rows.fingerprint(),
        );
        let cell = state.cell(&key);
        // The replay runs outside the shard mutex (other keys proceed in
        // parallel) but inside the state read lock (a reconfiguration
        // waits for it, then starts from an empty table).
        *cell.get_or_init(|| {
            self.replays.fetch_add(1, Ordering::SeqCst);
            if let Some(f) = fresh {
                f.fetch_add(1, Ordering::SeqCst);
            }
            Self::replay_gather(&state.config, self.model, workload, batch)
        })
    }

    /// Cold replay: cycles on one DIMM → aggregate node GB/s plus the
    /// replay's hot-row cache counters.
    fn replay_gather(
        config: &CyclePricerConfig,
        model: &SystemModel,
        workload: &Workload,
        batch: usize,
    ) -> CycleMeasure {
        let dimms = config.dimms.max(1);
        let (instr, indices, ctx) = config.lowered_gather(model.config().zipf_s, workload, batch);
        let plan = AccessPlan::for_dimm(&instr, ctx, Some(&indices))
            .expect("generated gather plan is valid");
        let mut core = NmpCore::new(config.nmp.clone()).expect("pricer NMP config is valid");
        let stats = core
            .run_plan(&instr, &plan, ctx)
            .expect("pricer DRAM config is valid");
        // Delivered bandwidth: DRAM traffic plus SRAM-served hit blocks —
        // identical to `achieved_gbps` when the hot-row cache is disabled.
        CycleMeasure {
            gbps: stats.delivered_gbps() * dimms as f64,
            hot_rows: stats.hot_rows,
        }
    }

    /// The solo per-phase breakdown with the node-side gather phase
    /// re-priced at the measured bandwidth (non-node designs return the
    /// analytic breakdown unchanged — their memory paths are not the
    /// TensorNode's and keep the analytic model).
    ///
    /// `bw_factor` scales the node's effective bandwidth — both the
    /// analytic baseline and the measured gather term — for degraded
    /// pricing: each surviving rank delivers what the replay measured for
    /// it, there are just fewer of them aggregating. The healthy path
    /// passes `1.0`, which is exact (multiplying by `1.0` is the
    /// floating-point identity), so degraded support costs the fault-free
    /// path nothing.
    fn calibrated_solo(
        &self,
        workload: &Workload,
        batch: usize,
        design: DesignPoint,
        bw_factor: f64,
    ) -> crate::breakdown::PhaseBreakdown {
        let cfg = self.model.config();
        let node_peak = cfg.node_peak_gbps * bw_factor;
        let mut solo = self
            .model
            .evaluate_with_node_peak(workload, batch, design, node_peak);
        if !matches!(design, DesignPoint::Pmem | DesignPoint::Tdimm) {
            return solo;
        }
        let measured_gbps = self.measured_node_gbps(workload, batch) * bw_factor;
        let gathered = workload.gathered_bytes(batch) as f64;
        let us_per_byte = |gbps: f64| 1.0 / (gbps * 1e3);
        // Swap the analytic gather term for the measured one; the
        // streaming-pool, dispatch-overhead and transfer terms are left
        // analytic (the replay calibrates the gather pattern only).
        let (analytic_gather_us, measured_gather_us) = match design {
            DesignPoint::Pmem => (
                gathered * us_per_byte(node_peak * cfg.pmem_read_utilization),
                gathered * us_per_byte(measured_gbps),
            ),
            _ => {
                let passes = if cfg.fused_gather_pool { 1.0 } else { 2.0 };
                (
                    passes * gathered * us_per_byte(node_peak * cfg.node_gather_utilization),
                    passes * gathered * us_per_byte(measured_gbps),
                )
            }
        };
        solo.lookup_us = (solo.lookup_us - analytic_gather_us + measured_gather_us).max(0.0);
        solo
    }
}

impl BatchPricer for CyclePricer<'_> {
    fn price(
        &self,
        workload: &Workload,
        batch: usize,
        design: DesignPoint,
        active_gpus: usize,
    ) -> Result<BatchCost, InterconnectError> {
        let solo = self.calibrated_solo(workload, batch, design, 1.0);
        contended_cost(self.model, workload, batch, design, active_gpus, &solo)
    }

    /// Exact degraded pricing on the cycle-calibrated path: the memoized
    /// per-rank measurement is reused (per-rank bandwidth does not change
    /// when a *different* rank dies — the aggregate just sums fewer
    /// ranks), scaled by `alive/total`, with forced re-reads charged at
    /// the degraded measured bandwidth and the gray multiplier applied to
    /// the contended cost.
    fn price_degraded(
        &self,
        workload: &Workload,
        batch: usize,
        design: DesignPoint,
        active_gpus: usize,
        degraded: DegradedNode,
    ) -> Result<BatchCost, InterconnectError> {
        degraded.validate()?;
        if degraded.is_healthy() || !matches!(design, DesignPoint::Pmem | DesignPoint::Tdimm) {
            return self.price(workload, batch, design, active_gpus);
        }
        let factor = degraded.bandwidth_factor();
        let mut solo = self.calibrated_solo(workload, batch, design, factor);
        let measured_gbps = self.measured_node_gbps(workload, batch) * factor;
        solo.lookup_us += reread_us(workload, degraded.reread_rows, measured_gbps);
        let mut cost = contended_cost(self.model, workload, batch, design, active_gpus, &solo)?;
        cost.service_us *= degraded.latency_multiplier;
        Ok(cost)
    }

    fn backend(&self) -> PricingBackend {
        PricingBackend::CycleCalibrated
    }
}

impl std::fmt::Debug for CyclePricer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CyclePricer")
            .field("config", &self.config())
            .field("cached_entries", &self.cached_entries())
            .field("replay_count", &self.replay_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small replay cap keeps the debug-build tests quick; bandwidth
    /// reaches steady state well before the cap.
    fn quick_pricer(model: &SystemModel) -> CyclePricer<'_> {
        let mut cfg = CyclePricerConfig::paper_defaults();
        cfg.max_replayed_lookups = 256;
        CyclePricer::with_config(model, cfg)
    }

    #[test]
    fn cache_hit_is_bit_identical_to_cold_replay() {
        let model = SystemModel::paper_defaults();
        let warm = quick_pricer(&model);
        let w = Workload::youtube();
        let cold_cost = warm.price(&w, 16, DesignPoint::Tdimm, 4).expect("valid");
        assert_eq!(warm.cached_entries(), 1);
        let hit_cost = warm.price(&w, 16, DesignPoint::Tdimm, 4).expect("valid");
        assert_eq!(warm.cached_entries(), 1, "hit must not re-measure");
        assert_eq!(
            cold_cost.service_us.to_bits(),
            hit_cost.service_us.to_bits()
        );
        // A completely fresh pricer's cold replay agrees bit-for-bit.
        let fresh = quick_pricer(&model);
        let fresh_cost = fresh.price(&w, 16, DesignPoint::Tdimm, 4).expect("valid");
        assert_eq!(
            cold_cost.service_us.to_bits(),
            fresh_cost.service_us.to_bits()
        );
    }

    #[test]
    fn table_invalidated_when_dram_knobs_change() {
        let model = SystemModel::paper_defaults();
        // `&self` invalidation: no `mut` binding needed anywhere.
        let pricer = quick_pricer(&model);
        let w = Workload::youtube();
        let before = pricer.measured_node_gbps(&w, 8);
        assert_eq!(pricer.cached_entries(), 1);

        // Halve the channel clock: the replay must be re-measured, not
        // served from the stale table — at half clock the measured
        // bandwidth must drop.
        let mut dram = pricer.config().nmp.dram;
        dram.timing.clock_mhz /= 2;
        pricer.set_dram_config(dram);
        assert_eq!(pricer.cached_entries(), 0, "stale entries must be dropped");
        let after = pricer.measured_node_gbps(&w, 8);
        assert!(
            after < before,
            "half-clock replay should be slower: {after:.1} vs {before:.1} GB/s"
        );

        // set_config likewise clears.
        let mut cfg = pricer.config();
        cfg.dimms = 16;
        pricer.set_config(cfg);
        assert_eq!(pricer.cached_entries(), 0);
        // Every replay above was a distinct cold measurement.
        assert_eq!(pricer.replay_count(), 2);
    }

    #[test]
    fn warm_deduplicates_and_counts_replays() {
        let model = SystemModel::paper_defaults();
        let pricer = quick_pricer(&model);
        let w = Workload::ncf();
        // Duplicated shapes and an aliasing workload clone: 2 distinct keys.
        let shapes = vec![
            (w.clone(), 4),
            (w.clone(), 8),
            (w.clone(), 4),
            (w.clone(), 8),
        ];
        let fresh = pricer.warm(&shapes, 4);
        assert_eq!(fresh, 2, "only distinct keys replay");
        assert_eq!(pricer.replay_count(), 2);
        assert_eq!(pricer.cached_entries(), 2);
        // Warming again is a no-op served from the table.
        assert_eq!(pricer.warm(&shapes, 4), 0);
        assert_eq!(pricer.replay_count(), 2);
        // And the warmed entries price bit-identically to a fresh pricer.
        let cold = quick_pricer(&model);
        assert_eq!(
            pricer
                .price(&w, 8, DesignPoint::Tdimm, 2)
                .expect("valid")
                .service_us
                .to_bits(),
            cold.price(&w, 8, DesignPoint::Tdimm, 2)
                .expect("valid")
                .service_us
                .to_bits()
        );
    }

    #[test]
    fn cached_table_snapshot_is_sorted_and_stable() {
        let model = SystemModel::paper_defaults();
        let a = quick_pricer(&model);
        let b = quick_pricer(&model);
        let w = Workload::youtube();
        let shapes: Vec<(Workload, usize)> =
            [16usize, 4, 8].iter().map(|&x| (w.clone(), x)).collect();
        a.warm(&shapes, 1);
        b.warm(&shapes, 4);
        let ta = a.cached_table();
        let tb = b.cached_table();
        assert_eq!(ta.len(), 3);
        assert!(ta.windows(2).all(|w| w[0].0 < w[1].0), "sorted by key");
        // Thread-count invariance of the table contents, bit for bit.
        let bits = |t: &[(super::CycleKey, f64)]| -> Vec<(super::CycleKey, u64)> {
            t.iter().map(|&(k, v)| (k, v.to_bits())).collect()
        };
        assert_eq!(bits(&ta), bits(&tb));
    }

    #[test]
    fn distinct_batch_shapes_get_distinct_entries() {
        let model = SystemModel::paper_defaults();
        let pricer = quick_pricer(&model);
        let w = Workload::ncf();
        pricer.measured_node_gbps(&w, 4);
        pricer.measured_node_gbps(&w, 8);
        let scaled = w.scaled_embeddings(2);
        pricer.measured_node_gbps(&scaled, 8);
        assert_eq!(pricer.cached_entries(), 3);
        // The node designs share the measurement (identical gather
        // pattern): pricing both must not add a second entry per shape.
        pricer.price(&w, 8, DesignPoint::Tdimm, 2).expect("valid");
        pricer.price(&w, 8, DesignPoint::Pmem, 2).expect("valid");
        assert_eq!(pricer.cached_entries(), 3);
    }

    #[test]
    fn zero_replay_cap_is_clamped_not_a_panic() {
        let model = SystemModel::paper_defaults();
        let mut cfg = CyclePricerConfig::paper_defaults();
        cfg.max_replayed_lookups = 0;
        let pricer = CyclePricer::with_config(&model, cfg);
        let cost = pricer
            .price(&Workload::ncf(), 8, DesignPoint::Tdimm, 1)
            .expect("a zero cap degrades to a one-lookup replay");
        assert!(cost.service_us.is_finite() && cost.service_us > 0.0);
    }

    #[test]
    fn non_node_designs_delegate_to_analytic() {
        let model = SystemModel::paper_defaults();
        let cycle = quick_pricer(&model);
        let analytic = AnalyticPricer::new(&model);
        let w = Workload::fox();
        for d in [
            DesignPoint::CpuOnly,
            DesignPoint::CpuGpu,
            DesignPoint::GpuOnly,
        ] {
            let c = cycle.price(&w, 32, d, 4).expect("valid");
            let a = analytic.price(&w, 32, d, 4).expect("valid");
            assert_eq!(c.service_us.to_bits(), a.service_us.to_bits(), "{d}");
        }
        assert_eq!(cycle.cached_entries(), 0, "no replays for non-node designs");
    }

    #[test]
    fn zero_gpus_rejected_by_both_backends() {
        let model = SystemModel::paper_defaults();
        let w = Workload::ncf();
        assert!(AnalyticPricer::new(&model)
            .price(&w, 8, DesignPoint::Tdimm, 0)
            .is_err());
        assert!(quick_pricer(&model)
            .price(&w, 8, DesignPoint::Tdimm, 0)
            .is_err());
    }

    #[test]
    fn backends_agree_within_calibration_band() {
        // The utilization constants were measured on this same simulator,
        // so the cycle backend must land near the analytic one; the
        // serving-level acceptance band is documented in EXPERIMENTS.md.
        let model = SystemModel::paper_defaults();
        let cycle = quick_pricer(&model);
        let analytic = AnalyticPricer::new(&model);
        let w = Workload::facebook();
        for d in [DesignPoint::Pmem, DesignPoint::Tdimm] {
            let c = cycle.price(&w, 16, d, 4).expect("valid").service_us;
            let a = analytic.price(&w, 16, d, 4).expect("valid").service_us;
            let gap = (c - a).abs() / a;
            assert!(
                gap < 0.25,
                "{d}: cycle {c:.1} vs analytic {a:.1} ({gap:.3})"
            );
        }
    }

    #[test]
    fn contention_still_grows_under_cycle_pricing() {
        let model = SystemModel::paper_defaults();
        let pricer = quick_pricer(&model);
        let w = Workload::facebook();
        let solo = pricer
            .price(&w, 16, DesignPoint::Pmem, 1)
            .expect("valid")
            .service_us;
        let shared = pricer
            .price(&w, 16, DesignPoint::Pmem, 8)
            .expect("valid")
            .service_us;
        assert!(shared > solo, "shared {shared:.1} vs solo {solo:.1}");
        assert_eq!(
            pricer.cached_entries(),
            1,
            "concurrency is priced from one measurement"
        );
    }

    /// Enabling a hot-row cache re-keys and re-measures: the new entries
    /// never alias uncached ones, and a head-sized cache on a skewed
    /// workload hits and delivers at least the uncached bandwidth.
    #[test]
    fn hot_row_config_rekeys_and_improves_delivery() {
        let model = SystemModel::paper_defaults();
        let pricer = quick_pricer(&model);
        let w = Workload::youtube();
        let uncached = pricer.measured_node_gbps(&w, 16);
        assert_eq!(pricer.measured_hot_rows(&w, 16), HotRowStats::default());
        let uncached_keys: Vec<_> = pricer.cached_table();
        assert_eq!(uncached_keys.len(), 1);
        assert_eq!(uncached_keys[0].0 .5, 0, "disabled cache fingerprints 0");

        // A cache sized for the whole replayed trace's hot head.
        pricer.set_hot_row_config(HotRowCacheConfig::fully_associative(100_000));
        assert_eq!(pricer.cached_entries(), 0, "setter invalidates");
        let cached = pricer.measured_node_gbps(&w, 16);
        let stats = pricer.measured_hot_rows(&w, 16);
        assert!(stats.hits > 0, "Zipf head must revisit rows: {stats:?}");
        assert!(
            cached >= uncached,
            "cache must not lose bandwidth: {cached:.1} vs {uncached:.1}"
        );
        let table = pricer.cached_hot_row_table();
        assert_eq!(table.len(), 1);
        assert_ne!(table[0].0 .5, 0);
        assert_eq!(table[0].1, stats);
        assert_eq!(pricer.replay_count(), 2, "distinct keys, one replay each");
    }

    #[test]
    fn build_with_hot_rows_flows_into_cycle_backend() {
        let model = SystemModel::paper_defaults();
        let hot = HotRowCacheConfig::fully_associative(4096);
        // Analytic ignores the knob entirely.
        let a = PricingBackend::Analytic.build_with_hot_rows(&model, hot);
        let plain = AnalyticPricer::new(&model);
        let w = Workload::ncf();
        assert_eq!(
            a.price(&w, 8, DesignPoint::Tdimm, 2)
                .expect("valid")
                .service_us
                .to_bits(),
            plain
                .price(&w, 8, DesignPoint::Tdimm, 2)
                .expect("valid")
                .service_us
                .to_bits()
        );
        // The cycle backend matches an explicitly configured pricer.
        let b = PricingBackend::CycleCalibrated.build_with_hot_rows(&model, hot);
        let mut cfg = CyclePricerConfig::paper_defaults();
        cfg.nmp.hot_rows = hot;
        let explicit = CyclePricer::with_config(&model, cfg);
        assert_eq!(
            b.price(&w, 8, DesignPoint::Tdimm, 2)
                .expect("valid")
                .service_us
                .to_bits(),
            explicit
                .price(&w, 8, DesignPoint::Tdimm, 2)
                .expect("valid")
                .service_us
                .to_bits()
        );
    }

    /// Pricing against a healthy `DegradedNode` must be bit-identical to
    /// the plain `price` path on both backends — the foundation of the
    /// empty-fault-schedule identity gate.
    #[test]
    fn healthy_degraded_view_is_bit_identical_to_price() {
        let model = SystemModel::paper_defaults();
        let cycle = quick_pricer(&model);
        let analytic = AnalyticPricer::new(&model);
        let w = Workload::facebook();
        let healthy = DegradedNode::healthy(32);
        assert!(healthy.is_healthy());
        for d in [
            DesignPoint::Pmem,
            DesignPoint::Tdimm,
            DesignPoint::CpuGpu,
            DesignPoint::GpuOnly,
        ] {
            for pricer in [&analytic as &dyn BatchPricer, &cycle as &dyn BatchPricer] {
                let plain = pricer.price(&w, 16, d, 4).expect("valid");
                let degraded = pricer.price_degraded(&w, 16, d, 4, healthy).expect("valid");
                assert_eq!(
                    plain.service_us.to_bits(),
                    degraded.service_us.to_bits(),
                    "{d} on {:?}",
                    pricer.backend()
                );
                assert_eq!(plain.port_bound, degraded.port_bound);
            }
        }
    }

    #[test]
    fn losing_ranks_raises_node_costs_monotonically() {
        let model = SystemModel::paper_defaults();
        let cycle = quick_pricer(&model);
        let analytic = AnalyticPricer::new(&model);
        let w = Workload::facebook();
        for d in [DesignPoint::Pmem, DesignPoint::Tdimm] {
            for pricer in [&analytic as &dyn BatchPricer, &cycle as &dyn BatchPricer] {
                let mut last = 0.0f64;
                for alive in (8..=32).rev().step_by(8) {
                    let view = DegradedNode {
                        dimms_alive: alive,
                        ..DegradedNode::healthy(32)
                    };
                    let cost = pricer.price_degraded(&w, 16, d, 4, view).expect("valid");
                    assert!(
                        cost.service_us >= last,
                        "{d}: {alive}/32 ranks priced {} below {last}",
                        cost.service_us
                    );
                    last = cost.service_us;
                }
                let healthy = pricer.price(&w, 16, d, 4).expect("valid").service_us;
                assert!(last > healthy, "quarter-capacity must cost more");
            }
        }
    }

    #[test]
    fn gray_multiplier_inflates_and_rereads_add_traffic() {
        let model = SystemModel::paper_defaults();
        let analytic = AnalyticPricer::new(&model);
        let w = Workload::youtube();
        let base = DegradedNode {
            dimms_alive: 31,
            ..DegradedNode::healthy(32)
        };
        let plain = analytic
            .price_degraded(&w, 16, DesignPoint::Tdimm, 2, base)
            .expect("valid");
        let gray = analytic
            .price_degraded(
                &w,
                16,
                DesignPoint::Tdimm,
                2,
                DegradedNode {
                    latency_multiplier: 2.0,
                    ..base
                },
            )
            .expect("valid");
        assert_eq!(
            gray.service_us.to_bits(),
            (plain.service_us * 2.0).to_bits(),
            "gray inflates the final cost exactly"
        );
        let reread = analytic
            .price_degraded(
                &w,
                16,
                DesignPoint::Tdimm,
                2,
                DegradedNode {
                    reread_rows: 10_000,
                    ..base
                },
            )
            .expect("valid");
        assert!(reread.service_us > plain.service_us);
        // Non-node designs ignore the degradation entirely.
        let gpu = analytic
            .price_degraded(
                &w,
                16,
                DesignPoint::GpuOnly,
                2,
                DegradedNode {
                    dimms_alive: 1,
                    latency_multiplier: 4.0,
                    ..DegradedNode::healthy(32)
                },
            )
            .expect("valid");
        let gpu_plain = analytic
            .price(&w, 16, DesignPoint::GpuOnly, 2)
            .expect("valid");
        assert_eq!(gpu.service_us.to_bits(), gpu_plain.service_us.to_bits());
    }

    /// The trait's conservative default: scales node costs, leaves the
    /// rest alone.
    #[test]
    fn default_price_degraded_scales_whole_batch() {
        struct Fixed;
        impl BatchPricer for Fixed {
            fn price(
                &self,
                _workload: &Workload,
                _batch: usize,
                _design: DesignPoint,
                active_gpus: usize,
            ) -> Result<BatchCost, InterconnectError> {
                if active_gpus == 0 {
                    return Err(InterconnectError::InvalidLink {
                        parameter: "active_gpus",
                    });
                }
                Ok(BatchCost {
                    service_us: 100.0,
                    port_bound: false,
                })
            }
            fn backend(&self) -> PricingBackend {
                PricingBackend::Analytic
            }
        }
        let half = DegradedNode {
            dimms_alive: 16,
            latency_multiplier: 1.5,
            ..DegradedNode::healthy(32)
        };
        let cost = Fixed
            .price_degraded(&Workload::ncf(), 8, DesignPoint::Tdimm, 1, half)
            .expect("valid");
        assert!((cost.service_us - 100.0 * 2.0 * 1.5).abs() < 1e-9);
        let non_node = Fixed
            .price_degraded(&Workload::ncf(), 8, DesignPoint::CpuGpu, 1, half)
            .expect("valid");
        assert_eq!(non_node.service_us, 100.0);
    }

    #[test]
    fn unpriceable_degraded_views_rejected() {
        let model = SystemModel::paper_defaults();
        let analytic = AnalyticPricer::new(&model);
        let w = Workload::ncf();
        for view in [
            DegradedNode {
                dimms_alive: 0,
                ..DegradedNode::healthy(32)
            },
            DegradedNode {
                dimms_alive: 33,
                ..DegradedNode::healthy(32)
            },
            DegradedNode {
                latency_multiplier: 0.5,
                ..DegradedNode::healthy(32)
            },
            DegradedNode {
                latency_multiplier: f64::NAN,
                ..DegradedNode::healthy(32)
            },
        ] {
            assert!(
                analytic
                    .price_degraded(&w, 8, DesignPoint::Tdimm, 1, view)
                    .is_err(),
                "{view:?}"
            );
        }
    }

    #[test]
    fn backend_labels_and_builder() {
        let model = SystemModel::paper_defaults();
        assert_eq!(PricingBackend::default(), PricingBackend::Analytic);
        for b in [PricingBackend::Analytic, PricingBackend::CycleCalibrated] {
            let pricer = b.build(&model);
            assert_eq!(pricer.backend(), b);
            assert!(!b.label().is_empty());
        }
    }
}
