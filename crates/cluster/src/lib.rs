//! Sharded multi-node serving for the TensorDIMM reproduction.
//!
//! The paper evaluates one TensorNode; a production recommender shards
//! its embedding tables across many. This crate lifts the per-node
//! discrete-event serving simulator (`tensordimm_serving`) to a cluster:
//!
//! * **placement** — a [`ShardPlan`] maps embedding rows to owner nodes:
//!   hash, round-robin, capacity-aware (weights ∝ per-node DIMM counts),
//!   or [`Placement::HotColdSplit`] — RecNMP's hot-entry treatment, where
//!   the top-k Zipf rows are replicated on `R` nodes with load-balanced
//!   routing and the cold tail is sharded with successor replicas,
//! * **fan-out / rejoin** — each request samples its Zipf rows, fans out
//!   one sub-request to every shard owning them, each shard prices its
//!   sub-trace on the existing per-node engine (`BatchPricer` reused per
//!   shard, node capacity sliced by its DIMM count), and the request
//!   rejoins at **max-of-shards** latency — the tail-latency math a
//!   single-node simulator cannot express,
//! * **robustness** — every node carries its own seeded `FaultPlan`
//!   (derived via `FaultPlan::for_node`, so per-node streams decorrelate
//!   while the thinning construction's rate-nesting survives); a
//!   [`FailoverPolicy`] reroutes a dead shard's traffic to replicas —
//!   the replicas absorb its Zipf-hot load, so the induced hotspot is
//!   modeled, not wished away — and hedges sub-requests aimed at nodes
//!   inside their repair window,
//! * **accounting** — a [`ClusterReport`] carries per-request rejoined
//!   outcomes, routing statistics, and every per-shard `SimReport`;
//!   [`ClusterReport::is_conserved`] extends the single-node conservation
//!   law to the fan-out (every offered request resolves exactly once,
//!   including at a horizon cut).
//!
//! Everything is a pure function of `(model, workload, config, trace)`:
//! the router precomputes each node's dead/degraded windows from its
//! fault schedule (fault plans are virtual-time pure, so liveness is
//! known a priori), shards fan across the deterministic worker pool, and
//! replays are bit-identical at any worker count.
//!
//! The three invariants gated at cluster scale by `sweep_cluster`:
//!
//! 1. **Inert decomposition** — replication factor 1, all-inert fault
//!    plans, [`FailoverPolicy::None`]: every per-shard report is
//!    bit-identical to an independent single-node `simulate` run on the
//!    derived sub-trace ([`shard_traces`] exposes exactly those traces).
//! 2. **Conservation** — `OutcomeCounts::is_conserved` holds at every
//!    sweep point, including points where the horizon cuts arrivals off.
//! 3. **Monotone availability** — availability-at-SLA is non-increasing
//!    in the per-node DIMM fault rate (inherited from the thinning
//!    construction; rerouting volume only grows with the rate).

pub mod placement;
pub mod sim;

pub use placement::{Placement, ShardId, ShardPlan};
pub use sim::{
    shard_sim_config, shard_traces, simulate_cluster, ClusterConfig, ClusterError, ClusterRecord,
    ClusterReport, FailoverPolicy, NodeSpec, RoutingStats, ShardOutcome,
};
