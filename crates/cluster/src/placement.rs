//! Row-to-node placement: which shards own which embedding rows.

use crate::sim::ClusterError;

/// Index of a node (= shard) in the cluster, `0..nodes`.
pub type ShardId = usize;

/// How rows map to primary owners.
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// Multiplicative hash of the row id — decorrelated from popularity,
    /// so the Zipf head lands on arbitrary nodes.
    Hash,
    /// `row % nodes` — contiguous hot rows interleave across nodes.
    RoundRobin,
    /// Weighted hash: node `n` owns a share of rows proportional to
    /// `weights[n]` (e.g. its DIMM count, so capacity-heavy nodes hold
    /// more of the table).
    CapacityAware {
        /// One positive finite weight per node.
        weights: Vec<f64>,
    },
    /// RecNMP's hot-entry treatment: rows below `hot_rows` (the Zipf
    /// head — low row ids are the popular ones) get **spread** replica
    /// sets and load-balanced routing; the cold tail is hash-sharded
    /// with successor replicas and primary-first routing.
    HotColdSplit {
        /// Rows in the replicated head.
        hot_rows: u64,
    },
}

/// A validated placement over a fixed cluster: primary owner plus
/// `replication - 1` successor replicas per row.
///
/// [`ShardPlan::owners`] is a pure function of the row id, so routing
/// never needs a directory service and replays bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    nodes: usize,
    replication: usize,
    placement: Placement,
    /// Cumulative weights for `CapacityAware` (empty otherwise).
    cum_weights: Vec<f64>,
}

/// SplitMix64 finalizer: the row-id mix behind every hashed placement
/// decision. Fixed (never seeded) so a plan is a pure function of its
/// knobs.
pub(crate) fn mix(x: u64) -> u64 {
    let mut x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl ShardPlan {
    /// Build and validate a plan.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidConfig`] when `nodes == 0`, `replication`
    /// is not in `1..=nodes`, or capacity weights are missing /
    /// non-positive / non-finite.
    pub fn new(
        nodes: usize,
        replication: usize,
        placement: Placement,
    ) -> Result<Self, ClusterError> {
        let bad = |parameter| Err(ClusterError::InvalidConfig { parameter });
        if nodes == 0 {
            return bad("nodes");
        }
        if replication == 0 || replication > nodes {
            return bad("replication");
        }
        let mut cum_weights = Vec::new();
        if let Placement::CapacityAware { weights } = &placement {
            if weights.len() != nodes {
                return bad("weights.len");
            }
            let mut acc = 0.0;
            for &w in weights {
                if !w.is_finite() || w <= 0.0 {
                    return bad("weights");
                }
                acc += w;
                cum_weights.push(acc);
            }
        }
        Ok(ShardPlan {
            nodes,
            replication,
            placement,
            cum_weights,
        })
    }

    /// Hash placement.
    pub fn hash(nodes: usize, replication: usize) -> Result<Self, ClusterError> {
        ShardPlan::new(nodes, replication, Placement::Hash)
    }

    /// Round-robin placement.
    pub fn round_robin(nodes: usize, replication: usize) -> Result<Self, ClusterError> {
        ShardPlan::new(nodes, replication, Placement::RoundRobin)
    }

    /// Capacity-aware placement (one weight per node).
    pub fn capacity_aware(weights: Vec<f64>, replication: usize) -> Result<Self, ClusterError> {
        let nodes = weights.len();
        ShardPlan::new(nodes, replication, Placement::CapacityAware { weights })
    }

    /// Hot-cold split: replicate the `hot_rows` Zipf head, shard the tail.
    pub fn hot_cold(nodes: usize, replication: usize, hot_rows: u64) -> Result<Self, ClusterError> {
        ShardPlan::new(nodes, replication, Placement::HotColdSplit { hot_rows })
    }

    /// Nodes in the cluster.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Copies of every row (`1` = unreplicated).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The placement rule.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Whether `row` is in the replicated, load-balanced Zipf head (only
    /// ever true under [`Placement::HotColdSplit`]).
    pub fn is_hot(&self, row: u64) -> bool {
        matches!(self.placement, Placement::HotColdSplit { hot_rows } if row < hot_rows)
    }

    /// The primary owner of `row`.
    pub fn primary(&self, row: u64) -> ShardId {
        match &self.placement {
            Placement::Hash => (mix(row) % self.nodes as u64) as ShardId,
            Placement::RoundRobin => (row % self.nodes as u64) as ShardId,
            Placement::CapacityAware { .. } => {
                // Hash the row to a fraction of the total weight and walk
                // the cumulative table (nodes are few; linear scan).
                let total = *self.cum_weights.last().expect("validated nonempty");
                let u = (mix(row) >> 11) as f64 / (1u64 << 53) as f64 * total;
                self.cum_weights
                    .iter()
                    .position(|&c| u < c)
                    .unwrap_or(self.nodes - 1)
            }
            Placement::HotColdSplit { hot_rows } => {
                if row < *hot_rows {
                    // A second mix round decorrelates the head's owner
                    // sets from the tail's: spreading the replicated head
                    // across nodes is the whole point of the split.
                    (mix(mix(row) ^ 0x5bd1_e995) % self.nodes as u64) as ShardId
                } else {
                    (mix(row) % self.nodes as u64) as ShardId
                }
            }
        }
    }

    /// The owner set of `row`: the primary followed by `replication - 1`
    /// replicas. Always `replication` distinct nodes, in deterministic
    /// order.
    ///
    /// Cold/hashed rows take *ring successors* (`primary + k`), the
    /// classic shard layout. [`Placement::HotColdSplit`]'s hot head
    /// instead draws **spread** replica sets — each replica is an
    /// independent hash probe — so when a node dies, its hot load
    /// rebalances across *all* survivors instead of funneling onto the
    /// ring successor along with the cold tail.
    pub fn owners(&self, row: u64) -> Vec<ShardId> {
        let primary = self.primary(row);
        let mut owners = vec![primary];
        if self.is_hot(row) {
            let mut probe = 1u64;
            while owners.len() < self.replication && probe < 8 * self.nodes as u64 {
                let cand = (mix(mix(row) ^ 0x5bd1_e995 ^ probe.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                    % self.nodes as u64) as ShardId;
                if !owners.contains(&cand) {
                    owners.push(cand);
                }
                probe += 1;
            }
            // Probe exhaustion is vanishingly rare; fill from the ring so
            // the set is always complete and deterministic.
        }
        let mut next = (primary + 1) % self.nodes;
        while owners.len() < self.replication {
            if !owners.contains(&next) {
                owners.push(next);
            }
            next = (next + 1) % self.nodes;
        }
        owners
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_validate() {
        assert!(ShardPlan::hash(0, 1).is_err());
        assert!(ShardPlan::hash(4, 0).is_err());
        assert!(ShardPlan::hash(4, 5).is_err());
        assert!(ShardPlan::capacity_aware(vec![1.0, 0.0], 1).is_err());
        assert!(ShardPlan::capacity_aware(vec![1.0, f64::NAN], 1).is_err());
        assert!(ShardPlan::new(
            3,
            1,
            Placement::CapacityAware {
                weights: vec![1.0, 2.0]
            }
        )
        .is_err());
        assert!(ShardPlan::hash(4, 4).is_ok());
        assert!(ShardPlan::hot_cold(4, 2, 1000).is_ok());
    }

    #[test]
    fn owners_are_distinct_in_range_and_deterministic() {
        for plan in [
            ShardPlan::hash(5, 3).expect("valid"),
            ShardPlan::round_robin(5, 3).expect("valid"),
            ShardPlan::capacity_aware(vec![1.0, 2.0, 4.0, 1.0, 8.0], 3).expect("valid"),
            ShardPlan::hot_cold(5, 3, 500).expect("valid"),
        ] {
            for row in (0..2_000u64).chain([u64::MAX, u64::MAX - 7]) {
                let owners = plan.owners(row);
                assert_eq!(owners.len(), 3);
                assert!(owners.iter().all(|&o| o < 5));
                let mut sorted = owners.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), 3, "owners distinct for row {row}");
                assert_eq!(owners[0], plan.primary(row));
                assert_eq!(owners, plan.owners(row), "pure function of the row");
            }
        }
    }

    #[test]
    fn round_robin_interleaves_and_hash_scatters() {
        let rr = ShardPlan::round_robin(4, 1).expect("valid");
        assert_eq!(
            (0..8).map(|r| rr.primary(r)).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 0, 1, 2, 3]
        );
        // Hash spreads a contiguous range over every node.
        let hash = ShardPlan::hash(4, 1).expect("valid");
        let mut seen = [false; 4];
        for row in 0..64 {
            seen[hash.primary(row)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn capacity_aware_follows_weights() {
        let plan = ShardPlan::capacity_aware(vec![1.0, 3.0], 1).expect("valid");
        let rows = 40_000u64;
        let heavy = (0..rows).filter(|&r| plan.primary(r) == 1).count() as f64;
        let share = heavy / rows as f64;
        assert!(
            (share - 0.75).abs() < 0.02,
            "node with 3x weight owns ~3/4 of rows, got {share}"
        );
    }

    #[test]
    fn hot_cold_split_knows_its_head() {
        let plan = ShardPlan::hot_cold(4, 2, 100).expect("valid");
        assert!(plan.is_hot(0) && plan.is_hot(99));
        assert!(!plan.is_hot(100));
        assert!(!ShardPlan::hash(4, 2).expect("valid").is_hot(0));
        // Head owner sets are decorrelated from what plain hashing of
        // the same rows would give.
        let hash = ShardPlan::hash(4, 2).expect("valid");
        let differs = (0..100u64).any(|r| plan.primary(r) != hash.primary(r));
        assert!(differs, "head must not inherit the tail's placement");
        // The head itself spreads across every node.
        let mut seen = [false; 4];
        for row in 0..100 {
            seen[plan.primary(row)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Hot replica sets are spread, not ring successors: some hot row
        // must have a non-successor replica, while the cold tail always
        // takes the successor.
        let spread = (0..100u64).any(|r| plan.owners(r)[1] != (plan.primary(r) + 1) % 4);
        assert!(spread, "hot replicas must decorrelate from the ring");
        for row in 5_000..5_100u64 {
            assert_eq!(plan.owners(row)[1], (plan.primary(row) + 1) % 4);
        }
    }
}
