//! The cluster-level fan-out/rejoin simulator.

use std::error::Error;
use std::fmt;

use tensordimm_exec::par_map;
use tensordimm_faults::FaultPlan;
use tensordimm_models::Workload;
use tensordimm_serving::{
    simulate, zipf_lookup_rows, AdmissionPolicy, BatchPolicy, LatencySummary, OutcomeCounts,
    RequestOutcome, RetryPolicy, SimConfig, SimError, SimReport,
};
use tensordimm_system::{DesignPoint, PricingBackend, SystemModel};

use crate::placement::{mix, ShardId, ShardPlan};

/// Errors from configuring or running the cluster simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// A cluster-level knob is unusable.
    InvalidConfig {
        /// Which knob.
        parameter: &'static str,
    },
    /// A per-shard run failed (bad per-node plan, unsorted trace, pricing).
    Shard(SimError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidConfig { parameter } => {
                write!(f, "cluster parameter {parameter} is unusable")
            }
            ClusterError::Shard(e) => write!(f, "per-shard simulation failed: {e}"),
        }
    }
}

impl Error for ClusterError {}

impl From<SimError> for ClusterError {
    fn from(e: SimError) -> Self {
        ClusterError::Shard(e)
    }
}

impl From<tensordimm_faults::FaultError> for ClusterError {
    fn from(e: tensordimm_faults::FaultError) -> Self {
        ClusterError::Shard(SimError::from(e))
    }
}

/// One TensorNode in the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// DIMMs provisioned — slices the node's aggregate gather bandwidth
    /// via [`SystemModel::with_node_dimms`], so heterogeneous clusters
    /// price capacity honestly.
    pub dimms: u64,
    /// GPUs pulling batches on this node.
    pub gpus: usize,
    /// The node's own seeded fault plan ([`FaultPlan::none`] = healthy).
    pub faults: FaultPlan,
}

impl NodeSpec {
    /// The paper's Table 1 node: 32 DIMMs, `gpus` GPUs, no faults.
    pub fn paper(gpus: usize) -> Self {
        NodeSpec {
            dimms: SystemModel::PAPER_NODE_DIMMS,
            gpus,
            faults: FaultPlan::none(),
        }
    }

    /// Attach a fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

/// How the router treats shards that are dead or inside a repair window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailoverPolicy {
    /// Static routing: every row goes to its primary owner, dead or not
    /// (a sub-request aimed at a dead node is shed at the router). The
    /// inert baseline the decomposition gate runs under.
    None,
    /// Reroute around dead nodes: a row whose chosen owner is dead goes
    /// to its first live replica instead. The replicas absorb the dead
    /// shard's Zipf-hot load — the induced hotspot is part of the model.
    #[default]
    Reroute,
    /// [`FailoverPolicy::Reroute`], plus SLA-aware hedging: a sub-request
    /// aimed at a *degraded* node (ranks down or gray, inside its repair
    /// window) is duplicated onto a live replica; the rejoin takes
    /// whichever copy finishes first.
    HedgeDegraded,
}

/// Cluster simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Row-to-node placement and replication.
    pub plan: ShardPlan,
    /// One spec per node; `nodes.len()` must equal `plan.nodes()`.
    pub nodes: Vec<NodeSpec>,
    /// Design point every shard serves with.
    pub design: DesignPoint,
    /// Per-shard dynamic-batching policy.
    pub policy: BatchPolicy,
    /// Per-shard batch-pricing backend.
    pub pricing: PricingBackend,
    /// Per-shard deadline / retry / hedging policy.
    pub retry: RetryPolicy,
    /// Per-shard admission control.
    pub admission: AdmissionPolicy,
    /// Router behavior around dead/degraded shards.
    pub failover: FailoverPolicy,
    /// Optional virtual-time cutoff, µs (same semantics as the per-node
    /// simulator: later arrivals never arrive; queued work is left in
    /// flight for conservation accounting).
    pub horizon_us: Option<f64>,
    /// Popularity skew of the per-request row sample.
    pub zipf_s: f64,
    /// Rows sampled per request to decide its fan-out. The sub-request a
    /// shard receives is priced as one full workload sample regardless —
    /// a deliberately conservative approximation (each touched shard
    /// gathers a full sample's worth of embeddings).
    pub routing_lookups: usize,
    /// Seed of the per-request row sampler.
    pub lookup_seed: u64,
    /// Worker threads fanning the per-shard runs (results are
    /// bit-identical at any count).
    pub workers: usize,
}

impl ClusterConfig {
    /// A cluster of `nodes` with the given plan: analytic pricing, inert
    /// policies, rerouting failover, paper-default skew, no horizon.
    pub fn new(
        plan: ShardPlan,
        nodes: Vec<NodeSpec>,
        design: DesignPoint,
        policy: BatchPolicy,
    ) -> Self {
        ClusterConfig {
            plan,
            nodes,
            design,
            policy,
            pricing: PricingBackend::Analytic,
            retry: RetryPolicy::none(),
            admission: AdmissionPolicy::unbounded(),
            failover: FailoverPolicy::Reroute,
            horizon_us: None,
            zipf_s: 0.9,
            routing_lookups: 16,
            lookup_seed: 0x7e50,
            workers: 1,
        }
    }

    /// Serve with this per-shard retry/deadline/hedging policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Gate per-shard arrivals through this admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Route around failures with this policy.
    pub fn with_failover(mut self, failover: FailoverPolicy) -> Self {
        self.failover = failover;
        self
    }

    /// Stop the virtual clock at `horizon_us`.
    pub fn with_horizon(mut self, horizon_us: f64) -> Self {
        self.horizon_us = Some(horizon_us);
        self
    }

    /// Select the per-shard batch-pricing backend.
    pub fn with_pricing(mut self, pricing: PricingBackend) -> Self {
        self.pricing = pricing;
        self
    }

    /// Fan the per-shard runs across `workers` threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sample `routing_lookups` rows per request at skew `zipf_s` under
    /// `lookup_seed`.
    pub fn with_lookups(mut self, routing_lookups: usize, zipf_s: f64, lookup_seed: u64) -> Self {
        self.routing_lookups = routing_lookups;
        self.zipf_s = zipf_s;
        self.lookup_seed = lookup_seed;
        self
    }

    fn validate(&self) -> Result<(), ClusterError> {
        let bad = |parameter| Err(ClusterError::InvalidConfig { parameter });
        if self.nodes.is_empty() || self.nodes.len() != self.plan.nodes() {
            return bad("nodes.len");
        }
        for node in &self.nodes {
            if node.dimms == 0 {
                return bad("node.dimms");
            }
            if node.gpus == 0 {
                return bad("node.gpus");
            }
        }
        if !self.zipf_s.is_finite() || self.zipf_s < 0.0 {
            return bad("zipf_s");
        }
        if self.routing_lookups == 0 {
            return bad("routing_lookups");
        }
        if self.workers == 0 {
            return bad("workers");
        }
        Ok(())
    }
}

/// The `SimConfig` shard `node` runs under — exposed so the inert-
/// decomposition gate can reproduce a shard's run independently.
pub fn shard_sim_config(cfg: &ClusterConfig, node: usize) -> SimConfig {
    let spec = &cfg.nodes[node];
    let mut sim = SimConfig::new(cfg.design, spec.gpus, cfg.policy)
        .with_pricing(cfg.pricing)
        .with_faults(spec.faults)
        .with_retry(cfg.retry)
        .with_admission(cfg.admission);
    if let Some(h) = cfg.horizon_us {
        sim = sim.with_horizon(h);
    }
    sim
}

/// The model shard `node` prices against: the shared model with its node
/// peak sliced to the node's DIMM count.
fn shard_model(model: &SystemModel, cfg: &ClusterConfig, node: usize) -> SystemModel {
    model.clone().with_node_dimms(cfg.nodes[node].dimms)
}

/// A node's liveness over virtual time, folded from its fault schedule.
/// Half-open windows `[start, end)`, matching the serving engine's
/// same-instant order (fault transitions apply before arrivals).
#[derive(Debug, Clone, Default)]
struct NodeHealth {
    /// Node cannot dispatch at all: node outage or every DIMM down.
    dead: Vec<(f64, f64)>,
    /// Node serves but is degraded: ranks down or a gray window open.
    degraded: Vec<(f64, f64)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Health {
    Healthy,
    Degraded,
    Dead,
}

impl NodeHealth {
    fn from_plan(plan: &FaultPlan, horizon_us: f64) -> Result<Self, ClusterError> {
        let mut health = NodeHealth::default();
        if plan.is_inert() {
            return Ok(health);
        }
        let transitions = plan.schedule(horizon_us)?.transitions();
        let mut state = tensordimm_faults::FaultState::healthy(plan.dimms);
        let classify = |s: &tensordimm_faults::FaultState| {
            if !s.can_dispatch() {
                Health::Dead
            } else if s.dimms_alive() < s.dimms_total() || s.gray_multiplier() > 1.0 {
                Health::Degraded
            } else {
                Health::Healthy
            }
        };
        let mut cur = classify(&state);
        let mut cur_start = 0.0f64;
        let push = |h: Health, start: f64, end: f64, me: &mut NodeHealth| {
            if end <= start {
                return;
            }
            let list = match h {
                Health::Dead => &mut me.dead,
                Health::Degraded => &mut me.degraded,
                Health::Healthy => return,
            };
            match list.last_mut() {
                Some(last) if last.1 >= start => last.1 = last.1.max(end),
                _ => list.push((start, end)),
            }
        };
        for t in &transitions {
            // RowFault transitions don't change liveness; applying them
            // is harmless (pending rows never reach `classify`).
            let next_time = t.at_us;
            state.apply(t.change);
            // Same-instant transitions collapse: the interval is empty.
            let next = classify(&state);
            if next != cur {
                push(cur, cur_start, next_time, &mut health);
                cur = next;
                cur_start = next_time;
            }
        }
        push(cur, cur_start, f64::INFINITY, &mut health);
        Ok(health)
    }

    fn dead_at(&self, t: f64) -> bool {
        in_windows(&self.dead, t)
    }

    fn degraded_at(&self, t: f64) -> bool {
        in_windows(&self.degraded, t)
    }
}

fn in_windows(windows: &[(f64, f64)], t: f64) -> bool {
    let i = windows.partition_point(|w| w.1 <= t);
    windows.get(i).is_some_and(|w| w.0 <= t)
}

/// One leg of a fanned-out request: the rows a primary shard serves,
/// with an optional hedged duplicate on a replica.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Leg {
    primary: ShardId,
    hedge: Option<ShardId>,
}

/// Where a request was routed.
#[derive(Debug, Clone, Default)]
struct Route {
    legs: Vec<Leg>,
    router_shed: bool,
    rerouted: bool,
}

/// Cluster-wide routing statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RoutingStats {
    /// Sub-requests dispatched to shards (hedges included).
    pub subrequests: usize,
    /// Hedged duplicate sub-requests.
    pub hedge_subrequests: usize,
    /// Requests with at least one row rerouted off its primary.
    pub rerouted_requests: usize,
    /// Requests shed at the router (no live owner for some row).
    pub router_shed: usize,
    /// Hot rows served by a shard the request already fans out to
    /// (HotColdSplit's fan-out-narrowing affinity).
    pub affinity_hits: usize,
    /// Mean distinct primary shards per routed request.
    pub mean_fanout: f64,
}

/// Per-request rejoined outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterRecord {
    /// When the request arrived, µs.
    pub arrival_us: f64,
    /// Rejoined fate; `None` when the horizon cut the arrival off.
    pub outcome: Option<RequestOutcome>,
    /// When the *slowest* leg finished (max-of-shards), µs.
    pub finish_us: Option<f64>,
    /// Distinct primary shards fanned out to.
    pub fanout: usize,
    /// Whether any row was rerouted off its primary owner.
    pub rerouted: bool,
    /// Whether any leg carried a hedged duplicate.
    pub hedged: bool,
}

impl ClusterRecord {
    /// End-to-end latency (arrival to slowest leg), µs.
    pub fn latency_us(&self) -> Option<f64> {
        match (self.outcome, self.finish_us) {
            (Some(RequestOutcome::Completed), Some(f)) => Some(f - self.arrival_us),
            _ => None,
        }
    }

    /// Whether the request completed within `sla_us` of arrival.
    pub fn completed_within(&self, sla_us: f64) -> bool {
        self.latency_us().is_some_and(|l| l <= sla_us)
    }
}

/// One shard's share of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutcome {
    /// Which node.
    pub node: usize,
    /// Sub-requests in the shard's trace.
    pub subrequests: usize,
    /// The per-node engine's full report for the sub-trace.
    pub report: SimReport,
}

/// What a cluster run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Requests in the input trace.
    pub offered: usize,
    /// Requests whose arrival fell inside the simulated window.
    pub arrived: usize,
    /// Requests whose every leg completed.
    pub completed: usize,
    /// Where every arrived request ended up (rejoined, not per-shard).
    pub outcomes: OutcomeCounts,
    /// Rejoined end-to-end latency summary (max-of-shards per request).
    pub latency: LatencySummary,
    /// Fraction of arrived requests completed within [`sla_us`](Self::sla_us).
    pub availability: f64,
    /// The SLA judged against (the retry policy's deadline, `∞` if none).
    pub sla_us: f64,
    /// End of the run, µs: the latest shard's `end_us`.
    pub end_us: f64,
    /// Completed requests per second of virtual time.
    pub throughput_qps: f64,
    /// Requests completed within the SLA per second of virtual time.
    pub goodput_qps: f64,
    /// Fraction of arrived requests shed (router + shards).
    pub shed_rate: f64,
    /// Router statistics.
    pub routing: RoutingStats,
    /// Per-request rejoined records, indexed like the arrival trace.
    pub records: Vec<ClusterRecord>,
    /// Every shard's sub-trace size and full per-node report.
    pub shards: Vec<ShardOutcome>,
}

impl ClusterReport {
    /// Requests whose arrival the horizon cut off.
    pub fn not_arrived(&self) -> usize {
        self.offered - self.arrived
    }

    /// Cluster-level flow conservation: every offered request resolves
    /// exactly once after the rejoin, the typed counts agree with the
    /// flat counters, and every per-shard report conserves too.
    pub fn is_conserved(&self) -> bool {
        self.outcomes.is_conserved(self.arrived)
            && self.outcomes.completed == self.completed
            && self.arrived + self.not_arrived() == self.offered
            && self.shards.iter().all(|s| s.report.is_conserved())
    }

    /// Fraction of arrived requests whose slowest leg finished within
    /// `sla_us` (`1.0` with no arrivals; `0.0` at an all-shed point —
    /// same contract as the per-node report).
    ///
    /// # Panics
    ///
    /// Panics on a NaN `sla_us`.
    pub fn availability_at(&self, sla_us: f64) -> f64 {
        assert!(!sla_us.is_nan(), "availability_at: NaN SLA");
        if self.arrived == 0 {
            return 1.0;
        }
        let within = self
            .records
            .iter()
            .filter(|r| r.completed_within(sla_us))
            .count();
        within as f64 / self.arrived as f64
    }
}

/// Route every request: sample its rows, pick an owner per row, group
/// rows into per-shard legs, attach hedges.
fn route_requests(
    cfg: &ClusterConfig,
    rows_per_table: u64,
    arrivals_us: &[f64],
    health: &[NodeHealth],
) -> (Vec<Route>, RoutingStats) {
    let mut routes = Vec::with_capacity(arrivals_us.len());
    let mut stats = RoutingStats::default();
    let mut routed_requests = 0usize;
    let mut fanout_sum = 0usize;
    for (id, &t) in arrivals_us.iter().enumerate() {
        let mut rows = zipf_lookup_rows(
            cfg.routing_lookups,
            rows_per_table,
            cfg.zipf_s,
            cfg.lookup_seed ^ mix(id as u64),
        );
        rows.sort_unstable();
        rows.dedup();
        // One deterministic per-request draw spreads hot-row load across
        // replicas without widening the fan-out per row.
        let spread = mix(cfg.lookup_seed ^ mix(id as u64 ^ 0x10d7));
        let mut route = Route::default();
        let mut primaries: Vec<ShardId> = Vec::new();
        let mut hedges: Vec<(ShardId, ShardId)> = Vec::new();
        // Cold rows first (descending ids): their placement is forced,
        // so the hot head's affinity check sees the full cold target set
        // and can narrow the fan-out instead of widening it.
        'rows: for &row in rows.iter().rev() {
            let owners = cfg.plan.owners(row);
            let target = match cfg.failover {
                FailoverPolicy::None => {
                    let primary = owners[0];
                    if health[primary].dead_at(t) {
                        route.router_shed = true;
                        break 'rows;
                    }
                    primary
                }
                FailoverPolicy::Reroute | FailoverPolicy::HedgeDegraded => {
                    let live: Vec<ShardId> = owners
                        .iter()
                        .copied()
                        .filter(|&o| !health[o].dead_at(t))
                        .collect();
                    if live.is_empty() {
                        route.router_shed = true;
                        break 'rows;
                    }
                    let chosen = if cfg.plan.is_hot(row) {
                        // Affinity first: serve the hot row from a shard
                        // this request already touches. Otherwise
                        // load-balance across live replicas.
                        match live.iter().copied().find(|o| primaries.contains(o)) {
                            Some(o) => {
                                stats.affinity_hits += 1;
                                o
                            }
                            None => live[(spread % live.len() as u64) as usize],
                        }
                    } else {
                        live[0]
                    };
                    if chosen != owners[0] {
                        route.rerouted = true;
                    }
                    chosen
                }
            };
            if !primaries.contains(&target) {
                primaries.push(target);
                // SLA-aware hedging: duplicate the leg on a live replica
                // when its shard is inside a repair window.
                if cfg.failover == FailoverPolicy::HedgeDegraded && health[target].degraded_at(t) {
                    let alt = owners
                        .iter()
                        .copied()
                        .find(|&o| o != target && !health[o].dead_at(t));
                    if let Some(h) = alt {
                        hedges.push((target, h));
                    }
                }
            }
        }
        if route.router_shed {
            stats.router_shed += 1;
            route.legs.clear();
        } else {
            route.legs = primaries
                .iter()
                .map(|&p| Leg {
                    primary: p,
                    hedge: hedges.iter().find(|(lp, _)| *lp == p).map(|&(_, h)| h),
                })
                .collect();
            routed_requests += 1;
            fanout_sum += route.legs.len();
            stats.subrequests += route
                .legs
                .iter()
                .map(|l| 1 + usize::from(l.hedge.is_some()))
                .sum::<usize>();
            stats.hedge_subrequests += route.legs.iter().filter(|l| l.hedge.is_some()).count();
            if route.rerouted {
                stats.rerouted_requests += 1;
            }
        }
        routes.push(route);
    }
    stats.mean_fanout = if routed_requests > 0 {
        fanout_sum as f64 / routed_requests as f64
    } else {
        0.0
    };
    (routes, stats)
}

/// Fan-out preview: the per-shard arrival sub-traces a cluster run would
/// dispatch (hedge duplicates included). The inert-decomposition gate
/// replays these through independent single-node `simulate` calls and
/// asserts bit-identity with [`ClusterReport::shards`].
///
/// # Errors
///
/// As [`simulate_cluster`], minus per-shard simulation errors.
pub fn shard_traces(
    cfg: &ClusterConfig,
    workload: &Workload,
    arrivals_us: &[f64],
) -> Result<Vec<Vec<f64>>, ClusterError> {
    cfg.validate()?;
    validate_trace(arrivals_us)?;
    let health = node_healths(cfg, arrivals_us)?;
    let (routes, _) = route_requests(cfg, workload.rows_per_table, arrivals_us, &health);
    Ok(per_shard_arrivals(cfg.plan.nodes(), arrivals_us, &routes)
        .into_iter()
        .map(|subs| subs.into_iter().map(|(t, _, _)| t).collect())
        .collect())
}

fn validate_trace(arrivals_us: &[f64]) -> Result<(), ClusterError> {
    for (i, &t) in arrivals_us.iter().enumerate() {
        let sorted = i == 0 || arrivals_us[i - 1] <= t;
        if !t.is_finite() || t < 0.0 || !sorted {
            return Err(ClusterError::Shard(SimError::BadArrival { index: i }));
        }
    }
    Ok(())
}

fn node_healths(cfg: &ClusterConfig, arrivals_us: &[f64]) -> Result<Vec<NodeHealth>, ClusterError> {
    // The same window the per-shard engine expands its plan over: the
    // horizon when set, the last arrival otherwise.
    let horizon = cfg
        .horizon_us
        .unwrap_or_else(|| arrivals_us.last().copied().unwrap_or(0.0));
    cfg.nodes
        .iter()
        .map(|n| NodeHealth::from_plan(&n.faults, horizon))
        .collect()
}

/// Sub-request: (arrival, request id, is_hedge).
fn per_shard_arrivals(
    nodes: usize,
    arrivals_us: &[f64],
    routes: &[Route],
) -> Vec<Vec<(f64, usize, bool)>> {
    let mut shard_subs: Vec<Vec<(f64, usize, bool)>> = vec![Vec::new(); nodes];
    for (id, route) in routes.iter().enumerate() {
        let t = arrivals_us[id];
        for leg in &route.legs {
            shard_subs[leg.primary].push((t, id, false));
            if let Some(h) = leg.hedge {
                shard_subs[h].push((t, id, true));
            }
        }
    }
    shard_subs
}

/// Run the cluster: route, fan out, price every shard on the per-node
/// engine, rejoin at max-of-shards.
///
/// Pure in `(model, workload, cfg, arrivals_us)` — bit-identical replays
/// at any `cfg.workers`.
///
/// # Errors
///
/// [`ClusterError::InvalidConfig`] for unusable cluster knobs;
/// [`ClusterError::Shard`] when a per-shard run rejects its configuration
/// or trace.
pub fn simulate_cluster(
    model: &SystemModel,
    workload: &Workload,
    cfg: &ClusterConfig,
    arrivals_us: &[f64],
) -> Result<ClusterReport, ClusterError> {
    cfg.validate()?;
    validate_trace(arrivals_us)?;
    let health = node_healths(cfg, arrivals_us)?;
    let (routes, mut stats) = route_requests(cfg, workload.rows_per_table, arrivals_us, &health);
    let shard_subs = per_shard_arrivals(cfg.plan.nodes(), arrivals_us, &routes);

    // Fan the per-shard runs across the worker pool. Each shard prices
    // against its own capacity-sliced model clone; errors surface from
    // the lowest shard index for determinism.
    let inputs: Vec<usize> = (0..cfg.plan.nodes()).collect();
    let results: Vec<Result<SimReport, SimError>> = par_map(&inputs, cfg.workers, |_, &node| {
        let arrivals: Vec<f64> = shard_subs[node].iter().map(|&(t, _, _)| t).collect();
        let m = shard_model(model, cfg, node);
        let sim_cfg = shard_sim_config(cfg, node);
        simulate(&m, workload, &sim_cfg, &arrivals)
    });
    let mut shards = Vec::with_capacity(results.len());
    for (node, result) in results.into_iter().enumerate() {
        shards.push(ShardOutcome {
            node,
            subrequests: shard_subs[node].len(),
            report: result?,
        });
    }

    // Local index of each sub-request within its shard's trace, keyed
    // back to (request, leg role) for the rejoin.
    let mut leg_outcomes: Vec<Vec<LegOutcome>> = vec![Vec::new(); arrivals_us.len()];
    for (node, subs) in shard_subs.iter().enumerate() {
        for (local, &(_, id, is_hedge)) in subs.iter().enumerate() {
            let rec = &shards[node].report.records[local];
            let finish = rec.completion.map(|c| c.finish_us);
            leg_outcomes[id].push((node, rec.outcome, finish, is_hedge));
        }
    }

    let horizon = cfg.horizon_us;
    let mut records = Vec::with_capacity(arrivals_us.len());
    let mut outcomes = OutcomeCounts::default();
    let mut latencies = Vec::new();
    let mut arrived = 0usize;
    let sla_us = cfg.retry.deadline_us;
    let mut within_sla = 0usize;
    for (id, route) in routes.iter().enumerate() {
        let t = arrivals_us[id];
        let in_window = horizon.is_none_or(|h| t <= h);
        let mut record = ClusterRecord {
            arrival_us: t,
            outcome: None,
            finish_us: None,
            fanout: route.legs.len(),
            rerouted: route.rerouted,
            hedged: route.legs.iter().any(|l| l.hedge.is_some()),
        };
        if !in_window {
            records.push(record);
            continue;
        }
        arrived += 1;
        let outcome = if route.router_shed {
            Some(RequestOutcome::Shed)
        } else {
            rejoin(&route.legs, &leg_outcomes[id], &mut record)
        };
        record.outcome = outcome;
        match outcome {
            Some(RequestOutcome::Completed) => {
                outcomes.completed += 1;
                let latency = record.finish_us.expect("completed has a finish") - t;
                if latency <= sla_us {
                    within_sla += 1;
                }
                latencies.push(latency);
            }
            Some(RequestOutcome::Shed) => outcomes.shed += 1,
            Some(RequestOutcome::TimedOut) => outcomes.timed_out += 1,
            Some(RequestOutcome::InFlightAtHorizon) => outcomes.in_flight_at_horizon += 1,
            None => unreachable!("every in-window request resolves"),
        }
        records.push(record);
    }
    if arrivals_us.is_empty() {
        stats.mean_fanout = 0.0;
    }

    let end_us = shards
        .iter()
        .map(|s| s.report.end_us)
        .fold(0.0f64, f64::max);
    let completed = outcomes.completed;
    let report = ClusterReport {
        offered: arrivals_us.len(),
        arrived,
        completed,
        outcomes,
        latency: LatencySummary::from_latencies(latencies),
        availability: if arrived > 0 {
            within_sla as f64 / arrived as f64
        } else {
            1.0
        },
        sla_us,
        end_us,
        throughput_qps: if end_us > 0.0 {
            completed as f64 / end_us * 1e6
        } else {
            0.0
        },
        goodput_qps: if end_us > 0.0 {
            within_sla as f64 / end_us * 1e6
        } else {
            0.0
        },
        shed_rate: if arrived > 0 {
            outcomes.shed as f64 / arrived as f64
        } else {
            0.0
        },
        routing: stats,
        records,
        shards,
    };
    debug_assert!(report.is_conserved());
    Ok(report)
}

/// Rejoin a request's legs: a leg resolves to the best of its copies
/// (hedged duplicates race — first completion wins), the request to the
/// worst of its legs (every leg must finish; max-of-shards latency). A
/// terminally failed leg (shed / timed out) fails the request even if
/// other legs are still in flight.
/// One resolved sub-request at the rejoin: `(shard, outcome, finish, is_hedge)`.
type LegOutcome = (ShardId, Option<RequestOutcome>, Option<f64>, bool);

fn rejoin(
    legs: &[Leg],
    sub_outcomes: &[LegOutcome],
    record: &mut ClusterRecord,
) -> Option<RequestOutcome> {
    // Outcome severity for the cross-leg "worst" fold.
    fn worst_rank(o: RequestOutcome) -> u8 {
        match o {
            RequestOutcome::Shed => 0,
            RequestOutcome::TimedOut => 1,
            RequestOutcome::InFlightAtHorizon => 2,
            RequestOutcome::Completed => 3,
        }
    }
    let mut request_outcome = RequestOutcome::Completed;
    let mut slowest_finish = 0.0f64;
    for leg in legs {
        // Copies of this leg: the primary sub plus (iff hedged) the
        // duplicate on the hedge shard.
        let mut leg_outcome: Option<RequestOutcome> = None;
        let mut leg_finish: Option<f64> = None;
        for &(shard, outcome, finish, is_hedge) in sub_outcomes {
            let belongs =
                (shard == leg.primary && !is_hedge) || (Some(shard) == leg.hedge && is_hedge);
            if !belongs {
                continue;
            }
            let o = outcome.expect("in-window sub-request resolves");
            if o == RequestOutcome::Completed {
                let f = finish.expect("completed sub has a finish");
                leg_finish = Some(leg_finish.map_or(f, |cur: f64| cur.min(f)));
                leg_outcome = Some(RequestOutcome::Completed);
            } else if leg_outcome != Some(RequestOutcome::Completed) {
                // Best surviving copy: in-flight can still complete, a
                // timeout beats a shed.
                let better = leg_outcome.is_none_or(|cur| worst_rank(o) > worst_rank(cur));
                if better {
                    leg_outcome = Some(o);
                }
            }
        }
        let o = leg_outcome.expect("every leg has at least one sub-request");
        if worst_rank(o) < worst_rank(request_outcome) {
            request_outcome = o;
        }
        if let Some(f) = leg_finish {
            slowest_finish = slowest_finish.max(f);
        }
    }
    if request_outcome == RequestOutcome::Completed {
        record.finish_us = Some(slowest_finish);
    }
    Some(request_outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensordimm_faults::{NodeOutage, RankOutage};
    use tensordimm_serving::ArrivalProcess;

    fn model() -> SystemModel {
        SystemModel::paper_defaults()
    }

    fn arrivals(qps: f64, n: usize, seed: u64) -> Vec<f64> {
        ArrivalProcess::Poisson { rate_qps: qps }.sample_arrivals_us(n, seed)
    }

    fn base_cfg(nodes: usize, replication: usize) -> ClusterConfig {
        ClusterConfig::new(
            ShardPlan::hash(nodes, replication).expect("valid"),
            vec![NodeSpec::paper(2); nodes],
            DesignPoint::Tdimm,
            BatchPolicy::new(16, 200.0),
        )
    }

    #[test]
    fn cluster_run_is_deterministic_and_conserved() {
        let m = model();
        let w = Workload::facebook();
        let trace = arrivals(60_000.0, 300, 7);
        let cfg = base_cfg(4, 2)
            .with_retry(RetryPolicy::none().with_deadline(5_000.0))
            .with_admission(AdmissionPolicy::bounded(64));
        let a = simulate_cluster(&m, &w, &cfg, &trace).expect("valid");
        let b = simulate_cluster(&m, &w, &cfg, &trace).expect("valid");
        assert_eq!(a, b, "replays are bit-identical");
        assert!(a.is_conserved());
        assert_eq!(a.offered, 300);
        assert_eq!(a.arrived, 300);
        assert!(a.completed > 0);
        assert!(a.routing.mean_fanout >= 1.0);
        // Worker count must not perturb anything.
        let par = simulate_cluster(&m, &w, &cfg.clone().with_workers(4), &trace).expect("valid");
        assert_eq!(a, par, "bit-identical at any worker count");
    }

    #[test]
    fn inert_cluster_decomposes_into_single_node_runs() {
        let m = model();
        let w = Workload::youtube();
        let trace = arrivals(50_000.0, 200, 11);
        let mut cfg = base_cfg(3, 1).with_failover(FailoverPolicy::None);
        cfg.plan = ShardPlan::round_robin(3, 1).expect("valid");
        let report = simulate_cluster(&m, &w, &cfg, &trace).expect("valid");
        let traces = shard_traces(&cfg, &w, &trace).expect("valid");
        for (node, sub_trace) in traces.iter().enumerate() {
            let independent = simulate(
                &shard_model(&m, &cfg, node),
                &w,
                &shard_sim_config(&cfg, node),
                sub_trace,
            )
            .expect("valid");
            assert_eq!(
                report.shards[node].report, independent,
                "shard {node} must be bit-identical to its independent run"
            );
        }
        // Single-leg requests rejoin at exactly the shard latency.
        for (id, rec) in report.records.iter().enumerate() {
            if rec.fanout == 1 && rec.outcome == Some(RequestOutcome::Completed) {
                assert!(rec.finish_us.expect("completed") > trace[id]);
            }
        }
    }

    #[test]
    fn dead_node_reroutes_to_replicas_or_sheds() {
        let m = model();
        let w = Workload::facebook();
        let trace = arrivals(40_000.0, 150, 3);
        let horizon = *trace.last().expect("nonempty");
        let outage = FaultPlan::none().with_node_outage(NodeOutage {
            start_us: 0.0,
            duration_us: horizon + 1.0,
        });
        // Unreplicated + static routing: every request touching node 0
        // is shed at the router.
        let mut dead0 = base_cfg(3, 1).with_failover(FailoverPolicy::None);
        dead0.nodes[0] = dead0.nodes[0].with_faults(outage);
        let r = simulate_cluster(&m, &w, &dead0, &trace).expect("valid");
        assert!(r.is_conserved());
        assert!(r.routing.router_shed > 0, "dead primary must shed");
        assert!(r.availability < 1.0);
        // Replicated + rerouting: everything still completes; the
        // survivors absorb the load.
        let mut rerouted = base_cfg(3, 2).with_failover(FailoverPolicy::Reroute);
        rerouted.nodes[0] = rerouted.nodes[0].with_faults(outage);
        let r2 = simulate_cluster(&m, &w, &rerouted, &trace).expect("valid");
        assert!(r2.is_conserved());
        assert_eq!(r2.routing.router_shed, 0);
        assert!(r2.routing.rerouted_requests > 0);
        assert_eq!(r2.shards[0].subrequests, 0, "dead node receives nothing");
        assert_eq!(r2.completed, r2.arrived);
    }

    #[test]
    fn hedging_duplicates_legs_on_degraded_shards() {
        let m = model();
        let w = Workload::facebook();
        let trace = arrivals(40_000.0, 120, 5);
        let horizon = *trace.last().expect("nonempty");
        // Node 0 limps through the whole run with a rank out.
        let degraded = FaultPlan::none().with_rank_outage(RankOutage {
            rank: 0,
            start_us: 0.0,
            duration_us: horizon + 1.0,
        });
        let mut cfg = base_cfg(3, 2).with_failover(FailoverPolicy::HedgeDegraded);
        cfg.nodes[0] = cfg.nodes[0].with_faults(degraded);
        let r = simulate_cluster(&m, &w, &cfg, &trace).expect("valid");
        assert!(r.is_conserved());
        assert!(r.routing.hedge_subrequests > 0, "degraded shard is hedged");
        assert!(r.records.iter().any(|rec| rec.hedged));
        // Without hedging the same cluster routes strictly fewer subs.
        let plain = simulate_cluster(
            &m,
            &w,
            &cfg.clone().with_failover(FailoverPolicy::Reroute),
            &trace,
        )
        .expect("valid");
        assert!(plain.routing.subrequests < r.routing.subrequests);
        assert_eq!(plain.routing.hedge_subrequests, 0);
    }

    #[test]
    fn horizon_cut_conserves() {
        let m = model();
        let w = Workload::ncf();
        let trace = arrivals(80_000.0, 200, 13);
        let mid = trace[99];
        let cfg = base_cfg(2, 2)
            .with_horizon(mid)
            .with_retry(RetryPolicy::none().with_deadline(3_000.0));
        let r = simulate_cluster(&m, &w, &cfg, &trace).expect("valid");
        assert!(r.is_conserved());
        assert!(r.not_arrived() > 0, "the cut must strand arrivals");
        assert_eq!(r.arrived + r.not_arrived(), 200);
        assert!(r
            .records
            .iter()
            .filter(|rec| rec.arrival_us > mid)
            .all(|rec| rec.outcome.is_none()));
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        let m = model();
        let w = Workload::ncf();
        let reject = |cfg: ClusterConfig, parameter: &'static str| {
            assert_eq!(
                simulate_cluster(&m, &w, &cfg, &[0.0]),
                Err(ClusterError::InvalidConfig { parameter }),
                "{parameter}"
            );
        };
        let mut wrong_len = base_cfg(3, 1);
        wrong_len.nodes.pop();
        reject(wrong_len, "nodes.len");
        let mut no_gpus = base_cfg(2, 1);
        no_gpus.nodes[1].gpus = 0;
        reject(no_gpus, "node.gpus");
        let mut no_dimms = base_cfg(2, 1);
        no_dimms.nodes[0].dimms = 0;
        reject(no_dimms, "node.dimms");
        reject(base_cfg(2, 1).with_lookups(0, 0.9, 1), "routing_lookups");
        reject(base_cfg(2, 1).with_workers(0), "workers");
        let mut bad_skew = base_cfg(2, 1);
        bad_skew.zipf_s = f64::NAN;
        reject(bad_skew, "zipf_s");
        // Trace and per-shard errors wrap as Shard.
        assert!(matches!(
            simulate_cluster(&m, &w, &base_cfg(2, 1), &[1.0, 0.5]),
            Err(ClusterError::Shard(SimError::BadArrival { index: 1 }))
        ));
        assert!(!ClusterError::InvalidConfig { parameter: "nodes" }
            .to_string()
            .is_empty());
    }

    #[test]
    fn health_windows_fold_schedules() {
        let plan = FaultPlan::none()
            .with_node_outage(NodeOutage {
                start_us: 100.0,
                duration_us: 50.0,
            })
            .with_rank_outage(RankOutage {
                rank: 0,
                start_us: 300.0,
                duration_us: 100.0,
            });
        let h = NodeHealth::from_plan(&plan, 1_000.0).expect("valid");
        assert!(!h.dead_at(99.9) && h.dead_at(100.0) && h.dead_at(149.9));
        assert!(!h.dead_at(150.0), "half-open: repaired at the boundary");
        assert!(h.degraded_at(350.0) && !h.degraded_at(450.0));
        assert!(!h.degraded_at(120.0), "dead is not degraded");
        // A 1-DIMM node losing its only rank is dead, not degraded.
        let mut tiny = FaultPlan::none().with_rank_outage(RankOutage {
            rank: 0,
            start_us: 10.0,
            duration_us: 5.0,
        });
        tiny.dimms = 1;
        let h1 = NodeHealth::from_plan(&tiny, 100.0).expect("valid");
        assert!(h1.dead_at(12.0) && !h1.degraded_at(12.0));
        assert!(!h1.dead_at(15.0));
    }
}
