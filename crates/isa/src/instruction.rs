//! Instruction formats (paper Fig. 8).

use std::fmt;

use crate::IsaError;

/// The three TensorISA opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpCode {
    /// Embedding lookup.
    Gather,
    /// Element-wise reduction of two tensors.
    Reduce,
    /// Element-wise average over groups of embeddings.
    Average,
}

impl OpCode {
    /// Opcode byte used by the encoded format.
    pub fn to_byte(self) -> u8 {
        match self {
            OpCode::Gather => 0x01,
            OpCode::Reduce => 0x02,
            OpCode::Average => 0x03,
        }
    }

    /// Parse an opcode byte.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnknownOpcode`] for unassigned bytes.
    pub fn from_byte(byte: u8) -> Result<Self, IsaError> {
        match byte {
            0x01 => Ok(OpCode::Gather),
            0x02 => Ok(OpCode::Reduce),
            0x03 => Ok(OpCode::Average),
            other => Err(IsaError::UnknownOpcode(other)),
        }
    }
}

impl fmt::Display for OpCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OpCode::Gather => "GATHER",
            OpCode::Reduce => "REDUCE",
            OpCode::Average => "AVERAGE",
        };
        f.write_str(name)
    }
}

/// Element-wise operators supported by REDUCE.
///
/// The paper lists "element-wise additions/multiplications/averages/etc";
/// average has its own instruction, and min/max cover the common pooling
/// variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReduceOp {
    /// Lane-wise addition (the default tensor reduction).
    #[default]
    Add,
    /// Lane-wise subtraction.
    Sub,
    /// Lane-wise multiplication.
    Mul,
    /// Lane-wise minimum.
    Min,
    /// Lane-wise maximum.
    Max,
}

impl ReduceOp {
    /// Operator byte used by the encoded format.
    pub fn to_byte(self) -> u8 {
        match self {
            ReduceOp::Add => 0x00,
            ReduceOp::Sub => 0x01,
            ReduceOp::Mul => 0x02,
            ReduceOp::Min => 0x03,
            ReduceOp::Max => 0x04,
        }
    }

    /// Parse an operator byte.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnknownReduceOp`] for unassigned bytes.
    pub fn from_byte(byte: u8) -> Result<Self, IsaError> {
        match byte {
            0x00 => Ok(ReduceOp::Add),
            0x01 => Ok(ReduceOp::Sub),
            0x02 => Ok(ReduceOp::Mul),
            0x03 => Ok(ReduceOp::Min),
            0x04 => Ok(ReduceOp::Max),
            other => Err(IsaError::UnknownReduceOp(other)),
        }
    }

    /// All supported operators (useful for exhaustive tests).
    pub fn all() -> [ReduceOp; 5] {
        [
            ReduceOp::Add,
            ReduceOp::Sub,
            ReduceOp::Mul,
            ReduceOp::Min,
            ReduceOp::Max,
        ]
    }
}

impl fmt::Display for ReduceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ReduceOp::Add => "add",
            ReduceOp::Sub => "sub",
            ReduceOp::Mul => "mul",
            ReduceOp::Min => "min",
            ReduceOp::Max => "max",
        };
        f.write_str(name)
    }
}

/// A TensorISA instruction (paper Fig. 8: `OpCode | InputBase | AUX |
/// OutputBase | Count`, plus our explicit embedding-size generalization).
///
/// All addresses and sizes are in 64-byte blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// Embedding lookup (Fig. 9a).
    Gather {
        /// Base block of the embedding table.
        table_base: u64,
        /// Base block of the index list (sixteen u32 indices per block,
        /// replicated to every DIMM).
        idx_base: u64,
        /// Base block of the gathered output tensor.
        output_base: u64,
        /// Number of embeddings to gather.
        count: u64,
        /// Blocks per embedding vector (`embedding_dim * 4 / 64`).
        vec_blocks: u64,
    },
    /// Element-wise reduction of two equal-shaped tensors (Fig. 9b).
    Reduce {
        /// Base block of the first input tensor.
        input1: u64,
        /// Base block of the second input tensor.
        input2: u64,
        /// Base block of the output tensor.
        output_base: u64,
        /// Total tensor size in blocks.
        count: u64,
        /// The element-wise operator.
        op: ReduceOp,
    },
    /// Element-wise average over groups of consecutive embeddings (Fig. 9c).
    Average {
        /// Base block of the input tensor (`count * group` embeddings).
        input_base: u64,
        /// Base block of the output tensor (`count` embeddings).
        output_base: u64,
        /// Number of output embeddings.
        count: u64,
        /// Embeddings averaged per output (`averageNum`).
        group: u64,
        /// Blocks per embedding vector.
        vec_blocks: u64,
    },
}

impl Instruction {
    /// The instruction's opcode.
    pub fn opcode(&self) -> OpCode {
        match self {
            Instruction::Gather { .. } => OpCode::Gather,
            Instruction::Reduce { .. } => OpCode::Reduce,
            Instruction::Average { .. } => OpCode::Average,
        }
    }

    /// Total blocks read by the full-node execution of this instruction
    /// (including index-list blocks for GATHER).
    pub fn blocks_read(&self) -> u64 {
        match *self {
            Instruction::Gather {
                count, vec_blocks, ..
            } => count * vec_blocks + count.div_ceil(crate::LANES as u64),
            Instruction::Reduce { count, .. } => 2 * count,
            Instruction::Average {
                count,
                group,
                vec_blocks,
                ..
            } => count * group * vec_blocks,
        }
    }

    /// Total blocks written by the full-node execution of this instruction.
    pub fn blocks_written(&self) -> u64 {
        match *self {
            Instruction::Gather {
                count, vec_blocks, ..
            } => count * vec_blocks,
            Instruction::Reduce { count, .. } => count,
            Instruction::Average {
                count, vec_blocks, ..
            } => count * vec_blocks,
        }
    }

    /// Total bytes moved (read + written) by the full-node execution.
    pub fn bytes_moved(&self) -> u64 {
        (self.blocks_read() + self.blocks_written()) * 64
    }

    /// Validate the instruction against a node of `node_dim` DIMMs.
    ///
    /// # Errors
    ///
    /// * [`IsaError::InvalidContext`] if `node_dim` is zero.
    /// * [`IsaError::ZeroField`] if a required field is zero.
    /// * [`IsaError::Misaligned`] if tensor bases or sizes do not divide
    ///   evenly over the DIMMs (the rank-interleaved mapping requires
    ///   `vec_blocks`, `count` (for REDUCE) and all tensor bases to be
    ///   multiples of `node_dim`).
    pub fn validate(&self, node_dim: u64) -> Result<(), IsaError> {
        if node_dim == 0 {
            return Err(IsaError::InvalidContext { node_dim, tid: 0 });
        }
        let aligned = |what: &'static str, value: u64| {
            if !value.is_multiple_of(node_dim) {
                Err(IsaError::Misaligned {
                    what,
                    value,
                    node_dim,
                })
            } else {
                Ok(())
            }
        };
        match *self {
            Instruction::Gather {
                table_base,
                output_base,
                count,
                vec_blocks,
                ..
            } => {
                if count == 0 {
                    return Err(IsaError::ZeroField { field: "count" });
                }
                if vec_blocks == 0 {
                    return Err(IsaError::ZeroField {
                        field: "vec_blocks",
                    });
                }
                aligned("table_base", table_base)?;
                aligned("output_base", output_base)?;
                aligned("vec_blocks", vec_blocks)
            }
            Instruction::Reduce {
                input1,
                input2,
                output_base,
                count,
                ..
            } => {
                if count == 0 {
                    return Err(IsaError::ZeroField { field: "count" });
                }
                aligned("input1", input1)?;
                aligned("input2", input2)?;
                aligned("output_base", output_base)?;
                aligned("count", count)
            }
            Instruction::Average {
                input_base,
                output_base,
                count,
                group,
                vec_blocks,
            } => {
                if count == 0 {
                    return Err(IsaError::ZeroField { field: "count" });
                }
                if group == 0 {
                    return Err(IsaError::ZeroField { field: "group" });
                }
                if vec_blocks == 0 {
                    return Err(IsaError::ZeroField {
                        field: "vec_blocks",
                    });
                }
                aligned("input_base", input_base)?;
                aligned("output_base", output_base)?;
                aligned("vec_blocks", vec_blocks)
            }
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Gather {
                table_base,
                idx_base,
                output_base,
                count,
                vec_blocks,
            } => write!(
                f,
                "GATHER table={table_base} idx={idx_base} out={output_base} \
                 count={count} vec_blocks={vec_blocks}"
            ),
            Instruction::Reduce {
                input1,
                input2,
                output_base,
                count,
                op,
            } => write!(
                f,
                "REDUCE.{op} in1={input1} in2={input2} out={output_base} count={count}"
            ),
            Instruction::Average {
                input_base,
                output_base,
                count,
                group,
                vec_blocks,
            } => write!(
                f,
                "AVERAGE in={input_base} out={output_base} count={count} \
                 group={group} vec_blocks={vec_blocks}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gather() -> Instruction {
        Instruction::Gather {
            table_base: 0,
            idx_base: 64,
            output_base: 128,
            count: 32,
            vec_blocks: 4,
        }
    }

    #[test]
    fn opcode_bytes_roundtrip() {
        for op in [OpCode::Gather, OpCode::Reduce, OpCode::Average] {
            assert_eq!(OpCode::from_byte(op.to_byte()).unwrap(), op);
        }
        assert!(OpCode::from_byte(0xaa).is_err());
    }

    #[test]
    fn reduce_op_bytes_roundtrip() {
        for op in ReduceOp::all() {
            assert_eq!(ReduceOp::from_byte(op.to_byte()).unwrap(), op);
        }
        assert!(ReduceOp::from_byte(0x77).is_err());
    }

    #[test]
    fn traffic_accounting() {
        let g = gather();
        // 32 embeddings x 4 blocks read + 2 index blocks; same written.
        assert_eq!(g.blocks_read(), 32 * 4 + 2);
        assert_eq!(g.blocks_written(), 32 * 4);
        assert_eq!(g.bytes_moved(), (32 * 4 + 2 + 32 * 4) * 64);

        let r = Instruction::Reduce {
            input1: 0,
            input2: 64,
            output_base: 128,
            count: 10,
            op: ReduceOp::Add,
        };
        assert_eq!(r.blocks_read(), 20);
        assert_eq!(r.blocks_written(), 10);

        let a = Instruction::Average {
            input_base: 0,
            output_base: 512,
            count: 4,
            group: 8,
            vec_blocks: 2,
        };
        assert_eq!(a.blocks_read(), 4 * 8 * 2);
        assert_eq!(a.blocks_written(), 8);
    }

    #[test]
    fn validation_catches_misalignment() {
        let g = gather();
        assert!(g.validate(4).is_ok());
        assert!(matches!(
            g.validate(8),
            Err(IsaError::Misaligned {
                what: "vec_blocks",
                ..
            })
        ));
        assert!(g.validate(0).is_err());
    }

    #[test]
    fn validation_catches_zero_fields() {
        let z = Instruction::Gather {
            table_base: 0,
            idx_base: 0,
            output_base: 0,
            count: 0,
            vec_blocks: 4,
        };
        assert!(matches!(z.validate(4), Err(IsaError::ZeroField { .. })));
        let z = Instruction::Average {
            input_base: 0,
            output_base: 0,
            count: 4,
            group: 0,
            vec_blocks: 4,
        };
        assert!(matches!(z.validate(4), Err(IsaError::ZeroField { .. })));
    }

    #[test]
    fn display_forms() {
        assert!(gather().to_string().starts_with("GATHER"));
        assert_eq!(OpCode::Reduce.to_string(), "REDUCE");
        assert_eq!(ReduceOp::Max.to_string(), "max");
    }
}
