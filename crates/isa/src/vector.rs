//! The 64-byte vector register semantics of the NMP core's 16-wide ALU.

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

use crate::instruction::ReduceOp;

/// Number of f32 lanes in one 64-byte block (the NMP ALU width).
pub const LANES: usize = 16;

/// A 64-byte vector register: sixteen f32 lanes.
///
/// This is the value type flowing through the NMP core's input (A, B) and
/// output (C) SRAM queues; one `Vec16` corresponds to one DDR4 burst.
///
/// # Example
///
/// ```
/// use tensordimm_isa::{ReduceOp, Vec16};
///
/// let a = Vec16::splat(2.0);
/// let b = Vec16::splat(3.0);
/// assert_eq!((a + b).lanes()[0], 5.0);
/// assert_eq!(a.reduce(b, ReduceOp::Mul).lanes()[15], 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec16 {
    lanes: [f32; LANES],
}

impl Vec16 {
    /// All lanes zero.
    pub fn zero() -> Self {
        Vec16::default()
    }

    /// All lanes set to `value`.
    pub fn splat(value: f32) -> Self {
        Vec16 {
            lanes: [value; LANES],
        }
    }

    /// The lane values.
    pub fn lanes(&self) -> &[f32; LANES] {
        &self.lanes
    }

    /// Mutable lane values.
    pub fn lanes_mut(&mut self) -> &mut [f32; LANES] {
        &mut self.lanes
    }

    /// Apply `op` element-wise against `rhs`.
    pub fn reduce(self, rhs: Vec16, op: ReduceOp) -> Vec16 {
        match op {
            ReduceOp::Add => self + rhs,
            ReduceOp::Sub => self - rhs,
            ReduceOp::Mul => self * rhs,
            ReduceOp::Min => self.min(rhs),
            ReduceOp::Max => self.max(rhs),
        }
    }

    /// Lane-wise minimum.
    pub fn min(self, rhs: Vec16) -> Vec16 {
        let mut out = self;
        for (o, r) in out.lanes.iter_mut().zip(rhs.lanes.iter()) {
            *o = o.min(*r);
        }
        out
    }

    /// Lane-wise maximum.
    pub fn max(self, rhs: Vec16) -> Vec16 {
        let mut out = self;
        for (o, r) in out.lanes.iter_mut().zip(rhs.lanes.iter()) {
            *o = o.max(*r);
        }
        out
    }

    /// Divide every lane by a scalar (used by AVERAGE).
    pub fn scale(self, divisor: f32) -> Vec16 {
        self / Vec16::splat(divisor)
    }

    /// Reinterpret the 64 bytes as sixteen u32 words (index-list view).
    pub fn to_bits(self) -> [u32; LANES] {
        self.lanes.map(f32::to_bits)
    }

    /// Reinterpret sixteen u32 words as f32 lanes.
    pub fn from_bits(bits: [u32; LANES]) -> Self {
        Vec16 {
            lanes: bits.map(f32::from_bits),
        }
    }
}

impl From<[f32; LANES]> for Vec16 {
    fn from(lanes: [f32; LANES]) -> Self {
        Vec16 { lanes }
    }
}

impl From<Vec16> for [f32; LANES] {
    fn from(v: Vec16) -> Self {
        v.lanes
    }
}

impl fmt::Display for Vec16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Vec16[{}, {}, .., {}]",
            self.lanes[0], self.lanes[1], self.lanes[15]
        )
    }
}

macro_rules! lane_op {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for Vec16 {
            type Output = Vec16;
            fn $method(self, rhs: Vec16) -> Vec16 {
                let mut out = self;
                for (o, r) in out.lanes.iter_mut().zip(rhs.lanes.iter()) {
                    let lane = *o $op *r;
                    *o = lane;
                }
                out
            }
        }
    };
}

lane_op!(Add, add, +);
lane_op!(Sub, sub, -);
lane_op!(Mul, mul, *);
lane_op!(Div, div, /);

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Vec16 {
        let mut v = [0.0f32; LANES];
        for (i, lane) in v.iter_mut().enumerate() {
            *lane = i as f32;
        }
        Vec16::from(v)
    }

    #[test]
    fn arithmetic_is_lanewise() {
        let a = ramp();
        let b = Vec16::splat(2.0);
        assert_eq!((a + b).lanes()[3], 5.0);
        assert_eq!((a - b).lanes()[3], 1.0);
        assert_eq!((a * b).lanes()[3], 6.0);
        assert_eq!((a / b).lanes()[3], 1.5);
    }

    #[test]
    fn reduce_dispatches_all_ops() {
        let a = ramp();
        let b = Vec16::splat(7.0);
        assert_eq!(a.reduce(b, ReduceOp::Add).lanes()[1], 8.0);
        assert_eq!(a.reduce(b, ReduceOp::Sub).lanes()[1], -6.0);
        assert_eq!(a.reduce(b, ReduceOp::Mul).lanes()[2], 14.0);
        assert_eq!(a.reduce(b, ReduceOp::Min).lanes()[10], 7.0);
        assert_eq!(a.reduce(b, ReduceOp::Max).lanes()[10], 10.0);
    }

    #[test]
    fn scale_divides() {
        assert_eq!(Vec16::splat(9.0).scale(3.0).lanes()[0], 3.0);
    }

    #[test]
    fn bit_roundtrip_preserves_indices() {
        let mut bits = [0u32; LANES];
        for (i, b) in bits.iter_mut().enumerate() {
            *b = (i as u32) * 1_000_003;
        }
        assert_eq!(Vec16::from_bits(bits).to_bits(), bits);
    }

    #[test]
    fn display_nonempty() {
        assert!(!Vec16::zero().to_string().is_empty());
    }

    #[test]
    fn conversions() {
        let arr = [1.0f32; LANES];
        let v = Vec16::from(arr);
        let back: [f32; LANES] = v.into();
        assert_eq!(arr, back);
    }
}
