//! Functional execution of TensorISA instructions (paper Fig. 9).
//!
//! [`execute_on_dimm`] runs the slice of an instruction owned by one
//! TensorDIMM (`tid` of `node_dim`): the blocks whose rank-interleaved
//! position satisfies `block % node_dim == tid`. [`execute_on_node`] runs
//! all slices, which is the whole instruction — the decomposition is
//! exhaustive and disjoint, a property the tests check against golden
//! single-threaded implementations.

use crate::instruction::Instruction;
use crate::memory::TensorMemory;
use crate::vector::{Vec16, LANES};
use crate::IsaError;

/// Which DIMM executes, out of how many.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimmContext {
    /// Number of TensorDIMMs in the node (`nodeDim` in the paper).
    pub node_dim: u64,
    /// This DIMM's id (`tid` in the paper), `0 <= tid < node_dim`.
    pub tid: u64,
}

impl DimmContext {
    /// A context, validated on use.
    pub fn new(node_dim: u64, tid: u64) -> Self {
        DimmContext { node_dim, tid }
    }

    fn validate(&self) -> Result<(), IsaError> {
        if self.node_dim == 0 || self.tid >= self.node_dim {
            return Err(IsaError::InvalidContext {
                node_dim: self.node_dim,
                tid: self.tid,
            });
        }
        Ok(())
    }
}

/// Work performed by one DIMM for one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecSummary {
    /// 64-byte blocks read from local DRAM.
    pub blocks_read: u64,
    /// 64-byte blocks written to local DRAM.
    pub blocks_written: u64,
    /// Vector-ALU operations performed (one per 64-byte pair).
    pub alu_ops: u64,
}

impl ExecSummary {
    /// Total bytes moved by this DIMM.
    pub fn bytes_moved(&self) -> u64 {
        (self.blocks_read + self.blocks_written) * 64
    }

    /// Accumulate another summary.
    pub fn merge(&mut self, other: &ExecSummary) {
        self.blocks_read += other.blocks_read;
        self.blocks_written += other.blocks_written;
        self.alu_ops += other.alu_ops;
    }
}

/// Execute the `ctx.tid` slice of `instr` against `mem`.
///
/// # Errors
///
/// * [`IsaError::InvalidContext`] for an out-of-range `tid`.
/// * Validation errors from [`Instruction::validate`].
/// * [`IsaError::IndexOutOfRange`] when a gathered index addresses beyond
///   the memory capacity.
pub fn execute_on_dimm<M: TensorMemory>(
    instr: &Instruction,
    mem: &mut M,
    ctx: DimmContext,
) -> Result<ExecSummary, IsaError> {
    ctx.validate()?;
    instr.validate(ctx.node_dim)?;
    let mut summary = ExecSummary::default();
    let node_dim = ctx.node_dim;
    let tid = ctx.tid;

    match *instr {
        // Fig. 9(a): every DIMM walks the replicated index list and copies
        // its stripe of each named embedding into the output tensor.
        Instruction::Gather {
            table_base,
            idx_base,
            output_base,
            count,
            vec_blocks,
        } => {
            let mut idx_block = [0u32; LANES];
            for i in 0..count {
                let lane = (i % LANES as u64) as usize;
                if lane == 0 {
                    idx_block = mem.read_u32(idx_base + i / LANES as u64);
                    summary.blocks_read += 1;
                }
                let index = idx_block[lane] as u64;
                let src_first = table_base + index * vec_blocks;
                if src_first + vec_blocks > mem.blocks() {
                    return Err(IsaError::IndexOutOfRange {
                        index,
                        block: src_first + vec_blocks - 1,
                        blocks: mem.blocks(),
                    });
                }
                let mut k = tid;
                while k < vec_blocks {
                    let v = mem.read_vec(src_first + k);
                    mem.write_vec(output_base + i * vec_blocks + k, v);
                    summary.blocks_read += 1;
                    summary.blocks_written += 1;
                    k += node_dim;
                }
            }
        }
        // Fig. 9(b): element-wise reduction over this DIMM's stripe.
        Instruction::Reduce {
            input1,
            input2,
            output_base,
            count,
            op,
        } => {
            let mut b = tid;
            while b < count {
                let a = mem.read_vec(input1 + b);
                let c = mem.read_vec(input2 + b);
                mem.write_vec(output_base + b, a.reduce(c, op));
                summary.blocks_read += 2;
                summary.blocks_written += 1;
                summary.alu_ops += 1;
                b += node_dim;
            }
        }
        // Fig. 9(c): average `group` consecutive embeddings per output.
        Instruction::Average {
            input_base,
            output_base,
            count,
            group,
            vec_blocks,
        } => {
            for i in 0..count {
                let mut k = tid;
                while k < vec_blocks {
                    let mut acc = Vec16::zero();
                    for j in 0..group {
                        let src = input_base + (i * group + j) * vec_blocks + k;
                        acc = acc + mem.read_vec(src);
                        summary.blocks_read += 1;
                        summary.alu_ops += 1;
                    }
                    mem.write_vec(output_base + i * vec_blocks + k, acc.scale(group as f32));
                    summary.blocks_written += 1;
                    summary.alu_ops += 1;
                    k += node_dim;
                }
            }
        }
    }
    Ok(summary)
}

/// Execute `instr` completely: every DIMM slice in turn.
///
/// Equivalent to broadcasting the instruction to all `node_dim` NMP cores
/// (Section 4.4) and waiting for each to finish its share.
///
/// # Errors
///
/// Same conditions as [`execute_on_dimm`].
pub fn execute_on_node<M: TensorMemory>(
    instr: &Instruction,
    mem: &mut M,
    node_dim: u64,
) -> Result<ExecSummary, IsaError> {
    let mut total = ExecSummary::default();
    for tid in 0..node_dim {
        let s = execute_on_dimm(instr, mem, DimmContext::new(node_dim, tid))?;
        total.merge(&s);
    }
    Ok(total)
}

/// Execute a whole program (instruction sequence) as one DIMM, stopping at
/// the first failure.
///
/// # Errors
///
/// The same conditions as [`execute_on_dimm`], wrapped in
/// [`IsaError::AtInstruction`] carrying the failing instruction's index —
/// the same site the static analyzer's first diagnostic names.
pub fn execute_program_on_dimm<M: TensorMemory>(
    instrs: &[Instruction],
    mem: &mut M,
    ctx: DimmContext,
) -> Result<ExecSummary, IsaError> {
    let mut total = ExecSummary::default();
    for (index, instr) in instrs.iter().enumerate() {
        let s = execute_on_dimm(instr, mem, ctx).map_err(|e| e.at(index))?;
        total.merge(&s);
    }
    Ok(total)
}

/// Execute a whole program completely: every instruction, every DIMM slice.
///
/// # Errors
///
/// Same conditions as [`execute_program_on_dimm`].
pub fn execute_program_on_node<M: TensorMemory>(
    instrs: &[Instruction],
    mem: &mut M,
    node_dim: u64,
) -> Result<ExecSummary, IsaError> {
    let mut total = ExecSummary::default();
    for (index, instr) in instrs.iter().enumerate() {
        let s = execute_on_node(instr, mem, node_dim).map_err(|e| e.at(index))?;
        total.merge(&s);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::ReduceOp;
    use crate::memory::VecMemory;

    const VB: u64 = 8; // blocks per embedding (512 B)

    /// Build a memory with `rows` embeddings at block 0, value = row index.
    fn table(rows: u64) -> VecMemory {
        let mut mem = VecMemory::new(1 << 14);
        for r in 0..rows {
            for b in 0..VB {
                mem.write_f32(r * VB + b, [(r as f32) + (b as f32) / 100.0; LANES]);
            }
        }
        mem
    }

    fn write_indices(mem: &mut VecMemory, base: u64, indices: &[u32]) {
        mem.write_u32_slice(base, indices);
    }

    #[test]
    fn gather_matches_direct_copy() {
        let mut mem = table(64);
        write_indices(&mut mem, 4096, &[10, 3, 55, 0, 7]);
        let g = Instruction::Gather {
            table_base: 0,
            idx_base: 4096,
            output_base: 8192,
            count: 5,
            vec_blocks: VB,
        };
        let summary = execute_on_node(&g, &mut mem, 4).unwrap();
        for (i, &idx) in [10u64, 3, 55, 0, 7].iter().enumerate() {
            for b in 0..VB {
                assert_eq!(
                    mem.read_f32(8192 + i as u64 * VB + b),
                    mem.read_f32(idx * VB + b),
                    "embedding {i} block {b}"
                );
            }
        }
        // Each of 4 DIMMs reads the 1-block index list; 5 embeddings x 8
        // blocks move once in total.
        assert_eq!(summary.blocks_written, 5 * VB);
        assert_eq!(summary.blocks_read, 5 * VB + 4);
    }

    #[test]
    fn reduce_all_ops_match_scalar_math() {
        for op in ReduceOp::all() {
            let mut mem = table(4);
            let r = Instruction::Reduce {
                input1: 0,
                input2: VB,
                output_base: 1024,
                count: VB,
                op,
            };
            execute_on_node(&r, &mut mem, 4).unwrap();
            for b in 0..VB {
                let a = mem.read_f32(b)[0];
                let c = mem.read_f32(VB + b)[0];
                let got = mem.read_f32(1024 + b)[0];
                let want = match op {
                    ReduceOp::Add => a + c,
                    ReduceOp::Sub => a - c,
                    ReduceOp::Mul => a * c,
                    ReduceOp::Min => a.min(c),
                    ReduceOp::Max => a.max(c),
                };
                assert_eq!(got, want, "{op} block {b}");
            }
        }
    }

    #[test]
    fn average_pools_groups() {
        let mut mem = table(8); // embeddings 0..8 with value == row
        let a = Instruction::Average {
            input_base: 0,
            output_base: 2048,
            count: 2,
            group: 4,
            vec_blocks: VB,
        };
        execute_on_node(&a, &mut mem, 4).unwrap();
        // Output 0 averages rows 0..4 -> 1.5 + block offset; output 1
        // averages rows 4..8 -> 5.5 + block offset.
        for b in 0..VB {
            let off = b as f32 / 100.0;
            assert!((mem.read_f32(2048 + b)[0] - (1.5 + off)).abs() < 1e-6);
            assert!((mem.read_f32(2048 + VB + b)[0] - (5.5 + off)).abs() < 1e-6);
        }
    }

    #[test]
    fn dimm_slices_are_disjoint_and_complete() {
        // Execute slice-by-slice into one memory, and whole-node into
        // another; results must agree.
        let mut a = table(32);
        let mut b = a.clone();
        write_indices(&mut a, 4096, &[9, 1, 30]);
        write_indices(&mut b, 4096, &[9, 1, 30]);
        let g = Instruction::Gather {
            table_base: 0,
            idx_base: 4096,
            output_base: 8192,
            count: 3,
            vec_blocks: VB,
        };
        // node_dim = 8: execute tids in reverse order to prove independence.
        for tid in (0..8).rev() {
            execute_on_dimm(&g, &mut a, DimmContext::new(8, tid)).unwrap();
        }
        execute_on_node(&g, &mut b, 8).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn summary_matches_instruction_accounting() {
        let mut mem = table(64);
        write_indices(&mut mem, 4096, &[1; 16]);
        let g = Instruction::Gather {
            table_base: 0,
            idx_base: 4096,
            output_base: 8192,
            count: 16,
            vec_blocks: VB,
        };
        let s = execute_on_node(&g, &mut mem, 8).unwrap();
        // Node-level accounting reads the index list once per node in
        // Instruction::blocks_read, but each DIMM physically reads it.
        assert_eq!(s.blocks_written, g.blocks_written());
        assert_eq!(s.blocks_read, 16 * VB + 8);
    }

    #[test]
    fn out_of_range_index_fails() {
        let mut mem = VecMemory::new(64);
        write_indices(&mut mem, 8, &[1000]);
        let g = Instruction::Gather {
            table_base: 0,
            idx_base: 8,
            output_base: 16,
            count: 1,
            vec_blocks: 4,
        };
        assert!(matches!(
            execute_on_node(&g, &mut mem, 4),
            Err(IsaError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn invalid_tid_rejected() {
        let mut mem = VecMemory::new(64);
        let r = Instruction::Reduce {
            input1: 0,
            input2: 8,
            output_base: 16,
            count: 8,
            op: ReduceOp::Add,
        };
        assert!(execute_on_dimm(&r, &mut mem, DimmContext::new(4, 4)).is_err());
        assert!(execute_on_dimm(&r, &mut mem, DimmContext::new(0, 0)).is_err());
    }

    #[test]
    fn program_errors_carry_instruction_index() {
        let mut mem = VecMemory::new(1 << 12);
        write_indices(&mut mem, 1024, &[3, 1]);
        let ok = Instruction::Gather {
            table_base: 0,
            idx_base: 1024,
            output_base: 2048,
            count: 2,
            vec_blocks: VB,
        };
        let bad = Instruction::Reduce {
            input1: 0,
            input2: VB,
            output_base: 1 << 20, // past capacity via count misalignment
            count: 3,             // not a multiple of node_dim = 4
            op: ReduceOp::Add,
        };
        let program = [ok, bad, ok];
        let err = execute_program_on_dimm(&program, &mut mem, DimmContext::new(4, 0)).unwrap_err();
        assert_eq!(err.instruction_index(), Some(1));
        assert!(matches!(
            err.root_cause(),
            IsaError::Misaligned { what: "count", .. }
        ));
        // Double-wrapping keeps the innermost index.
        assert_eq!(err.clone().at(7).instruction_index(), Some(1));

        // A clean program merges every step's summary.
        let program = [ok, ok];
        let s = execute_program_on_dimm(&program, &mut mem, DimmContext::new(4, 0)).unwrap();
        let one = execute_on_dimm(&ok, &mut mem, DimmContext::new(4, 0)).unwrap();
        assert_eq!(s.blocks_written, 2 * one.blocks_written);
        assert!(
            execute_program_on_node(&program, &mut mem, 4).is_ok(),
            "node-level program execution"
        );
    }

    #[test]
    fn reduce_on_single_dimm_node() {
        // node_dim = 1 degenerates to a plain sequential loop.
        let mut mem = table(4);
        let r = Instruction::Reduce {
            input1: 0,
            input2: VB,
            output_base: 512,
            count: VB,
            op: ReduceOp::Add,
        };
        let s = execute_on_node(&r, &mut mem, 1).unwrap();
        assert_eq!(s.alu_ops, VB);
        assert_eq!(s.blocks_read, 2 * VB);
    }
}
