//! Memory-access plans: the ordered block accesses an instruction generates.
//!
//! The paper's evaluation drives a cycle-accurate DRAM simulator with traces
//! generated from the tensor operations (Section 5). [`AccessPlan`] is that
//! trace at the 64-byte-block level for one DIMM's slice of an instruction;
//! the NMP-local memory controller lowers it to physical DRAM requests.
//!
//! A plan enumerates exactly the accesses [`crate::execute_on_dimm`] would
//! perform, in the same order — a property the tests enforce.

use crate::exec::DimmContext;
use crate::instruction::Instruction;
use crate::vector::LANES;
use crate::IsaError;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A 64-byte block read.
    Read,
    /// A 64-byte block write.
    Write,
}

/// The embedding row behind a GATHER table-data read, for consumers that
/// track row locality (the NMP hot-row cache keys on rows, not blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GatherRow {
    /// The row index being gathered.
    pub row: u64,
    /// Whether this is the first block of this DIMM's slice of the row
    /// (the access where a row-cache lookup decides hit or miss for the
    /// whole slice).
    pub first_block: bool,
}

/// One block access in an instruction's plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockAccess {
    /// Global block address (64-byte units within the node's pool).
    pub block: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// Row provenance: `Some` only on GATHER table-data reads; index-list
    /// reads, outputs and the other opcodes carry `None`.
    pub row: Option<GatherRow>,
}

impl BlockAccess {
    /// Byte address of the block.
    pub fn byte_addr(&self) -> u64 {
        self.block * 64
    }
}

/// The ordered accesses one DIMM performs for one instruction.
///
/// # Example
///
/// ```
/// use tensordimm_isa::{AccessPlan, DimmContext, Instruction, ReduceOp};
///
/// let reduce = Instruction::Reduce {
///     input1: 0,
///     input2: 64,
///     output_base: 128,
///     count: 64,
///     op: ReduceOp::Add,
/// };
/// let plan = AccessPlan::for_dimm(&reduce, DimmContext::new(4, 0), None)?;
/// // This DIMM owns every fourth block: 16 pairs in, 16 out.
/// assert_eq!(plan.reads(), 32);
/// assert_eq!(plan.writes(), 16);
/// # Ok::<(), tensordimm_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessPlan {
    accesses: Vec<BlockAccess>,
}

impl AccessPlan {
    /// Build the plan for `ctx.tid`'s slice of `instr`.
    ///
    /// GATHER plans depend on the runtime index values; pass them via
    /// `indices` (the plan then includes both the index-list block reads and
    /// the data-dependent table reads). REDUCE / AVERAGE ignore `indices`.
    ///
    /// # Errors
    ///
    /// * [`IsaError::InvalidContext`] for a bad `tid`.
    /// * Validation errors from [`Instruction::validate`].
    /// * [`IsaError::ZeroField`] if GATHER is planned without indices
    ///   (reported as a zero `idx` field).
    pub fn for_dimm(
        instr: &Instruction,
        ctx: DimmContext,
        indices: Option<&[u64]>,
    ) -> Result<Self, IsaError> {
        if ctx.node_dim == 0 || ctx.tid >= ctx.node_dim {
            return Err(IsaError::InvalidContext {
                node_dim: ctx.node_dim,
                tid: ctx.tid,
            });
        }
        instr.validate(ctx.node_dim)?;
        let mut plan = AccessPlan::default();
        let node_dim = ctx.node_dim;
        let tid = ctx.tid;
        match *instr {
            Instruction::Gather {
                table_base,
                idx_base,
                output_base,
                count,
                vec_blocks,
            } => {
                let indices = indices.ok_or(IsaError::ZeroField { field: "indices" })?;
                for i in 0..count {
                    if i % LANES as u64 == 0 {
                        plan.read(idx_base + i / LANES as u64);
                    }
                    let index = *indices.get(i as usize).unwrap_or(&0);
                    let src_first = table_base + index * vec_blocks;
                    let mut k = tid;
                    while k < vec_blocks {
                        plan.read_row(src_first + k, index, k == tid);
                        plan.write(output_base + i * vec_blocks + k);
                        k += node_dim;
                    }
                }
            }
            Instruction::Reduce {
                input1,
                input2,
                output_base,
                count,
                ..
            } => {
                let mut b = tid;
                while b < count {
                    plan.read(input1 + b);
                    plan.read(input2 + b);
                    plan.write(output_base + b);
                    b += node_dim;
                }
            }
            Instruction::Average {
                input_base,
                output_base,
                count,
                group,
                vec_blocks,
            } => {
                for i in 0..count {
                    let mut k = tid;
                    while k < vec_blocks {
                        for j in 0..group {
                            plan.read(input_base + (i * group + j) * vec_blocks + k);
                        }
                        plan.write(output_base + i * vec_blocks + k);
                        k += node_dim;
                    }
                }
            }
        }
        Ok(plan)
    }

    fn read(&mut self, block: u64) {
        self.accesses.push(BlockAccess {
            block,
            kind: AccessKind::Read,
            row: None,
        });
    }

    fn read_row(&mut self, block: u64, row: u64, first_block: bool) {
        self.accesses.push(BlockAccess {
            block,
            kind: AccessKind::Read,
            row: Some(GatherRow { row, first_block }),
        });
    }

    fn write(&mut self, block: u64) {
        self.accesses.push(BlockAccess {
            block,
            kind: AccessKind::Write,
            row: None,
        });
    }

    /// The ordered accesses.
    pub fn accesses(&self) -> &[BlockAccess] {
        &self.accesses
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Number of reads.
    pub fn reads(&self) -> u64 {
        self.accesses
            .iter()
            .filter(|a| a.kind == AccessKind::Read)
            .count() as u64
    }

    /// Number of writes.
    pub fn writes(&self) -> u64 {
        self.len() as u64 - self.reads()
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.len() as u64 * 64
    }

    /// Iterate over the accesses.
    pub fn iter(&self) -> std::slice::Iter<'_, BlockAccess> {
        self.accesses.iter()
    }
}

impl<'a> IntoIterator for &'a AccessPlan {
    type Item = &'a BlockAccess;
    type IntoIter = std::slice::Iter<'a, BlockAccess>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_on_dimm, DimmContext};
    use crate::instruction::ReduceOp;
    use crate::memory::{TensorMemory, VecMemory};

    const VB: u64 = 8;

    #[test]
    fn plan_counts_match_execution_for_every_op() {
        let mut mem = VecMemory::new(1 << 14);
        for r in 0..64u64 {
            for b in 0..VB {
                mem.write_f32(r * VB + b, [r as f32; 16]);
            }
        }
        let idx: Vec<u64> = vec![5, 9, 33, 2, 17];
        let idx_u32: Vec<u32> = idx.iter().map(|&i| i as u32).collect();
        mem.write_u32_slice(4096, &idx_u32);

        let instrs = vec![
            Instruction::Gather {
                table_base: 0,
                idx_base: 4096,
                output_base: 8192,
                count: idx.len() as u64,
                vec_blocks: VB,
            },
            Instruction::Reduce {
                input1: 0,
                input2: 512,
                output_base: 1024,
                count: 64,
                op: ReduceOp::Add,
            },
            Instruction::Average {
                input_base: 0,
                output_base: 2048,
                count: 4,
                group: 2,
                vec_blocks: VB,
            },
        ];
        for instr in &instrs {
            for node_dim in [1u64, 2, 4, 8] {
                for tid in 0..node_dim {
                    let ctx = DimmContext::new(node_dim, tid);
                    let plan = AccessPlan::for_dimm(instr, ctx, Some(&idx)).unwrap();
                    let summary = execute_on_dimm(instr, &mut mem, ctx).unwrap();
                    assert_eq!(plan.reads(), summary.blocks_read, "{instr} reads");
                    assert_eq!(plan.writes(), summary.blocks_written, "{instr} writes");
                }
            }
        }
    }

    #[test]
    fn gather_without_indices_is_an_error() {
        let g = Instruction::Gather {
            table_base: 0,
            idx_base: 0,
            output_base: 64,
            count: 4,
            vec_blocks: 4,
        };
        assert!(AccessPlan::for_dimm(&g, DimmContext::new(4, 0), None).is_err());
    }

    #[test]
    fn dimm_plans_partition_the_blocks() {
        let r = Instruction::Reduce {
            input1: 0,
            input2: 256,
            output_base: 512,
            count: 64,
            op: ReduceOp::Add,
        };
        let node_dim = 8u64;
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for tid in 0..node_dim {
            let plan = AccessPlan::for_dimm(&r, DimmContext::new(node_dim, tid), None).unwrap();
            for a in &plan {
                assert_eq!(a.block % node_dim, tid, "stripe violated");
                seen.insert((a.block, a.kind == AccessKind::Read, tid));
                total += 1;
            }
        }
        assert_eq!(seen.len(), total, "overlapping accesses across DIMMs");
        // 64 blocks x (2 reads + 1 write).
        assert_eq!(total, 64 * 3);
    }

    #[test]
    fn byte_addresses() {
        let a = BlockAccess {
            block: 3,
            kind: AccessKind::Write,
            row: None,
        };
        assert_eq!(a.byte_addr(), 192);
    }

    /// GATHER table-data reads carry their row; exactly one per row visit
    /// is flagged `first_block`, and nothing else is tagged.
    #[test]
    fn gather_reads_are_row_tagged() {
        let idx: Vec<u64> = vec![5, 9, 5];
        let g = Instruction::Gather {
            table_base: 0,
            idx_base: 4096,
            output_base: 8192,
            count: idx.len() as u64,
            vec_blocks: VB,
        };
        for node_dim in [1u64, 4] {
            let plan = AccessPlan::for_dimm(&g, DimmContext::new(node_dim, 0), Some(&idx)).unwrap();
            let tagged: Vec<&BlockAccess> = plan.iter().filter(|a| a.row.is_some()).collect();
            // Every table-data read is tagged: vec_blocks / node_dim per lookup.
            assert_eq!(tagged.len() as u64, idx.len() as u64 * VB / node_dim);
            assert!(tagged.iter().all(|a| a.kind == AccessKind::Read));
            let firsts: Vec<u64> = tagged
                .iter()
                .filter_map(|a| a.row.filter(|r| r.first_block).map(|r| r.row))
                .collect();
            assert_eq!(firsts, idx, "one first-block tag per lookup, in order");
            // Index-list reads and writes stay untagged.
            assert!(plan
                .iter()
                .filter(|a| a.kind == AccessKind::Write)
                .all(|a| a.row.is_none()));
        }

        // The other opcodes never tag.
        let r = Instruction::Reduce {
            input1: 0,
            input2: 8,
            output_base: 16,
            count: 8,
            op: ReduceOp::Add,
        };
        let plan = AccessPlan::for_dimm(&r, DimmContext::new(1, 0), None).unwrap();
        assert!(plan.iter().all(|a| a.row.is_none()));
    }

    #[test]
    fn plan_iteration() {
        let r = Instruction::Reduce {
            input1: 0,
            input2: 8,
            output_base: 16,
            count: 8,
            op: ReduceOp::Add,
        };
        let plan = AccessPlan::for_dimm(&r, DimmContext::new(1, 0), None).unwrap();
        assert!(!plan.is_empty());
        assert_eq!(plan.len(), 24);
        assert_eq!(plan.bytes(), 24 * 64);
        assert_eq!(plan.iter().count(), plan.into_iter().count());
    }
}
