//! Abstract 64-byte-granular memory and a flat reference implementation.

use crate::vector::{Vec16, LANES};

/// A memory addressable in 64-byte blocks, as seen by the NMP cores.
///
/// The node's pooled physical memory implements this; [`VecMemory`] is the
/// flat in-process reference used by the functional executor and tests.
/// Blocks can be viewed as sixteen f32 lanes (tensor data) or sixteen u32
/// words (GATHER index lists) — the underlying bits are shared.
pub trait TensorMemory {
    /// Capacity in 64-byte blocks.
    fn blocks(&self) -> u64;

    /// Read block `block` as sixteen f32 lanes.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `block >= self.blocks()`.
    fn read_f32(&self, block: u64) -> [f32; LANES];

    /// Write block `block` from sixteen f32 lanes.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `block >= self.blocks()`.
    fn write_f32(&mut self, block: u64, lanes: [f32; LANES]);

    /// Read block `block` as sixteen u32 words (index-list view).
    fn read_u32(&self, block: u64) -> [u32; LANES] {
        Vec16::from(self.read_f32(block)).to_bits()
    }

    /// Write block `block` from sixteen u32 words (index-list view).
    fn write_u32(&mut self, block: u64, words: [u32; LANES]) {
        self.write_f32(block, *Vec16::from_bits(words).lanes());
    }

    /// Read a vector register.
    fn read_vec(&self, block: u64) -> Vec16 {
        Vec16::from(self.read_f32(block))
    }

    /// Write a vector register.
    fn write_vec(&mut self, block: u64, v: Vec16) {
        self.write_f32(block, *v.lanes());
    }
}

/// Flat little-endian memory backed by a `Vec<u32>`.
///
/// # Example
///
/// ```
/// use tensordimm_isa::{TensorMemory, VecMemory};
///
/// let mut mem = VecMemory::new(16);
/// mem.write_f32(3, [1.5; 16]);
/// assert_eq!(mem.read_f32(3)[7], 1.5);
/// assert_eq!(mem.blocks(), 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VecMemory {
    words: Vec<u32>,
}

impl VecMemory {
    /// Zero-initialized memory of `blocks` 64-byte blocks.
    pub fn new(blocks: u64) -> Self {
        VecMemory {
            words: vec![0u32; (blocks as usize) * LANES],
        }
    }

    /// Capacity in bytes.
    pub fn bytes(&self) -> u64 {
        self.words.len() as u64 * 4
    }

    /// Borrow the raw words (sixteen per block).
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Read `n` f32 values starting at a block boundary.
    pub fn read_f32_slice(&self, block: u64, n: usize) -> Vec<f32> {
        let start = block as usize * LANES;
        self.words[start..start + n]
            .iter()
            .map(|w| f32::from_bits(*w))
            .collect()
    }

    /// Write f32 values starting at a block boundary (tail of the final
    /// block is left untouched).
    pub fn write_f32_slice(&mut self, block: u64, values: &[f32]) {
        let start = block as usize * LANES;
        for (w, v) in self.words[start..start + values.len()]
            .iter_mut()
            .zip(values)
        {
            *w = v.to_bits();
        }
    }

    /// Write u32 indices starting at a block boundary.
    pub fn write_u32_slice(&mut self, block: u64, values: &[u32]) {
        let start = block as usize * LANES;
        self.words[start..start + values.len()].copy_from_slice(values);
    }
}

impl TensorMemory for VecMemory {
    fn blocks(&self) -> u64 {
        (self.words.len() / LANES) as u64
    }

    fn read_f32(&self, block: u64) -> [f32; LANES] {
        let start = block as usize * LANES;
        let mut out = [0f32; LANES];
        for (o, w) in out.iter_mut().zip(&self.words[start..start + LANES]) {
            *o = f32::from_bits(*w);
        }
        out
    }

    fn write_f32(&mut self, block: u64, lanes: [f32; LANES]) {
        let start = block as usize * LANES;
        for (w, l) in self.words[start..start + LANES].iter_mut().zip(lanes) {
            *w = l.to_bits();
        }
    }

    fn read_u32(&self, block: u64) -> [u32; LANES] {
        let start = block as usize * LANES;
        let mut out = [0u32; LANES];
        out.copy_from_slice(&self.words[start..start + LANES]);
        out
    }

    fn write_u32(&mut self, block: u64, words: [u32; LANES]) {
        let start = block as usize * LANES;
        self.words[start..start + LANES].copy_from_slice(&words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip() {
        let mut m = VecMemory::new(4);
        let mut v = [0f32; LANES];
        for (i, lane) in v.iter_mut().enumerate() {
            *lane = i as f32 * 0.5;
        }
        m.write_f32(2, v);
        assert_eq!(m.read_f32(2), v);
        assert_eq!(m.read_f32(1), [0.0; LANES]);
    }

    #[test]
    fn u32_view_shares_bits() {
        let mut m = VecMemory::new(1);
        m.write_u32(0, [42; LANES]);
        assert_eq!(m.read_u32(0), [42; LANES]);
        // The f32 view sees the same bits.
        assert_eq!(m.read_f32(0)[0].to_bits(), 42);
    }

    #[test]
    fn slice_helpers() {
        let mut m = VecMemory::new(4);
        m.write_f32_slice(1, &[1.0, 2.0, 3.0]);
        assert_eq!(m.read_f32_slice(1, 3), vec![1.0, 2.0, 3.0]);
        m.write_u32_slice(0, &[7, 8]);
        assert_eq!(m.read_u32(0)[..2], [7, 8]);
        assert_eq!(m.bytes(), 256);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let m = VecMemory::new(1);
        let _ = m.read_f32(1);
    }
}
