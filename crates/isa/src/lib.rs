//! TensorISA: the custom tensor instruction set of TensorDIMM.
//!
//! The paper (Section 4.4, Figs. 8–9) defines three instructions executed by
//! the NMP cores inside each TensorDIMM:
//!
//! * [`Instruction::Gather`] — embedding lookup: gather `count` embedding
//!   vectors named by an index list into a contiguous output tensor,
//! * [`Instruction::Reduce`] — element-wise reduction of two equal-shaped
//!   tensors (add / subtract / multiply / min / max),
//! * [`Instruction::Average`] — element-wise average over groups of
//!   consecutive embeddings (multi-hot pooling).
//!
//! All pointer arithmetic is in **64-byte blocks** (one DDR4 burst, sixteen
//! f32 lanes), exactly as in the paper's pseudo-code. Instructions are
//! *broadcast* to every TensorDIMM; each DIMM `tid` out of `node_dim`
//! executes the slice of the operation whose blocks satisfy
//! `block % node_dim == tid`, which is precisely the paper's
//! rank-interleaved address mapping (Fig. 7).
//!
//! The paper's pseudo-code hard-codes one block per DIMM per embedding
//! (embedding bytes = `node_dim * 64`). This crate generalizes to any
//! embedding size that is a multiple of `node_dim` blocks via the explicit
//! `vec_blocks` field; the paper's case is `vec_blocks == node_dim`.
//!
//! # Example
//!
//! Execute a GATHER functionally against a flat memory model:
//!
//! ```
//! use tensordimm_isa::{Instruction, TensorMemory, VecMemory, execute_on_node};
//!
//! let node_dim = 4;                    // four TensorDIMMs
//! let vec_blocks = 4;                  // 256-byte embeddings
//! let mut mem = VecMemory::new(1 << 16);
//! // Table of 8 embeddings at block 0; make row r hold value r everywhere.
//! for r in 0..8u64 {
//!     for b in 0..vec_blocks {
//!         mem.write_f32(r * vec_blocks + b, [r as f32; 16]);
//!     }
//! }
//! // Index list [5, 2] at block 1024; output at block 2048.
//! let mut idx = [0u32; 16];
//! idx[0] = 5;
//! idx[1] = 2;
//! mem.write_u32(1024, idx);
//! let gather = Instruction::Gather {
//!     table_base: 0,
//!     idx_base: 1024,
//!     output_base: 2048,
//!     count: 2,
//!     vec_blocks,
//! };
//! execute_on_node(&gather, &mut mem, node_dim)?;
//! assert_eq!(mem.read_f32(2048)[0], 5.0);
//! assert_eq!(mem.read_f32(2048 + vec_blocks)[0], 2.0);
//! # Ok::<(), tensordimm_isa::IsaError>(())
//! ```

pub mod encode;
pub mod exec;
pub mod instruction;
pub mod memory;
pub mod plan;
pub mod vector;

pub use encode::{decode, decode_bytes, encode, EncodedInstruction};
pub use exec::{
    execute_on_dimm, execute_on_node, execute_program_on_dimm, execute_program_on_node,
    DimmContext, ExecSummary,
};
pub use instruction::{Instruction, OpCode, ReduceOp};
pub use memory::{TensorMemory, VecMemory};
pub use plan::{AccessKind, AccessPlan, BlockAccess, GatherRow};
pub use vector::{Vec16, LANES};

use std::error::Error;
use std::fmt;

/// Errors raised by TensorISA encoding, decoding and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// The opcode byte of an encoded instruction is unknown.
    UnknownOpcode(u8),
    /// The reduce-op byte of an encoded REDUCE is unknown.
    UnknownReduceOp(u8),
    /// A wire buffer is truncated or oversized.
    WireLength {
        /// Bytes received.
        len: usize,
        /// Bytes the wire format requires.
        expected: usize,
    },
    /// A tensor base or size is not aligned to the node's DIMM count.
    Misaligned {
        /// Which operand is misaligned.
        what: &'static str,
        /// The offending value (in 64-byte blocks).
        value: u64,
        /// Required divisor (the node's DIMM count).
        node_dim: u64,
    },
    /// A field does not fit the encoded instruction format.
    FieldOverflow {
        /// Which field overflows.
        field: &'static str,
        /// The value that does not fit.
        value: u64,
    },
    /// `node_dim` or `tid` is invalid (zero DIMMs, or `tid >= node_dim`).
    InvalidContext {
        /// Number of DIMMs in the node.
        node_dim: u64,
        /// The DIMM id that was requested.
        tid: u64,
    },
    /// An instruction field is zero where a nonzero value is required.
    ZeroField {
        /// Which field is zero.
        field: &'static str,
    },
    /// A gathered index exceeds the bounds implied by the memory model.
    IndexOutOfRange {
        /// The embedding index read from the index list.
        index: u64,
        /// The block address it produced.
        block: u64,
        /// Memory capacity in blocks.
        blocks: u64,
    },
    /// An error raised while executing instruction `index` of a program —
    /// program-level executors wrap per-instruction errors so runtime
    /// failures and static diagnostics point at the same site.
    AtInstruction {
        /// Zero-based index of the failing instruction.
        index: usize,
        /// The underlying error.
        source: Box<IsaError>,
    },
}

impl IsaError {
    /// Wrap this error with the program position it occurred at. Already
    /// wrapped errors keep their original (innermost-program) index.
    #[must_use]
    pub fn at(self, index: usize) -> IsaError {
        match self {
            IsaError::AtInstruction { .. } => self,
            other => IsaError::AtInstruction {
                index,
                source: Box::new(other),
            },
        }
    }

    /// The failing instruction's program index, if this error carries one.
    pub fn instruction_index(&self) -> Option<usize> {
        match self {
            IsaError::AtInstruction { index, .. } => Some(*index),
            _ => None,
        }
    }

    /// The underlying error with any program-position wrapper removed.
    pub fn root_cause(&self) -> &IsaError {
        match self {
            IsaError::AtInstruction { source, .. } => source.root_cause(),
            other => other,
        }
    }
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::UnknownOpcode(op) => write!(f, "unknown opcode byte {op:#04x}"),
            IsaError::UnknownReduceOp(op) => write!(f, "unknown reduce-op byte {op:#04x}"),
            IsaError::WireLength { len, expected } => {
                write!(
                    f,
                    "wire buffer is {len} bytes, format requires exactly {expected}"
                )
            }
            IsaError::Misaligned {
                what,
                value,
                node_dim,
            } => write!(
                f,
                "{what} = {value} blocks is not a multiple of the node's {node_dim} DIMMs"
            ),
            IsaError::FieldOverflow { field, value } => {
                write!(
                    f,
                    "field {field} = {value} does not fit the instruction format"
                )
            }
            IsaError::InvalidContext { node_dim, tid } => {
                write!(f, "invalid DIMM context: tid {tid} of node_dim {node_dim}")
            }
            IsaError::ZeroField { field } => write!(f, "field {field} must be nonzero"),
            IsaError::IndexOutOfRange {
                index,
                block,
                blocks,
            } => write!(
                f,
                "gathered index {index} maps to block {block} beyond capacity {blocks}"
            ),
            IsaError::AtInstruction { index, source } => {
                write!(f, "instruction {index}: {source}")
            }
        }
    }
}

impl Error for IsaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IsaError::AtInstruction { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        for e in [
            IsaError::UnknownOpcode(0xff),
            IsaError::UnknownReduceOp(9),
            IsaError::Misaligned {
                what: "vec_blocks",
                value: 3,
                node_dim: 4,
            },
            IsaError::FieldOverflow {
                field: "count",
                value: u64::MAX,
            },
            IsaError::InvalidContext {
                node_dim: 4,
                tid: 4,
            },
            IsaError::ZeroField { field: "count" },
            IsaError::IndexOutOfRange {
                index: 10,
                block: 100,
                blocks: 50,
            },
            IsaError::ZeroField { field: "count" }.at(3),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn at_instruction_wrapping() {
        let e = IsaError::ZeroField { field: "count" }.at(2);
        assert_eq!(e.instruction_index(), Some(2));
        assert_eq!(e.root_cause(), &IsaError::ZeroField { field: "count" });
        assert!(Error::source(&e).is_some());
        assert_eq!(e.to_string(), "instruction 2: field count must be nonzero");
        // Plain errors carry no index and are their own root cause.
        let plain = IsaError::UnknownOpcode(9);
        assert_eq!(plain.instruction_index(), None);
        assert_eq!(plain.root_cause(), &plain);
        assert!(Error::source(&plain).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IsaError>();
    }
}
