//! Binary instruction encoding.
//!
//! The paper specifies the logical format `OpCode | InputBase | AUX |
//! OutputBase | Count` (Fig. 8) without pinning down bit widths. We encode
//! into five 64-bit words (40 bytes): a header word packing the opcode, the
//! REDUCE operator, the embedding size (`vec_blocks`) and the AVERAGE group,
//! followed by `count`, the input base, the AUX base and the output base.
//! This is the wire format a GPU runtime would ship to the TensorNode as
//! part of a kernel launch (Section 4.4).

use crate::instruction::{Instruction, OpCode, ReduceOp};
use crate::IsaError;

/// A TensorISA instruction in wire format: five little-endian 64-bit words.
///
/// # Example
///
/// ```
/// use tensordimm_isa::{decode, encode, Instruction, ReduceOp};
///
/// let instr = Instruction::Reduce {
///     input1: 0,
///     input2: 4096,
///     output_base: 8192,
///     count: 1024,
///     op: ReduceOp::Add,
/// };
/// let wire = encode(&instr)?;
/// assert_eq!(decode(&wire)?, instr);
/// # Ok::<(), tensordimm_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EncodedInstruction {
    words: [u64; 5],
}

impl EncodedInstruction {
    /// The raw words (header, count, input, aux, output).
    pub fn words(&self) -> &[u64; 5] {
        &self.words
    }

    /// Construct from raw words (validated on [`decode`]).
    pub fn from_words(words: [u64; 5]) -> Self {
        EncodedInstruction { words }
    }

    /// Size of the wire format in bytes.
    pub const BYTES: usize = 40;

    /// Serialize to the on-the-wire byte stream (five little-endian
    /// 64-bit words).
    pub fn to_bytes(&self) -> [u8; Self::BYTES] {
        let mut bytes = [0u8; Self::BYTES];
        for (chunk, word) in bytes.chunks_exact_mut(8).zip(self.words) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        bytes
    }

    /// Deserialize from a byte stream. The instruction fields are *not*
    /// validated here — that is [`decode`]'s job — but the length is:
    /// truncated or oversized buffers are rejected, never mis-parsed.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::WireLength`] unless `bytes.len()` is exactly
    /// [`EncodedInstruction::BYTES`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IsaError> {
        if bytes.len() != Self::BYTES {
            return Err(IsaError::WireLength {
                len: bytes.len(),
                expected: Self::BYTES,
            });
        }
        let mut words = [0u64; 5];
        for (word, chunk) in words.iter_mut().zip(bytes.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
        }
        Ok(EncodedInstruction { words })
    }
}

/// Decode an instruction straight from wire bytes, validating both the
/// buffer length and the instruction fields.
///
/// # Errors
///
/// Returns [`IsaError::WireLength`] for a buffer that is not exactly
/// [`EncodedInstruction::BYTES`] long, and any [`decode`] error for
/// corrupted field bytes.
pub fn decode_bytes(bytes: &[u8]) -> Result<Instruction, IsaError> {
    decode(&EncodedInstruction::from_bytes(bytes)?)
}

const VEC_BLOCKS_MAX: u64 = u16::MAX as u64;
const GROUP_MAX: u64 = u32::MAX as u64;

fn header(opcode: OpCode, op: u8, vec_blocks: u64, group: u64) -> Result<u64, IsaError> {
    if vec_blocks > VEC_BLOCKS_MAX {
        return Err(IsaError::FieldOverflow {
            field: "vec_blocks",
            value: vec_blocks,
        });
    }
    if group > GROUP_MAX {
        return Err(IsaError::FieldOverflow {
            field: "group",
            value: group,
        });
    }
    Ok(opcode.to_byte() as u64 | (op as u64) << 8 | vec_blocks << 16 | group << 32)
}

/// Encode an instruction into wire format.
///
/// # Errors
///
/// Returns [`IsaError::FieldOverflow`] when `vec_blocks` exceeds 16 bits or
/// `group` exceeds 32 bits.
pub fn encode(instr: &Instruction) -> Result<EncodedInstruction, IsaError> {
    let words = match *instr {
        Instruction::Gather {
            table_base,
            idx_base,
            output_base,
            count,
            vec_blocks,
        } => [
            header(OpCode::Gather, 0, vec_blocks, 0)?,
            count,
            table_base,
            idx_base,
            output_base,
        ],
        Instruction::Reduce {
            input1,
            input2,
            output_base,
            count,
            op,
        } => [
            header(OpCode::Reduce, op.to_byte(), 0, 0)?,
            count,
            input1,
            input2,
            output_base,
        ],
        Instruction::Average {
            input_base,
            output_base,
            count,
            group,
            vec_blocks,
        } => [
            header(OpCode::Average, 0, vec_blocks, group)?,
            count,
            input_base,
            0,
            output_base,
        ],
    };
    Ok(EncodedInstruction { words })
}

/// Decode a wire-format instruction.
///
/// # Errors
///
/// Returns [`IsaError::UnknownOpcode`] or [`IsaError::UnknownReduceOp`] for
/// unassigned opcode/operator bytes.
pub fn decode(wire: &EncodedInstruction) -> Result<Instruction, IsaError> {
    let [head, count, input, aux, output] = wire.words;
    let opcode = OpCode::from_byte((head & 0xff) as u8)?;
    let op_byte = ((head >> 8) & 0xff) as u8;
    let vec_blocks = (head >> 16) & 0xffff;
    let group = head >> 32;
    Ok(match opcode {
        OpCode::Gather => Instruction::Gather {
            table_base: input,
            idx_base: aux,
            output_base: output,
            count,
            vec_blocks,
        },
        OpCode::Reduce => Instruction::Reduce {
            input1: input,
            input2: aux,
            output_base: output,
            count,
            op: ReduceOp::from_byte(op_byte)?,
        },
        OpCode::Average => Instruction::Average {
            input_base: input,
            output_base: output,
            count,
            group,
            vec_blocks,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_roundtrip() {
        let i = Instruction::Gather {
            table_base: 123,
            idx_base: 456,
            output_base: 789,
            count: 1000,
            vec_blocks: 32,
        };
        assert_eq!(decode(&encode(&i).unwrap()).unwrap(), i);
    }

    #[test]
    fn reduce_roundtrip_all_ops() {
        for op in ReduceOp::all() {
            let i = Instruction::Reduce {
                input1: 1,
                input2: 2,
                output_base: 3,
                count: 4,
                op,
            };
            assert_eq!(decode(&encode(&i).unwrap()).unwrap(), i);
        }
    }

    #[test]
    fn average_roundtrip() {
        let i = Instruction::Average {
            input_base: 10,
            output_base: 20,
            count: 30,
            group: 25,
            vec_blocks: 32,
        };
        assert_eq!(decode(&encode(&i).unwrap()).unwrap(), i);
    }

    #[test]
    fn overflow_rejected() {
        let i = Instruction::Gather {
            table_base: 0,
            idx_base: 0,
            output_base: 0,
            count: 1,
            vec_blocks: 1 << 20,
        };
        assert!(matches!(
            encode(&i),
            Err(IsaError::FieldOverflow {
                field: "vec_blocks",
                ..
            })
        ));
    }

    #[test]
    fn unknown_bytes_rejected() {
        let mut wire = encode(&Instruction::Reduce {
            input1: 0,
            input2: 0,
            output_base: 0,
            count: 1,
            op: ReduceOp::Add,
        })
        .unwrap();
        let mut words = *wire.words();
        words[0] = (words[0] & !0xff) | 0x7f; // bad opcode
        wire = EncodedInstruction::from_words(words);
        assert!(matches!(decode(&wire), Err(IsaError::UnknownOpcode(0x7f))));

        let mut words = *encode(&Instruction::Reduce {
            input1: 0,
            input2: 0,
            output_base: 0,
            count: 1,
            op: ReduceOp::Add,
        })
        .unwrap()
        .words();
        words[0] |= 0x99 << 8; // bad reduce op
        assert!(matches!(
            decode(&EncodedInstruction::from_words(words)),
            Err(IsaError::UnknownReduceOp(_))
        ));
    }

    #[test]
    fn wire_size() {
        assert_eq!(EncodedInstruction::BYTES, 40);
    }

    #[test]
    fn byte_roundtrip() {
        let i = Instruction::Average {
            input_base: 10,
            output_base: 20,
            count: 30,
            group: 25,
            vec_blocks: 32,
        };
        let wire = encode(&i).unwrap();
        let bytes = wire.to_bytes();
        assert_eq!(bytes.len(), EncodedInstruction::BYTES);
        assert_eq!(EncodedInstruction::from_bytes(&bytes).unwrap(), wire);
        assert_eq!(decode_bytes(&bytes).unwrap(), i);
    }

    #[test]
    fn truncated_and_oversized_buffers_rejected() {
        let bytes = encode(&Instruction::Reduce {
            input1: 0,
            input2: 0,
            output_base: 0,
            count: 1,
            op: ReduceOp::Add,
        })
        .unwrap()
        .to_bytes();
        for len in [0, 1, 8, 39] {
            assert!(matches!(
                decode_bytes(&bytes[..len]),
                Err(IsaError::WireLength { len: l, expected: 40 }) if l == len
            ));
        }
        let mut oversized = bytes.to_vec();
        oversized.push(0);
        assert!(matches!(
            decode_bytes(&oversized),
            Err(IsaError::WireLength {
                len: 41,
                expected: 40
            })
        ));
    }
}
