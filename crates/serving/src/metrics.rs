//! Serving metrics: latency percentiles, queue-depth statistics and
//! batch-occupancy histograms.

/// Nearest-rank percentile of an ascending-sorted sample, `pct` in
/// `[0, 100]`. Empty samples yield `0.0`; `pct = 0` yields the minimum
/// sample and `pct = 100` the maximum.
///
/// # Panics
///
/// Panics when `pct` is NaN or outside `[0, 100]`. (Before this guard, a
/// NaN rank silently cast to 0 and clamped to the *minimum* sample, and
/// `pct > 100` clamped to the maximum — both would quietly misreport a
/// tail instead of flagging the caller's bug.)
pub fn percentile(sorted: &[f64], pct: f64) -> f64 {
    assert!(
        (0.0..=100.0).contains(&pct),
        "percentile {pct} outside [0, 100]"
    );
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Tail-latency summary of completed requests.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Completed requests the summary covers.
    pub count: usize,
    /// Mean end-to-end latency, µs.
    pub mean_us: f64,
    /// Median latency, µs.
    pub p50_us: f64,
    /// 95th-percentile latency, µs.
    pub p95_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// Worst observed latency, µs.
    pub max_us: f64,
}

impl LatencySummary {
    /// Summarize a set of end-to-end latencies (µs, any order).
    ///
    /// An **empty** sample returns exactly [`LatencySummary::default()`]:
    /// `count == 0` and every statistic `0.0` (not NaN — a `0/0` mean
    /// would poison downstream comparisons and serialization). This is a
    /// contract: zero-completion simulations (empty traces, horizons that
    /// cut everything off, full-outage fault plans) lean on it, and it is
    /// pinned by `empty_sample_is_the_default_summary`.
    pub fn from_latencies(mut latencies: Vec<f64>) -> Self {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        latencies.sort_by(f64::total_cmp);
        let count = latencies.len();
        let mean_us = latencies.iter().sum::<f64>() / count as f64;
        LatencySummary {
            count,
            mean_us,
            p50_us: percentile(&latencies, 50.0),
            p95_us: percentile(&latencies, 95.0),
            p99_us: percentile(&latencies, 99.0),
            max_us: latencies[count - 1],
        }
    }
}

/// Where every arrived request ended up, by
/// [`RequestOutcome`](crate::request::RequestOutcome).
///
/// Produced by the simulator; the conservation law
/// `completed + shed + timed_out + in_flight_at_horizon == arrived` holds
/// at every grid point (enforced by
/// [`SimReport::is_conserved`](crate::sim::SimReport::is_conserved) and the
/// `sweep_availability` gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeCounts {
    /// Requests whose batch finished on a GPU.
    pub completed: usize,
    /// Requests rejected by admission control with no retries left.
    pub shed: usize,
    /// Requests whose deadline expired while still waiting.
    pub timed_out: usize,
    /// Requests queued, between retries, or on a GPU when the clock
    /// stopped.
    pub in_flight_at_horizon: usize,
}

impl OutcomeCounts {
    /// Total requests accounted for (should equal `arrived`).
    pub fn total(&self) -> usize {
        self.completed + self.shed + self.timed_out + self.in_flight_at_horizon
    }

    /// The conservation law itself: every request that arrived is
    /// accounted for exactly once. The single-node simulator, the sweep
    /// gates, and the cluster layer's fan-out/rejoin accounting all
    /// assert this form (the cluster additionally checks it at every
    /// sweep point including the horizon cut).
    pub fn is_conserved(&self, arrived: usize) -> bool {
        self.total() == arrived
    }
}

/// Waiting-queue depth over the simulated interval.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueueStats {
    /// Time-weighted mean number of waiting (not yet dispatched) requests.
    pub mean_depth: f64,
    /// Peak waiting-queue depth.
    pub max_depth: usize,
}

/// Accumulates the queue-depth integral as the event loop advances time.
#[derive(Debug, Clone, Default)]
pub(crate) struct QueueDepthTracker {
    integral: f64,
    last_time_us: f64,
    max_depth: usize,
}

impl QueueDepthTracker {
    /// Account `depth` having held from the previous event up to `now`.
    pub fn advance(&mut self, now_us: f64, depth: usize) {
        debug_assert!(
            now_us + 1e-9 >= self.last_time_us,
            "virtual time went backwards"
        );
        self.integral += depth as f64 * (now_us - self.last_time_us).max(0.0);
        self.last_time_us = now_us;
        self.max_depth = self.max_depth.max(depth);
    }

    /// Finish the accumulation: integrate out to `advance_to_us`, then
    /// normalize the mean over `[0, denom_us]`. The two differ when the
    /// event loop processed trailing no-op timers past the reported end
    /// of the run (the queue is empty over that stretch, so the integral
    /// is unaffected — only the denominator matters).
    pub fn finish(mut self, advance_to_us: f64, denom_us: f64, depth: usize) -> QueueStats {
        self.advance(advance_to_us, depth);
        QueueStats {
            mean_depth: if denom_us > 0.0 {
                self.integral / denom_us
            } else {
                0.0
            },
            max_depth: self.max_depth,
        }
    }
}

/// How full dispatched batches were.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchStats {
    /// Batches dispatched.
    pub batches: usize,
    /// Mean requests per dispatched batch.
    pub mean_occupancy: f64,
    /// `occupancy_histogram[s]` = batches dispatched with exactly `s`
    /// requests (index 0 unused; length `max_batch + 1`).
    pub occupancy_histogram: Vec<u64>,
}

impl BatchStats {
    /// An empty histogram for batches up to `max_batch`.
    pub(crate) fn new(max_batch: usize) -> Self {
        BatchStats {
            batches: 0,
            mean_occupancy: 0.0,
            occupancy_histogram: vec![0; max_batch + 1],
        }
    }

    /// Account one dispatched batch of `size` requests.
    pub(crate) fn record(&mut self, size: usize) {
        self.batches += 1;
        if size < self.occupancy_histogram.len() {
            self.occupancy_histogram[size] += 1;
        }
    }

    /// Compute the mean once dispatching is done.
    pub(crate) fn finalize(&mut self) {
        let total: u64 = self
            .occupancy_histogram
            .iter()
            .enumerate()
            .map(|(size, &n)| size as u64 * n)
            .sum();
        self.mean_occupancy = if self.batches > 0 {
            total as f64 / self.batches as f64
        } else {
            0.0
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_domain_endpoints() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.0), 1.0, "p0 is the minimum sample");
        assert_eq!(percentile(&v, 100.0), 100.0, "p100 is the maximum");
        // Fractional percentiles stay in range near the endpoints too.
        assert_eq!(percentile(&v, 0.5), 1.0);
        assert_eq!(percentile(&v, 99.5), 100.0);
    }

    #[test]
    fn percentile_single_element_sample() {
        for pct in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&[7.5], pct), 7.5, "pct {pct}");
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 100]")]
    fn percentile_rejects_above_100() {
        percentile(&[1.0, 2.0], 101.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 100]")]
    fn percentile_rejects_negative() {
        percentile(&[1.0, 2.0], -0.1);
    }

    #[test]
    #[should_panic(expected = "outside [0, 100]")]
    fn percentile_rejects_nan() {
        // Pre-fix, a NaN rank cast to 0 and was silently clamped to the
        // minimum sample — reporting a p-NaN "tail" equal to the best case.
        percentile(&[1.0, 2.0], f64::NAN);
    }

    #[test]
    fn latency_summary_orders_percentiles() {
        let lat: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).rev().collect();
        let s = LatencySummary::from_latencies(lat);
        assert_eq!(s.count, 1000);
        assert!(s.p50_us <= s.p95_us);
        assert!(s.p95_us <= s.p99_us);
        assert!(s.p99_us <= s.max_us);
        assert!(s.mean_us > 0.0);
    }

    /// Pins the documented empty-sample contract: all-zero, never NaN.
    #[test]
    fn empty_sample_is_the_default_summary() {
        let s = LatencySummary::from_latencies(Vec::new());
        assert_eq!(s, LatencySummary::default());
        assert_eq!(s.count, 0);
        for stat in [s.mean_us, s.p50_us, s.p95_us, s.p99_us, s.max_us] {
            assert_eq!(stat, 0.0, "empty summary must be all-zero, not NaN");
        }
    }

    #[test]
    fn outcome_counts_total() {
        let c = OutcomeCounts {
            completed: 5,
            shed: 2,
            timed_out: 1,
            in_flight_at_horizon: 3,
        };
        assert_eq!(c.total(), 11);
        assert_eq!(OutcomeCounts::default().total(), 0);
    }

    #[test]
    fn queue_tracker_time_weighting() {
        let mut t = QueueDepthTracker::default();
        t.advance(10.0, 0); // depth 0 over [0, 10)
        t.advance(20.0, 4); // depth 4 over [10, 20)
        let stats = t.finish(40.0, 40.0, 1); // depth 1 over [20, 40)
                                             // (0*10 + 4*10 + 1*20) / 40 = 1.5
        assert!((stats.mean_depth - 1.5).abs() < 1e-12);
        assert_eq!(stats.max_depth, 4);
    }

    /// Trailing no-op events integrate at depth 0 past the reported end:
    /// only the denominator is pinned to the run length.
    #[test]
    fn queue_tracker_trailing_no_op_region() {
        let mut t = QueueDepthTracker::default();
        t.advance(10.0, 2); // depth 2 over [0, 10)
        let stats = t.finish(50.0, 10.0, 0); // empty over the no-op tail
        assert!((stats.mean_depth - 2.0).abs() < 1e-12);
        assert_eq!(stats.max_depth, 2);
    }

    #[test]
    fn batch_stats_histogram() {
        let mut b = BatchStats::new(8);
        for size in [8, 8, 3, 1] {
            b.record(size);
        }
        b.finalize();
        assert_eq!(b.batches, 4);
        assert_eq!(b.occupancy_histogram[8], 2);
        assert_eq!(b.occupancy_histogram[1], 1);
        assert!((b.mean_occupancy - 5.0).abs() < 1e-12);
    }
}
