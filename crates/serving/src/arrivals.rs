//! Request-arrival processes for serving-level simulation.
//!
//! The figure harnesses in `tensordimm_bench::traffic` generate *memory*
//! traffic for single tensor operations; this module generates *request*
//! traffic — the arrival instants of individual inference queries hitting
//! a serving node. Two processes are provided, matching how
//! recommendation-serving studies (RecNMP, and the paper's own "many GPUs,
//! one node" argument) stress their systems:
//!
//! * [`ArrivalProcess::Poisson`] — memoryless open-loop traffic at a mean
//!   offered load, the standard datacenter baseline;
//! * [`ArrivalProcess::Bursty`] — compound-Poisson bursts: geometrically
//!   sized clumps of back-to-back requests separated by exponential gaps,
//!   with the same long-run mean rate, modeling flash-crowd traffic.
//!
//! Per-request *table popularity* is Zipf-skewed, reusing the
//! rejection-inversion sampler of [`tensordimm_embedding::IndexStream`]
//! (rank 0 = hottest row), so a serving trace carries both *when* requests
//! arrive and *which* rows they hit.
//!
//! All draws are deterministic per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// The Zipf row sampler lives in `tensordimm_embedding` (rejection
// inversion, O(1) memory for any table size) so the cycle-calibrated batch
// pricer in `tensordimm_system` can draw the identical streams without a
// dependency cycle; re-exported here for backwards compatibility.
pub use tensordimm_embedding::{hot_row_share, zipf_lookup_rows};

/// An open-loop request arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential inter-arrival times with mean
    /// `1 / rate_qps`.
    Poisson {
        /// Mean offered load, queries per second.
        rate_qps: f64,
    },
    /// Bursty arrivals: clumps whose size is geometric with mean
    /// `mean_burst`, arriving back-to-back, separated by exponential gaps
    /// sized so the long-run mean rate is still `rate_qps`.
    Bursty {
        /// Long-run mean offered load, queries per second.
        rate_qps: f64,
        /// Mean requests per burst (values `<= 1` degenerate to Poisson).
        mean_burst: f64,
    },
}

impl ArrivalProcess {
    /// The long-run mean offered load, queries per second.
    pub fn rate_qps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_qps } | ArrivalProcess::Bursty { rate_qps, .. } => {
                rate_qps
            }
        }
    }

    /// Draw `n` arrival instants in µs, sorted ascending starting near 0.
    ///
    /// `n == 0` yields an empty trace for either process. An empty trace
    /// is a valid simulator input: `simulate`
    /// reports zero arrivals, vacuous `1.0` availability and an all-zero
    /// latency summary (see the zero-request boundary tests here and in
    /// `sim.rs`).
    ///
    /// # Panics
    ///
    /// Panics if the configured rate is not strictly positive — the rate
    /// is validated before the count, so `n == 0` does not mask a bad
    /// configuration.
    pub fn sample_arrivals_us(&self, n: usize, seed: u64) -> Vec<f64> {
        let rate = self.rate_qps();
        assert!(rate > 0.0, "arrival rate must be positive, got {rate}");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n);
        let mut t = 0.0f64;
        match *self {
            ArrivalProcess::Poisson { rate_qps } => {
                let mean_gap_us = 1e6 / rate_qps;
                for _ in 0..n {
                    t += exponential(&mut rng, mean_gap_us);
                    out.push(t);
                }
            }
            ArrivalProcess::Bursty {
                rate_qps,
                mean_burst,
            } => {
                let mean_burst = mean_burst.max(1.0);
                // Bursts arrive as a Poisson process of rate `rate / burst`,
                // so requests still average `rate_qps` long-run.
                let mean_gap_us = mean_burst * 1e6 / rate_qps;
                while out.len() < n {
                    t += exponential(&mut rng, mean_gap_us);
                    let size = geometric(&mut rng, mean_burst).min((n - out.len()) as u64);
                    for _ in 0..size {
                        out.push(t);
                    }
                }
            }
        }
        out
    }
}

/// Exponential draw with the given mean (inverse-CDF method).
fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
    // gen::<f64>() is in [0, 1); flip so the log argument is in (0, 1].
    -mean * (1.0 - rng.gen::<f64>()).ln()
}

/// Geometric draw on {1, 2, ...} with the given mean.
fn geometric(rng: &mut StdRng, mean: f64) -> u64 {
    if mean <= 1.0 {
        return 1;
    }
    let p = 1.0 / mean;
    let u = 1.0 - rng.gen::<f64>();
    1 + (u.ln() / (1.0 - p).ln()).floor() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_rate_is_close() {
        let p = ArrivalProcess::Poisson {
            rate_qps: 100_000.0,
        };
        let a = p.sample_arrivals_us(20_000, 42);
        assert_eq!(a.len(), 20_000);
        assert!(
            a.windows(2).all(|w| w[0] <= w[1]),
            "arrivals must be sorted"
        );
        let span_s = (a.last().unwrap() - a[0]) * 1e-6;
        let measured = a.len() as f64 / span_s;
        assert!(
            (80_000.0..120_000.0).contains(&measured),
            "measured rate {measured:.0} qps"
        );
    }

    #[test]
    fn bursty_same_mean_rate_higher_clumping() {
        let rate = 50_000.0;
        let n = 20_000;
        let poisson = ArrivalProcess::Poisson { rate_qps: rate }.sample_arrivals_us(n, 7);
        let bursty = ArrivalProcess::Bursty {
            rate_qps: rate,
            mean_burst: 16.0,
        }
        .sample_arrivals_us(n, 7);
        let span = |a: &[f64]| (a[a.len() - 1] - a[0]) * 1e-6;
        let bursty_rate = n as f64 / span(&bursty);
        assert!(
            (0.7 * rate..1.4 * rate).contains(&bursty_rate),
            "bursty long-run rate {bursty_rate:.0}"
        );
        // Clumping: the bursty trace has far more zero-gap neighbours.
        let zero_gaps = |a: &[f64]| a.windows(2).filter(|w| w[1] - w[0] < 1e-9).count();
        assert!(
            zero_gaps(&bursty) > 10 * zero_gaps(&poisson).max(1),
            "bursty {} vs poisson {}",
            zero_gaps(&bursty),
            zero_gaps(&poisson)
        );
    }

    /// Pins the documented `n == 0` boundary: an empty trace from either
    /// process.
    #[test]
    fn zero_requests_yield_an_empty_trace() {
        let processes = [
            ArrivalProcess::Poisson { rate_qps: 10_000.0 },
            ArrivalProcess::Bursty {
                rate_qps: 10_000.0,
                mean_burst: 4.0,
            },
        ];
        for p in processes {
            assert!(p.sample_arrivals_us(0, 9).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_rejected_even_with_zero_requests() {
        ArrivalProcess::Poisson { rate_qps: 0.0 }.sample_arrivals_us(0, 1);
    }

    #[test]
    fn arrivals_deterministic_per_seed() {
        let p = ArrivalProcess::Bursty {
            rate_qps: 10_000.0,
            mean_burst: 4.0,
        };
        assert_eq!(p.sample_arrivals_us(1000, 3), p.sample_arrivals_us(1000, 3));
        assert_ne!(p.sample_arrivals_us(1000, 3), p.sample_arrivals_us(1000, 4));
    }

    #[test]
    fn zipf_rows_are_head_heavy() {
        let rows = 1_000_000u64;
        let hits = zipf_lookup_rows(20_000, rows, 0.9, 11);
        assert!(hits.iter().all(|&r| r < rows));
        let hot = hot_row_share(&hits, rows, 0.01);
        let uniform_hits = zipf_lookup_rows(20_000, rows, 0.0, 11);
        let uniform_hot = hot_row_share(&uniform_hits, rows, 0.01);
        assert!(
            hot > 5.0 * uniform_hot.max(0.005),
            "zipf hot share {hot:.3} vs uniform {uniform_hot:.3}"
        );
    }
}
