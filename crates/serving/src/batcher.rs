//! Dynamic batching: the queueing policy between request arrival and GPU
//! dispatch.
//!
//! Production recommender servers do not run one inference per query; they
//! coalesce concurrent queries into a batch so the embedding gather and the
//! MLP amortize their fixed costs. The policy modeled here is the standard
//! two-knob batcher (as in e.g. TensorFlow Serving and Triton): seal a
//! batch as soon as it reaches `max_batch` requests, or when the oldest
//! waiting request has waited `max_wait_us` — whichever comes first.

use std::collections::VecDeque;

use crate::sim::SimError;

/// The two-knob dynamic-batching policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Seal a batch once this many requests are waiting.
    pub max_batch: usize,
    /// Seal a (possibly partial) batch once the oldest waiting request has
    /// waited this long, µs. `0` dispatches every request immediately.
    pub max_wait_us: f64,
}

impl BatchPolicy {
    /// A policy that batches up to `max_batch` with a latency budget of
    /// `max_wait_us`.
    pub fn new(max_batch: usize, max_wait_us: f64) -> Self {
        BatchPolicy {
            max_batch,
            max_wait_us,
        }
    }

    /// Check the knobs are usable.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when `max_batch` is zero or
    /// `max_wait_us` is negative/non-finite.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.max_batch == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "max_batch",
            });
        }
        if !self.max_wait_us.is_finite() || self.max_wait_us < 0.0 {
            return Err(SimError::InvalidConfig {
                parameter: "max_wait_us",
            });
        }
        Ok(())
    }
}

/// A request sitting in the batcher's queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedRequest {
    /// Index into the arrival trace.
    pub id: usize,
    /// When it arrived, µs.
    pub arrival_us: f64,
}

/// FIFO wait queue plus the sealing policy.
///
/// The batcher itself is time-free: the simulator's event loop tells it the
/// current virtual time and asks whether a batch is ready. Tolerance for
/// floating-point timer jitter is built into [`DynamicBatcher::ready`].
#[derive(Debug, Clone)]
pub struct DynamicBatcher {
    policy: BatchPolicy,
    queue: VecDeque<QueuedRequest>,
}

/// Slack for comparing a timer event's firing time against the deadline it
/// was scheduled for (`arrival + max_wait` summed in a different order).
pub(crate) const TIMER_SLACK_US: f64 = 1e-6;

impl DynamicBatcher {
    /// An empty batcher under `policy`.
    pub fn new(policy: BatchPolicy) -> Self {
        DynamicBatcher {
            policy,
            queue: VecDeque::new(),
        }
    }

    /// The sealing policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Requests currently waiting.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Enqueue an arrival.
    pub fn push(&mut self, request: QueuedRequest) {
        self.queue.push_back(request);
    }

    /// When the oldest waiting request hits its wait budget (its flush
    /// deadline), µs. `None` when the queue is empty.
    pub fn next_deadline_us(&self) -> Option<f64> {
        self.queue
            .front()
            .map(|r| r.arrival_us + self.policy.max_wait_us)
    }

    /// Whether a batch should be sealed at virtual time `now`: either a
    /// full `max_batch` is waiting, or the front request's wait budget is
    /// exhausted.
    pub fn ready(&self, now_us: f64) -> bool {
        if self.queue.len() >= self.policy.max_batch {
            return true;
        }
        match self.next_deadline_us() {
            Some(deadline) => now_us + TIMER_SLACK_US >= deadline,
            None => false,
        }
    }

    /// Remove a still-queued request by id (deadline-expired shedding).
    /// Returns the removed entry, or `None` when `id` is not waiting.
    pub fn remove(&mut self, id: usize) -> Option<QueuedRequest> {
        let pos = self.queue.iter().position(|r| r.id == id)?;
        self.queue.remove(pos)
    }

    /// Seal and return the next batch if one is ready at `now`, oldest
    /// requests first, at most `max_batch` of them.
    pub fn take_ready_batch(&mut self, now_us: f64) -> Option<Vec<QueuedRequest>> {
        if !self.ready(now_us) {
            return None;
        }
        let size = self.queue.len().min(self.policy.max_batch);
        Some(self.queue.drain(..size).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: usize, arrival_us: f64) -> QueuedRequest {
        QueuedRequest { id, arrival_us }
    }

    #[test]
    fn seals_on_full_batch() {
        let mut b = DynamicBatcher::new(BatchPolicy::new(4, 1000.0));
        assert_eq!(b.policy(), BatchPolicy::new(4, 1000.0));
        for i in 0..3 {
            b.push(req(i, 10.0 * i as f64));
            assert!(!b.ready(30.0), "not full, not expired");
        }
        b.push(req(3, 30.0));
        assert!(b.ready(30.0), "full batch seals immediately");
        let batch = b.take_ready_batch(30.0).expect("ready");
        assert_eq!(
            batch.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(b.depth(), 0);
    }

    #[test]
    fn seals_on_wait_budget() {
        let mut b = DynamicBatcher::new(BatchPolicy::new(64, 200.0));
        b.push(req(0, 50.0));
        b.push(req(1, 120.0));
        assert!(!b.ready(240.0));
        assert_eq!(b.next_deadline_us(), Some(250.0));
        assert!(b.ready(250.0), "front request waited its budget");
        let batch = b.take_ready_batch(250.0).expect("ready");
        assert_eq!(batch.len(), 2, "partial batch sealed on timeout");
    }

    #[test]
    fn oversized_backlog_splits_into_max_batches() {
        let mut b = DynamicBatcher::new(BatchPolicy::new(4, 100.0));
        for i in 0..10 {
            b.push(req(i, 0.0));
        }
        assert_eq!(b.take_ready_batch(0.0).expect("full").len(), 4);
        assert_eq!(b.take_ready_batch(0.0).expect("full").len(), 4);
        // Two left: not full, but their wait budget expired long ago.
        assert_eq!(b.take_ready_batch(500.0).expect("expired").len(), 2);
        assert!(b.take_ready_batch(500.0).is_none());
    }

    #[test]
    fn zero_wait_dispatches_immediately() {
        let mut b = DynamicBatcher::new(BatchPolicy::new(8, 0.0));
        b.push(req(0, 42.0));
        assert!(b.ready(42.0));
        assert_eq!(b.take_ready_batch(42.0).expect("ready").len(), 1);
    }

    #[test]
    fn remove_drops_only_the_named_request() {
        let mut b = DynamicBatcher::new(BatchPolicy::new(4, 100.0));
        for i in 0..3 {
            b.push(req(i, 10.0 * i as f64));
        }
        assert_eq!(b.remove(1), Some(req(1, 10.0)));
        assert_eq!(b.remove(1), None, "already gone");
        assert_eq!(b.remove(99), None, "never queued");
        assert_eq!(b.depth(), 2);
        // Removing the front request advances the flush deadline.
        assert_eq!(b.next_deadline_us(), Some(100.0));
        assert_eq!(b.remove(0), Some(req(0, 0.0)));
        assert_eq!(b.next_deadline_us(), Some(120.0));
    }

    #[test]
    fn policy_validation() {
        assert!(BatchPolicy::new(0, 10.0).validate().is_err());
        assert!(BatchPolicy::new(1, -1.0).validate().is_err());
        assert!(BatchPolicy::new(1, f64::NAN).validate().is_err());
        assert!(BatchPolicy::new(32, 500.0).validate().is_ok());
    }
}
