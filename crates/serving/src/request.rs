//! Requests and request traces.
//!
//! A *request* is one user query: a single inference sample whose
//! embedding lookups hit Zipf-skewed rows. A [`RequestTrace`] is the
//! open-loop input to the simulator — arrival instants drawn from an
//! [`ArrivalProcess`] plus a summary of the lookup locality the trace
//! carries.

use tensordimm_models::Workload;

use crate::arrivals::{hot_row_share, zipf_lookup_rows, ArrivalProcess};

/// What happened to a dispatched request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletionRecord {
    /// When its batch left the queue for a GPU, µs.
    pub dispatch_us: f64,
    /// When its batch finished, µs.
    pub finish_us: f64,
    /// How many requests shared its batch.
    pub batch_size: usize,
    /// Which GPU served it.
    pub gpu: usize,
}

/// How a request that arrived inside the simulated window ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestOutcome {
    /// Its batch finished on a GPU (possibly after its deadline — SLO
    /// accounting judges lateness separately, see
    /// [`SimReport::availability_at`](crate::sim::SimReport::availability_at)).
    Completed,
    /// Rejected by admission control with its retry budget exhausted.
    Shed,
    /// Its deadline passed while it was still waiting (in the batcher's
    /// queue or between backoff retries).
    TimedOut,
    /// Still queued, awaiting a retry, or on a GPU when the clock stopped.
    InFlightAtHorizon,
}

/// Per-request outcome of a simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// When the request arrived, µs.
    pub arrival_us: f64,
    /// Set once the request's batch completes; `None` when it was shed,
    /// timed out, or the simulation horizon cut it off.
    pub completion: Option<CompletionRecord>,
    /// What became of the request; `None` when its arrival fell outside
    /// the simulated window.
    pub outcome: Option<RequestOutcome>,
    /// Backoff re-admissions this request went through.
    pub retries: u32,
}

impl RequestRecord {
    /// A fresh record for a request arriving at `arrival_us` whose fate is
    /// not yet known.
    pub fn pending(arrival_us: f64) -> Self {
        RequestRecord {
            arrival_us,
            completion: None,
            outcome: None,
            retries: 0,
        }
    }

    /// End-to-end latency (arrival to completion), µs.
    pub fn latency_us(&self) -> Option<f64> {
        self.completion.map(|c| c.finish_us - self.arrival_us)
    }

    /// Time spent waiting in the batcher's queue, µs.
    pub fn queue_wait_us(&self) -> Option<f64> {
        self.completion.map(|c| c.dispatch_us - self.arrival_us)
    }

    /// Whether the request completed within `sla_us` of its arrival.
    pub fn completed_within(&self, sla_us: f64) -> bool {
        self.outcome == Some(RequestOutcome::Completed)
            && self.latency_us().is_some_and(|l| l <= sla_us)
    }
}

/// How many lookups to sample when estimating a trace's row locality.
const LOCALITY_SAMPLE_LOOKUPS: usize = 100_000;

/// An open-loop serving trace: when requests arrive and how skewed their
/// table lookups are.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// Sorted arrival instants, µs.
    pub arrivals_us: Vec<f64>,
    /// The process that generated the arrivals.
    pub process: ArrivalProcess,
    /// Zipf exponent of the per-request row popularity.
    pub zipf_s: f64,
    /// Measured share of this trace's lookups hitting the hottest 1% of
    /// table rows (sampled; 0.01 would be the uniform baseline).
    pub hot_lookup_share: f64,
}

impl RequestTrace {
    /// Generate `n` requests of `workload` under `process`, with lookup
    /// rows drawn Zipf(`zipf_s`) over the workload's tables. Deterministic
    /// per seed.
    pub fn generate(
        workload: &Workload,
        process: ArrivalProcess,
        n: usize,
        zipf_s: f64,
        seed: u64,
    ) -> Self {
        let arrivals_us = process.sample_arrivals_us(n, seed);
        // Locality summary: sample the rows the first requests would touch.
        let lookups = (n * workload.lookups_per_sample() as usize).min(LOCALITY_SAMPLE_LOOKUPS);
        let rows = zipf_lookup_rows(lookups, workload.rows_per_table, zipf_s, seed ^ 0x5e71);
        RequestTrace {
            arrivals_us,
            process,
            zipf_s,
            hot_lookup_share: hot_row_share(&rows, workload.rows_per_table, 0.01),
        }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.arrivals_us.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals_us.is_empty()
    }

    /// The realized offered load: requests over the arrival span, queries
    /// per second (`0` for traces with fewer than two requests).
    pub fn offered_qps(&self) -> f64 {
        if self.arrivals_us.len() < 2 {
            return 0.0;
        }
        let span_s = (self.arrivals_us[self.arrivals_us.len() - 1] - self.arrivals_us[0]) * 1e-6;
        if span_s > 0.0 {
            self.arrivals_us.len() as f64 / span_s
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_trace_is_sorted_and_skewed() {
        let w = Workload::facebook();
        let t = RequestTrace::generate(
            &w,
            ArrivalProcess::Poisson { rate_qps: 50_000.0 },
            500,
            0.9,
            17,
        );
        assert_eq!(t.len(), 500);
        assert!(t.arrivals_us.windows(2).all(|w| w[0] <= w[1]));
        // Zipf 0.9 concentrates far more than the 1% uniform baseline.
        assert!(
            t.hot_lookup_share > 0.05,
            "hot share {}",
            t.hot_lookup_share
        );
        let realized = t.offered_qps();
        assert!(
            (25_000.0..100_000.0).contains(&realized),
            "realized {realized:.0} qps"
        );
    }

    #[test]
    fn trace_deterministic_per_seed() {
        let w = Workload::youtube();
        let p = ArrivalProcess::Bursty {
            rate_qps: 20_000.0,
            mean_burst: 8.0,
        };
        assert_eq!(
            RequestTrace::generate(&w, p, 300, 0.9, 5),
            RequestTrace::generate(&w, p, 300, 0.9, 5)
        );
        assert_ne!(
            RequestTrace::generate(&w, p, 300, 0.9, 5).arrivals_us,
            RequestTrace::generate(&w, p, 300, 0.9, 6).arrivals_us
        );
    }

    #[test]
    fn record_accessors() {
        let r = RequestRecord {
            completion: Some(CompletionRecord {
                dispatch_us: 25.0,
                finish_us: 100.0,
                batch_size: 4,
                gpu: 2,
            }),
            outcome: Some(RequestOutcome::Completed),
            ..RequestRecord::pending(10.0)
        };
        assert_eq!(r.latency_us(), Some(90.0));
        assert_eq!(r.queue_wait_us(), Some(15.0));
        assert!(r.completed_within(90.0));
        assert!(!r.completed_within(89.9));
        let unfinished = RequestRecord::pending(10.0);
        assert_eq!(unfinished.latency_us(), None);
        assert_eq!(unfinished.outcome, None);
        assert!(!unfinished.completed_within(f64::INFINITY));
        // A shed request never counts toward availability even with an
        // infinite SLA.
        let shed = RequestRecord {
            outcome: Some(RequestOutcome::Shed),
            ..RequestRecord::pending(10.0)
        };
        assert!(!shed.completed_within(f64::INFINITY));
    }
}
