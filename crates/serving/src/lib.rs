//! Request-level serving simulation for the TensorDIMM reproduction.
//!
//! The analytic system model (`tensordimm_system`) prices *one* inference
//! at a fixed batch size; real recommendation serving — the regime RecNMP
//! (Ke et al.) and Cho et al. evaluate, and this repo's north star —
//! receives *individual requests* at unpredictable instants and must batch
//! them on the fly. This crate turns the analytic model into a
//! traffic-driven discrete-event simulator:
//!
//! * **arrivals** — open-loop Poisson or bursty traces with Zipf-skewed
//!   table popularity ([`ArrivalProcess`], [`RequestTrace`], re-using the
//!   rejection-inversion Zipf sampler of `tensordimm_embedding`),
//! * **dynamic batching** — the two-knob policy (`max_batch`,
//!   `max_wait_us`) of production serving stacks ([`BatchPolicy`],
//!   [`DynamicBatcher`]),
//! * **multi-GPU dispatch** — sealed batches go to the first free GPU and
//!   are priced through a pluggable [`tensordimm_system::BatchPricer`]
//!   backend (analytic closed form, or cycle-calibrated replay on the
//!   event-driven DRAM/NMP co-simulator), so node-backed designs pay
//!   shared-TensorNode contention that grows with the number of batches
//!   in flight,
//! * **metrics** — p50/p95/p99 latency, throughput, time-weighted queue
//!   depth and batch-occupancy histograms ([`SimReport`]),
//! * **sweeps** — offered-load curves and sustainable-QPS-at-SLA search
//!   ([`offered_load_sweep`], [`sustainable_qps`]), with the independent
//!   load points optionally fanned across a deterministic worker pool
//!   ([`offered_load_sweep_par`] — bit-identical to the sequential path
//!   at any worker count),
//! * **faults and degraded-mode serving** — a seeded
//!   [`FaultPlan`] (`tensordimm_faults`) injects DIMM rank losses, node
//!   outages, gray ranks and transient row faults into the event loop;
//!   [`RetryPolicy`] (deadlines, capped-backoff re-admission, hedged
//!   re-dispatch) and [`AdmissionPolicy`] (bounded queue, deadline-aware
//!   shedding) govern the response, and every request is accounted to a
//!   typed [`RequestOutcome`] with goodput / shed-rate / availability in
//!   the report. Inert plans and policies are bit-identical to fault-free
//!   runs.
//!
//! The headline experiment (`examples/serving_sim.rs`,
//! `sweep_qps_sla` in `tensordimm_bench`): at request granularity, TDIMM's
//! near-memory reduction lets the same node + GPUs meet a p99 SLA at
//! several times the offered load PMEM can sustain — the paper's Fig. 6c
//! argument, re-derived from queueing behavior instead of steady-state
//! rounds.
//!
//! Everything is deterministic per seed; there is no wall-clock time
//! anywhere in the loop.

pub mod arrivals;
pub mod batcher;
pub mod metrics;
pub mod policy;
pub mod request;
pub mod sim;
pub mod sweep;

pub use arrivals::{hot_row_share, zipf_lookup_rows, ArrivalProcess};
pub use batcher::{BatchPolicy, DynamicBatcher, QueuedRequest};
pub use metrics::{percentile, BatchStats, LatencySummary, OutcomeCounts, QueueStats};
pub use policy::{AdmissionPolicy, RetryPolicy};
pub use request::{CompletionRecord, RequestOutcome, RequestRecord, RequestTrace};
pub use sim::{simulate, simulate_with_pricer, SimConfig, SimError, SimReport};
pub use sweep::{
    offered_load_sweep, offered_load_sweep_par, sustainable_qps, sweep_arrivals_us, LoadPoint,
};
pub use tensordimm_faults::{FaultPlan, FaultSchedule, GrayRank, NodeOutage, RowFaults};
pub use tensordimm_system::{TopologyKind, TransferBackend};
