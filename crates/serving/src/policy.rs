//! Degraded-mode serving policies: retry, hedging and admission control.
//!
//! Under fault injection ([`tensordimm_faults::FaultPlan`]) the simulator
//! can time out, shed, re-admit and hedge requests instead of letting every
//! arrival queue forever. Two knobs govern that behavior:
//!
//! * [`RetryPolicy`] — a per-request deadline, capped exponential backoff
//!   with deterministic jitter for re-admission after a queue-full
//!   rejection, and optional hedged re-dispatch of a slow in-flight batch
//!   to a second GPU,
//! * [`AdmissionPolicy`] — a bound on the batcher's queue depth plus
//!   deadline-aware shedding at admission time.
//!
//! Both default to *inert* settings ([`RetryPolicy::none`],
//! [`AdmissionPolicy::unbounded`]) under which the simulator is
//! bit-identical to a run without them — the same contract the empty
//! [`tensordimm_faults::FaultSchedule`] honors.
//!
//! Jitter is deterministic: [`RetryPolicy::backoff_us`] is a pure function
//! of `(jitter_seed, request id, attempt)`, so replays — sequential or
//! fanned across a worker pool — are bit-identical.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sim::SimError;

/// Golden-ratio multiplier for mixing request ids into the jitter stream.
const JITTER_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// Exponent cap before the backoff doubling saturates (the µs values
/// saturate at `backoff_cap_us` far earlier for any sane configuration).
const MAX_BACKOFF_DOUBLINGS: u32 = 62;

/// Per-request deadline, retry-with-backoff and hedging policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// End-to-end deadline per request, µs from its *original* arrival.
    /// A queued request whose deadline passes is removed and counted
    /// [`TimedOut`](crate::request::RequestOutcome::TimedOut); an in-flight
    /// request is left to finish (lateness is judged by availability, not
    /// by killing work on a GPU). `f64::INFINITY` disables deadlines.
    pub deadline_us: f64,
    /// Re-admission attempts after a queue-full rejection before the
    /// request is shed for good. `0` sheds on the first rejection.
    pub max_retries: u32,
    /// First backoff delay, µs; attempt `k` waits `base · 2^k` before
    /// re-admission, capped at [`backoff_cap_us`](Self::backoff_cap_us).
    pub backoff_base_us: f64,
    /// Hard ceiling on any backoff delay, µs — jitter included; see
    /// [`RetryPolicy::backoff_us`].
    pub backoff_cap_us: f64,
    /// Jitter amplitude: the pre-cap delay is scaled by a deterministic
    /// `1 + jitter_frac · u` with `u ∈ [0, 1)`. `0` disables jitter.
    pub jitter_frac: f64,
    /// Seed for the jitter stream (mixed with request id and attempt).
    pub jitter_seed: u64,
    /// Hedge a batch still in flight after this long, µs: re-dispatch a
    /// duplicate copy to a free GPU; whichever copy finishes first
    /// completes the requests (counted once). `f64::INFINITY` disables
    /// hedging.
    pub hedge_after_us: f64,
}

impl RetryPolicy {
    /// The inert policy: no deadline, no retries, no hedging. Simulation
    /// under it is bit-identical to one without a retry policy at all.
    pub fn none() -> Self {
        RetryPolicy {
            deadline_us: f64::INFINITY,
            max_retries: 0,
            backoff_base_us: 100.0,
            backoff_cap_us: 10_000.0,
            jitter_frac: 0.5,
            jitter_seed: 0,
            hedge_after_us: f64::INFINITY,
        }
    }

    /// Set the per-request deadline, µs.
    pub fn with_deadline(mut self, deadline_us: f64) -> Self {
        self.deadline_us = deadline_us;
        self
    }

    /// Allow up to `max_retries` re-admissions with exponential backoff
    /// starting at `base_us` and capped at `cap_us`.
    pub fn with_retries(mut self, max_retries: u32, base_us: f64, cap_us: f64) -> Self {
        self.max_retries = max_retries;
        self.backoff_base_us = base_us;
        self.backoff_cap_us = cap_us;
        self
    }

    /// Hedge in-flight batches after `hedge_after_us` µs.
    pub fn with_hedging(mut self, hedge_after_us: f64) -> Self {
        self.hedge_after_us = hedge_after_us;
        self
    }

    /// Whether a per-request deadline is in force.
    pub fn deadline_enabled(&self) -> bool {
        self.deadline_us.is_finite()
    }

    /// Whether hedged re-dispatch is in force.
    pub fn hedging_enabled(&self) -> bool {
        self.hedge_after_us.is_finite()
    }

    /// Whether the policy can change a simulation at all.
    pub fn is_inert(&self) -> bool {
        !self.deadline_enabled() && !self.hedging_enabled() && self.max_retries == 0
    }

    /// The backoff delay before re-admission attempt `attempt` (0-based)
    /// of request `id`, µs.
    ///
    /// Deterministic: a pure function of `(jitter_seed, id, attempt)`.
    /// Never exceeds [`backoff_cap_us`](Self::backoff_cap_us) — the cap is
    /// applied *after* jitter (pinned by a property test).
    pub fn backoff_us(&self, id: usize, attempt: u32) -> f64 {
        let doubled = self.backoff_base_us * 2f64.powi(attempt.min(MAX_BACKOFF_DOUBLINGS) as i32);
        let mut rng = StdRng::seed_from_u64(
            self.jitter_seed
                ^ (id as u64)
                    .wrapping_mul(JITTER_MIX)
                    .wrapping_add(attempt as u64),
        );
        let jitter = 1.0 + self.jitter_frac * rng.gen::<f64>();
        (doubled.min(self.backoff_cap_us) * jitter).min(self.backoff_cap_us)
    }

    /// Check the knobs are usable.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.deadline_us.is_nan() || self.deadline_us <= 0.0 {
            return Err(SimError::InvalidConfig {
                parameter: "deadline_us",
            });
        }
        if !self.backoff_base_us.is_finite() || self.backoff_base_us <= 0.0 {
            return Err(SimError::InvalidConfig {
                parameter: "backoff_base_us",
            });
        }
        if !self.backoff_cap_us.is_finite() || self.backoff_cap_us < self.backoff_base_us {
            return Err(SimError::InvalidConfig {
                parameter: "backoff_cap_us",
            });
        }
        if !self.jitter_frac.is_finite() || !(0.0..=1.0).contains(&self.jitter_frac) {
            return Err(SimError::InvalidConfig {
                parameter: "jitter_frac",
            });
        }
        if self.hedge_after_us.is_nan() || self.hedge_after_us <= 0.0 {
            return Err(SimError::InvalidConfig {
                parameter: "hedge_after_us",
            });
        }
        Ok(())
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Bounded-queue admission control.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// Reject an arrival (or re-admission) once this many requests are
    /// already waiting in the batcher. `usize::MAX` never rejects.
    pub max_queue_depth: usize,
    /// Shed a request at admission time when its deadline has already
    /// passed (needs a finite [`RetryPolicy::deadline_us`] to matter).
    pub shed_expired: bool,
}

impl AdmissionPolicy {
    /// The inert policy: everything is admitted. Simulation under it is
    /// bit-identical to one without admission control at all.
    pub fn unbounded() -> Self {
        AdmissionPolicy {
            max_queue_depth: usize::MAX,
            shed_expired: false,
        }
    }

    /// Bound the waiting queue at `max_queue_depth` and shed requests
    /// whose deadline already passed at admission.
    pub fn bounded(max_queue_depth: usize) -> Self {
        AdmissionPolicy {
            max_queue_depth,
            shed_expired: true,
        }
    }

    /// Whether the policy can change a simulation at all.
    pub fn is_inert(&self) -> bool {
        self.max_queue_depth == usize::MAX && !self.shed_expired
    }

    /// Check the knobs are usable.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the depth bound is zero
    /// (nothing could ever be admitted).
    pub fn validate(&self) -> Result<(), SimError> {
        if self.max_queue_depth == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "max_queue_depth",
            });
        }
        Ok(())
    }
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_policies_self_identify() {
        assert!(RetryPolicy::none().is_inert());
        assert!(AdmissionPolicy::unbounded().is_inert());
        assert!(!RetryPolicy::none().with_deadline(1e4).is_inert());
        assert!(!RetryPolicy::none().with_hedging(500.0).is_inert());
        assert!(!RetryPolicy::none().with_retries(3, 50.0, 1e3).is_inert());
        assert!(!AdmissionPolicy::bounded(64).is_inert());
    }

    #[test]
    fn backoff_grows_then_saturates_at_cap() {
        let p = RetryPolicy::none().with_retries(40, 100.0, 5_000.0);
        let d0 = p.backoff_us(7, 0);
        let d3 = p.backoff_us(7, 3);
        assert!(d0 >= 100.0, "jitter only inflates: {d0}");
        assert!(d3 > d0, "doubling dominates jitter over 3 attempts");
        for attempt in 0..80 {
            for id in [0usize, 1, 99, 10_000] {
                let d = p.backoff_us(id, attempt);
                assert!(d > 0.0 && d <= 5_000.0, "id {id} attempt {attempt}: {d}");
            }
        }
        // Deep attempts pin to the cap exactly (jitter then re-capped).
        assert_eq!(p.backoff_us(3, 62), 5_000.0);
        assert_eq!(p.backoff_us(3, 63), 5_000.0, "exponent saturates");
    }

    #[test]
    fn backoff_is_a_pure_function_of_seed_id_attempt() {
        let p = RetryPolicy::none().with_retries(5, 100.0, 1e6);
        assert_eq!(p.backoff_us(11, 2), p.backoff_us(11, 2));
        assert_ne!(p.backoff_us(11, 2), p.backoff_us(12, 2), "ids decorrelate");
        let mut q = p;
        q.jitter_seed = 1;
        assert_ne!(p.backoff_us(11, 2), q.backoff_us(11, 2), "seed matters");
        let mut no_jitter = p;
        no_jitter.jitter_frac = 0.0;
        assert_eq!(no_jitter.backoff_us(11, 2), 400.0, "2^2 · 100 µs exactly");
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        let bad = [
            RetryPolicy {
                deadline_us: 0.0,
                ..RetryPolicy::none()
            },
            RetryPolicy {
                deadline_us: f64::NAN,
                ..RetryPolicy::none()
            },
            RetryPolicy {
                backoff_base_us: 0.0,
                ..RetryPolicy::none()
            },
            RetryPolicy {
                backoff_cap_us: 1.0,
                ..RetryPolicy::none()
            },
            RetryPolicy {
                jitter_frac: -0.1,
                ..RetryPolicy::none()
            },
            RetryPolicy {
                jitter_frac: f64::INFINITY,
                ..RetryPolicy::none()
            },
            RetryPolicy {
                hedge_after_us: -5.0,
                ..RetryPolicy::none()
            },
        ];
        for p in bad {
            assert!(p.validate().is_err(), "{p:?}");
        }
        assert!(RetryPolicy::none().validate().is_ok());
        assert!(RetryPolicy::none()
            .with_deadline(2e4)
            .with_retries(4, 50.0, 2_000.0)
            .with_hedging(800.0)
            .validate()
            .is_ok());

        assert!(AdmissionPolicy {
            max_queue_depth: 0,
            shed_expired: false
        }
        .validate()
        .is_err());
        assert!(AdmissionPolicy::bounded(1).validate().is_ok());
        assert!(AdmissionPolicy::unbounded().validate().is_ok());
    }
}
