//! The discrete-event, virtual-time serving simulator.
//!
//! An open-loop arrival trace feeds a [`DynamicBatcher`]; sealed batches
//! dispatch to the first free GPU and are priced through a pluggable
//! [`BatchPricer`] backend ([`PricingBackend::Analytic`] — the closed-form
//! model — or [`PricingBackend::CycleCalibrated`] — node lookups replayed
//! on the event-driven DRAM/NMP co-simulator): node-backed designs
//! (`PMEM`, `TDIMM`) pay shared-TensorNode contention scaled by how many
//! GPUs are concurrently in flight, other designs pay their solo latency.
//! The loop advances virtual time event by event — arrivals, batch-window
//! flushes, GPU completions, fault transitions, retry timers — and
//! produces request-level tail-latency, throughput, queue-depth,
//! batch-occupancy and availability metrics.
//!
//! # Faults and degraded-mode serving
//!
//! A [`FaultPlan`] on the [`SimConfig`] expands (deterministically, per
//! seed) into timed state transitions: DIMM rank losses shrink the node's
//! gather bandwidth (priced through
//! [`BatchPricer::price_degraded`]), node outages hold dispatch entirely
//! (in-flight batches still finish), gray ranks inflate every node-backed
//! batch by a latency multiplier, and transient row faults charge bounded
//! re-read traffic to the next dispatched batch. A [`RetryPolicy`] adds
//! per-request deadlines, capped-exponential backoff re-admission after
//! queue-full rejections, and hedged re-dispatch of slow batches; an
//! [`AdmissionPolicy`] bounds the waiting queue. All three default to
//! inert values under which the simulation is **bit-identical** to a run
//! without them (pinned by regression tests and the `sweep_availability`
//! CI gate).
//!
//! # Event ordering
//!
//! Events are processed in ascending virtual time. Events at the *same*
//! instant are ordered by kind, then by creation order:
//!
//! 1. **GPU completions** — finished batches release their GPU before any
//!    same-instant work is admitted,
//! 2. **fault transitions** — a batch finishing exactly when a fault
//!    strikes completes healthy, while an arrival at that instant sees the
//!    degraded node,
//! 3. **arrivals** — in trace order, so a request arriving exactly when a
//!    GPU frees can dispatch at that instant,
//! 4. **retry fires** — deadline checks, backoff re-admissions and hedge
//!    timers observe every same-instant arrival; a deadline coinciding
//!    with a flush wins (the expired request is removed before sealing),
//! 5. **batch-window flushes** — the timer observes every same-instant
//!    arrival (a request arriving exactly at a window expiry joins the
//!    flushed batch rather than starting a new one).
//!
//! This ordering is part of the simulator's contract: it never depends on
//! heap internals, so [`simulate`] is bit-identical for identical inputs
//! even with colliding timestamps (see the regression tests).
//!
//! Everything is deterministic: same model, configuration, fault plan,
//! policies, pricing backend and arrival trace ⇒ bit-identical
//! [`SimReport`]. The loop still *processes* timer events that trail the
//! last request-state change (deadline fires for already-completed
//! requests, batch-window flushes of already-dispatched requests, fault
//! repairs after the last completion), but they do not move
//! [`SimReport::end_us`]: the reported end of the run — and the
//! denominator of `throughput_qps` / `goodput_qps` — is the last instant
//! a request actually changed state (arrived, completed, shed or timed
//! out) or a dispatched batch copy finished, or the horizon when one
//! cuts the run.
//!
//! # Example
//!
//! ```
//! use tensordimm_serving::{simulate, ArrivalProcess, BatchPolicy, SimConfig};
//! use tensordimm_system::{DesignPoint, SystemModel};
//! use tensordimm_models::Workload;
//!
//! let model = SystemModel::paper_defaults();
//! let workload = Workload::youtube();
//! let arrivals = ArrivalProcess::Poisson { rate_qps: 50_000.0 }.sample_arrivals_us(400, 7);
//! let cfg = SimConfig::new(DesignPoint::Tdimm, 4, BatchPolicy::new(32, 500.0));
//! let report = simulate(&model, &workload, &cfg, &arrivals)?;
//! assert_eq!(report.completed, 400);
//! assert!(report.latency.p99_us >= report.latency.p50_us);
//! # Ok::<(), tensordimm_serving::SimError>(())
//! ```

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::error::Error;
use std::fmt;

use tensordimm_faults::{FaultError, FaultPlan, FaultState, Transition};
use tensordimm_interconnect::InterconnectError;
use tensordimm_models::Workload;
use tensordimm_system::{
    BatchPricer, DegradedNode, DesignPoint, HotRowCacheConfig, PricingBackend, SystemModel,
    TransferBackend,
};

use crate::batcher::{BatchPolicy, DynamicBatcher, QueuedRequest, TIMER_SLACK_US};
use crate::metrics::{BatchStats, LatencySummary, OutcomeCounts, QueueDepthTracker, QueueStats};
use crate::policy::{AdmissionPolicy, RetryPolicy};
use crate::request::{CompletionRecord, RequestOutcome, RequestRecord};

/// Errors from the serving simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration knob is unusable.
    InvalidConfig {
        /// Which knob.
        parameter: &'static str,
    },
    /// The arrival trace is not sorted ascending (or holds a non-finite or
    /// negative instant) at this index.
    BadArrival {
        /// Index of the offending arrival.
        index: usize,
    },
    /// Batch pricing through the system model failed.
    Pricing(InterconnectError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { parameter } => {
                write!(f, "simulator parameter {parameter} is unusable")
            }
            SimError::BadArrival { index } => {
                write!(
                    f,
                    "arrival trace is unsorted or non-finite at index {index}"
                )
            }
            SimError::Pricing(e) => write!(f, "batch pricing failed: {e}"),
        }
    }
}

impl Error for SimError {}

impl From<InterconnectError> for SimError {
    fn from(e: InterconnectError) -> Self {
        SimError::Pricing(e)
    }
}

impl From<FaultError> for SimError {
    fn from(e: FaultError) -> Self {
        match e {
            FaultError::InvalidPlan { parameter } => SimError::InvalidConfig { parameter },
            _ => SimError::InvalidConfig {
                parameter: "faults",
            },
        }
    }
}

/// Simulator configuration: the design point under test, its serving
/// resources, and (optionally) the faults and degraded-mode policies the
/// run is subjected to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Which design point serves the traffic.
    pub design: DesignPoint,
    /// GPUs pulling batches (sharing one TensorNode for node designs).
    pub gpus: usize,
    /// The dynamic-batching policy.
    pub policy: BatchPolicy,
    /// Which batch-pricing backend services are costed with (ignored by
    /// [`simulate_with_pricer`], which takes the pricer directly).
    pub pricing: PricingBackend,
    /// Hot-row cache tier in front of the cycle backend's gather replays
    /// (disabled by default; the analytic backend ignores it — see
    /// [`PricingBackend::build_with_hot_rows`]).
    pub hot_rows: HotRowCacheConfig,
    /// Optional cutoff, µs: events after this virtual time are not
    /// processed, leaving requests queued / in flight for conservation
    /// accounting. `None` runs until every request completes.
    pub horizon_us: Option<f64>,
    /// Override the model's contended-transfer engine for this run
    /// (`None` inherits whatever the [`SystemModel`] is configured with,
    /// so a fabric-configured model is not silently reverted). Ignored by
    /// [`simulate_with_pricer`], whose caller owns the pricer.
    pub transfer: Option<TransferBackend>,
    /// Deterministic fault injection: expanded over the horizon (or the
    /// last arrival when there is none) into timed state transitions.
    /// [`FaultPlan::none`] — the default — injects nothing and is
    /// bit-identical to a fault-free run.
    pub faults: FaultPlan,
    /// Deadline / backoff-retry / hedging policy
    /// ([`RetryPolicy::none`] by default).
    pub retry: RetryPolicy,
    /// Queue-depth admission control
    /// ([`AdmissionPolicy::unbounded`] by default).
    pub admission: AdmissionPolicy,
}

impl SimConfig {
    /// A configuration that runs to completion (no horizon) with the
    /// analytic pricing backend, no faults, and inert serving policies.
    pub fn new(design: DesignPoint, gpus: usize, policy: BatchPolicy) -> Self {
        SimConfig {
            design,
            gpus,
            policy,
            pricing: PricingBackend::Analytic,
            hot_rows: HotRowCacheConfig::disabled(),
            horizon_us: None,
            transfer: None,
            faults: FaultPlan::none(),
            retry: RetryPolicy::none(),
            admission: AdmissionPolicy::unbounded(),
        }
    }

    /// Stop the virtual clock at `horizon_us`.
    pub fn with_horizon(mut self, horizon_us: f64) -> Self {
        self.horizon_us = Some(horizon_us);
        self
    }

    /// Select the batch-pricing backend.
    pub fn with_pricing(mut self, pricing: PricingBackend) -> Self {
        self.pricing = pricing;
        self
    }

    /// Put a hot-row cache in front of the cycle backend's gather
    /// replays (no effect under the analytic backend).
    pub fn with_hot_rows(mut self, hot_rows: HotRowCacheConfig) -> Self {
        self.hot_rows = hot_rows;
        self
    }

    /// Price contended node → GPU transfers with this engine (analytic
    /// crossbar or measured fabric) instead of the model's configured one.
    pub fn with_transfer(mut self, transfer: TransferBackend) -> Self {
        self.transfer = Some(transfer);
        self
    }

    /// Subject the run to this fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Serve with this retry/deadline/hedging policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Gate arrivals through this admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.gpus == 0 {
            return Err(SimError::InvalidConfig { parameter: "gpus" });
        }
        self.policy.validate()?;
        if let Some(h) = self.horizon_us {
            if !h.is_finite() || h < 0.0 {
                return Err(SimError::InvalidConfig {
                    parameter: "horizon_us",
                });
            }
        }
        self.faults.validate()?;
        self.retry.validate()?;
        self.admission.validate()?;
        Ok(())
    }
}

/// Outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// The design point simulated.
    pub design: DesignPoint,
    /// GPUs configured.
    pub gpus: usize,
    /// The batching policy used.
    pub policy: BatchPolicy,
    /// Requests in the input trace.
    pub offered: usize,
    /// Requests whose arrival fell inside the simulated window.
    pub arrived: usize,
    /// Requests that completed.
    pub completed: usize,
    /// Requests on a GPU when the clock stopped.
    pub in_flight: usize,
    /// Requests still waiting in the batcher when the clock stopped.
    pub queued: usize,
    /// Requests waiting out a backoff delay when the clock stopped.
    pub retry_pending: usize,
    /// End of the run, µs: the last instant a request changed state
    /// (arrived, completed, shed or timed out) or a dispatched batch
    /// copy finished — trailing no-op timers and fault repairs don't
    /// count — or the horizon when one is set and hit.
    pub end_us: f64,
    /// Completed requests per second of virtual time.
    pub throughput_qps: f64,
    /// Requests completed *within the SLA* per second of virtual time
    /// (equals `throughput_qps` when no deadline is configured).
    pub goodput_qps: f64,
    /// Fraction of arrived requests shed by admission control.
    pub shed_rate: f64,
    /// Fraction of arrived requests completed within [`sla_us`](Self::sla_us)
    /// (`1.0` for a run with no arrivals).
    pub availability: f64,
    /// The SLA availability/goodput were judged against: the retry
    /// policy's deadline (`∞` when none is configured — every completion
    /// then counts).
    pub sla_us: f64,
    /// Where every arrived request ended up.
    pub outcomes: OutcomeCounts,
    /// Hedged duplicate dispatches (their requests are counted once).
    pub hedge_dispatches: usize,
    /// End-to-end latency summary over completed requests.
    pub latency: LatencySummary,
    /// Waiting-queue depth statistics.
    pub queue: QueueStats,
    /// Batch-occupancy statistics.
    pub batches: BatchStats,
    /// Per-request outcomes, indexed like the arrival trace.
    pub records: Vec<RequestRecord>,
}

impl SimReport {
    /// Requests whose arrival the horizon cut off.
    pub fn not_arrived(&self) -> usize {
        self.offered - self.arrived
    }

    /// Flow conservation: every offered request is accounted for exactly
    /// once — completed, shed, timed out, in flight (on a GPU, queued, or
    /// between retries), or not yet arrived — and the typed outcome
    /// counts agree with the flat counters.
    pub fn is_conserved(&self) -> bool {
        let live = self.in_flight + self.queued + self.retry_pending;
        self.outcomes.completed == self.completed
            && self.outcomes.in_flight_at_horizon == live
            && self.outcomes.is_conserved(self.arrived)
            && self.completed
                + self.outcomes.shed
                + self.outcomes.timed_out
                + live
                + self.not_arrived()
                == self.offered
    }

    /// Fraction of arrived requests that completed within `sla_us` of
    /// their arrival (`1.0` for a run with no arrivals — vacuously
    /// available). Shed and timed-out requests never count; neither do
    /// completions slower than the SLA.
    ///
    /// The all-shed contract (pinned by `all_shed_point_has_zero_…`): a
    /// point where every arrived request was shed reports availability
    /// `0.0` with an all-zero latency summary — never NaN and never a
    /// zero-denominator, because `arrived`, not `completed`, is the
    /// denominator.
    ///
    /// # Panics
    ///
    /// Panics on a NaN `sla_us` (it would silently judge every completion
    /// late); `f64::INFINITY` is the spelling for "no SLA".
    pub fn availability_at(&self, sla_us: f64) -> f64 {
        assert!(!sla_us.is_nan(), "availability_at: NaN SLA");
        if self.arrived == 0 {
            return 1.0;
        }
        let within = self
            .records
            .iter()
            .filter(|r| r.completed_within(sla_us))
            .count();
        within as f64 / self.arrived as f64
    }
}

/// What a [`EventKind::RetryFire`] event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RetryKind {
    /// Re-admit request `id` after its backoff delay (no-op when a
    /// deadline already resolved it).
    Readmit(usize),
    /// Request `id`'s deadline: remove it from the queue or cancel its
    /// pending retry; an in-flight request is left to finish.
    Deadline(usize),
    /// Hedge logical batch `batch` if it is still running on `gpu`:
    /// dispatch a duplicate copy to a free GPU.
    Hedge { gpu: usize, batch: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    /// Request `id` arrives.
    Arrival(usize),
    /// A batch-window timer fires; seal a partial batch if one expired.
    Flush,
    /// The batch copy on `gpu` completes.
    GpuDone(usize),
    /// Fault state transition (index into the expanded transition list).
    FaultTransition(usize),
    /// A retry/deadline/hedge timer fires.
    RetryFire(RetryKind),
}

impl EventKind {
    /// Same-instant ordering (see the module docs): completions release
    /// their GPU first, fault transitions change the node state next,
    /// arrivals are admitted after that, retry timers run once every
    /// same-instant arrival is in, and the batch-window timer runs last.
    fn tie_rank(&self) -> u8 {
        match self {
            EventKind::GpuDone(_) => 0,
            EventKind::FaultTransition(_) => 1,
            EventKind::Arrival(_) => 2,
            EventKind::RetryFire(_) => 3,
            EventKind::Flush => 4,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time_us: f64,
    seq: u64,
    kind: EventKind,
}

// Min-heap ordering on (time, kind rank, seq): BinaryHeap is a max-heap,
// so compare reversed. The kind rank makes timestamp collisions follow the
// documented semantics instead of heap/push-order accidents; `seq` breaks
// the remaining ties deterministically (FIFO within a kind).
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time_us
            .total_cmp(&self.time_us)
            .then_with(|| other.kind.tie_rank().cmp(&self.kind.tie_rank()))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Event {}

/// A dispatched batch. Normally one GPU runs one copy; hedging can put a
/// duplicate copy on a second GPU, in which case the first copy to finish
/// completes the requests (once) and the straggler just releases its GPU.
#[derive(Debug)]
struct LogicalBatch {
    dispatch_us: f64,
    requests: Vec<QueuedRequest>,
    /// Whether some copy already completed the requests.
    done: bool,
    /// GPU copies currently running.
    copies: u32,
}

/// Price-cache key: (batch size, active GPUs, degraded-state fingerprint).
type PriceKey = (usize, usize, (u64, u64, u64, u64));

/// What became of an admission attempt.
enum Admit {
    /// Queued (and dispatch was attempted).
    Accepted,
    /// Deadline already expired at admission; shed immediately.
    Expired,
    /// The queue is full; retry or shed.
    QueueFull,
}

struct Engine<'a> {
    pricer: &'a dyn BatchPricer,
    workload: &'a Workload,
    design: DesignPoint,
    gpus: usize,
    heap: BinaryHeap<Event>,
    seq: u64,
    batcher: DynamicBatcher,
    /// Free GPU ids; popped from the back (lowest id first by construction).
    free_gpus: Vec<usize>,
    /// Per-GPU: the logical batch whose copy it is running.
    in_flight: Vec<Option<u64>>,
    in_flight_requests: usize,
    batches: HashMap<u64, LogicalBatch>,
    next_batch: u64,
    batch_stats: BatchStats,
    /// Memoized backend prices — valid because [`BatchPricer`]
    /// implementations are deterministic pure functions of the key.
    price_cache: HashMap<PriceKey, f64>,
    /// Live fault state, folded from the schedule's transitions.
    state: FaultState,
    retry: RetryPolicy,
    admission: AdmissionPolicy,
    /// Backoff re-admissions consumed per request.
    attempts: Vec<u32>,
    /// Whether a `Readmit` timer is outstanding for the request.
    awaiting_retry: Vec<bool>,
    /// Requests currently waiting out a backoff delay.
    retry_pending: usize,
    hedge_dispatches: usize,
}

impl Engine<'_> {
    fn push_event(&mut self, time_us: f64, kind: EventKind) {
        self.heap.push(Event {
            time_us,
            seq: self.seq,
            kind,
        });
        self.seq += 1;
    }

    /// The pricer's view of the current fault state, with `reread_rows`
    /// of transient-fault re-read traffic charged to this batch.
    fn degraded_view(&self, reread_rows: u64) -> DegradedNode {
        DegradedNode {
            dimms_alive: self.state.dimms_alive(),
            dimms_total: self.state.dimms_total(),
            latency_multiplier: self.state.gray_multiplier(),
            reread_rows,
        }
    }

    fn service_us(
        &mut self,
        batch: usize,
        active: usize,
        reread_rows: u64,
    ) -> Result<f64, SimError> {
        let degraded = self.degraded_view(reread_rows);
        let key = (batch, active, degraded.fingerprint());
        if let Some(&us) = self.price_cache.get(&key) {
            return Ok(us);
        }
        // A healthy view goes through the plain `price` path — the exact
        // call a fault-free simulation makes — so inert fault plans stay
        // bit-identical even for pricers that only implement `price`.
        let cost = if degraded.is_healthy() {
            self.pricer
                .price(self.workload, batch, self.design, active)?
        } else {
            self.pricer
                .price_degraded(self.workload, batch, self.design, active, degraded)?
        };
        self.price_cache.insert(key, cost.service_us);
        Ok(cost.service_us)
    }

    /// Seal and dispatch every ready batch while a GPU is free (and the
    /// node is reachable — a node outage holds dispatch entirely).
    ///
    /// All batches sealed at this instant overlap for their whole
    /// duration, so the cohort is assigned to GPUs first and priced
    /// afterwards at the resulting concurrency (batches already in flight
    /// from earlier events keep their dispatch-time pricing — the model's
    /// documented approximation). Pending re-read traffic from transient
    /// row faults is charged to the first batch of the cohort.
    fn dispatch_ready(&mut self, now_us: f64) -> Result<(), SimError> {
        if !self.state.can_dispatch() {
            return Ok(());
        }
        let mut cohort: Vec<(usize, Vec<QueuedRequest>)> = Vec::new();
        while !self.free_gpus.is_empty() {
            let Some(requests) = self.batcher.take_ready_batch(now_us) else {
                break;
            };
            let gpu = self.free_gpus.pop().expect("checked nonempty");
            cohort.push((gpu, requests));
        }
        let active = self.gpus - self.free_gpus.len();
        let mut reread_rows = if cohort.is_empty() {
            0
        } else {
            self.state.take_reread_rows()
        };
        for (gpu, requests) in cohort {
            let service = self.service_us(requests.len(), active, reread_rows)?;
            reread_rows = 0;
            self.batch_stats.record(requests.len());
            self.in_flight_requests += requests.len();
            let id = self.next_batch;
            self.next_batch += 1;
            self.batches.insert(
                id,
                LogicalBatch {
                    dispatch_us: now_us,
                    requests,
                    done: false,
                    copies: 1,
                },
            );
            self.in_flight[gpu] = Some(id);
            self.push_event(now_us + service, EventKind::GpuDone(gpu));
            if self.retry.hedging_enabled() {
                self.push_event(
                    now_us + self.retry.hedge_after_us,
                    EventKind::RetryFire(RetryKind::Hedge { gpu, batch: id }),
                );
            }
        }
        Ok(())
    }

    /// Hedge `batch` if its original copy is still running on `gpu`:
    /// dispatch a duplicate to a free GPU. Hedged copies are priced at the
    /// current concurrency and fault state but are *not* new logical
    /// batches — they don't count in batch stats, don't consume re-read
    /// traffic, and their requests complete (at most) once.
    fn try_hedge(&mut self, now_us: f64, gpu: usize, batch: u64) -> Result<(), SimError> {
        if self.in_flight[gpu] != Some(batch)
            || !self.state.can_dispatch()
            || self.free_gpus.is_empty()
        {
            return Ok(());
        }
        let size = self
            .batches
            .get(&batch)
            .map(|b| b.requests.len())
            .unwrap_or(0);
        if size == 0 {
            return Ok(());
        }
        let hedge_gpu = self.free_gpus.pop().expect("checked nonempty");
        let active = self.gpus - self.free_gpus.len();
        match self.service_us(size, active, 0) {
            Ok(service) => {
                let b = self
                    .batches
                    .get_mut(&batch)
                    .expect("in-flight batch exists");
                b.copies += 1;
                self.in_flight[hedge_gpu] = Some(batch);
                self.hedge_dispatches += 1;
                self.push_event(now_us + service, EventKind::GpuDone(hedge_gpu));
                Ok(())
            }
            Err(e) => {
                self.free_gpus.push(hedge_gpu);
                Err(e)
            }
        }
    }

    /// Run the admission policy for request `id` (fresh arrival or
    /// backoff re-admission) at `now_us`. On acceptance the request is
    /// queued, its flush timer armed, and dispatch attempted.
    fn admit(&mut self, now_us: f64, id: usize, arrival_us: f64) -> Result<Admit, SimError> {
        if self.admission.shed_expired && self.retry.deadline_enabled() {
            let deadline = arrival_us + self.retry.deadline_us;
            if now_us + TIMER_SLACK_US >= deadline {
                return Ok(Admit::Expired);
            }
        }
        if self.batcher.depth() >= self.admission.max_queue_depth {
            return Ok(Admit::QueueFull);
        }
        self.batcher.push(QueuedRequest {
            id,
            arrival_us: now_us,
        });
        let max_wait_us = self.batcher.policy().max_wait_us;
        self.push_event(now_us + max_wait_us, EventKind::Flush);
        self.dispatch_ready(now_us)?;
        Ok(Admit::Accepted)
    }
}

/// Run the simulator: feed `arrivals_us` (sorted, µs) through the batcher
/// and `cfg.gpus` GPUs of `cfg.design`, pricing each dispatched batch with
/// the backend `cfg.pricing` selects (constructed fresh over `model`; use
/// [`simulate_with_pricer`] to share a warmed-up [`CyclePricer`] latency
/// table across runs).
///
/// [`CyclePricer`]: tensordimm_system::CyclePricer
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for unusable knobs (including
/// fault-plan and policy knobs), [`SimError::BadArrival`] for an
/// unsorted/non-finite trace, and [`SimError::Pricing`] if the system
/// model rejects a batch.
pub fn simulate(
    model: &SystemModel,
    workload: &Workload,
    cfg: &SimConfig,
    arrivals_us: &[f64],
) -> Result<SimReport, SimError> {
    let model = resolve_transfer(model, cfg);
    let pricer = cfg.pricing.build_with_hot_rows(&model, cfg.hot_rows);
    simulate_with_pricer(workload, cfg, arrivals_us, pricer.as_ref())
}

/// The model to price with: `cfg.transfer` overrides the model's
/// contended-transfer engine (cloning only when they actually differ);
/// `None` inherits the model's own configuration.
pub(crate) fn resolve_transfer<'a>(
    model: &'a SystemModel,
    cfg: &SimConfig,
) -> std::borrow::Cow<'a, SystemModel> {
    match cfg.transfer {
        Some(t) if t != model.config().transfer => {
            std::borrow::Cow::Owned(model.clone().with_transfer(t))
        }
        _ => std::borrow::Cow::Borrowed(model),
    }
}

/// [`simulate`] with an explicit pricing backend. `cfg.pricing` is ignored
/// — the caller owns the pricer, which lets a sweep reuse one cycle
/// pricer's memoized latency table across many runs.
///
/// # Errors
///
/// As [`simulate`].
pub fn simulate_with_pricer(
    workload: &Workload,
    cfg: &SimConfig,
    arrivals_us: &[f64],
    pricer: &dyn BatchPricer,
) -> Result<SimReport, SimError> {
    cfg.validate()?;
    for (i, &t) in arrivals_us.iter().enumerate() {
        let sorted = i == 0 || arrivals_us[i - 1] <= t;
        if !t.is_finite() || t < 0.0 || !sorted {
            return Err(SimError::BadArrival { index: i });
        }
    }

    // Expand the fault plan over the simulated window: the horizon when
    // one is set, the last arrival otherwise (repairs may trail it).
    let fault_horizon = cfg
        .horizon_us
        .unwrap_or_else(|| arrivals_us.last().copied().unwrap_or(0.0));
    let transitions: Vec<Transition> = if cfg.faults.is_inert() {
        Vec::new()
    } else {
        cfg.faults.schedule(fault_horizon)?.transitions()
    };

    let n = arrivals_us.len();
    let mut engine = Engine {
        pricer,
        workload,
        design: cfg.design,
        gpus: cfg.gpus,
        heap: BinaryHeap::with_capacity(2 * n + cfg.gpus + transitions.len()),
        seq: 0,
        batcher: DynamicBatcher::new(cfg.policy),
        free_gpus: (0..cfg.gpus).rev().collect(),
        in_flight: vec![None; cfg.gpus],
        in_flight_requests: 0,
        batches: HashMap::new(),
        next_batch: 0,
        batch_stats: BatchStats::new(cfg.policy.max_batch),
        price_cache: HashMap::new(),
        state: FaultState::healthy(cfg.faults.dimms),
        retry: cfg.retry,
        admission: cfg.admission,
        attempts: vec![0; n],
        awaiting_retry: vec![false; n],
        retry_pending: 0,
        hedge_dispatches: 0,
    };
    for (id, &t) in arrivals_us.iter().enumerate() {
        engine.push_event(t, EventKind::Arrival(id));
    }
    for (i, tr) in transitions.iter().enumerate() {
        engine.push_event(tr.at_us, EventKind::FaultTransition(i));
    }

    let mut records: Vec<RequestRecord> = arrivals_us
        .iter()
        .map(|&t| RequestRecord::pending(t))
        .collect();
    let mut latencies: Vec<f64> = Vec::with_capacity(n);
    let mut queue_tracker = QueueDepthTracker::default();
    let mut arrived = 0usize;
    let mut completed = 0usize;
    let mut shed = 0usize;
    let mut timed_out = 0usize;
    let mut clock_us = 0.0f64;
    // Last instant a request changed state — what `end_us` reports.
    // Trailing no-op timers (a deadline firing for a request that already
    // completed, a flush for one that already dispatched, a fault repair
    // after the last completion) advance `clock_us` but not this.
    let mut progress_us = 0.0f64;
    let mut horizon_hit = false;

    while let Some(event) = engine.heap.pop() {
        if let Some(h) = cfg.horizon_us {
            if event.time_us > h {
                horizon_hit = true;
                break;
            }
        }
        queue_tracker.advance(event.time_us, engine.batcher.depth());
        clock_us = clock_us.max(event.time_us);
        match event.kind {
            EventKind::Arrival(id) => {
                arrived += 1;
                progress_us = event.time_us;
                if engine.retry.deadline_enabled() {
                    engine.push_event(
                        records[id].arrival_us + engine.retry.deadline_us,
                        EventKind::RetryFire(RetryKind::Deadline(id)),
                    );
                }
                match engine.admit(event.time_us, id, records[id].arrival_us)? {
                    Admit::Accepted => {}
                    Admit::Expired => {
                        records[id].outcome = Some(RequestOutcome::TimedOut);
                        timed_out += 1;
                    }
                    Admit::QueueFull => {
                        reject(&mut engine, &mut records, &mut shed, event.time_us, id);
                    }
                }
            }
            EventKind::Flush => {
                engine.dispatch_ready(event.time_us)?;
            }
            EventKind::FaultTransition(i) => {
                engine.state.apply(transitions[i].change);
                engine.dispatch_ready(event.time_us)?;
            }
            EventKind::RetryFire(RetryKind::Readmit(id)) => {
                if engine.awaiting_retry[id] {
                    progress_us = event.time_us;
                    engine.awaiting_retry[id] = false;
                    engine.retry_pending -= 1;
                    match engine.admit(event.time_us, id, records[id].arrival_us)? {
                        Admit::Accepted => {}
                        Admit::Expired => {
                            records[id].outcome = Some(RequestOutcome::TimedOut);
                            timed_out += 1;
                        }
                        Admit::QueueFull => {
                            reject(&mut engine, &mut records, &mut shed, event.time_us, id);
                        }
                    }
                }
            }
            EventKind::RetryFire(RetryKind::Deadline(id)) => {
                if records[id].outcome.is_none() {
                    if engine.batcher.remove(id).is_some() {
                        records[id].outcome = Some(RequestOutcome::TimedOut);
                        timed_out += 1;
                        progress_us = event.time_us;
                    } else if engine.awaiting_retry[id] {
                        // Cancel the pending re-admission; its Readmit
                        // event becomes a no-op.
                        engine.awaiting_retry[id] = false;
                        engine.retry_pending -= 1;
                        records[id].outcome = Some(RequestOutcome::TimedOut);
                        timed_out += 1;
                        progress_us = event.time_us;
                    }
                    // Otherwise the request is on a GPU: let it finish —
                    // availability judges the lateness.
                }
            }
            EventKind::RetryFire(RetryKind::Hedge { gpu, batch }) => {
                engine.try_hedge(event.time_us, gpu, batch)?;
            }
            EventKind::GpuDone(gpu) => {
                progress_us = event.time_us;
                let bid = engine.in_flight[gpu]
                    .take()
                    .expect("GpuDone implies a batch in flight");
                engine.free_gpus.push(gpu);
                let mut batch = engine.batches.remove(&bid).expect("live batch");
                batch.copies -= 1;
                if !batch.done {
                    batch.done = true;
                    let size = batch.requests.len();
                    for q in &batch.requests {
                        records[q.id].completion = Some(CompletionRecord {
                            dispatch_us: batch.dispatch_us,
                            finish_us: event.time_us,
                            batch_size: size,
                            gpu,
                        });
                        records[q.id].outcome = Some(RequestOutcome::Completed);
                        latencies.push(event.time_us - records[q.id].arrival_us);
                    }
                    completed += size;
                    engine.in_flight_requests -= size;
                }
                if batch.copies > 0 {
                    // A hedged duplicate is still running; keep the batch
                    // so the straggler's completion only frees its GPU.
                    engine.batches.insert(bid, batch);
                }
                engine.dispatch_ready(event.time_us)?;
            }
        }
    }

    let end_us = if horizon_hit {
        cfg.horizon_us.expect("horizon_hit implies a horizon")
    } else {
        progress_us
    };
    // Arrivals are processed in trace order, so the arrived requests are
    // exactly the first `arrived` records; any of them without a resolved
    // outcome was cut off mid-flight (queued, retrying, or on a GPU).
    for rec in records.iter_mut().take(arrived) {
        if rec.outcome.is_none() {
            rec.outcome = Some(RequestOutcome::InFlightAtHorizon);
        }
    }
    let outcomes = OutcomeCounts {
        completed,
        shed,
        timed_out,
        in_flight_at_horizon: engine.in_flight_requests
            + engine.batcher.depth()
            + engine.retry_pending,
    };
    let sla_us = cfg.retry.deadline_us;
    let within = records
        .iter()
        .filter(|r| r.completed_within(sla_us))
        .count();
    // The tracker has integrated up to `clock_us` (possibly past `end_us`
    // through trailing no-op events, over which the queue is necessarily
    // empty — any depth change is itself progress); normalize over the
    // reported run length.
    let queue = queue_tracker.finish(clock_us.max(end_us), end_us, engine.batcher.depth());
    let mut batches = engine.batch_stats;
    batches.finalize();
    Ok(SimReport {
        design: cfg.design,
        gpus: cfg.gpus,
        policy: cfg.policy,
        offered: n,
        arrived,
        completed,
        in_flight: engine.in_flight_requests,
        queued: engine.batcher.depth(),
        retry_pending: engine.retry_pending,
        end_us,
        throughput_qps: if end_us > 0.0 {
            completed as f64 / (end_us * 1e-6)
        } else {
            0.0
        },
        goodput_qps: if end_us > 0.0 {
            within as f64 / (end_us * 1e-6)
        } else {
            0.0
        },
        shed_rate: if arrived > 0 {
            shed as f64 / arrived as f64
        } else {
            0.0
        },
        availability: if arrived > 0 {
            within as f64 / arrived as f64
        } else {
            1.0
        },
        sla_us,
        outcomes,
        hedge_dispatches: engine.hedge_dispatches,
        latency: LatencySummary::from_latencies(latencies),
        queue,
        batches,
        records,
    })
}

/// Queue-full rejection: consume a retry (scheduling re-admission after
/// deterministic backoff) or shed for good.
fn reject(
    engine: &mut Engine<'_>,
    records: &mut [RequestRecord],
    shed: &mut usize,
    now_us: f64,
    id: usize,
) {
    let attempt = engine.attempts[id];
    if attempt < engine.retry.max_retries {
        engine.attempts[id] += 1;
        records[id].retries += 1;
        engine.awaiting_retry[id] = true;
        engine.retry_pending += 1;
        let delay = engine.retry.backoff_us(id, attempt);
        engine.push_event(now_us + delay, EventKind::RetryFire(RetryKind::Readmit(id)));
    } else {
        records[id].outcome = Some(RequestOutcome::Shed);
        *shed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalProcess;
    use tensordimm_faults::{GrayRank, NodeOutage, RowFaults};

    fn model() -> SystemModel {
        SystemModel::paper_defaults()
    }

    fn poisson(rate_qps: f64, n: usize, seed: u64) -> Vec<f64> {
        ArrivalProcess::Poisson { rate_qps }.sample_arrivals_us(n, seed)
    }

    #[test]
    fn drains_every_request_and_conserves() {
        let m = model();
        let w = Workload::facebook();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 4, BatchPolicy::new(16, 200.0));
        let arrivals = poisson(100_000.0, 500, 11);
        let r = simulate(&m, &w, &cfg, &arrivals).expect("valid");
        assert_eq!(r.offered, 500);
        assert_eq!(r.completed, 500);
        assert_eq!(r.queued + r.in_flight, 0);
        assert!(r.is_conserved());
        assert_eq!(r.latency.count, 500);
        assert!(r.end_us >= *arrivals.last().expect("nonempty"));
        // No deadline: every completion is within the (infinite) SLA.
        assert_eq!(r.availability, 1.0);
        assert_eq!(r.goodput_qps, r.throughput_qps);
        assert_eq!(r.shed_rate, 0.0);
        assert_eq!(r.outcomes.completed, 500);
        assert_eq!(r.outcomes.total(), r.arrived);
    }

    #[test]
    fn horizon_leaves_work_behind_but_conserves() {
        let m = model();
        let w = Workload::facebook();
        let arrivals = poisson(400_000.0, 800, 13);
        let mid = arrivals[400];
        let cfg =
            SimConfig::new(DesignPoint::Pmem, 2, BatchPolicy::new(16, 200.0)).with_horizon(mid);
        let r = simulate(&m, &w, &cfg, &arrivals).expect("valid");
        assert!(r.completed < r.offered, "horizon must cut work off");
        assert!(r.arrived < r.offered);
        assert!(r.is_conserved());
        assert_eq!(r.end_us, mid);
        // Cut-off requests carry the typed outcome; not-arrived carry none.
        let cut = r
            .records
            .iter()
            .filter(|rec| rec.outcome == Some(RequestOutcome::InFlightAtHorizon))
            .count();
        assert_eq!(cut, r.outcomes.in_flight_at_horizon);
        assert!(r.records[r.offered - 1].outcome.is_none());
    }

    #[test]
    fn deterministic_per_inputs() {
        let m = model();
        let w = Workload::youtube();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 4, BatchPolicy::new(32, 300.0));
        let arrivals = poisson(80_000.0, 400, 21);
        let a = simulate(&m, &w, &cfg, &arrivals).expect("valid");
        let b = simulate(&m, &w, &cfg, &arrivals).expect("valid");
        assert_eq!(a, b, "same inputs must replay bit-identically");
    }

    #[test]
    fn record_times_are_ordered_and_batches_bounded() {
        let m = model();
        let w = Workload::ncf();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 3, BatchPolicy::new(8, 150.0));
        let r = simulate(&m, &w, &cfg, &poisson(150_000.0, 300, 5)).expect("valid");
        for rec in &r.records {
            let c = rec.completion.expect("drained run completes everything");
            assert!(c.dispatch_us >= rec.arrival_us);
            assert!(c.finish_us > c.dispatch_us);
            assert!(c.batch_size >= 1 && c.batch_size <= 8);
            assert!(c.gpu < 3);
        }
        assert!(r.batches.batches > 0);
        assert!(r.batches.mean_occupancy >= 1.0);
        assert!(r.batches.mean_occupancy <= 8.0);
    }

    #[test]
    fn gpu_serves_one_batch_at_a_time() {
        let m = model();
        let w = Workload::facebook();
        let cfg = SimConfig::new(DesignPoint::Pmem, 2, BatchPolicy::new(16, 100.0));
        let r = simulate(&m, &w, &cfg, &poisson(200_000.0, 400, 7)).expect("valid");
        // Per GPU, batch service intervals must not overlap.
        for gpu in 0..2 {
            let mut intervals: Vec<(f64, f64)> = r
                .records
                .iter()
                .filter_map(|rec| rec.completion)
                .filter(|c| c.gpu == gpu)
                .map(|c| (c.dispatch_us, c.finish_us))
                .collect();
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            intervals.dedup();
            for w in intervals.windows(2) {
                assert!(
                    w[1].0 >= w[0].1 - 1e-6,
                    "gpu {gpu} overlaps: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn tdimm_tail_beats_pmem_under_identical_traffic() {
        let m = model();
        let w = Workload::facebook();
        let arrivals = poisson(120_000.0, 600, 31);
        let policy = BatchPolicy::new(32, 300.0);
        let t = simulate(
            &m,
            &w,
            &SimConfig::new(DesignPoint::Tdimm, 8, policy),
            &arrivals,
        )
        .expect("valid");
        let p = simulate(
            &m,
            &w,
            &SimConfig::new(DesignPoint::Pmem, 8, policy),
            &arrivals,
        )
        .expect("valid");
        assert!(
            t.latency.p99_us < p.latency.p99_us,
            "TDIMM p99 {} vs PMEM p99 {}",
            t.latency.p99_us,
            p.latency.p99_us
        );
    }

    /// Fixed-cost pricer for constructing exact timestamp collisions.
    struct ConstPricer(f64);

    impl tensordimm_system::BatchPricer for ConstPricer {
        fn price(
            &self,
            _workload: &Workload,
            _batch: usize,
            _design: DesignPoint,
            active_gpus: usize,
        ) -> Result<tensordimm_system::BatchCost, tensordimm_system::serving::ServingError>
        {
            if active_gpus == 0 {
                return Err(tensordimm_system::serving::ServingError::InvalidLink {
                    parameter: "active_gpus",
                });
            }
            Ok(tensordimm_system::BatchCost {
                service_us: self.0,
                port_bound: false,
            })
        }

        fn backend(&self) -> tensordimm_system::PricingBackend {
            tensordimm_system::PricingBackend::Analytic
        }
    }

    /// Colliding timestamps: an arrival lands exactly on a batch-window
    /// expiry, and a GPU completion lands exactly on a later arrival. The
    /// documented tie order (GpuDone, then Arrival, then Flush) must hold
    /// and the whole run must be bit-identical across replays —
    /// independent of heap internals.
    #[test]
    fn colliding_events_are_ordered_deterministically() {
        let w = Workload::facebook();
        // One GPU, 100 µs service, 100 µs batch window, batches of <= 4.
        let cfg = SimConfig::new(DesignPoint::Tdimm, 1, BatchPolicy::new(4, 100.0));
        let arrivals = [0.0, 100.0, 200.0];
        let pricer = ConstPricer(100.0);
        let r = simulate_with_pricer(&w, &cfg, &arrivals, &pricer).expect("valid");

        let c0 = r.records[0].completion.expect("drained");
        let c1 = r.records[1].completion.expect("drained");
        let c2 = r.records[2].completion.expect("drained");
        // t=100: request 1 arrives (rank 2) exactly when request 0's
        // window expires (rank 4): the arrival is admitted first, so it
        // joins the flushed batch — {0, 1} dispatches together at 100.
        assert_eq!(
            (c0.dispatch_us, c0.finish_us, c0.batch_size),
            (100.0, 200.0, 2)
        );
        assert_eq!(
            (c1.dispatch_us, c1.finish_us, c1.batch_size),
            (100.0, 200.0, 2)
        );
        // t=200: batch {0, 1} completes (rank 0) exactly as request 2
        // arrives (rank 2); request 2 then waits out its own window and
        // dispatches alone at 300.
        assert_eq!(
            (c2.dispatch_us, c2.finish_us, c2.batch_size),
            (300.0, 400.0, 1)
        );

        // Bit-identical replay, collisions and all.
        let again = simulate_with_pricer(&w, &cfg, &arrivals, &pricer).expect("valid");
        assert_eq!(r, again);
    }

    /// Concurrency-sensitive pricer exposing the GpuDone-before-Arrival
    /// tie rule: service time scales with how many GPUs are active at
    /// dispatch.
    struct ActiveScaledPricer(f64);

    impl tensordimm_system::BatchPricer for ActiveScaledPricer {
        fn price(
            &self,
            _workload: &Workload,
            _batch: usize,
            _design: DesignPoint,
            active_gpus: usize,
        ) -> Result<tensordimm_system::BatchCost, tensordimm_system::serving::ServingError>
        {
            Ok(tensordimm_system::BatchCost {
                service_us: self.0 * active_gpus as f64,
                port_bound: false,
            })
        }

        fn backend(&self) -> tensordimm_system::PricingBackend {
            tensordimm_system::PricingBackend::Analytic
        }
    }

    /// A batch completing at the exact instant a request arrives must
    /// release its GPU *before* the arrival dispatches: the new batch is
    /// priced at solo concurrency, not as if it overlapped the batch that
    /// just finished.
    #[test]
    fn gpu_completion_frees_capacity_before_same_instant_dispatch() {
        let w = Workload::youtube();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 2, BatchPolicy::new(1, 0.0));
        // Request 0 runs over [0, 100) at active=1. Request 1 arrives at
        // exactly 100: the completion is processed first, so request 1
        // also dispatches at active=1 and takes 100 µs — were arrivals
        // processed first it would be priced at active=2 (200 µs).
        let arrivals = [0.0, 100.0];
        let pricer = ActiveScaledPricer(100.0);
        let r = simulate_with_pricer(&w, &cfg, &arrivals, &pricer).expect("valid");
        let c1 = r.records[1].completion.expect("drained");
        assert_eq!(c1.dispatch_us, 100.0);
        assert_eq!(
            c1.finish_us, 200.0,
            "same-instant dispatch must be priced after the GPU freed"
        );
    }

    #[test]
    fn cycle_backend_is_deterministic_and_selectable() {
        let m = model();
        let w = Workload::youtube();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 2, BatchPolicy::new(8, 200.0))
            .with_pricing(tensordimm_system::PricingBackend::CycleCalibrated);
        assert_eq!(
            cfg.pricing,
            tensordimm_system::PricingBackend::CycleCalibrated
        );
        let arrivals = poisson(60_000.0, 60, 17);
        let a = simulate(&m, &w, &cfg, &arrivals).expect("valid");
        let b = simulate(&m, &w, &cfg, &arrivals).expect("valid");
        assert_eq!(a, b, "cycle-calibrated runs must replay bit-identically");
        assert_eq!(a.completed, 60);
        // And it genuinely prices differently from the analytic backend
        // (the cycle replay measures, it does not echo the constants).
        let analytic = simulate(
            &m,
            &w,
            &SimConfig::new(DesignPoint::Tdimm, 2, BatchPolicy::new(8, 200.0)),
            &arrivals,
        )
        .expect("valid");
        assert_ne!(
            a.latency.p99_us, analytic.latency.p99_us,
            "backends should not be bit-equal on node designs"
        );
    }

    #[test]
    fn fabric_transfer_backend_is_selectable_and_close_to_analytic() {
        let m = model();
        let w = Workload::facebook();
        let arrivals = poisson(120_000.0, 200, 23);
        let base = SimConfig::new(DesignPoint::Pmem, 4, BatchPolicy::new(16, 200.0));
        let analytic = simulate(&m, &w, &base, &arrivals).expect("valid");
        let fabric_cfg = base.with_transfer(TransferBackend::Fabric(
            tensordimm_system::TopologyKind::FullyConnected,
        ));
        let fabric = simulate(&m, &w, &fabric_cfg, &arrivals).expect("valid");
        assert_eq!(fabric.completed, 200);
        // Same crossbar, measured instead of closed-form: tails agree
        // loosely, and the run stays deterministic.
        let rel = (fabric.latency.p99_us - analytic.latency.p99_us).abs() / analytic.latency.p99_us;
        assert!(
            rel < 0.15,
            "fabric p99 {} vs analytic p99 {}",
            fabric.latency.p99_us,
            analytic.latency.p99_us
        );
        let again = simulate(&m, &w, &fabric_cfg, &arrivals).expect("valid");
        assert_eq!(fabric, again);
        // `None` inherits the model's own engine: a fabric-configured
        // model without an override must match the explicit override.
        let fabric_model = m.clone().with_transfer(TransferBackend::Fabric(
            tensordimm_system::TopologyKind::FullyConnected,
        ));
        let inherited = simulate(&fabric_model, &w, &base, &arrivals).expect("valid");
        assert_eq!(inherited, fabric);
    }

    #[test]
    fn empty_trace_is_a_quiet_no_op() {
        let m = model();
        let w = Workload::fox();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 1, BatchPolicy::new(4, 50.0));
        let r = simulate(&m, &w, &cfg, &[]).expect("valid");
        assert_eq!(r.offered, 0);
        assert_eq!(r.completed, 0);
        assert!(r.is_conserved());
        assert_eq!(r.throughput_qps, 0.0);
        assert_eq!(r.availability, 1.0, "no arrivals: vacuously available");
        assert_eq!(r.shed_rate, 0.0);
    }

    #[test]
    fn bad_inputs_rejected() {
        let m = model();
        let w = Workload::fox();
        let good = SimConfig::new(DesignPoint::Tdimm, 1, BatchPolicy::new(4, 50.0));
        assert!(matches!(
            simulate(&m, &w, &SimConfig { gpus: 0, ..good }, &[]),
            Err(SimError::InvalidConfig { parameter: "gpus" })
        ));
        assert!(matches!(
            simulate(
                &m,
                &w,
                &SimConfig {
                    policy: BatchPolicy::new(0, 50.0),
                    ..good
                },
                &[]
            ),
            Err(SimError::InvalidConfig {
                parameter: "max_batch"
            })
        ));
        assert!(matches!(
            simulate(&m, &w, &good.with_horizon(f64::NAN), &[]),
            Err(SimError::InvalidConfig {
                parameter: "horizon_us"
            })
        ));
        assert!(matches!(
            simulate(&m, &w, &good, &[5.0, 3.0]),
            Err(SimError::BadArrival { index: 1 })
        ));
        assert!(matches!(
            simulate(&m, &w, &good, &[-1.0]),
            Err(SimError::BadArrival { index: 0 })
        ));
        assert!(!SimError::InvalidConfig { parameter: "gpus" }
            .to_string()
            .is_empty());
        // Fault-plan and policy knobs are validated through the config.
        assert!(matches!(
            simulate(
                &m,
                &w,
                &good.with_faults(FaultPlan::dimm_faults(1, 2.0)),
                &[]
            ),
            Err(SimError::InvalidConfig {
                parameter: "dimm_fault_rate"
            })
        ));
        assert!(matches!(
            simulate(
                &m,
                &w,
                &good.with_retry(RetryPolicy::none().with_deadline(0.0)),
                &[]
            ),
            Err(SimError::InvalidConfig {
                parameter: "deadline_us"
            })
        ));
        assert!(matches!(
            simulate(
                &m,
                &w,
                &good.with_admission(AdmissionPolicy {
                    max_queue_depth: 0,
                    shed_expired: false
                }),
                &[]
            ),
            Err(SimError::InvalidConfig {
                parameter: "max_queue_depth"
            })
        ));
    }

    /// The headline robustness contract: fault/retry/admission machinery
    /// that is armed but never fires must be **bit-identical** to a run
    /// that never heard of it, on both pricing backends. (The plans here
    /// are deliberately *non-inert* objects whose events all fall outside
    /// the run — exercising the full scheduling/admission code path.)
    #[test]
    fn latent_fault_machinery_is_bit_identical() {
        let m = model();
        let w = Workload::facebook();
        let arrivals = poisson(150_000.0, 400, 41);
        for pricing in [PricingBackend::Analytic, PricingBackend::CycleCalibrated] {
            let plain = SimConfig::new(DesignPoint::Tdimm, 4, BatchPolicy::new(16, 200.0))
                .with_pricing(pricing);
            let latent = plain
                // Outage far beyond the last arrival: scheduled, never fires.
                .with_faults(FaultPlan::none().with_node_outage(NodeOutage {
                    start_us: 1e12,
                    duration_us: 1.0,
                }))
                // Retries allowed but the unbounded queue never rejects.
                .with_retry(RetryPolicy::none().with_retries(3, 100.0, 1_000.0))
                // Bounded far above any realizable depth; shed_expired is
                // moot without a deadline.
                .with_admission(AdmissionPolicy::bounded(1_000_000));
            let a = simulate(&m, &w, &plain, &arrivals).expect("valid");
            let b = simulate(&m, &w, &latent, &arrivals).expect("valid");
            assert_eq!(
                a.records, b.records,
                "latent fault machinery must not perturb {pricing:?}"
            );
            assert_eq!(a.latency, b.latency);
            assert_eq!(a.end_us, b.end_us);
            assert_eq!(a.queue, b.queue);
            assert_eq!(a.batches, b.batches);
        }
    }

    /// A node outage holds dispatch (in-flight work finishes) and the
    /// repair transition releases the held queue.
    #[test]
    fn node_outage_holds_dispatch_until_repair() {
        let w = Workload::facebook();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 1, BatchPolicy::new(1, 0.0)).with_faults(
            FaultPlan::none().with_node_outage(NodeOutage {
                start_us: 25.0,
                duration_us: 100.0,
            }),
        );
        let pricer = ConstPricer(10.0);
        // Request 0 dispatches healthy at t=0, finishes at 10. Request 1
        // arrives at 50 — mid-outage — and must wait for the repair at
        // 125 even though the GPU is free.
        let r = simulate_with_pricer(&w, &cfg, &[0.0, 50.0], &pricer).expect("valid");
        let c0 = r.records[0].completion.expect("healthy dispatch");
        let c1 = r.records[1].completion.expect("released by repair");
        assert_eq!((c0.dispatch_us, c0.finish_us), (0.0, 10.0));
        assert_eq!(
            (c1.dispatch_us, c1.finish_us),
            (125.0, 135.0),
            "queued arrival must dispatch at the repair instant"
        );
        assert!(r.is_conserved());
        let again = simulate_with_pricer(&w, &cfg, &[0.0, 50.0], &pricer).expect("valid");
        assert_eq!(r, again);
    }

    /// Gray ranks and rank loss degrade real-pricer service times; the
    /// run still conserves and replays bit-identically.
    #[test]
    fn degraded_node_inflates_latency_but_conserves() {
        let m = model();
        let w = Workload::youtube();
        let arrivals = poisson(100_000.0, 300, 19);
        let base = SimConfig::new(DesignPoint::Tdimm, 4, BatchPolicy::new(16, 200.0));
        let healthy = simulate(&m, &w, &base, &arrivals).expect("valid");
        let gray = base.with_faults(FaultPlan::none().with_gray(GrayRank {
            start_us: 0.0,
            duration_us: 1e9,
            latency_multiplier: 3.0,
        }));
        let g = simulate(&m, &w, &gray, &arrivals).expect("valid");
        assert!(
            g.latency.mean_us > healthy.latency.mean_us,
            "gray {} vs healthy {}",
            g.latency.mean_us,
            healthy.latency.mean_us
        );
        assert!(g.is_conserved());
        assert_eq!(g.completed, 300, "gray slows but loses nothing");
        // Heavy rank loss also slows node designs without losing work.
        let faulty = base.with_faults(FaultPlan::dimm_faults(5, 1.0));
        let f = simulate(&m, &w, &faulty, &arrivals).expect("valid");
        assert!(f.is_conserved());
        assert_eq!(f.completed, 300);
        assert!(
            f.latency.mean_us >= healthy.latency.mean_us,
            "rank loss cannot speed the node up"
        );
        assert_eq!(
            f,
            simulate(&m, &w, &faulty, &arrivals).expect("valid"),
            "fault-enabled runs replay bit-identically"
        );
        // Transient row faults charge re-read traffic without losing work.
        let rowy = base.with_faults(FaultPlan::none().with_row_faults(RowFaults {
            every_us: 100.0,
            rows: 512,
        }));
        let rf = simulate(&m, &w, &rowy, &arrivals).expect("valid");
        assert!(rf.is_conserved());
        assert_eq!(rf.completed, 300);
        assert!(rf.latency.mean_us >= healthy.latency.mean_us);
    }

    /// Deadlines time out queued requests (in-flight work finishes) and
    /// availability judges late completions.
    #[test]
    fn deadline_times_out_queued_requests() {
        let w = Workload::facebook();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 1, BatchPolicy::new(1, 0.0))
            .with_retry(RetryPolicy::none().with_deadline(100.0));
        let pricer = ConstPricer(1000.0);
        // Request 0 occupies the only GPU for [0, 1000); requests 1 and 2
        // sit in queue past their 100 µs deadlines.
        let r = simulate_with_pricer(&w, &cfg, &[0.0, 1.0, 2.0], &pricer).expect("valid");
        assert_eq!(r.completed, 1);
        assert_eq!(r.outcomes.timed_out, 2);
        assert_eq!(r.records[0].outcome, Some(RequestOutcome::Completed));
        assert_eq!(r.records[1].outcome, Some(RequestOutcome::TimedOut));
        assert_eq!(r.records[2].outcome, Some(RequestOutcome::TimedOut));
        assert!(r.is_conserved());
        // The lone completion took 1000 µs against a 100 µs SLA.
        assert_eq!(r.availability, 0.0);
        assert_eq!(r.goodput_qps, 0.0);
        assert!(r.throughput_qps > 0.0);
        // A looser SLA judged after the fact sees the completion.
        assert!(r.availability_at(1e6) > 0.0);
    }

    /// A bounded queue sheds when retries are exhausted and re-admits
    /// (with deterministic backoff) when they are not.
    #[test]
    fn bounded_queue_sheds_or_retries() {
        let w = Workload::facebook();
        let pricer = ConstPricer(100.0);
        let arrivals = [0.0, 1.0, 2.0];
        let base = SimConfig::new(DesignPoint::Tdimm, 1, BatchPolicy::new(1, 0.0)).with_admission(
            AdmissionPolicy {
                max_queue_depth: 1,
                shed_expired: false,
            },
        );
        // No retries: the third arrival finds the queue full and is shed.
        let r = simulate_with_pricer(&w, &base, &arrivals, &pricer).expect("valid");
        assert_eq!(r.completed, 2);
        assert_eq!(r.outcomes.shed, 1);
        assert_eq!(r.records[2].outcome, Some(RequestOutcome::Shed));
        assert!((r.shed_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!(r.is_conserved());
        // With a retry budget the rejection re-admits after backoff and
        // the request completes; retries are recorded on the request.
        let retrying = base.with_retry(RetryPolicy::none().with_retries(5, 200.0, 1_000.0));
        let r2 = simulate_with_pricer(&w, &retrying, &arrivals, &pricer).expect("valid");
        assert_eq!(r2.completed, 3);
        assert_eq!(r2.outcomes.shed, 0);
        assert_eq!(r2.retry_pending, 0);
        assert_eq!(r2.records[2].retries, 1);
        assert!(r2.is_conserved());
        let c2 = r2.records[2].completion.expect("readmitted");
        assert!(
            c2.dispatch_us >= 200.0,
            "re-admission waits out the backoff: {}",
            c2.dispatch_us
        );
    }

    /// Hedged duplicates complete their requests exactly once: the first
    /// copy wins, the straggler only frees its GPU.
    #[test]
    fn hedged_duplicates_complete_once() {
        let w = Workload::facebook();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 2, BatchPolicy::new(1, 0.0))
            .with_retry(RetryPolicy::none().with_hedging(50.0));
        let pricer = ConstPricer(100.0);
        let r = simulate_with_pricer(&w, &cfg, &[0.0], &pricer).expect("valid");
        assert_eq!(r.hedge_dispatches, 1, "slow batch hedged to the idle GPU");
        assert_eq!(r.completed, 1, "duplicate copies complete requests once");
        assert_eq!(r.latency.count, 1);
        let c = r.records[0].completion.expect("completed");
        assert_eq!(
            (c.dispatch_us, c.finish_us, c.gpu),
            (0.0, 100.0, 0),
            "original copy wins; hedge (done at 150) only frees its GPU"
        );
        assert!(r.is_conserved());
        assert_eq!(r.end_us, 150.0, "clock runs to the straggler's release");
        // Busy cluster: no free GPU at the hedge instant ⇒ no hedge.
        let r2 = simulate_with_pricer(&w, &cfg, &[0.0, 1.0], &pricer).expect("valid");
        assert_eq!(r2.hedge_dispatches, 0);
        assert_eq!(r2.completed, 2);
        assert!(r2.is_conserved());
    }

    /// The all-shed contract: a sweep point where **every** arrived
    /// request was shed reports availability 0.0 (never NaN — `arrived`
    /// is the denominator), an all-zero latency summary, zero
    /// throughput/goodput, and still conserves. The cluster layer's
    /// availability gates lean on this when a dead shard sheds its whole
    /// sub-trace.
    #[test]
    fn all_shed_point_has_zero_availability_not_nan() {
        let w = Workload::facebook();
        // Node out for the whole run, bounded queue of 1, shed_expired
        // with a deadline: the first arrival fills the queue and times
        // out; everything behind it is shed on arrival. With retries at
        // zero, nothing ever completes.
        let cfg = SimConfig::new(DesignPoint::Tdimm, 1, BatchPolicy::new(1, 0.0))
            .with_faults(FaultPlan::none().with_node_outage(NodeOutage {
                start_us: 0.0,
                duration_us: 1e9,
            }))
            .with_retry(RetryPolicy::none().with_deadline(10.0))
            .with_admission(AdmissionPolicy {
                max_queue_depth: 1,
                shed_expired: true,
            });
        let pricer = ConstPricer(100.0);
        let r = simulate_with_pricer(&w, &cfg, &[0.0, 1.0, 2.0, 3.0], &pricer).expect("valid");
        assert_eq!(r.completed, 0);
        assert_eq!(r.outcomes.completed, 0);
        assert_eq!(
            r.outcomes.shed + r.outcomes.timed_out,
            4,
            "every arrival resolves without completing: {:?}",
            r.outcomes
        );
        assert!(r.outcomes.shed > 0, "the bounded queue must shed");
        assert!(r.is_conserved());
        assert!(r.outcomes.is_conserved(r.arrived));
        // The contract under test: all-zero statistics, not NaN.
        assert_eq!(r.availability, 0.0);
        assert_eq!(r.availability_at(1e9), 0.0);
        assert!(r.availability.is_finite());
        assert_eq!(r.latency, LatencySummary::default());
        assert_eq!(r.throughput_qps, 0.0);
        assert_eq!(r.goodput_qps, 0.0);
        assert!(r.shed_rate > 0.0 && r.shed_rate.is_finite());
    }

    /// A NaN SLA would silently judge every completion late; the report
    /// refuses it loudly instead (infinity is the "no SLA" spelling).
    #[test]
    #[should_panic(expected = "NaN SLA")]
    fn availability_at_rejects_nan_sla() {
        let w = Workload::facebook();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 1, BatchPolicy::new(1, 0.0));
        let r = simulate_with_pricer(&w, &cfg, &[0.0], &ConstPricer(10.0)).expect("valid");
        let _ = r.availability_at(f64::NAN);
    }
}
