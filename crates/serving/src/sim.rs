//! The discrete-event, virtual-time serving simulator.
//!
//! An open-loop arrival trace feeds a [`DynamicBatcher`]; sealed batches
//! dispatch to the first free GPU and are priced through a pluggable
//! [`BatchPricer`] backend ([`PricingBackend::Analytic`] — the closed-form
//! model — or [`PricingBackend::CycleCalibrated`] — node lookups replayed
//! on the event-driven DRAM/NMP co-simulator): node-backed designs
//! (`PMEM`, `TDIMM`) pay shared-TensorNode contention scaled by how many
//! GPUs are concurrently in flight, other designs pay their solo latency.
//! The loop advances virtual time event by event — arrivals, batch-window
//! flushes, GPU completions — and produces request-level tail-latency,
//! throughput, queue-depth and batch-occupancy metrics.
//!
//! # Event ordering
//!
//! Events are processed in ascending virtual time. Events at the *same*
//! instant are ordered by kind, then by creation order:
//!
//! 1. **GPU completions** — finished batches release their GPU before any
//!    same-instant work is admitted,
//! 2. **arrivals** — in trace order, so a request arriving exactly when a
//!    GPU frees can dispatch at that instant,
//! 3. **batch-window flushes** — the timer observes every same-instant
//!    arrival (a request arriving exactly at a window expiry joins the
//!    flushed batch rather than starting a new one).
//!
//! This ordering is part of the simulator's contract: it never depends on
//! heap internals, so [`simulate`] is bit-identical for identical inputs
//! even with colliding timestamps (see the regression tests).
//!
//! Everything is deterministic: same model, configuration, pricing backend
//! and arrival trace ⇒ bit-identical [`SimReport`].
//!
//! # Example
//!
//! ```
//! use tensordimm_serving::{simulate, ArrivalProcess, BatchPolicy, SimConfig};
//! use tensordimm_system::{DesignPoint, SystemModel};
//! use tensordimm_models::Workload;
//!
//! let model = SystemModel::paper_defaults();
//! let workload = Workload::youtube();
//! let arrivals = ArrivalProcess::Poisson { rate_qps: 50_000.0 }.sample_arrivals_us(400, 7);
//! let cfg = SimConfig::new(DesignPoint::Tdimm, 4, BatchPolicy::new(32, 500.0));
//! let report = simulate(&model, &workload, &cfg, &arrivals)?;
//! assert_eq!(report.completed, 400);
//! assert!(report.latency.p99_us >= report.latency.p50_us);
//! # Ok::<(), tensordimm_serving::SimError>(())
//! ```

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::error::Error;
use std::fmt;

use tensordimm_interconnect::InterconnectError;
use tensordimm_models::Workload;
use tensordimm_system::{
    BatchPricer, DesignPoint, HotRowCacheConfig, PricingBackend, SystemModel, TransferBackend,
};

use crate::batcher::{BatchPolicy, DynamicBatcher, QueuedRequest};
use crate::metrics::{BatchStats, LatencySummary, QueueDepthTracker, QueueStats};
use crate::request::{CompletionRecord, RequestRecord};

/// Errors from the serving simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration knob is unusable.
    InvalidConfig {
        /// Which knob.
        parameter: &'static str,
    },
    /// The arrival trace is not sorted ascending (or holds a non-finite or
    /// negative instant) at this index.
    BadArrival {
        /// Index of the offending arrival.
        index: usize,
    },
    /// Batch pricing through the system model failed.
    Pricing(InterconnectError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { parameter } => {
                write!(f, "simulator parameter {parameter} is unusable")
            }
            SimError::BadArrival { index } => {
                write!(
                    f,
                    "arrival trace is unsorted or non-finite at index {index}"
                )
            }
            SimError::Pricing(e) => write!(f, "batch pricing failed: {e}"),
        }
    }
}

impl Error for SimError {}

impl From<InterconnectError> for SimError {
    fn from(e: InterconnectError) -> Self {
        SimError::Pricing(e)
    }
}

/// Simulator configuration: the design point under test and its serving
/// resources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Which design point serves the traffic.
    pub design: DesignPoint,
    /// GPUs pulling batches (sharing one TensorNode for node designs).
    pub gpus: usize,
    /// The dynamic-batching policy.
    pub policy: BatchPolicy,
    /// Which batch-pricing backend services are costed with (ignored by
    /// [`simulate_with_pricer`], which takes the pricer directly).
    pub pricing: PricingBackend,
    /// Hot-row cache tier in front of the cycle backend's gather replays
    /// (disabled by default; the analytic backend ignores it — see
    /// [`PricingBackend::build_with_hot_rows`]).
    pub hot_rows: HotRowCacheConfig,
    /// Optional cutoff, µs: events after this virtual time are not
    /// processed, leaving requests queued / in flight for conservation
    /// accounting. `None` runs until every request completes.
    pub horizon_us: Option<f64>,
    /// Override the model's contended-transfer engine for this run
    /// (`None` inherits whatever the [`SystemModel`] is configured with,
    /// so a fabric-configured model is not silently reverted). Ignored by
    /// [`simulate_with_pricer`], whose caller owns the pricer.
    pub transfer: Option<TransferBackend>,
}

impl SimConfig {
    /// A configuration that runs to completion (no horizon) with the
    /// analytic pricing backend.
    pub fn new(design: DesignPoint, gpus: usize, policy: BatchPolicy) -> Self {
        SimConfig {
            design,
            gpus,
            policy,
            pricing: PricingBackend::Analytic,
            hot_rows: HotRowCacheConfig::disabled(),
            horizon_us: None,
            transfer: None,
        }
    }

    /// Stop the virtual clock at `horizon_us`.
    pub fn with_horizon(mut self, horizon_us: f64) -> Self {
        self.horizon_us = Some(horizon_us);
        self
    }

    /// Select the batch-pricing backend.
    pub fn with_pricing(mut self, pricing: PricingBackend) -> Self {
        self.pricing = pricing;
        self
    }

    /// Put a hot-row cache in front of the cycle backend's gather
    /// replays (no effect under the analytic backend).
    pub fn with_hot_rows(mut self, hot_rows: HotRowCacheConfig) -> Self {
        self.hot_rows = hot_rows;
        self
    }

    /// Price contended node → GPU transfers with this engine (analytic
    /// crossbar or measured fabric) instead of the model's configured one.
    pub fn with_transfer(mut self, transfer: TransferBackend) -> Self {
        self.transfer = Some(transfer);
        self
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.gpus == 0 {
            return Err(SimError::InvalidConfig { parameter: "gpus" });
        }
        self.policy.validate()?;
        if let Some(h) = self.horizon_us {
            if !h.is_finite() || h < 0.0 {
                return Err(SimError::InvalidConfig {
                    parameter: "horizon_us",
                });
            }
        }
        Ok(())
    }
}

/// Outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// The design point simulated.
    pub design: DesignPoint,
    /// GPUs configured.
    pub gpus: usize,
    /// The batching policy used.
    pub policy: BatchPolicy,
    /// Requests in the input trace.
    pub offered: usize,
    /// Requests whose arrival fell inside the simulated window.
    pub arrived: usize,
    /// Requests that completed.
    pub completed: usize,
    /// Requests on a GPU when the clock stopped.
    pub in_flight: usize,
    /// Requests still waiting in the batcher when the clock stopped.
    pub queued: usize,
    /// Final virtual time, µs (last completion, or the horizon).
    pub end_us: f64,
    /// Completed requests per second of virtual time.
    pub throughput_qps: f64,
    /// End-to-end latency summary over completed requests.
    pub latency: LatencySummary,
    /// Waiting-queue depth statistics.
    pub queue: QueueStats,
    /// Batch-occupancy statistics.
    pub batches: BatchStats,
    /// Per-request outcomes, indexed like the arrival trace.
    pub records: Vec<RequestRecord>,
}

impl SimReport {
    /// Requests whose arrival the horizon cut off.
    pub fn not_arrived(&self) -> usize {
        self.offered - self.arrived
    }

    /// Flow conservation: every offered request is accounted for exactly
    /// once (completed, in flight, queued, or not yet arrived).
    pub fn is_conserved(&self) -> bool {
        self.completed + self.in_flight + self.queued + self.not_arrived() == self.offered
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    /// Request `id` arrives.
    Arrival(usize),
    /// A batch-window timer fires; seal a partial batch if one expired.
    Flush,
    /// The batch on `gpu` completes.
    GpuDone(usize),
}

impl EventKind {
    /// Same-instant ordering (see the module docs): completions release
    /// their GPU first, arrivals are admitted next, and the batch-window
    /// timer runs last so it observes every same-instant arrival.
    fn tie_rank(&self) -> u8 {
        match self {
            EventKind::GpuDone(_) => 0,
            EventKind::Arrival(_) => 1,
            EventKind::Flush => 2,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time_us: f64,
    seq: u64,
    kind: EventKind,
}

// Min-heap ordering on (time, kind rank, seq): BinaryHeap is a max-heap,
// so compare reversed. The kind rank makes timestamp collisions follow the
// documented semantics instead of heap/push-order accidents; `seq` breaks
// the remaining ties deterministically (FIFO within a kind).
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time_us
            .total_cmp(&self.time_us)
            .then_with(|| other.kind.tie_rank().cmp(&self.kind.tie_rank()))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Event {}

/// A batch occupying a GPU.
#[derive(Debug, Clone)]
struct InFlight {
    dispatch_us: f64,
    requests: Vec<QueuedRequest>,
}

struct Engine<'a> {
    pricer: &'a dyn BatchPricer,
    workload: &'a Workload,
    design: DesignPoint,
    gpus: usize,
    heap: BinaryHeap<Event>,
    seq: u64,
    batcher: DynamicBatcher,
    /// Free GPU ids; popped from the back (lowest id first by construction).
    free_gpus: Vec<usize>,
    in_flight: Vec<Option<InFlight>>,
    in_flight_requests: usize,
    batch_stats: BatchStats,
    /// Memoized backend prices keyed on (batch size, active GPUs) — valid
    /// because [`BatchPricer`] implementations are deterministic.
    price_cache: HashMap<(usize, usize), f64>,
}

impl Engine<'_> {
    fn push_event(&mut self, time_us: f64, kind: EventKind) {
        self.heap.push(Event {
            time_us,
            seq: self.seq,
            kind,
        });
        self.seq += 1;
    }

    fn service_us(&mut self, batch: usize, active: usize) -> Result<f64, SimError> {
        if let Some(&us) = self.price_cache.get(&(batch, active)) {
            return Ok(us);
        }
        let cost = self
            .pricer
            .price(self.workload, batch, self.design, active)?;
        self.price_cache.insert((batch, active), cost.service_us);
        Ok(cost.service_us)
    }

    /// Seal and dispatch every ready batch while a GPU is free.
    ///
    /// All batches sealed at this instant overlap for their whole
    /// duration, so the cohort is assigned to GPUs first and priced
    /// afterwards at the resulting concurrency (batches already in flight
    /// from earlier events keep their dispatch-time pricing — the model's
    /// documented approximation).
    fn dispatch_ready(&mut self, now_us: f64) -> Result<(), SimError> {
        let mut cohort: Vec<(usize, Vec<QueuedRequest>)> = Vec::new();
        while !self.free_gpus.is_empty() {
            let Some(requests) = self.batcher.take_ready_batch(now_us) else {
                break;
            };
            let gpu = self.free_gpus.pop().expect("checked nonempty");
            cohort.push((gpu, requests));
        }
        let active = self.gpus - self.free_gpus.len();
        for (gpu, requests) in cohort {
            let service = self.service_us(requests.len(), active)?;
            self.batch_stats.record(requests.len());
            self.in_flight_requests += requests.len();
            self.in_flight[gpu] = Some(InFlight {
                dispatch_us: now_us,
                requests,
            });
            self.push_event(now_us + service, EventKind::GpuDone(gpu));
        }
        Ok(())
    }
}

/// Run the simulator: feed `arrivals_us` (sorted, µs) through the batcher
/// and `cfg.gpus` GPUs of `cfg.design`, pricing each dispatched batch with
/// the backend `cfg.pricing` selects (constructed fresh over `model`; use
/// [`simulate_with_pricer`] to share a warmed-up [`CyclePricer`] latency
/// table across runs).
///
/// [`CyclePricer`]: tensordimm_system::CyclePricer
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for unusable knobs,
/// [`SimError::BadArrival`] for an unsorted/non-finite trace, and
/// [`SimError::Pricing`] if the system model rejects a batch.
pub fn simulate(
    model: &SystemModel,
    workload: &Workload,
    cfg: &SimConfig,
    arrivals_us: &[f64],
) -> Result<SimReport, SimError> {
    let model = resolve_transfer(model, cfg);
    let pricer = cfg.pricing.build_with_hot_rows(&model, cfg.hot_rows);
    simulate_with_pricer(workload, cfg, arrivals_us, pricer.as_ref())
}

/// The model to price with: `cfg.transfer` overrides the model's
/// contended-transfer engine (cloning only when they actually differ);
/// `None` inherits the model's own configuration.
pub(crate) fn resolve_transfer<'a>(
    model: &'a SystemModel,
    cfg: &SimConfig,
) -> std::borrow::Cow<'a, SystemModel> {
    match cfg.transfer {
        Some(t) if t != model.config().transfer => {
            std::borrow::Cow::Owned(model.clone().with_transfer(t))
        }
        _ => std::borrow::Cow::Borrowed(model),
    }
}

/// [`simulate`] with an explicit pricing backend. `cfg.pricing` is ignored
/// — the caller owns the pricer, which lets a sweep reuse one cycle
/// pricer's memoized latency table across many runs.
///
/// # Errors
///
/// As [`simulate`].
pub fn simulate_with_pricer(
    workload: &Workload,
    cfg: &SimConfig,
    arrivals_us: &[f64],
    pricer: &dyn BatchPricer,
) -> Result<SimReport, SimError> {
    cfg.validate()?;
    for (i, &t) in arrivals_us.iter().enumerate() {
        let sorted = i == 0 || arrivals_us[i - 1] <= t;
        if !t.is_finite() || t < 0.0 || !sorted {
            return Err(SimError::BadArrival { index: i });
        }
    }

    let n = arrivals_us.len();
    let mut engine = Engine {
        pricer,
        workload,
        design: cfg.design,
        gpus: cfg.gpus,
        heap: BinaryHeap::with_capacity(2 * n + cfg.gpus),
        seq: 0,
        batcher: DynamicBatcher::new(cfg.policy),
        free_gpus: (0..cfg.gpus).rev().collect(),
        in_flight: vec![None; cfg.gpus],
        in_flight_requests: 0,
        batch_stats: BatchStats::new(cfg.policy.max_batch),
        price_cache: HashMap::new(),
    };
    for (id, &t) in arrivals_us.iter().enumerate() {
        engine.push_event(t, EventKind::Arrival(id));
    }

    let mut records: Vec<RequestRecord> = arrivals_us
        .iter()
        .map(|&t| RequestRecord {
            arrival_us: t,
            completion: None,
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::with_capacity(n);
    let mut queue_tracker = QueueDepthTracker::default();
    let mut arrived = 0usize;
    let mut completed = 0usize;
    let mut clock_us = 0.0f64;
    let mut horizon_hit = false;

    while let Some(event) = engine.heap.pop() {
        if let Some(h) = cfg.horizon_us {
            if event.time_us > h {
                horizon_hit = true;
                break;
            }
        }
        queue_tracker.advance(event.time_us, engine.batcher.depth());
        clock_us = clock_us.max(event.time_us);
        match event.kind {
            EventKind::Arrival(id) => {
                arrived += 1;
                engine.batcher.push(QueuedRequest {
                    id,
                    arrival_us: event.time_us,
                });
                // Arm the batch-window timer for this request's wait budget.
                engine.push_event(event.time_us + cfg.policy.max_wait_us, EventKind::Flush);
                engine.dispatch_ready(event.time_us)?;
            }
            EventKind::Flush => {
                engine.dispatch_ready(event.time_us)?;
            }
            EventKind::GpuDone(gpu) => {
                let batch = engine.in_flight[gpu]
                    .take()
                    .expect("GpuDone implies a batch in flight");
                let size = batch.requests.len();
                for q in &batch.requests {
                    records[q.id].completion = Some(CompletionRecord {
                        dispatch_us: batch.dispatch_us,
                        finish_us: event.time_us,
                        batch_size: size,
                        gpu,
                    });
                    latencies.push(event.time_us - q.arrival_us);
                }
                completed += size;
                engine.in_flight_requests -= size;
                engine.free_gpus.push(gpu);
                engine.dispatch_ready(event.time_us)?;
            }
        }
    }

    let end_us = if horizon_hit {
        cfg.horizon_us.expect("horizon_hit implies a horizon")
    } else {
        clock_us
    };
    let queue = queue_tracker.finish(end_us, engine.batcher.depth());
    let mut batches = engine.batch_stats;
    batches.finalize();
    Ok(SimReport {
        design: cfg.design,
        gpus: cfg.gpus,
        policy: cfg.policy,
        offered: n,
        arrived,
        completed,
        in_flight: engine.in_flight_requests,
        queued: engine.batcher.depth(),
        end_us,
        throughput_qps: if end_us > 0.0 {
            completed as f64 / (end_us * 1e-6)
        } else {
            0.0
        },
        latency: LatencySummary::from_latencies(latencies),
        queue,
        batches,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalProcess;

    fn model() -> SystemModel {
        SystemModel::paper_defaults()
    }

    fn poisson(rate_qps: f64, n: usize, seed: u64) -> Vec<f64> {
        ArrivalProcess::Poisson { rate_qps }.sample_arrivals_us(n, seed)
    }

    #[test]
    fn drains_every_request_and_conserves() {
        let m = model();
        let w = Workload::facebook();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 4, BatchPolicy::new(16, 200.0));
        let arrivals = poisson(100_000.0, 500, 11);
        let r = simulate(&m, &w, &cfg, &arrivals).expect("valid");
        assert_eq!(r.offered, 500);
        assert_eq!(r.completed, 500);
        assert_eq!(r.queued + r.in_flight, 0);
        assert!(r.is_conserved());
        assert_eq!(r.latency.count, 500);
        assert!(r.end_us >= *arrivals.last().expect("nonempty"));
    }

    #[test]
    fn horizon_leaves_work_behind_but_conserves() {
        let m = model();
        let w = Workload::facebook();
        let arrivals = poisson(400_000.0, 800, 13);
        let mid = arrivals[400];
        let cfg =
            SimConfig::new(DesignPoint::Pmem, 2, BatchPolicy::new(16, 200.0)).with_horizon(mid);
        let r = simulate(&m, &w, &cfg, &arrivals).expect("valid");
        assert!(r.completed < r.offered, "horizon must cut work off");
        assert!(r.arrived < r.offered);
        assert!(r.is_conserved());
        assert_eq!(r.end_us, mid);
    }

    #[test]
    fn deterministic_per_inputs() {
        let m = model();
        let w = Workload::youtube();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 4, BatchPolicy::new(32, 300.0));
        let arrivals = poisson(80_000.0, 400, 21);
        let a = simulate(&m, &w, &cfg, &arrivals).expect("valid");
        let b = simulate(&m, &w, &cfg, &arrivals).expect("valid");
        assert_eq!(a, b, "same inputs must replay bit-identically");
    }

    #[test]
    fn record_times_are_ordered_and_batches_bounded() {
        let m = model();
        let w = Workload::ncf();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 3, BatchPolicy::new(8, 150.0));
        let r = simulate(&m, &w, &cfg, &poisson(150_000.0, 300, 5)).expect("valid");
        for rec in &r.records {
            let c = rec.completion.expect("drained run completes everything");
            assert!(c.dispatch_us >= rec.arrival_us);
            assert!(c.finish_us > c.dispatch_us);
            assert!(c.batch_size >= 1 && c.batch_size <= 8);
            assert!(c.gpu < 3);
        }
        assert!(r.batches.batches > 0);
        assert!(r.batches.mean_occupancy >= 1.0);
        assert!(r.batches.mean_occupancy <= 8.0);
    }

    #[test]
    fn gpu_serves_one_batch_at_a_time() {
        let m = model();
        let w = Workload::facebook();
        let cfg = SimConfig::new(DesignPoint::Pmem, 2, BatchPolicy::new(16, 100.0));
        let r = simulate(&m, &w, &cfg, &poisson(200_000.0, 400, 7)).expect("valid");
        // Per GPU, batch service intervals must not overlap.
        for gpu in 0..2 {
            let mut intervals: Vec<(f64, f64)> = r
                .records
                .iter()
                .filter_map(|rec| rec.completion)
                .filter(|c| c.gpu == gpu)
                .map(|c| (c.dispatch_us, c.finish_us))
                .collect();
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            intervals.dedup();
            for w in intervals.windows(2) {
                assert!(
                    w[1].0 >= w[0].1 - 1e-6,
                    "gpu {gpu} overlaps: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn tdimm_tail_beats_pmem_under_identical_traffic() {
        let m = model();
        let w = Workload::facebook();
        let arrivals = poisson(120_000.0, 600, 31);
        let policy = BatchPolicy::new(32, 300.0);
        let t = simulate(
            &m,
            &w,
            &SimConfig::new(DesignPoint::Tdimm, 8, policy),
            &arrivals,
        )
        .expect("valid");
        let p = simulate(
            &m,
            &w,
            &SimConfig::new(DesignPoint::Pmem, 8, policy),
            &arrivals,
        )
        .expect("valid");
        assert!(
            t.latency.p99_us < p.latency.p99_us,
            "TDIMM p99 {} vs PMEM p99 {}",
            t.latency.p99_us,
            p.latency.p99_us
        );
    }

    /// Fixed-cost pricer for constructing exact timestamp collisions.
    struct ConstPricer(f64);

    impl tensordimm_system::BatchPricer for ConstPricer {
        fn price(
            &self,
            _workload: &Workload,
            _batch: usize,
            _design: DesignPoint,
            active_gpus: usize,
        ) -> Result<tensordimm_system::BatchCost, tensordimm_system::serving::ServingError>
        {
            if active_gpus == 0 {
                return Err(tensordimm_system::serving::ServingError::InvalidLink {
                    parameter: "active_gpus",
                });
            }
            Ok(tensordimm_system::BatchCost {
                service_us: self.0,
                port_bound: false,
            })
        }

        fn backend(&self) -> tensordimm_system::PricingBackend {
            tensordimm_system::PricingBackend::Analytic
        }
    }

    /// Colliding timestamps: an arrival lands exactly on a batch-window
    /// expiry, and a GPU completion lands exactly on a later arrival. The
    /// documented tie order (GpuDone, then Arrival, then Flush) must hold
    /// and the whole run must be bit-identical across replays —
    /// independent of heap internals.
    #[test]
    fn colliding_events_are_ordered_deterministically() {
        let w = Workload::facebook();
        // One GPU, 100 µs service, 100 µs batch window, batches of <= 4.
        let cfg = SimConfig::new(DesignPoint::Tdimm, 1, BatchPolicy::new(4, 100.0));
        let arrivals = [0.0, 100.0, 200.0];
        let pricer = ConstPricer(100.0);
        let r = simulate_with_pricer(&w, &cfg, &arrivals, &pricer).expect("valid");

        let c0 = r.records[0].completion.expect("drained");
        let c1 = r.records[1].completion.expect("drained");
        let c2 = r.records[2].completion.expect("drained");
        // t=100: request 1 arrives (rank 1) exactly when request 0's
        // window expires (rank 2): the arrival is admitted first, so it
        // joins the flushed batch — {0, 1} dispatches together at 100.
        assert_eq!(
            (c0.dispatch_us, c0.finish_us, c0.batch_size),
            (100.0, 200.0, 2)
        );
        assert_eq!(
            (c1.dispatch_us, c1.finish_us, c1.batch_size),
            (100.0, 200.0, 2)
        );
        // t=200: batch {0, 1} completes (rank 0) exactly as request 2
        // arrives (rank 1); request 2 then waits out its own window and
        // dispatches alone at 300.
        assert_eq!(
            (c2.dispatch_us, c2.finish_us, c2.batch_size),
            (300.0, 400.0, 1)
        );

        // Bit-identical replay, collisions and all.
        let again = simulate_with_pricer(&w, &cfg, &arrivals, &pricer).expect("valid");
        assert_eq!(r, again);
    }

    /// Concurrency-sensitive pricer exposing the GpuDone-before-Arrival
    /// tie rule: service time scales with how many GPUs are active at
    /// dispatch.
    struct ActiveScaledPricer(f64);

    impl tensordimm_system::BatchPricer for ActiveScaledPricer {
        fn price(
            &self,
            _workload: &Workload,
            _batch: usize,
            _design: DesignPoint,
            active_gpus: usize,
        ) -> Result<tensordimm_system::BatchCost, tensordimm_system::serving::ServingError>
        {
            Ok(tensordimm_system::BatchCost {
                service_us: self.0 * active_gpus as f64,
                port_bound: false,
            })
        }

        fn backend(&self) -> tensordimm_system::PricingBackend {
            tensordimm_system::PricingBackend::Analytic
        }
    }

    /// A batch completing at the exact instant a request arrives must
    /// release its GPU *before* the arrival dispatches: the new batch is
    /// priced at solo concurrency, not as if it overlapped the batch that
    /// just finished.
    #[test]
    fn gpu_completion_frees_capacity_before_same_instant_dispatch() {
        let w = Workload::youtube();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 2, BatchPolicy::new(1, 0.0));
        // Request 0 runs over [0, 100) at active=1. Request 1 arrives at
        // exactly 100: the completion is processed first, so request 1
        // also dispatches at active=1 and takes 100 µs — were arrivals
        // processed first it would be priced at active=2 (200 µs).
        let arrivals = [0.0, 100.0];
        let pricer = ActiveScaledPricer(100.0);
        let r = simulate_with_pricer(&w, &cfg, &arrivals, &pricer).expect("valid");
        let c1 = r.records[1].completion.expect("drained");
        assert_eq!(c1.dispatch_us, 100.0);
        assert_eq!(
            c1.finish_us, 200.0,
            "same-instant dispatch must be priced after the GPU freed"
        );
    }

    #[test]
    fn cycle_backend_is_deterministic_and_selectable() {
        let m = model();
        let w = Workload::youtube();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 2, BatchPolicy::new(8, 200.0))
            .with_pricing(tensordimm_system::PricingBackend::CycleCalibrated);
        assert_eq!(
            cfg.pricing,
            tensordimm_system::PricingBackend::CycleCalibrated
        );
        let arrivals = poisson(60_000.0, 60, 17);
        let a = simulate(&m, &w, &cfg, &arrivals).expect("valid");
        let b = simulate(&m, &w, &cfg, &arrivals).expect("valid");
        assert_eq!(a, b, "cycle-calibrated runs must replay bit-identically");
        assert_eq!(a.completed, 60);
        // And it genuinely prices differently from the analytic backend
        // (the cycle replay measures, it does not echo the constants).
        let analytic = simulate(
            &m,
            &w,
            &SimConfig::new(DesignPoint::Tdimm, 2, BatchPolicy::new(8, 200.0)),
            &arrivals,
        )
        .expect("valid");
        assert_ne!(
            a.latency.p99_us, analytic.latency.p99_us,
            "backends should not be bit-equal on node designs"
        );
    }

    #[test]
    fn fabric_transfer_backend_is_selectable_and_close_to_analytic() {
        let m = model();
        let w = Workload::facebook();
        let arrivals = poisson(120_000.0, 200, 23);
        let base = SimConfig::new(DesignPoint::Pmem, 4, BatchPolicy::new(16, 200.0));
        let analytic = simulate(&m, &w, &base, &arrivals).expect("valid");
        let fabric_cfg = base.with_transfer(TransferBackend::Fabric(
            tensordimm_system::TopologyKind::FullyConnected,
        ));
        let fabric = simulate(&m, &w, &fabric_cfg, &arrivals).expect("valid");
        assert_eq!(fabric.completed, 200);
        // Same crossbar, measured instead of closed-form: tails agree
        // loosely, and the run stays deterministic.
        let rel = (fabric.latency.p99_us - analytic.latency.p99_us).abs() / analytic.latency.p99_us;
        assert!(
            rel < 0.15,
            "fabric p99 {} vs analytic p99 {}",
            fabric.latency.p99_us,
            analytic.latency.p99_us
        );
        let again = simulate(&m, &w, &fabric_cfg, &arrivals).expect("valid");
        assert_eq!(fabric, again);
        // `None` inherits the model's own engine: a fabric-configured
        // model without an override must match the explicit override.
        let fabric_model = m.clone().with_transfer(TransferBackend::Fabric(
            tensordimm_system::TopologyKind::FullyConnected,
        ));
        let inherited = simulate(&fabric_model, &w, &base, &arrivals).expect("valid");
        assert_eq!(inherited, fabric);
    }

    #[test]
    fn empty_trace_is_a_quiet_no_op() {
        let m = model();
        let w = Workload::fox();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 1, BatchPolicy::new(4, 50.0));
        let r = simulate(&m, &w, &cfg, &[]).expect("valid");
        assert_eq!(r.offered, 0);
        assert_eq!(r.completed, 0);
        assert!(r.is_conserved());
        assert_eq!(r.throughput_qps, 0.0);
    }

    #[test]
    fn bad_inputs_rejected() {
        let m = model();
        let w = Workload::fox();
        let good = SimConfig::new(DesignPoint::Tdimm, 1, BatchPolicy::new(4, 50.0));
        assert!(matches!(
            simulate(&m, &w, &SimConfig { gpus: 0, ..good }, &[]),
            Err(SimError::InvalidConfig { parameter: "gpus" })
        ));
        assert!(matches!(
            simulate(
                &m,
                &w,
                &SimConfig {
                    policy: BatchPolicy::new(0, 50.0),
                    ..good
                },
                &[]
            ),
            Err(SimError::InvalidConfig {
                parameter: "max_batch"
            })
        ));
        assert!(matches!(
            simulate(&m, &w, &good.with_horizon(f64::NAN), &[]),
            Err(SimError::InvalidConfig {
                parameter: "horizon_us"
            })
        ));
        assert!(matches!(
            simulate(&m, &w, &good, &[5.0, 3.0]),
            Err(SimError::BadArrival { index: 1 })
        ));
        assert!(matches!(
            simulate(&m, &w, &good, &[-1.0]),
            Err(SimError::BadArrival { index: 0 })
        ));
        assert!(!SimError::InvalidConfig { parameter: "gpus" }
            .to_string()
            .is_empty());
    }
}
