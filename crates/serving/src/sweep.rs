//! Offered-load sweeps and SLA analysis.
//!
//! The serving question the paper's Fig. 6c argument poses at request
//! granularity: *how much traffic can each design absorb before its tail
//! latency violates the SLA?* A sweep runs the simulator at increasing
//! offered loads and reports the latency/throughput curve; the sustainable
//! QPS is the highest offered load of the *passing prefix* — the rates a
//! capacity planner could actually admit before first violating the SLA.
//!
//! Sweep points are mutually independent (each rate gets its own arrival
//! trace and simulator run; only the memoized pricing tables are shared,
//! and those are deterministic pure functions of their keys), so
//! [`offered_load_sweep_par`] fans them across a scoped worker pool and
//! merges in input order — the result is bit-identical to the sequential
//! [`offered_load_sweep`] at any worker count.

use tensordimm_models::Workload;
use tensordimm_system::SystemModel;

use crate::arrivals::ArrivalProcess;
use crate::sim::{simulate_with_pricer, SimConfig, SimError, SimReport};

/// One point of an offered-load sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPoint {
    /// Offered load the arrival trace was drawn at, queries per second.
    pub offered_qps: f64,
    /// The simulation outcome.
    pub report: SimReport,
}

/// The arrival trace for one sweep rate: `requests` Poisson arrivals at
/// `rate_qps`, deterministic per `seed`. Every rate reuses the same seed,
/// so curves differ only by load — and because sampling is hoisted out of
/// the priced path, the per-rate trace is a pure function of
/// `(rate, requests, seed)`, identical whether the sweep runs
/// sequentially or in parallel (pinned by the trace-identity tests).
pub fn sweep_arrivals_us(rate_qps: f64, requests: usize, seed: u64) -> Vec<f64> {
    ArrivalProcess::Poisson { rate_qps }.sample_arrivals_us(requests, seed)
}

/// Simulate `cfg` under Poisson traffic at each rate in `rates_qps`,
/// `requests` per point, deterministic per `seed` (each rate reuses the
/// same seed so curves differ only by load).
///
/// One pricing backend instance (per `cfg.pricing`) is shared across all
/// rates, so a cycle-calibrated sweep replays each distinct batch shape
/// once and serves every later load point from the memoized latency table.
///
/// This is the sequential oracle; [`offered_load_sweep_par`] is the
/// bit-identical parallel path.
///
/// # Errors
///
/// Propagates [`SimError`] from any point.
pub fn offered_load_sweep(
    model: &SystemModel,
    workload: &Workload,
    cfg: &SimConfig,
    rates_qps: &[f64],
    requests: usize,
    seed: u64,
) -> Result<Vec<LoadPoint>, SimError> {
    offered_load_sweep_par(model, workload, cfg, rates_qps, requests, seed, 1)
}

/// [`offered_load_sweep`] with the independent load points fanned across
/// up to `workers` scoped threads (1 = the sequential oracle path).
///
/// Arrival sampling is hoisted out of the priced path: every rate's trace
/// is drawn up front (identical to the sequential order), then the
/// simulator runs are distributed over the pool and merged back **in
/// input order**. One pricing backend is shared by all workers — with the
/// cycle-calibrated backend, concurrent cold misses for distinct batch
/// shapes replay in parallel while same-shape misses share one replay —
/// so the returned curve is bit-identical at any worker count.
///
/// # Errors
///
/// Propagates [`SimError`]; when several points fail, the error of the
/// earliest-index rate is returned (matching the sequential path).
#[allow(clippy::too_many_arguments)]
pub fn offered_load_sweep_par(
    model: &SystemModel,
    workload: &Workload,
    cfg: &SimConfig,
    rates_qps: &[f64],
    requests: usize,
    seed: u64,
    workers: usize,
) -> Result<Vec<LoadPoint>, SimError> {
    let model = crate::sim::resolve_transfer(model, cfg);
    let pricer = cfg.pricing.build_with_hot_rows(&model, cfg.hot_rows);
    let pricer = pricer.as_ref();
    // Sample every rate's arrivals before any pricing happens.
    let jobs: Vec<(f64, Vec<f64>)> = rates_qps
        .iter()
        .map(|&rate_qps| (rate_qps, sweep_arrivals_us(rate_qps, requests, seed)))
        .collect();
    tensordimm_exec::par_map(&jobs, workers, |_, (rate_qps, arrivals)| {
        Ok(LoadPoint {
            offered_qps: *rate_qps,
            report: simulate_with_pricer(workload, cfg, arrivals, pricer)?,
        })
    })
    .into_iter()
    .collect()
}

/// The sustainable QPS at the SLA: the highest offered load of the
/// *passing prefix* of `points` — every point up to and including it must
/// complete work and meet `sla_p99_us`. `None` when the very first point
/// already violates it (or `points` is empty).
///
/// Prefix (not global-filter) semantics matter for non-monotone curves:
/// overload points are noisy, and a lucky high-rate pass after an SLA
/// violation is not capacity a planner could admit — the frontier stops
/// at the first violating rate (see the regression test).
pub fn sustainable_qps(points: &[LoadPoint], sla_p99_us: f64) -> Option<f64> {
    points
        .iter()
        .take_while(|p| p.report.completed > 0 && p.report.latency.p99_us <= sla_p99_us)
        .map(|p| p.offered_qps)
        .fold(None, |best, q| Some(best.map_or(q, |b: f64| b.max(q))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::BatchPolicy;
    use crate::metrics::LatencySummary;
    use tensordimm_system::{DesignPoint, PricingBackend};

    #[test]
    fn overload_blows_up_tail_latency() {
        let model = SystemModel::paper_defaults();
        let w = Workload::facebook();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 4, BatchPolicy::new(32, 300.0));
        // 4 GPUs saturate well under 1M qps on Facebook; 5M qps is deep
        // overload, so the backlog (not the batch window) sets the tail.
        let points =
            offered_load_sweep(&model, &w, &cfg, &[10_000.0, 5_000_000.0], 1200, 3).expect("valid");
        assert!(
            points[1].report.latency.p99_us > 3.0 * points[0].report.latency.p99_us,
            "p99 in overload {} vs light load {}",
            points[1].report.latency.p99_us,
            points[0].report.latency.p99_us
        );
        // Throughput saturates: delivered qps in overload is far below offered.
        assert!(points[1].report.throughput_qps < 0.5 * points[1].offered_qps);
    }

    #[test]
    fn sustainable_qps_picks_highest_passing_rate() {
        let model = SystemModel::paper_defaults();
        let w = Workload::youtube();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 8, BatchPolicy::new(32, 300.0));
        let rates = [10_000.0, 50_000.0, 20_000_000.0];
        let points = offered_load_sweep(&model, &w, &cfg, &rates, 2000, 9).expect("valid");
        // An SLA of twice the light-load tail admits the low rates, while
        // deep overload (20M qps against ~1.4M qps of capacity) blows it.
        let sla = 2.0 * points[0].report.latency.p99_us;
        let q = sustainable_qps(&points, sla).expect("low rates meet a generous SLA");
        assert!(
            (10_000.0..20_000_000.0).contains(&q),
            "sustainable {q:.0} qps"
        );
        assert!(
            points[2].report.latency.p99_us > sla,
            "20M qps p99 {:.0} µs should violate the {sla:.0} µs SLA",
            points[2].report.latency.p99_us
        );
        // An impossible SLA admits nothing.
        assert_eq!(sustainable_qps(&points, 0.0), None);
    }

    /// A synthetic load point with a pinned p99 (everything else benign).
    fn synthetic_point(offered_qps: f64, p99_us: f64) -> LoadPoint {
        LoadPoint {
            offered_qps,
            report: SimReport {
                design: DesignPoint::Tdimm,
                gpus: 1,
                policy: BatchPolicy::new(1, 0.0),
                offered: 10,
                arrived: 10,
                completed: 10,
                in_flight: 0,
                queued: 0,
                retry_pending: 0,
                end_us: 1e6,
                throughput_qps: offered_qps,
                goodput_qps: offered_qps,
                shed_rate: 0.0,
                availability: 1.0,
                sla_us: f64::INFINITY,
                outcomes: crate::metrics::OutcomeCounts {
                    completed: 10,
                    ..Default::default()
                },
                hedge_dispatches: 0,
                latency: LatencySummary::from_latencies(vec![p99_us; 10]),
                queue: Default::default(),
                batches: crate::metrics::BatchStats::new(1),
                records: Vec::new(),
            },
        }
    }

    /// Regression for the frontier semantics: a non-monotone curve whose
    /// middle rate violates the SLA must report the *prefix* frontier,
    /// not the lucky high-rate pass after the violation.
    #[test]
    fn sustainable_qps_stops_at_first_violation() {
        let sla = 500.0;
        let points = vec![
            synthetic_point(10_000.0, 100.0), // passes
            synthetic_point(20_000.0, 200.0), // passes
            synthetic_point(30_000.0, 900.0), // violates: frontier stops here
            synthetic_point(40_000.0, 400.0), // noisy overload pass — must NOT count
        ];
        assert_eq!(sustainable_qps(&points, sla), Some(20_000.0));
        // The old filter-everything semantics would have returned 40k.
        // First point violating => no sustainable rate at all.
        assert_eq!(sustainable_qps(&points[2..], sla), None);
        // A zero-completion point also terminates the prefix.
        let mut stalled = synthetic_point(25_000.0, 100.0);
        stalled.report.completed = 0;
        let points = vec![
            synthetic_point(10_000.0, 100.0),
            stalled,
            synthetic_point(40_000.0, 100.0),
        ];
        assert_eq!(sustainable_qps(&points, sla), Some(10_000.0));
        assert_eq!(sustainable_qps(&[], sla), None);
    }

    /// The parallel sweep is bit-identical to the sequential oracle, and
    /// the hoisted per-rate arrival traces match the direct sampling.
    #[test]
    fn parallel_sweep_matches_sequential_bit_for_bit() {
        let model = SystemModel::paper_defaults();
        let w = Workload::ncf();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 2, BatchPolicy::new(8, 200.0));
        let rates = [20_000.0, 60_000.0, 120_000.0, 240_000.0];
        let seq = offered_load_sweep(&model, &w, &cfg, &rates, 150, 7).expect("valid");
        for workers in [2usize, 8] {
            let par =
                offered_load_sweep_par(&model, &w, &cfg, &rates, 150, 7, workers).expect("valid");
            assert_eq!(seq, par, "workers={workers}");
        }
        // Per-rate traces are the pure function the docs promise.
        for (i, &rate) in rates.iter().enumerate() {
            let expect = sweep_arrivals_us(rate, 150, 7);
            let got: Vec<f64> = seq[i].report.records.iter().map(|r| r.arrival_us).collect();
            assert_eq!(got, expect, "rate {rate}");
        }
    }

    /// The cycle backend's shared memo table must not break parallel
    /// bit-identity (concurrent cold misses resolve to one deterministic
    /// replay per key).
    #[test]
    fn parallel_sweep_matches_sequential_under_cycle_pricing() {
        let model = SystemModel::paper_defaults();
        let w = Workload::youtube();
        let cfg = SimConfig::new(DesignPoint::Pmem, 2, BatchPolicy::new(4, 150.0))
            .with_pricing(PricingBackend::CycleCalibrated);
        let rates = [30_000.0, 90_000.0];
        let seq = offered_load_sweep(&model, &w, &cfg, &rates, 40, 13).expect("valid");
        let par = offered_load_sweep_par(&model, &w, &cfg, &rates, 40, 13, 4).expect("valid");
        assert_eq!(seq, par);
    }
}
