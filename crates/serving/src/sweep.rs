//! Offered-load sweeps and SLA analysis.
//!
//! The serving question the paper's Fig. 6c argument poses at request
//! granularity: *how much traffic can each design absorb before its tail
//! latency violates the SLA?* A sweep runs the simulator at increasing
//! offered loads and reports the latency/throughput curve; the sustainable
//! QPS is the highest offered load whose p99 stays inside the SLA.

use tensordimm_models::Workload;
use tensordimm_system::SystemModel;

use crate::arrivals::ArrivalProcess;
use crate::sim::{simulate_with_pricer, SimConfig, SimError, SimReport};

/// One point of an offered-load sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPoint {
    /// Offered load the arrival trace was drawn at, queries per second.
    pub offered_qps: f64,
    /// The simulation outcome.
    pub report: SimReport,
}

/// Simulate `cfg` under Poisson traffic at each rate in `rates_qps`,
/// `requests` per point, deterministic per `seed` (each rate reuses the
/// same seed so curves differ only by load).
///
/// One pricing backend instance (per `cfg.pricing`) is shared across all
/// rates, so a cycle-calibrated sweep replays each distinct batch shape
/// once and serves every later load point from the memoized latency table.
///
/// # Errors
///
/// Propagates [`SimError`] from any point.
pub fn offered_load_sweep(
    model: &SystemModel,
    workload: &Workload,
    cfg: &SimConfig,
    rates_qps: &[f64],
    requests: usize,
    seed: u64,
) -> Result<Vec<LoadPoint>, SimError> {
    let pricer = cfg.pricing.build(model);
    rates_qps
        .iter()
        .map(|&rate_qps| {
            let arrivals = ArrivalProcess::Poisson { rate_qps }.sample_arrivals_us(requests, seed);
            Ok(LoadPoint {
                offered_qps: rate_qps,
                report: simulate_with_pricer(workload, cfg, &arrivals, pricer.as_ref())?,
            })
        })
        .collect()
}

/// The highest offered load in `points` whose p99 latency meets
/// `sla_p99_us` — the design's sustainable QPS at that SLA. `None` when no
/// point meets it.
pub fn sustainable_qps(points: &[LoadPoint], sla_p99_us: f64) -> Option<f64> {
    points
        .iter()
        .filter(|p| p.report.completed > 0 && p.report.latency.p99_us <= sla_p99_us)
        .map(|p| p.offered_qps)
        .fold(None, |best, q| Some(best.map_or(q, |b: f64| b.max(q))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::BatchPolicy;
    use tensordimm_system::DesignPoint;

    #[test]
    fn overload_blows_up_tail_latency() {
        let model = SystemModel::paper_defaults();
        let w = Workload::facebook();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 4, BatchPolicy::new(32, 300.0));
        // 4 GPUs saturate well under 1M qps on Facebook; 5M qps is deep
        // overload, so the backlog (not the batch window) sets the tail.
        let points =
            offered_load_sweep(&model, &w, &cfg, &[10_000.0, 5_000_000.0], 1200, 3).expect("valid");
        assert!(
            points[1].report.latency.p99_us > 3.0 * points[0].report.latency.p99_us,
            "p99 in overload {} vs light load {}",
            points[1].report.latency.p99_us,
            points[0].report.latency.p99_us
        );
        // Throughput saturates: delivered qps in overload is far below offered.
        assert!(points[1].report.throughput_qps < 0.5 * points[1].offered_qps);
    }

    #[test]
    fn sustainable_qps_picks_highest_passing_rate() {
        let model = SystemModel::paper_defaults();
        let w = Workload::youtube();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 8, BatchPolicy::new(32, 300.0));
        let rates = [10_000.0, 50_000.0, 20_000_000.0];
        let points = offered_load_sweep(&model, &w, &cfg, &rates, 2000, 9).expect("valid");
        // An SLA of twice the light-load tail admits the low rates, while
        // deep overload (20M qps against ~1.4M qps of capacity) blows it.
        let sla = 2.0 * points[0].report.latency.p99_us;
        let q = sustainable_qps(&points, sla).expect("low rates meet a generous SLA");
        assert!(
            (10_000.0..20_000_000.0).contains(&q),
            "sustainable {q:.0} qps"
        );
        assert!(
            points[2].report.latency.p99_us > sla,
            "20M qps p99 {:.0} µs should violate the {sla:.0} µs SLA",
            points[2].report.latency.p99_us
        );
        // An impossible SLA admits nothing.
        assert_eq!(sustainable_qps(&points, 0.0), None);
    }
}
