//! Shared DRAM-traffic generation for the Fig. 11 / Fig. 12 harnesses.
//!
//! Mirrors the paper's methodology (Section 5): generate the memory
//! accesses of each tensor operation and feed them to the cycle-level DRAM
//! simulator, measuring achieved bandwidth. The TensorNode side replays
//! one representative DIMM's slice (slices are symmetric) and scales by
//! the DIMM count; the CPU side replays the full access stream over the
//! conventional 8-channel memory system.

use tensordimm_dram::{DramConfig, MemorySystem, Trace, TraceRunner};
use tensordimm_isa::{DimmContext, Instruction, ReduceOp};
use tensordimm_nmp::{NmpConfig, NmpCore};
use tensordimm_serving::zipf_lookup_rows;

/// Which tensor operation to generate traffic for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Embedding lookup.
    Gather,
    /// Element-wise reduction of two tensors.
    Reduce,
    /// Grouped element-wise average.
    Average {
        /// Embeddings per pooled output.
        group: u64,
    },
}

impl OpKind {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::Gather => "GATHER",
            OpKind::Reduce => "REDUCE",
            OpKind::Average { .. } => "AVERAGE",
        }
    }
}

/// One bandwidth experiment: `count` embeddings of `vec_blocks` blocks.
#[derive(Debug, Clone, Copy)]
pub struct OpExperiment {
    /// The operation.
    pub op: OpKind,
    /// Embeddings processed (for AVERAGE: inputs, not outputs).
    pub count: u64,
    /// 64-byte blocks per embedding vector.
    pub vec_blocks: u64,
    /// Rows in the source table (GATHER index range).
    pub table_rows: u64,
    /// RNG seed for GATHER indices.
    pub seed: u64,
    /// Popularity skew of GATHER indices: `0.0` draws rows uniformly (the
    /// paper's worst case for row-buffer locality), `> 0.0` draws
    /// Zipf-skewed rows (rank 0 hottest) as recommendation serving traffic
    /// does.
    pub zipf_s: f64,
}

/// Deep queues approximating trace-driven simulation (the reorder window a
/// Ramulator-style replay enjoys).
fn deep_queues(mut cfg: DramConfig) -> DramConfig {
    cfg.read_queue_depth = 256;
    cfg.write_queue_depth = 256;
    cfg.write_high_watermark = 192;
    cfg.write_low_watermark = 64;
    cfg
}

fn gather_indices(exp: &OpExperiment) -> Vec<u64> {
    zipf_lookup_rows(exp.count as usize, exp.table_rows, exp.zipf_s, exp.seed)
}

/// Round `vec_blocks` up to a whole stripe over `dimms`.
pub fn padded_vec_blocks(vec_blocks: u64, dimms: u64) -> u64 {
    vec_blocks.div_ceil(dimms) * dimms
}

/// Achieved aggregate TensorNode bandwidth (GB/s) for one experiment:
/// replay DIMM 0's slice on the cycle-level simulator, scale by `dimms`.
pub fn tensornode_gbps(exp: &OpExperiment, dimms: u64) -> f64 {
    let mut nmp_cfg = NmpConfig::paper();
    nmp_cfg.dram = deep_queues(nmp_cfg.dram);
    let mut core = NmpCore::new(nmp_cfg).expect("paper NMP config is valid");
    let vb = padded_vec_blocks(exp.vec_blocks, dimms);
    // Place operands in distinct stripe-aligned regions.
    let region = (exp.table_rows.max(exp.count) + 1) * vb;
    let instr = match exp.op {
        OpKind::Gather => Instruction::Gather {
            table_base: 0,
            idx_base: 3 * region,
            output_base: region,
            count: exp.count,
            vec_blocks: vb,
        },
        OpKind::Reduce => Instruction::Reduce {
            input1: 0,
            input2: region,
            output_base: 2 * region,
            count: exp.count * vb,
            op: ReduceOp::Add,
        },
        OpKind::Average { group } => Instruction::Average {
            input_base: 0,
            output_base: region,
            count: exp.count / group.max(1),
            group,
            vec_blocks: vb,
        },
    };
    let indices = gather_indices(exp);
    let stats = core
        .replay_instruction(&instr, DimmContext::new(dimms, 0), Some(&indices))
        .expect("experiment instruction is valid");
    stats.achieved_gbps() * dimms as f64
}

/// The block-level trace of one experiment's logical operation over a
/// memory of `capacity` bytes — the exact stream [`cpu_gbps`] (and hence
/// the Fig. 4 / Fig. 11 harnesses) replays. Public so perf harnesses like
/// `perf_dram_engine` can feed the identical trace through both the
/// tick-stepped and the event-driven engine paths.
pub fn op_trace(exp: &OpExperiment, capacity: u64) -> Trace {
    let vec_bytes = exp.vec_blocks * 64;
    // Operand regions, clamped into capacity.
    let table_bytes = (exp.table_rows * vec_bytes).min(capacity / 4);
    let region = capacity / 4;
    let mut trace = Trace::new();
    match exp.op {
        OpKind::Gather => {
            for (i, row) in gather_indices(exp).iter().enumerate() {
                let src = (row * vec_bytes) % table_bytes;
                trace.read_range(src, vec_bytes);
                trace.write_range(region + i as u64 * vec_bytes, vec_bytes);
            }
        }
        OpKind::Reduce => {
            for b in 0..exp.count * exp.vec_blocks {
                trace.read(b * 64);
                trace.read(region + b * 64);
                trace.write(2 * region + b * 64);
            }
        }
        OpKind::Average { group } => {
            let outputs = exp.count / group.max(1);
            for o in 0..outputs {
                for g in 0..group {
                    trace.read_range((o * group + g) * vec_bytes, vec_bytes);
                }
                trace.write_range(region + o * vec_bytes, vec_bytes);
            }
        }
    }
    trace
}

/// Achieved CPU-memory bandwidth (GB/s) for the same logical operation
/// over a conventional `channels`-channel system with `ranks_per_channel`
/// ranks (DIMMs) per channel.
pub fn cpu_gbps(exp: &OpExperiment, channels: usize, ranks_per_channel: usize) -> f64 {
    let mut cfg = deep_queues(DramConfig::cpu_memory(channels));
    cfg.geometry.ranks_per_channel = ranks_per_channel;
    cfg.mapping = tensordimm_dram::MappingScheme::channel_interleaved(&cfg.geometry);
    let trace = op_trace(exp, cfg.capacity_bytes());
    let mem = MemorySystem::new(cfg).expect("cpu memory config is valid");
    let mut runner = TraceRunner::new(mem);
    let stats = runner.run(&trace).expect("trace addresses are in range");
    stats.achieved_gbps()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp(op: OpKind) -> OpExperiment {
        OpExperiment {
            op,
            count: 512,
            vec_blocks: 32,
            table_rows: 100_000,
            seed: 5,
            zipf_s: 0.0,
        }
    }

    #[test]
    fn tensornode_beats_cpu_on_every_op() {
        for op in [OpKind::Gather, OpKind::Reduce, OpKind::Average { group: 8 }] {
            let node = tensornode_gbps(&exp(op), 32);
            let cpu = cpu_gbps(&exp(op), 8, 4);
            assert!(
                node > 2.0 * cpu,
                "{}: node {node:.0} vs cpu {cpu:.0}",
                op.label()
            );
            assert!(cpu < 204.8, "cpu exceeded its physical peak");
            assert!(node < 819.2, "node exceeded its physical peak");
        }
    }

    #[test]
    fn padding() {
        assert_eq!(padded_vec_blocks(32, 32), 32);
        assert_eq!(padded_vec_blocks(40, 32), 64);
        assert_eq!(padded_vec_blocks(64, 128), 128);
    }

    #[test]
    fn gather_indices_deterministic_per_seed() {
        let a = gather_indices(&exp(OpKind::Gather));
        let b = gather_indices(&exp(OpKind::Gather));
        assert_eq!(a, b, "same seed must replay the same index stream");

        let mut other = exp(OpKind::Gather);
        other.seed += 1;
        assert_ne!(
            a,
            gather_indices(&other),
            "different seed, different stream"
        );
    }

    #[test]
    fn gather_indices_shape_is_uniformish() {
        let mut e = exp(OpKind::Gather);
        e.count = 10_000;
        let idx = gather_indices(&e);
        assert_eq!(idx.len(), e.count as usize);
        assert!(idx.iter().all(|&i| i < e.table_rows), "index out of range");
        // Uniform draw: each quartile of the table should get roughly a
        // quarter of the traffic (loose 15%..35% band).
        let quarter = e.table_rows / 4;
        for q in 0..4 {
            let hits = idx.iter().filter(|&&i| (i / quarter).min(3) == q).count();
            let share = hits as f64 / idx.len() as f64;
            assert!(
                (0.15..0.35).contains(&share),
                "quartile {q} got {share:.3} of the traffic"
            );
        }
    }

    #[test]
    fn zipf_gather_indices_are_head_heavy() {
        let mut e = exp(OpKind::Gather);
        e.count = 10_000;
        e.zipf_s = 0.9;
        let idx = gather_indices(&e);
        assert_eq!(idx.len(), e.count as usize);
        assert!(idx.iter().all(|&i| i < e.table_rows), "index out of range");
        // The hottest 1% of rows should draw far more than 1% of lookups.
        let cutoff = e.table_rows / 100;
        let hot = idx.iter().filter(|&&i| i < cutoff).count() as f64 / idx.len() as f64;
        assert!(hot > 0.10, "zipf 0.9 hot-row share {hot:.3}");
        // And the stream stays deterministic per seed.
        assert_eq!(idx, gather_indices(&e));
    }

    #[test]
    fn bandwidth_results_deterministic_per_seed() {
        // A small experiment keeps the double cycle-level replay cheap.
        let e = OpExperiment {
            op: OpKind::Gather,
            count: 64,
            vec_blocks: 8,
            table_rows: 10_000,
            seed: 5,
            zipf_s: 0.0,
        };
        assert_eq!(
            tensornode_gbps(&e, 32).to_bits(),
            tensornode_gbps(&e, 32).to_bits(),
            "cycle-level replay must be bit-reproducible"
        );
        assert_eq!(cpu_gbps(&e, 8, 4).to_bits(), cpu_gbps(&e, 8, 4).to_bits());
    }
}
