//! Tiny shared CLI parsing for the figure/sweep binaries.

/// Parse `--workers N` (or `--workers=N`) from the process arguments,
/// resolving through [`tensordimm_exec::worker_count`]: explicit flag
/// first, then the `TENSORDIMM_WORKERS` environment variable, then the
/// machine's available parallelism.
///
/// # Panics
///
/// Panics with a usage message when the flag is present but malformed.
pub fn workers_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let mut requested = None;
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix("--workers=") {
            requested = Some(parse_workers(v));
        } else if args[i] == "--workers" {
            let v = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("--workers requires a value"));
            requested = Some(parse_workers(v));
            i += 1;
        }
        i += 1;
    }
    tensordimm_exec::worker_count(requested)
}

fn parse_workers(v: &str) -> usize {
    v.parse::<usize>()
        .unwrap_or_else(|_| panic!("--workers expects a positive integer, got {v:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_integers_only() {
        assert_eq!(parse_workers("4"), 4);
        assert!(std::panic::catch_unwind(|| parse_workers("four")).is_err());
    }
}
