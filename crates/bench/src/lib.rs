//! Benchmark harness for the TensorDIMM reproduction.
//!
//! This crate carries no library logic of its own; it hosts
//!
//! * one binary per table/figure of the paper (`src/bin/fig*.rs`,
//!   `src/bin/tab*.rs`) — run them with
//!   `cargo run --release -p tensordimm_bench --bin <name>`,
//! * Criterion micro-benchmarks (`benches/`) over the functional kernels,
//!   the DRAM simulator and the end-to-end system model,
//! * shared output helpers in [`table`].
//!
//! Request-*arrival* processes (as opposed to the per-op memory traffic of
//! [`traffic`]) live in `tensordimm_serving::arrivals`, which this crate's
//! `sweep_qps_sla` binary drives.

pub mod args;
pub mod table;
pub mod traffic;
