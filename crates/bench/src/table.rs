//! Minimal fixed-width table printing for the figure binaries.

/// Print a header row followed by a rule.
pub fn header(columns: &[(&str, usize)]) {
    let mut line = String::new();
    for (name, width) in columns {
        line.push_str(&format!("{name:>width$}  "));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len().min(120)));
}

/// Format a float with engineering-friendly precision.
pub fn num(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_precision() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(12345.6), "12346");
        assert_eq!(num(42.42), "42.4");
        assert_eq!(num(1.234), "1.23");
    }
}
