//! Minimal fixed-width table printing for the figure binaries.

/// Format a header row and its rule without printing (testable core of
/// [`header`]).
pub fn format_header(columns: &[(&str, usize)]) -> (String, String) {
    let mut line = String::new();
    for (name, width) in columns {
        line.push_str(&format!("{name:>width$}  "));
    }
    let rule = "-".repeat(line.len().min(120));
    (line, rule)
}

/// Print a header row followed by a rule.
pub fn header(columns: &[(&str, usize)]) {
    let (line, rule) = format_header(columns);
    println!("{line}");
    println!("{rule}");
}

/// Format a float with engineering-friendly precision.
pub fn num(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_precision() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(12345.6), "12346");
        assert_eq!(num(42.42), "42.4");
        assert_eq!(num(1.234), "1.23");
        assert_eq!(num(-1.234), "-1.23");
        assert_eq!(num(-12345.6), "-12346");
    }

    #[test]
    fn header_columns_are_right_aligned_at_width() {
        let cols = [("op", 8), ("GB/s", 10), ("x", 6)];
        let (line, rule) = format_header(&cols);
        // Each column occupies exactly its width plus the two-space gutter.
        let mut offset = 0;
        for (name, width) in cols {
            let cell = &line[offset..offset + width];
            assert_eq!(cell.trim_start(), name);
            assert!(
                cell.ends_with(name),
                "{name:?} not right-aligned in {cell:?}"
            );
            assert_eq!(&line[offset + width..offset + width + 2], "  ");
            offset += width + 2;
        }
        assert_eq!(line.len(), offset);
        assert_eq!(rule.len(), line.len());
        assert!(rule.chars().all(|c| c == '-'));
    }

    #[test]
    fn header_rule_caps_at_120() {
        let (line, rule) = format_header(&[("wide", 200)]);
        assert!(line.len() > 120);
        assert_eq!(rule.len(), 120);
    }
}
