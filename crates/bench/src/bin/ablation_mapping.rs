//! Ablation: why the rank-interleaved address mapping (Fig. 7) is
//! load-bearing.
//!
//! Two placements of embedding vectors across a 32-DIMM node:
//!
//! * **interleaved** (the paper): consecutive 64-byte blocks of every
//!   vector stripe across all DIMMs, so every NMP core owns an aligned
//!   1/N slice of every tensor;
//! * **vector-per-DIMM** (the strawman): each vector lives wholly on one
//!   DIMM (chosen by index hash).
//!
//! The strawman breaks near-memory execution twice over: a single lookup
//! engages one DIMM instead of N (no latency scaling), and the operands of
//! an element-wise reduction land on *different* DIMMs, so the reduction
//! cannot execute near memory at all without inter-DIMM communication —
//! which buffered DIMMs do not have.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIMMS: u64 = 32;
const VEC_BLOCKS: u64 = 32;

fn dimm_of_vector(index: u64) -> u64 {
    // The strawman's placement hash.
    let mut x = index.wrapping_mul(0x9e3779b97f4a7c15);
    x ^= x >> 33;
    x % DIMMS
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let lookups: Vec<u64> = (0..10_000)
        .map(|_| rng.gen_range(0..5_000_000u64))
        .collect();

    // 1) DIMM-parallelism of a single lookup.
    println!("Ablation: address-mapping scheme (32 DIMMs, dim-512 vectors)");
    println!();
    println!("DIMMs engaged by ONE embedding lookup:");
    println!("  interleaved (Fig. 7): {DIMMS}");
    println!("  vector-per-DIMM:      1");
    println!(
        "  -> per-lookup latency ratio: {}x in favor of interleaving",
        DIMMS
    );
    println!();

    // 2) Load balance across a batch of lookups.
    let mut per_dimm = vec![0u64; DIMMS as usize];
    for &l in &lookups {
        per_dimm[dimm_of_vector(l) as usize] += VEC_BLOCKS;
    }
    let max = *per_dimm.iter().max().expect("nonempty") as f64;
    let mean = per_dimm.iter().sum::<u64>() as f64 / DIMMS as f64;
    println!(
        "Load balance over {} lookups (blocks per DIMM):",
        lookups.len()
    );
    println!(
        "  interleaved:     perfectly equal ({} blocks each)",
        lookups.len() as u64 * VEC_BLOCKS / DIMMS
    );
    println!(
        "  vector-per-DIMM: max/mean = {:.3} (straggler DIMM sets the pace)",
        max / mean
    );
    println!();

    // 3) Feasibility of near-memory reduction.
    let pairs = 10_000u64;
    let colocated = (0..pairs)
        .filter(|_| {
            let a = rng.gen_range(0..5_000_000u64);
            let b = rng.gen_range(0..5_000_000u64);
            dimm_of_vector(a) == dimm_of_vector(b)
        })
        .count();
    println!("Element-wise REDUCE pairs co-located on one DIMM:");
    println!("  interleaved:     100% (every DIMM owns aligned slices of both operands)");
    println!(
        "  vector-per-DIMM: {:.1}% (expected 1/N = {:.1}%) — the rest cannot be \
         reduced near-memory at all",
        100.0 * colocated as f64 / pairs as f64,
        100.0 / DIMMS as f64
    );
    println!();
    println!(
        "Conclusion: rank interleaving is what makes NMP bandwidth scale with \
         the DIMM count (Section 4.4)."
    );
}
