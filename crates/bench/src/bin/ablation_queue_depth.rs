//! Ablation: SRAM staging-queue sizing (Section 4.2).
//!
//! The paper sizes the NMP core's input/output queues by the
//! bandwidth-delay product (25.6 GB/s x 20 ns = 512 B). This ablation runs
//! the detailed pipeline model with queue capacities from one entry up to
//! 4 KiB and shows the knee right around the paper's sizing.

use tensordimm_isa::{DimmContext, Instruction, ReduceOp};
use tensordimm_nmp::{NmpConfig, NmpCore};

fn main() {
    let reduce = Instruction::Reduce {
        input1: 0,
        input2: 1 << 21,
        output_base: 1 << 22,
        count: 32 * 4096,
        op: ReduceOp::Add,
    };
    let gather_indices: Vec<u64> = {
        let mut x = 0x243f6a8885a308d3u64;
        (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 1_000_000
            })
            .collect()
    };
    let gather = Instruction::Gather {
        table_base: 0,
        idx_base: 1 << 33,
        output_base: 1 << 34,
        count: gather_indices.len() as u64,
        vec_blocks: 32,
    };
    let ctx = DimmContext::new(32, 0);

    println!("Ablation: NMP SRAM queue depth vs achieved local bandwidth");
    println!("(paper sizing: 512 B = 8 entries per queue)");
    println!();
    println!(
        "{:>11} {:>8} | {:>13} {:>13}",
        "queue bytes", "entries", "REDUCE (GB/s)", "GATHER (GB/s)"
    );
    for bytes in [64usize, 128, 256, 512, 1024, 2048, 4096] {
        let mut cfg = NmpConfig::paper();
        cfg.input_queue_bytes = bytes;
        cfg.output_queue_bytes = bytes;
        let mut core = NmpCore::new(cfg.clone()).expect("valid config");
        let r = core
            .run_instruction(&reduce, ctx, None)
            .expect("valid instruction");
        let g = core
            .run_instruction(&gather, ctx, Some(&gather_indices))
            .expect("valid instruction");
        println!(
            "{:>11} {:>8} | {:>13.1} {:>13.1}{}",
            bytes,
            cfg.input_queue_entries(),
            r.achieved_gbps(),
            g.achieved_gbps(),
            if bytes == 512 { "   <- paper" } else { "" }
        );
    }
    println!();
    println!(
        "Too-shallow queues stall the pipeline. The knee sits at roughly \
         1 KiB, one doubling above the paper's 512 B: our simulated loaded \
         read latency (~40 ns with queueing) exceeds the 20 ns the paper's \
         bandwidth-delay sizing assumes. Recorded in EXPERIMENTS.md."
    );
}
