//! Hot-row cache sensitivity: hit rate vs serving tail latency.
//!
//! RecNMP's argument for caching inside the buffer device is that
//! production embedding traffic is Zipf-skewed, so a small SRAM tier in
//! front of the DIMM's DRAM recovers real bandwidth. This harness sweeps
//! the [`HotRowCacheConfig`] capacity grid against traffic skews
//! (`zipf_s`) and reports, per point, the aggregate replay hit rate and
//! the p99 serving latency of a cycle-calibrated TDIMM simulation — the
//! table reproduced in `EXPERIMENTS.md` ("Hot-row caching").
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tensordimm_bench --bin sweep_hot_rows [-- --quick]
//! ```
//!
//! `--quick` shrinks the grid and replay depth so CI can gate on the
//! invariants in seconds. Gated invariants, per skew row:
//!
//! * capacity 0 (disabled) never hits,
//! * the aggregate hit rate is monotone non-decreasing in capacity (the
//!   LRU stack property, surviving the full serving stack), and
//! * caching never *regresses* the p99 tail (2% numeric slack).
//!
//! Hit rates here are bounded by repeats *within* each batch's replayed
//! lookup window (capped at `max_replayed_lookups` over paper-scale
//! 5M-row tables), so they are far below what a row-granularity trace
//! over a long horizon would show — the point is the trend, not the peak.

use tensordimm_models::Workload;
use tensordimm_serving::{simulate_with_pricer, ArrivalProcess, BatchPolicy, SimConfig};
use tensordimm_system::{
    CyclePricer, CyclePricerConfig, DesignPoint, HotRowCacheConfig, HotRowStats, SystemModel,
    SystemModelConfig,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let zipf_grid: &[f64] = if quick { &[0.9] } else { &[0.5, 0.9, 1.2] };
    let capacities: &[u64] = if quick {
        &[0, 4096]
    } else {
        &[0, 512, 4096, 32_768]
    };
    let replay_cap = if quick { 512 } else { 2000 };
    let requests = if quick { 400 } else { 4000 };

    let w = Workload::facebook();
    let cfg = SimConfig::new(DesignPoint::Tdimm, 8, BatchPolicy::new(32, 300.0));
    // One arrival trace shared by every grid point: rows differ only by
    // skew and cache capacity, never by traffic.
    let arrivals = ArrivalProcess::Poisson {
        rate_qps: 100_000.0,
    }
    .sample_arrivals_us(requests, 42);

    println!(
        "Hot-row cache sweep: Facebook, TDIMM, 8 GPUs, batch<=32, {requests} requests, \
         replay cap {replay_cap}"
    );
    println!();
    println!(
        "{:>7} {:>14} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "zipf_s", "capacity_rows", "hits", "misses", "hit_rate", "p99_us", "vs_uncached"
    );

    for &s in zipf_grid {
        let mut model_cfg = SystemModelConfig::paper_defaults();
        model_cfg.zipf_s = s;
        let model = SystemModel::new(model_cfg);

        let mut uncached_p99 = f64::NAN;
        let mut prev_hit_rate = 0.0f64;
        for &capacity in capacities {
            let mut pricer_cfg = CyclePricerConfig::paper_defaults();
            pricer_cfg.max_replayed_lookups = replay_cap;
            pricer_cfg.nmp.hot_rows = if capacity == 0 {
                HotRowCacheConfig::disabled()
            } else {
                HotRowCacheConfig::fully_associative(capacity)
            };
            let pricer = CyclePricer::with_config(&model, pricer_cfg);
            let report =
                simulate_with_pricer(&w, &cfg, &arrivals, &pricer).expect("valid simulation");

            let mut agg = HotRowStats::default();
            for (_, stats) in pricer.cached_hot_row_table() {
                agg.merge(&stats);
            }
            let p99 = report.latency.p99_us;
            if capacity == 0 {
                uncached_p99 = p99;
                assert_eq!(agg, HotRowStats::default(), "zipf {s}: disabled cache hit");
            } else {
                assert!(
                    agg.hit_rate() + 1e-12 >= prev_hit_rate,
                    "zipf {s}: hit rate fell from {prev_hit_rate:.4} to {:.4} \
                     when capacity grew to {capacity}",
                    agg.hit_rate()
                );
                assert!(
                    p99 <= uncached_p99 * 1.02,
                    "zipf {s} capacity {capacity}: cached p99 {p99:.1} us regressed past \
                     uncached {uncached_p99:.1} us"
                );
            }
            prev_hit_rate = agg.hit_rate();
            println!(
                "{:>7.2} {:>14} {:>10} {:>10} {:>9.1}% {:>12.1} {:>+9.1}%",
                s,
                capacity,
                agg.hits,
                agg.misses,
                100.0 * agg.hit_rate(),
                p99,
                100.0 * (p99 - uncached_p99) / uncached_p99,
            );
        }
        println!();
    }
    println!("invariants: disabled-never-hits, hit-rate monotone in capacity, p99 never regresses");
}
