//! Figure 13: latency breakdown of a batch-64 inference for every workload
//! and design point, normalized to the slowest design per workload.

use tensordimm_models::Workload;
use tensordimm_system::{DesignPoint, SystemModel};

const BATCH: usize = 64;

fn main() {
    let model = SystemModel::paper_defaults();
    println!("Figure 13: latency breakdown at batch {BATCH} (normalized to slowest)");
    println!();
    for w in Workload::all() {
        let totals: Vec<f64> = DesignPoint::all()
            .iter()
            .map(|&d| model.evaluate(&w, BATCH, d).total_us())
            .collect();
        let slowest = totals.iter().cloned().fold(0.0, f64::max);
        println!("{} (slowest = {:.0} us):", w.name, slowest);
        println!(
            "  {:>9} | {:>8} {:>10} {:>12} {:>6} | {:>6} | {:>10}",
            "design", "lookup", "cudaMemcpy", "computation", "else", "total", "(abs us)"
        );
        for d in DesignPoint::all() {
            let b = model.evaluate(&w, BATCH, d);
            println!(
                "  {:>9} | {:>8.3} {:>10.3} {:>12.3} {:>6.3} | {:>6.3} | {:>10.1}",
                d.label(),
                b.lookup_us / slowest,
                b.transfer_us / slowest,
                b.dnn_us / slowest,
                b.other_us / slowest,
                b.total_us() / slowest,
                b.total_us()
            );
        }
        println!();
    }
    println!(
        "Shape checks: CPU designs are lookup/copy dominated; TDIMM removes \
         both bottlenecks and approaches GPU-only."
    );
}
