//! Ablation: fused vs unfused near-memory gather + pooling.
//!
//! The paper's timing model (Fig. 5) charges one table-read pass for the
//! embedding lookup. The TensorISA as specified is unfused: GATHER writes
//! the gathered tensor back to DRAM and AVERAGE re-reads it, tripling
//! near-memory traffic. This ablation quantifies how much end-to-end
//! performance the (easily added) fused gather-reduce instruction buys.

use tensordimm_models::Workload;
use tensordimm_system::{geometric_mean, DesignPoint, SystemModel, SystemModelConfig};

fn main() {
    let fused = SystemModel::paper_defaults();
    let unfused = SystemModel::new(SystemModelConfig {
        fused_gather_pool: false,
        ..SystemModelConfig::paper_defaults()
    });

    println!("Ablation: fused vs unfused TensorNode gather+pool (batch 64)");
    println!();
    println!(
        "{:>10} | {:>12} {:>13} | {:>9} {:>14}",
        "workload", "fused (us)", "unfused (us)", "cost", "frac of oracle"
    );
    let mut fracs_fused = Vec::new();
    let mut fracs_unfused = Vec::new();
    for w in Workload::all() {
        let f = fused.evaluate(&w, 64, DesignPoint::Tdimm).total_us();
        let u = unfused.evaluate(&w, 64, DesignPoint::Tdimm).total_us();
        let oracle = fused.evaluate(&w, 64, DesignPoint::GpuOnly).total_us();
        println!(
            "{:>10} | {:>12.1} {:>13.1} | {:>8.1}% | {:>6.2} -> {:>5.2}",
            w.name.to_string(),
            f,
            u,
            100.0 * (u - f) / f,
            oracle / f,
            oracle / u
        );
        fracs_fused.push(oracle / f);
        fracs_unfused.push(oracle / u);
    }
    println!();
    println!(
        "Geomean fraction of oracle: fused {:.2} vs unfused {:.2}",
        geometric_mean(&fracs_fused),
        geometric_mean(&fracs_unfused)
    );
    println!(
        "Even unfused, TDIMM keeps most of its advantage — the win comes from \
         moving the reduction off the interconnect, not from fusion."
    );
}
