//! Availability under deterministic fault injection.
//!
//! The serving question behind degraded-mode operation: *how much of the
//! offered traffic still completes within the SLA when DIMMs drop out?*
//! This harness sweeps a fault-rate × offered-load × retry-policy grid
//! over the request-level simulator and reports, per point, availability
//! at a fixed SLA, goodput, shed rate and the p99 tail — the table
//! reproduced in `EXPERIMENTS.md` ("Availability under fault injection").
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tensordimm_bench --bin sweep_availability [-- --quick]
//! ```
//!
//! `--quick` shrinks the grid so CI can gate on the invariants in
//! seconds. Gated invariants:
//!
//! * **Inert bit-identity** — a run whose fault plan generates an empty
//!   schedule (rate 0, or a node outage armed beyond the trace) is
//!   bit-identical to the plain simulator: the whole `SimReport`,
//!   records included, compares equal.
//! * **Conservation** — at every grid point,
//!   `completed + shed + timed_out + in_flight == arrived` (checked via
//!   `SimReport::is_conserved` and the typed outcome totals), including
//!   a horizon-cut point that leaves work in flight.
//! * **Monotone availability** — at fixed design, load and policy,
//!   availability-at-SLA is non-increasing in the DIMM fault rate. The
//!   fault crate's thinning construction makes the accepted failure set
//!   *nest* across rates, so this is a hard invariant, not a tendency.
//!
//! The fault plan is deliberately harsh — a 2-DIMM node with ~250 µs
//! candidate gaps and 2.5 ms repairs — so rate steps move availability by
//! whole percentage points instead of noise.

use tensordimm_models::Workload;
use tensordimm_serving::{
    simulate, AdmissionPolicy, ArrivalProcess, BatchPolicy, FaultPlan, NodeOutage, RetryPolicy,
    SimConfig, SimReport,
};
use tensordimm_system::{DesignPoint, SystemModel};

/// The fixed SLA availability is judged against, µs (also the deadline of
/// the deadline-bearing policies, so "timed out" and "too late" agree).
/// A bit above 2× the healthy PMEM p99, so fault-free runs pass and
/// fault-induced stalls fail.
const SLA_US: f64 = 2_000.0;

/// Arrival-trace seed (shared across every grid point at a given load, so
/// rows differ only by faults and policy, never by traffic).
const TRACE_SEED: u64 = 42;

/// A harsh DIMM-fault plan at `rate`: a 2-DIMM node where each loss costs
/// half the gather bandwidth, candidates every ~250 µs, 2.5 ms repairs —
/// failures overlap, and at high rates the node periodically loses both
/// DIMMs and stalls dispatch entirely until a repair lands.
fn fault_plan(rate: f64) -> FaultPlan {
    let mut plan = FaultPlan::dimm_faults(0xfa, rate);
    plan.dimms = 2;
    plan.dimm_candidate_gap_us = 250.0;
    plan.dimm_repair_us = 2_500.0;
    plan
}

fn run(model: &SystemModel, w: &Workload, cfg: &SimConfig, arrivals: &[f64]) -> SimReport {
    let report = simulate(model, w, cfg, arrivals).expect("valid config and trace");
    assert!(
        report.is_conserved(),
        "conservation violated: {} arrived vs outcomes {:?} (+{} not arrived) of {} offered",
        report.arrived,
        report.outcomes,
        report.not_arrived(),
        report.offered
    );
    assert_eq!(
        report.outcomes.total(),
        report.arrived,
        "typed outcomes must account for every arrived request"
    );
    report
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let requests = if quick { 400 } else { 3000 };
    let loads_qps: &[f64] = if quick {
        &[300_000.0]
    } else {
        &[100_000.0, 400_000.0]
    };
    let rates: &[f64] = if quick {
        &[0.0, 0.5, 1.0]
    } else {
        &[0.0, 0.25, 0.5, 1.0]
    };
    let designs = [DesignPoint::Tdimm, DesignPoint::Pmem];
    let policies: &[(&str, RetryPolicy, AdmissionPolicy)] = &[
        ("open", RetryPolicy::none(), AdmissionPolicy::unbounded()),
        (
            "deadline",
            RetryPolicy::none()
                .with_deadline(SLA_US)
                .with_retries(3, 100.0, 2_000.0),
            AdmissionPolicy::bounded(256),
        ),
        (
            "hedged",
            RetryPolicy::none()
                .with_deadline(SLA_US)
                .with_hedging(1_500.0),
            AdmissionPolicy::unbounded(),
        ),
    ];

    let model = SystemModel::paper_defaults();
    let w = Workload::facebook();
    let policy = BatchPolicy::new(32, 300.0);

    println!(
        "Availability sweep: Facebook, 8 GPUs, batch<=32, {requests} requests, \
         SLA {SLA_US:.0} µs, 2-DIMM fault plan (gap 250 µs, repair 2500 µs)"
    );

    // Gate 1: an empty fault schedule is bit-identical to the plain
    // simulator — both the trivially-inert rate-0 plan and a *non-inert*
    // plan whose only event (a node outage) is armed beyond the trace, so
    // the fault machinery runs but schedules nothing.
    let ident_arrivals = ArrivalProcess::Poisson {
        rate_qps: loads_qps[0],
    }
    .sample_arrivals_us(requests, TRACE_SEED);
    let beyond_trace = ident_arrivals.last().copied().unwrap_or(0.0) + 1.0;
    for design in designs {
        let base = SimConfig::new(design, 8, policy);
        let plain = run(&model, &w, &base, &ident_arrivals);
        let zero_rate = run(
            &model,
            &w,
            &base.with_faults(fault_plan(0.0)),
            &ident_arrivals,
        );
        assert_eq!(
            plain, zero_rate,
            "{design:?}: rate-0 plan must be bit-identical to the plain run"
        );
        let latent = FaultPlan::none().with_node_outage(NodeOutage {
            start_us: beyond_trace,
            duration_us: 1.0,
        });
        assert!(!latent.is_inert(), "the latent plan must arm the machinery");
        let armed = run(&model, &w, &base.with_faults(latent), &ident_arrivals);
        assert_eq!(
            plain, armed,
            "{design:?}: an armed plan with an empty schedule must be bit-identical"
        );
    }
    println!("inert bit-identity: plain == rate-0 plan == armed-but-empty plan (both designs)");
    println!();

    println!(
        "{:<6} {:>9} {:>10} {:>6} {:>13} {:>12} {:>7} {:>9} {:>10}",
        "design",
        "policy",
        "load qps",
        "rate",
        "availability",
        "goodput qps",
        "shed%",
        "timeouts",
        "p99 µs"
    );
    for design in designs {
        for &(name, retry, admission) in policies {
            let base = SimConfig::new(design, 8, policy)
                .with_retry(retry)
                .with_admission(admission);
            for &load in loads_qps {
                let arrivals = ArrivalProcess::Poisson { rate_qps: load }
                    .sample_arrivals_us(requests, TRACE_SEED);
                // Gate 3: availability never rises with the fault rate.
                let mut prev_avail = f64::INFINITY;
                for &rate in rates {
                    let cfg = base.with_faults(fault_plan(rate));
                    let report = run(&model, &w, &cfg, &arrivals);
                    let avail = report.availability_at(SLA_US);
                    assert!(
                        avail <= prev_avail + 1e-9,
                        "{design:?}/{name}/{load:.0} qps: availability rose from \
                         {prev_avail:.4} to {avail:.4} at fault rate {rate}"
                    );
                    prev_avail = avail;
                    println!(
                        "{:<6} {:>9} {:>10.0} {:>6.2} {:>13.4} {:>12.0} {:>7.2} {:>9} {:>10.1}",
                        format!("{design:?}"),
                        name,
                        load,
                        rate,
                        avail,
                        report.goodput_qps,
                        100.0 * report.shed_rate,
                        report.outcomes.timed_out,
                        report.latency.p99_us
                    );
                }
            }
        }
    }

    // Gate 2 (horizon leg): cut the worst-case run mid-trace so requests
    // are left queued / on GPUs / between retries, and check the typed
    // accounting still balances.
    let load = *loads_qps.last().expect("nonempty load grid");
    let arrivals =
        ArrivalProcess::Poisson { rate_qps: load }.sample_arrivals_us(requests, TRACE_SEED);
    let horizon = arrivals.last().copied().unwrap_or(0.0) * 0.5;
    let cfg = SimConfig::new(DesignPoint::Tdimm, 8, policy)
        .with_faults(fault_plan(1.0))
        .with_horizon(horizon);
    let cut = run(&model, &w, &cfg, &arrivals);
    assert!(
        cut.not_arrived() > 0,
        "the horizon must cut some arrivals off"
    );
    assert!(
        cut.outcomes.in_flight_at_horizon > 0,
        "a mid-trace cut under full-rate faults must leave work in flight"
    );
    println!();
    println!(
        "horizon cut at {horizon:.0} µs: {} completed, {} in flight, {} not arrived — conserved",
        cut.completed,
        cut.outcomes.in_flight_at_horizon,
        cut.not_arrived()
    );
    println!("all invariants held: inert bit-identity, conservation, monotone availability");
}
