//! Ablation: vector-ALU clock vs achieved bandwidth per operation.
//!
//! A reproduction finding (recorded in EXPERIMENTS.md): the paper's
//! trace-driven evaluation does not model the ALU, and at the stated
//! 150 MHz a 16-wide ALU *would* bottleneck AVERAGE — each output touches
//! `group + 1` blocks through the ALU but only `group + 1` bursts on the
//! bus, so the required op rate equals the burst rate (~400 M/s at full
//! bandwidth), far above 150 MHz. REDUCE is safe because each op ships
//! three bursts. This sweep quantifies both.

use tensordimm_isa::{DimmContext, Instruction, ReduceOp};
use tensordimm_nmp::{NmpConfig, NmpCore};

fn main() {
    let ctx = DimmContext::new(32, 0);
    let reduce = Instruction::Reduce {
        input1: 0,
        input2: 1 << 21,
        output_base: 1 << 22,
        count: 32 * 2048,
        op: ReduceOp::Add,
    };
    let average = Instruction::Average {
        input_base: 0,
        output_base: 1 << 22,
        count: 128,
        group: 50,
        vec_blocks: 32,
    };

    println!("Ablation: ALU clock vs per-DIMM bandwidth (pipeline model)");
    println!();
    println!(
        "{:>9} | {:>13} {:>14}",
        "ALU MHz", "REDUCE (GB/s)", "AVERAGE (GB/s)"
    );
    for mhz in [75u64, 150, 300, 600, 1600] {
        let mut cfg = NmpConfig::paper();
        cfg.alu_clock_mhz = mhz;
        let mut core = NmpCore::new(cfg).expect("valid config");
        let r = core.run_instruction(&reduce, ctx, None).expect("valid");
        let a = core.run_instruction(&average, ctx, None).expect("valid");
        println!(
            "{:>9} | {:>13.1} {:>14.1}{}",
            mhz,
            r.achieved_gbps(),
            a.achieved_gbps(),
            if mhz == 150 { "   <- paper" } else { "" }
        );
    }
    println!();
    println!(
        "REDUCE saturates at the paper's 150 MHz; AVERAGE needs ~2-3x that \
         clock (or a wider ALU) to stay bandwidth-bound."
    );
}
