//! Figure 4: baseline CPU-only and hybrid CPU-GPU performance, normalized
//! to the unbuildable GPU-only oracle, across batch sizes and workloads.

use tensordimm_models::Workload;
use tensordimm_system::{geometric_mean, DesignPoint, SystemModel};

fn main() {
    let model = SystemModel::paper_defaults();
    let batches = [1usize, 8, 64, 128];

    println!("Figure 4: performance normalized to GPU-only (1.0 = oracle)");
    println!("============================================================");
    println!(
        "{:>10} {:>6} | {:>9} {:>9} {:>9}",
        "workload", "batch", "CPU-only", "CPU-GPU", "GPU-only"
    );
    let mut cpu_norm = Vec::new();
    let mut hybrid_norm = Vec::new();
    for w in Workload::all() {
        for &b in &batches {
            let cpu = model.normalized(&w, b, DesignPoint::CpuOnly);
            let hybrid = model.normalized(&w, b, DesignPoint::CpuGpu);
            println!(
                "{:>10} {:>6} | {:>9.3} {:>9.3} {:>9.3}",
                w.name.to_string(),
                b,
                cpu,
                hybrid,
                1.0
            );
            cpu_norm.push(cpu);
            hybrid_norm.push(hybrid);
        }
        println!();
    }
    let g_cpu = geometric_mean(&cpu_norm);
    let g_hybrid = geometric_mean(&hybrid_norm);
    println!(
        "{:>10} {:>6} | {:>9.3} {:>9.3} {:>9.3}",
        "Average", "-", g_cpu, g_hybrid, 1.0
    );
    println!();
    println!(
        "Slowdown vs oracle: CPU-only {:.1}x, CPU-GPU {:.1}x \
         (paper reports an average 7.3-20.9x band across settings)",
        1.0 / g_cpu,
        1.0 / g_hybrid
    );
    // The low-batch crossover the paper calls out.
    let w = Workload::ncf();
    let c1 = model.normalized(&w, 1, DesignPoint::CpuOnly);
    let h1 = model.normalized(&w, 1, DesignPoint::CpuGpu);
    println!(
        "Low-batch crossover (NCF, batch 1): CPU-only {:.3} vs CPU-GPU {:.3} -> {}",
        c1,
        h1,
        if c1 > h1 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
