//! Figure 16: sensitivity of PMEM (pooled memory without NMP) and TDIMM to
//! the node-to-GPU communication bandwidth (25 / 50 / 150 GB/s), with
//! embeddings scaled 1-8x. Results are geomeans over the four workloads at
//! batch 64, normalized to each design's own 150 GB/s point.

use tensordimm_interconnect::{Link, Topology};
use tensordimm_models::Workload;
use tensordimm_system::{geometric_mean, DesignPoint, SystemModel};

const BATCH: usize = 64;

fn perf(model: &SystemModel, design: DesignPoint, scale: usize) -> f64 {
    let vals: Vec<f64> = Workload::all()
        .iter()
        .map(|w| {
            let scaled = w.scaled_embeddings(scale);
            1.0 / model.evaluate(&scaled, BATCH, design).total_us()
        })
        .collect();
    geometric_mean(&vals)
}

fn main() {
    let links = [25.0f64, 50.0, 150.0];
    let scales = [1usize, 2, 4, 8];

    println!("Figure 16: sensitivity to node<->GPU link bandwidth");
    println!("(performance normalized to the 150 GB/s configuration, batch {BATCH})");
    println!();
    println!(
        "{:>7} {:>9} | {:>10} {:>10}",
        "link", "emb size", "PMEM", "TDIMM"
    );

    let baseline = SystemModel::paper_defaults();
    let mut worst_pmem: f64 = 1.0;
    let mut worst_tdimm: f64 = 1.0;
    let mut tdimm_losses = Vec::new();
    for &bw in &links {
        let link = Link::nvlink_class(bw).expect("positive bandwidth");
        let model =
            SystemModel::paper_defaults().with_topology(Topology::dgx_like(8).with_gpu_link(link));
        for &scale in &scales {
            let pmem =
                perf(&model, DesignPoint::Pmem, scale) / perf(&baseline, DesignPoint::Pmem, scale);
            let tdimm = perf(&model, DesignPoint::Tdimm, scale)
                / perf(&baseline, DesignPoint::Tdimm, scale);
            println!(
                "{:>4.0}GB {:>8}x | {:>10.3} {:>10.3}",
                bw, scale, pmem, tdimm
            );
            worst_pmem = worst_pmem.min(pmem);
            worst_tdimm = worst_tdimm.min(tdimm);
            if bw < 150.0 {
                tdimm_losses.push(1.0 - tdimm);
            }
        }
        println!();
    }
    let avg_tdimm_loss = tdimm_losses.iter().sum::<f64>() / tdimm_losses.len().max(1) as f64;
    println!(
        "PMEM loses up to {:.0}% on thin links; TDIMM loses at most {:.0}% \
         (avg {:.0}%) — paper: up to 68% vs at most 15% (avg 10%).",
        100.0 * (1.0 - worst_pmem),
        100.0 * (1.0 - worst_tdimm),
        100.0 * avg_tdimm_loss
    );
}
