//! Table 2: evaluated benchmarks and default configuration.

use tensordimm_bench::table;
use tensordimm_models::Workload;

fn main() {
    println!("Table 2: Evaluated benchmarks and default configuration");
    println!("=======================================================");
    table::header(&[
        ("Network", 10),
        ("Lookup tables", 14),
        ("Max reduction", 14),
        ("FC/MLP layers", 14),
        ("Emb. dim", 9),
        ("Tables (GB)", 12),
    ]);
    for w in Workload::all() {
        println!(
            "{:>10}  {:>14}  {:>14}  {:>14}  {:>9}  {:>12}",
            w.name.to_string(),
            w.tables,
            w.lookups_per_table,
            w.mlp.layers(),
            w.embedding_dim,
            table::num(w.table_footprint_bytes() as f64 / 1e9),
        );
    }
    println!();
    println!("Default batch size 64 (sweeps use 1-128); 5M rows per table.");
    println!("Per-inference embedding traffic at batch 64:");
    table::header(&[
        ("Network", 10),
        ("Gathered (MB)", 14),
        ("Pooled (MB)", 12),
        ("Reduction", 10),
    ]);
    for w in Workload::all() {
        println!(
            "{:>10}  {:>14}  {:>12}  {:>9}x",
            w.name.to_string(),
            table::num(w.gathered_bytes(64) as f64 / 1e6),
            table::num(w.pooled_bytes(64) as f64 / 1e6),
            w.reduction_factor(),
        );
    }
}
