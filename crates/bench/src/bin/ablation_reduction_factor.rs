//! Ablation: how the pooling (reduction) factor N drives the NMP win.
//!
//! The communication compression of near-memory reduction is exactly N
//! (Fig. 5): N gathered embeddings cross the link as one pooled tensor.
//! Sweeping N separates the two benefits of TensorDIMM — bandwidth-scaled
//! gathers (present at every N) and communication compression (grows
//! with N).

use tensordimm_models::{MlpSpec, Workload, WorkloadName};
use tensordimm_system::{DesignPoint, SystemModel};

const BATCH: usize = 64;

fn workload_with_reduction(lookups: usize) -> Workload {
    // A YouTube-like shell with a configurable pooling factor.
    let base = Workload::youtube();
    Workload {
        name: WorkloadName::YouTube,
        tables: base.tables,
        lookups_per_table: lookups,
        embedding_dim: base.embedding_dim,
        rows_per_table: base.rows_per_table,
        mlp: MlpSpec::new(base.mlp.widths().to_vec()).expect("same widths"),
    }
}

fn main() {
    let model = SystemModel::paper_defaults();
    println!("Ablation: pooling factor N vs TDIMM advantage (batch {BATCH})");
    println!();
    println!(
        "{:>4} | {:>11} {:>11} | {:>14} {:>14}",
        "N", "PMEM (us)", "TDIMM (us)", "TDIMM vs PMEM", "xfer compression"
    );
    for lookups in [1usize, 2, 5, 10, 25, 50, 100] {
        let w = workload_with_reduction(lookups);
        let pmem = model.evaluate(&w, BATCH, DesignPoint::Pmem);
        let tdimm = model.evaluate(&w, BATCH, DesignPoint::Tdimm);
        println!(
            "{:>4} | {:>11.1} {:>11.1} | {:>13.2}x {:>13.1}x",
            lookups,
            pmem.total_us(),
            tdimm.total_us(),
            pmem.total_us() / tdimm.total_us(),
            pmem.transfer_us / tdimm.transfer_us.max(1e-9)
        );
    }
    println!();
    println!(
        "At N=1 the NMP reduction buys nothing (TDIMM == PMEM modulo \
         dispatch); the advantage grows with N and saturates once the \
         residual phases dominate."
    );
}
