//! Sharded cluster serving under replication, failover and faults.
//!
//! The cluster question behind the paper's single-node evaluation: *when
//! embedding tables shard across many TensorNodes and requests rejoin at
//! max-of-shards latency, how much traffic still meets the SLA as nodes
//! degrade and die?* This harness sweeps a nodes × replication ×
//! fault-rate grid over the cluster fan-out/rejoin simulator and reports,
//! per point, availability at a fixed SLA, goodput, mean fan-out and
//! rerouting volume — the table reproduced in `EXPERIMENTS.md` ("Cluster
//! availability under sharding and replication").
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tensordimm_bench --bin sweep_cluster [-- --quick]
//! ```
//!
//! `--quick` shrinks the grid so CI can gate on the invariants in
//! seconds. Gated invariants:
//!
//! * **Inert decomposition** — with replication 1, all-inert fault plans
//!   and static routing, every per-shard report of the cluster run is
//!   bit-identical to an independent single-node `simulate` call on the
//!   shard's derived sub-trace (`shard_traces` exposes exactly those
//!   traces, `shard_sim_config` the per-shard configs).
//! * **Conservation** — at every grid point the rejoined outcome counts
//!   balance (`ClusterReport::is_conserved`, which also re-checks every
//!   per-shard report), including a horizon-cut point that strands
//!   arrivals and leaves sub-requests in flight.
//! * **Monotone availability** — at fixed cluster shape, availability at
//!   the SLA is non-increasing in the per-node DIMM fault rate. Per-node
//!   plans derive from one base via `FaultPlan::for_node`, which remixes
//!   the seed but preserves the thinning construction, so each node's
//!   failure set still nests across rates.
//!
//! The final section stages the placement duel the cluster crate exists
//! to answer: with one node dead for the whole trace, hash placement
//! funnels the dead shard's entire load onto its ring successor, while
//! the hot-cold split load-balances the replicated Zipf head across the
//! survivors and narrows fan-out via affinity — measurably higher
//! availability at the same SLA, asserted below and tabulated in
//! `EXPERIMENTS.md`.

use tensordimm_cluster::{
    shard_sim_config, shard_traces, simulate_cluster, ClusterConfig, ClusterReport, FailoverPolicy,
    NodeSpec, ShardPlan,
};
use tensordimm_models::Workload;
use tensordimm_serving::{
    simulate, AdmissionPolicy, ArrivalProcess, BatchPolicy, FaultPlan, NodeOutage, RetryPolicy,
};
use tensordimm_system::{DesignPoint, SystemModel};

/// The fixed SLA availability is judged against, µs (also the deadline of
/// the per-shard retry policy, so "timed out" and "too late" agree).
/// Looser than the single-node sweep's 2 ms: a rejoined request pays the
/// *slowest* of several shards, so the healthy tail sits higher.
const SLA_US: f64 = 3_000.0;

/// Arrival-trace seed (shared across every grid point at a given load, so
/// rows differ only by cluster shape and faults, never by traffic).
const TRACE_SEED: u64 = 42;

/// GPUs per node across the whole sweep.
const GPUS: usize = 8;

/// Rows each request samples to decide its fan-out.
const LOOKUPS: usize = 8;

/// The same harsh per-node DIMM-fault plan the single-node availability
/// sweep uses: 2 fault domains, candidates every ~250 µs, 2.5 ms repairs.
/// Each node derives its own decorrelated stream via `for_node`.
fn fault_plan(rate: f64) -> FaultPlan {
    let mut plan = FaultPlan::dimm_faults(0xfa, rate);
    plan.dimms = 2;
    plan.dimm_candidate_gap_us = 250.0;
    plan.dimm_repair_us = 2_500.0;
    plan
}

/// `n` paper nodes, each carrying its own node-derived copy of the base
/// fault plan.
fn cluster_nodes(n: usize, rate: f64) -> Vec<NodeSpec> {
    (0..n)
        .map(|node| NodeSpec::paper(GPUS).with_faults(fault_plan(rate).for_node(node as u64)))
        .collect()
}

fn base_cfg(plan: ShardPlan, nodes: Vec<NodeSpec>) -> ClusterConfig {
    ClusterConfig::new(plan, nodes, DesignPoint::Tdimm, BatchPolicy::new(32, 300.0))
        .with_retry(RetryPolicy::none().with_deadline(SLA_US))
        .with_admission(AdmissionPolicy::bounded(256))
        .with_lookups(LOOKUPS, 0.9, 0x7e50)
}

fn run(model: &SystemModel, w: &Workload, cfg: &ClusterConfig, arrivals: &[f64]) -> ClusterReport {
    let report = simulate_cluster(model, w, cfg, arrivals).expect("valid config and trace");
    assert!(
        report.is_conserved(),
        "conservation violated: {} arrived vs outcomes {:?} (+{} not arrived) of {} offered",
        report.arrived,
        report.outcomes,
        report.not_arrived(),
        report.offered
    );
    report
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let requests = if quick { 300 } else { 1500 };
    let load_qps = 250_000.0;
    let node_counts: &[usize] = if quick { &[4] } else { &[2, 4, 8] };
    let replications: &[usize] = &[1, 2];
    let rates: &[f64] = if quick {
        &[0.0, 0.5, 1.0]
    } else {
        &[0.0, 0.25, 0.5, 1.0]
    };

    let model = SystemModel::paper_defaults();
    let w = Workload::facebook();
    let arrivals =
        ArrivalProcess::Poisson { rate_qps: load_qps }.sample_arrivals_us(requests, TRACE_SEED);

    println!(
        "Cluster sweep: Facebook, {GPUS} GPUs/node, batch<=32, {requests} requests at \
         {load_qps:.0} qps, {LOOKUPS} routed rows/request, SLA {SLA_US:.0} µs, \
         2-domain fault plan per node (gap 250 µs, repair 2500 µs)"
    );

    // Gate 1: with replication 1, all-inert plans and static routing the
    // cluster is exactly N independent single-node simulators — every
    // per-shard report compares bit-identical, records included.
    for &nodes in node_counts {
        let cfg = base_cfg(
            ShardPlan::hash(nodes, 1).expect("valid plan"),
            vec![NodeSpec::paper(GPUS); nodes],
        )
        .with_failover(FailoverPolicy::None);
        let report = run(&model, &w, &cfg, &arrivals);
        let traces = shard_traces(&cfg, &w, &arrivals).expect("valid config");
        let shard_model = model.clone().with_node_dimms(SystemModel::PAPER_NODE_DIMMS);
        for (node, trace) in traces.iter().enumerate().take(nodes) {
            let independent = simulate(&shard_model, &w, &shard_sim_config(&cfg, node), trace)
                .expect("valid shard run");
            assert_eq!(
                report.shards[node].report, independent,
                "{nodes}-node inert cluster: shard {node} must be bit-identical to its \
                 independent single-node run"
            );
        }
    }
    println!("inert decomposition: every shard bit-identical to its independent run");
    println!();

    println!(
        "{:>5} {:>4} {:>6} {:>13} {:>12} {:>7} {:>9} {:>8} {:>10}",
        "nodes",
        "repl",
        "rate",
        "availability",
        "goodput qps",
        "shed%",
        "rerouted",
        "fanout",
        "p99 µs"
    );
    for &nodes in node_counts {
        for &replication in replications {
            if replication > nodes {
                continue;
            }
            // Gate 3: availability never rises with the fault rate.
            let mut prev_avail = f64::INFINITY;
            for &rate in rates {
                let cfg = base_cfg(
                    ShardPlan::hash(nodes, replication).expect("valid plan"),
                    cluster_nodes(nodes, rate),
                );
                let report = run(&model, &w, &cfg, &arrivals);
                let avail = report.availability_at(SLA_US);
                assert!(
                    avail <= prev_avail + 1e-9,
                    "{nodes} nodes / replication {replication}: availability rose from \
                     {prev_avail:.4} to {avail:.4} at fault rate {rate}"
                );
                prev_avail = avail;
                println!(
                    "{:>5} {:>4} {:>6.2} {:>13.4} {:>12.0} {:>7.2} {:>9} {:>8.2} {:>10.1}",
                    nodes,
                    replication,
                    rate,
                    avail,
                    report.goodput_qps,
                    100.0 * report.shed_rate,
                    report.routing.rerouted_requests,
                    report.routing.mean_fanout,
                    report.latency.p99_us
                );
            }
        }
    }

    // Gate 2 (horizon leg): cut the worst-case grid point mid-trace so
    // requests are stranded at the router and sub-requests sit queued on
    // shards, and check the rejoined accounting still balances (`run`
    // asserts conservation).
    let nodes = *node_counts.last().expect("nonempty grid");
    let horizon = arrivals.last().copied().unwrap_or(0.0) * 0.5;
    let cut_cfg = base_cfg(
        ShardPlan::hash(nodes, 2).expect("valid plan"),
        cluster_nodes(nodes, 1.0),
    )
    .with_horizon(horizon);
    let cut = run(&model, &w, &cut_cfg, &arrivals);
    assert!(
        cut.not_arrived() > 0,
        "the horizon must cut some arrivals off"
    );
    println!();
    println!(
        "horizon cut at {horizon:.0} µs: {} completed, {} in flight, {} not arrived — conserved",
        cut.completed,
        cut.outcomes.in_flight_at_horizon,
        cut.not_arrived()
    );
    println!();

    // The placement duel: one node dead for the whole trace, replication
    // 2, rerouting failover. Hash placement funnels the dead shard's
    // entire load onto its ring successor; the hot-cold split spreads the
    // replicated Zipf head across the survivors and narrows fan-out via
    // affinity, so it clears the SLA where hash queues.
    // The duel runs lean nodes (2 GPUs, an 8-DIMM bandwidth slice, 3
    // routed rows per request) under a long trace: the successor hotspot
    // only shows once the rerouted load exceeds a node's service rate
    // and queues have time to build — full paper nodes absorb a doubled
    // load without queueing and both placements coast at 1.0.
    let duel_nodes = 4;
    let duel_gpus = 2;
    let duel_dimms = 8;
    let duel_lookups = 2;
    let duel_arrivals = ArrivalProcess::Poisson {
        rate_qps: 340_000.0,
    }
    .sample_arrivals_us(4_000, TRACE_SEED);
    let outage_end = duel_arrivals.last().copied().unwrap_or(0.0) + 1.0;
    let one_dead = || -> Vec<NodeSpec> {
        let mut lean = NodeSpec::paper(duel_gpus);
        lean.dimms = duel_dimms;
        let mut specs = vec![lean; duel_nodes];
        specs[0] = specs[0].with_faults(FaultPlan::none().with_node_outage(NodeOutage {
            start_us: 0.0,
            duration_us: outage_end,
        }));
        specs
    };
    println!(
        "placement duel: {duel_nodes} nodes x {duel_gpus} GPUs x {duel_dimms} DIMMs, \
         replication 2, {duel_lookups} routed rows/request, node 0 dead for the whole trace"
    );
    println!(
        "{:<10} {:>13} {:>12} {:>9} {:>8} {:>10}  per-shard subs (p99 µs)",
        "placement", "availability", "goodput qps", "rerouted", "fanout", "p99 µs"
    );
    let duel = |label: &str, plan: ShardPlan| -> f64 {
        let cfg = base_cfg(plan, one_dead())
            .with_failover(FailoverPolicy::Reroute)
            .with_lookups(duel_lookups, 0.9, 0x7e50);
        let report = run(&model, &w, &cfg, &duel_arrivals);
        let avail = report.availability_at(SLA_US);
        assert_eq!(
            report.shards[0].subrequests, 0,
            "{label}: the dead node must receive no traffic"
        );
        let shard_loads: Vec<String> = report
            .shards
            .iter()
            .map(|s| format!("{}({:.0})", s.subrequests, s.report.latency.p99_us))
            .collect();
        println!(
            "{:<10} {:>13.4} {:>12.0} {:>9} {:>8.2} {:>10.1}  {}",
            label,
            avail,
            report.goodput_qps,
            report.routing.rerouted_requests,
            report.routing.mean_fanout,
            report.latency.p99_us,
            shard_loads.join(" ")
        );
        avail
    };
    let hash_avail = duel("hash", ShardPlan::hash(duel_nodes, 2).expect("valid plan"));
    let hotcold_avail = duel(
        "hot-cold",
        ShardPlan::hot_cold(duel_nodes, 2, 500_000).expect("valid plan"),
    );
    assert!(
        hotcold_avail > hash_avail,
        "hot-cold split must beat hash on availability under a one-node outage \
         (hot-cold {hotcold_avail:.4} vs hash {hash_avail:.4})"
    );
    println!();
    println!(
        "hot-cold split beats hash under the outage: {hotcold_avail:.4} vs {hash_avail:.4} \
         availability at {SLA_US:.0} µs"
    );
    println!("all invariants held: inert decomposition, conservation, monotone availability");
}
