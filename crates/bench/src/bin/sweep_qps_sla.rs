//! Offered-load sweep: sustainable QPS at a p99 SLA per design point and
//! workload, under the request-level serving simulator.
//!
//! The serving analogue of Fig. 14: instead of per-inference latency at a
//! fixed batch, each design absorbs open-loop Poisson traffic through a
//! dynamic batcher (max batch 32, 300 µs window) on 8 GPUs sharing one
//! TensorNode, and the sweep reports the highest offered load of the
//! passing prefix — the last rate before the p99 SLA is first violated.
//!
//! The (workload × design) grid points are mutually independent, so they
//! fan across a deterministic worker pool; results merge in input order,
//! so the table is identical at any worker count.
//!
//! Run with:
//! `cargo run --release -p tensordimm_bench --bin sweep_qps_sla [-- --workers N]`

use tensordimm_bench::args::workers_from_args;
use tensordimm_models::Workload;
use tensordimm_serving::{offered_load_sweep, sustainable_qps, BatchPolicy, SimConfig, SimError};
use tensordimm_system::{DesignPoint, SystemModel};

const GPUS: usize = 8;
const REQUESTS: usize = 2500;
const SEED: u64 = 0x51a;
const SLA_P99_US: f64 = 800.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers = workers_from_args();
    let model = SystemModel::paper_defaults();
    let policy = BatchPolicy::new(32, 300.0);
    let rates: Vec<f64> = (1..=20).map(|i| 100_000.0 * i as f64).collect();
    let designs = [DesignPoint::Pmem, DesignPoint::Tdimm, DesignPoint::GpuOnly];

    println!(
        "Sustainable QPS at p99 <= {SLA_P99_US:.0} us ({GPUS} GPUs, batch <= {}, {} us window, {workers} workers)",
        policy.max_batch, policy.max_wait_us
    );
    println!();
    println!(
        "{:>10} | {:>12} {:>12} {:>12} | {:>11}",
        "workload", "PMEM", "TDIMM", "GPU-only", "TDIMM/PMEM"
    );

    // Every (workload, design) grid point is independent: fan the whole
    // grid across the pool and merge in input order, so the printed table
    // is identical to the sequential run.
    let jobs: Vec<(Workload, DesignPoint)> = Workload::all()
        .into_iter()
        .flat_map(|w| designs.iter().map(move |&d| (w.clone(), d)))
        .collect();
    let grid: Vec<Result<f64, SimError>> =
        tensordimm_exec::par_map(&jobs, workers, |_, (w, design)| {
            let cfg = SimConfig::new(*design, GPUS, policy);
            let points = offered_load_sweep(&model, w, &cfg, &rates, REQUESTS, SEED)?;
            Ok(sustainable_qps(&points, SLA_P99_US).unwrap_or(0.0))
        });

    // par_map merged in input order, so each designs.len()-sized chunk of
    // the grid is one jobs row — consume it zipped with the jobs so the
    // printed workload is structurally the one that produced the numbers.
    let mut ratios = Vec::new();
    for (row, (w, _)) in grid
        .chunks(designs.len())
        .zip(jobs.iter().step_by(designs.len()))
    {
        let qps = row.iter().cloned().collect::<Result<Vec<f64>, _>>()?;
        let ratio = qps[1] / qps[0].max(1.0);
        ratios.push(ratio);
        println!(
            "{:>10} | {:>12.0} {:>12.0} {:>12.0} | {:>10.1}x",
            w.name.to_string(),
            qps[0],
            qps[1],
            qps[2],
            ratio
        );
    }
    println!();
    let max_ratio = ratios.iter().cloned().fold(0.0f64, f64::max);
    let min_ratio = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "TDIMM sustains up to {max_ratio:.1}x PMEM's load; the floor is {min_ratio:.1}x on NCF, \
         whose reduction factor of 2 makes TDIMM and PMEM a near-tie (as in Fig. 14). \
         Rate grid: {:.0}k..{:.0}k qps.",
        rates[0] / 1e3,
        rates[rates.len() - 1] / 1e3
    );
    Ok(())
}
