//! Offered-load sweep: sustainable QPS at a p99 SLA per design point and
//! workload, under the request-level serving simulator.
//!
//! The serving analogue of Fig. 14: instead of per-inference latency at a
//! fixed batch, each design absorbs open-loop Poisson traffic through a
//! dynamic batcher (max batch 32, 300 µs window) on 8 GPUs sharing one
//! TensorNode, and the sweep reports the highest offered load whose p99
//! latency stays inside the SLA.
//!
//! Run with: `cargo run --release -p tensordimm_bench --bin sweep_qps_sla`

use tensordimm_models::Workload;
use tensordimm_serving::{offered_load_sweep, sustainable_qps, BatchPolicy, SimConfig};
use tensordimm_system::{DesignPoint, SystemModel};

const GPUS: usize = 8;
const REQUESTS: usize = 2500;
const SEED: u64 = 0x51a;
const SLA_P99_US: f64 = 800.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = SystemModel::paper_defaults();
    let policy = BatchPolicy::new(32, 300.0);
    let rates: Vec<f64> = (1..=20).map(|i| 100_000.0 * i as f64).collect();
    let designs = [DesignPoint::Pmem, DesignPoint::Tdimm, DesignPoint::GpuOnly];

    println!(
        "Sustainable QPS at p99 <= {SLA_P99_US:.0} us ({GPUS} GPUs, batch <= {}, {} us window)",
        policy.max_batch, policy.max_wait_us
    );
    println!();
    println!(
        "{:>10} | {:>12} {:>12} {:>12} | {:>11}",
        "workload", "PMEM", "TDIMM", "GPU-only", "TDIMM/PMEM"
    );
    let mut ratios = Vec::new();
    for w in Workload::all() {
        let mut qps = Vec::new();
        for &design in &designs {
            let cfg = SimConfig::new(design, GPUS, policy);
            let points = offered_load_sweep(&model, &w, &cfg, &rates, REQUESTS, SEED)?;
            qps.push(sustainable_qps(&points, SLA_P99_US).unwrap_or(0.0));
        }
        let ratio = qps[1] / qps[0].max(1.0);
        ratios.push(ratio);
        println!(
            "{:>10} | {:>12.0} {:>12.0} {:>12.0} | {:>10.1}x",
            w.name.to_string(),
            qps[0],
            qps[1],
            qps[2],
            ratio
        );
    }
    println!();
    let max_ratio = ratios.iter().cloned().fold(0.0f64, f64::max);
    let min_ratio = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "TDIMM sustains up to {max_ratio:.1}x PMEM's load; the floor is {min_ratio:.1}x on NCF, \
         whose reduction factor of 2 makes TDIMM and PMEM a near-tie (as in Fig. 14). \
         Rate grid: {:.0}k..{:.0}k qps.",
        rates[0] / 1e3,
        rates[rates.len() - 1] / 1e3
    );
    Ok(())
}
