//! Measured interconnect fabric vs the closed-form crossbar oracle.
//!
//! The contended node → GPU transfer can be priced two ways: the analytic
//! `Switch` (max-min fluid allocation, closed form) or the cycle-level
//! message [`Fabric`](tensordimm_interconnect::Fabric), which forwards
//! every transfer hop by hop under finite per-link bandwidth. This harness
//!
//! * gates `FullyConnected`-fabric vs analytic agreement within
//!   ±10% across the Fig. 16 link grid (25 / 50 / 150 GB/s) × the
//!   paper workloads' transfer sizes at batch 64 — the two model the same
//!   non-blocking crossbar, so a larger gap means one of them regressed,
//! * re-checks the Fig. 16 ordering (25 GB/s slower than 50 slower than
//!   150) with the transfer *measured* on the fabric instead of assumed
//!   closed-form, for both node-backed designs, and
//! * prints what cheaper physical layouts would cost: the same 8-GPU
//!   broadcast on `Line` and `Ring` fabrics vs the full crossbar.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tensordimm_bench --bin sweep_fabric [-- --quick]
//! ```
//!
//! `--quick` shrinks the grid so CI can gate in seconds. The full tables
//! are reproduced in `EXPERIMENTS.md` ("Measured interconnect fabric").

use std::time::Instant;

use tensordimm_interconnect::{Link, Topology, TopologyKind};
use tensordimm_models::Workload;
use tensordimm_system::{price_batch, DesignPoint, SystemModel, TransferBackend};

/// Maximum |fabric − analytic| / analytic allowed on any grid point.
const AGREEMENT_BAND: f64 = 0.10;

const BATCH: usize = 64;
const GPUS: usize = 8;

fn model_at(bw_gbps: f64, transfer: TransferBackend) -> SystemModel {
    let link = Link::nvlink_class(bw_gbps).expect("positive bandwidth");
    SystemModel::paper_defaults()
        .with_topology(Topology::dgx_like(8).with_gpu_link(link))
        .with_transfer(transfer)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let t0 = Instant::now();

    let links: &[f64] = &[25.0, 50.0, 150.0];
    let workloads = Workload::all();
    let workloads: &[Workload] = if quick {
        &workloads[..2]
    } else {
        &workloads[..]
    };
    let gpu_grid: &[usize] = if quick { &[GPUS] } else { &[2, 4, GPUS] };

    // ---- Gate 1: FullyConnected fabric vs analytic Switch ----------------
    println!("FullyConnected fabric vs analytic Switch (batch {BATCH}):");
    println!(
        "{:>7} {:>10} {:>5} {:>6} | {:>12} {:>12} {:>7}",
        "link", "workload", "kind", "gpus", "analytic µs", "fabric µs", "delta"
    );
    let mut worst: f64 = 0.0;
    for &bw in links {
        let analytic = model_at(bw, TransferBackend::Analytic);
        let fabric = model_at(bw, TransferBackend::Fabric(TopologyKind::FullyConnected));
        for w in workloads {
            // Both node designs' transfer sizes: pooled (TDIMM) and
            // gathered (PMEM) bytes.
            for (kind, bytes) in [
                ("pool", w.pooled_bytes(BATCH)),
                ("gath", w.gathered_bytes(BATCH)),
            ] {
                for &gpus in gpu_grid {
                    let a = analytic
                        .contended_node_transfer_us(bytes, gpus)
                        .expect("nonzero gpus");
                    let f = fabric
                        .contended_node_transfer_us(bytes, gpus)
                        .expect("nonzero gpus");
                    let delta = (f - a).abs() / a;
                    worst = worst.max(delta);
                    println!(
                        "{:>4.0}GB {:>10} {:>5} {:>6} | {:>12.2} {:>12.2} {:>6.2}%",
                        bw,
                        w.name,
                        kind,
                        gpus,
                        a,
                        f,
                        100.0 * delta
                    );
                }
            }
        }
    }
    println!("worst fabric-vs-analytic delta: {:.2}%", 100.0 * worst);
    assert!(
        worst < AGREEMENT_BAND,
        "fully-connected fabric diverged {:.1}% from the analytic switch \
         (band {:.0}%)",
        100.0 * worst,
        100.0 * AGREEMENT_BAND
    );

    // ---- Gate 2: Fig. 16 ordering under the measured fabric --------------
    println!();
    println!("Fig. 16 ordering, transfer measured on the fabric (batch {BATCH}, {GPUS} GPUs):");
    println!(
        "{:>6} {:>10} | {:>12} {:>12} {:>12}",
        "design", "workload", "25 GB/s µs", "50 GB/s µs", "150 GB/s µs"
    );
    for design in [DesignPoint::Pmem, DesignPoint::Tdimm] {
        for w in workloads {
            let service: Vec<f64> = links
                .iter()
                .map(|&bw| {
                    let m = model_at(bw, TransferBackend::Fabric(TopologyKind::FullyConnected));
                    price_batch(&m, w, BATCH, design, GPUS)
                        .expect("nonzero gpus")
                        .service_us
                })
                .collect();
            println!(
                "{:>6} {:>10} | {:>12.1} {:>12.1} {:>12.1}",
                design.to_string(),
                w.name,
                service[0],
                service[1],
                service[2]
            );
            assert!(
                service[0] >= service[1] && service[1] >= service[2],
                "{design} on {}: thinner links must not serve faster \
                 (25 GB/s {:.1} µs, 50 GB/s {:.1} µs, 150 GB/s {:.1} µs)",
                w.name,
                service[0],
                service[1],
                service[2]
            );
        }
    }

    // ---- Table 3: what cheaper physical layouts would cost ---------------
    println!();
    println!(
        "Topology comparison ({GPUS} GPUs pulling 16 MiB each from the node, 150 GB/s links):"
    );
    println!("{:>16} | {:>12} {:>9}", "layout", "slowest µs", "vs full");
    let mut layout_times = Vec::new();
    for kind in TopologyKind::all() {
        let t = model_at(150.0, TransferBackend::Fabric(kind))
            .contended_node_transfer_us(16 << 20, GPUS)
            .expect("nonzero gpus");
        layout_times.push((kind, t));
    }
    let full = layout_times
        .iter()
        .find(|(k, _)| *k == TopologyKind::FullyConnected)
        .expect("all() includes the full crossbar")
        .1;
    for (kind, t) in &layout_times {
        println!("{:>16} | {:>12.1} {:>8.2}x", kind.to_string(), t, t / full);
    }
    let line = layout_times
        .iter()
        .find(|(k, _)| *k == TopologyKind::Line)
        .expect("all() includes the line")
        .1;
    let ring = layout_times
        .iter()
        .find(|(k, _)| *k == TopologyKind::Ring)
        .expect("all() includes the ring")
        .1;
    assert!(
        line >= ring && ring >= full,
        "layout ordering regressed: line {line} ring {ring} full {full}"
    );

    println!();
    println!(
        "[sweep_fabric] all gates passed in {:.1}s{}",
        t0.elapsed().as_secs_f64(),
        if quick { " (quick grid)" } else { "" }
    );
}
