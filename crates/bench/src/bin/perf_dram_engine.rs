//! Perf + equivalence harness for the event-driven DRAM engine.
//!
//! Replays the Fig. 4 / Fig. 11 gather traces (plus a sparse, low-QPS
//! variant with `not_before` arrival gaps) through both engine paths —
//! the tick-stepped oracle ([`TraceRunner::run_ticked`]) and the
//! event-driven fast path ([`TraceRunner::run`]) — asserts bit-identical
//! `MemoryStats` and completion streams, and reports the wall-clock
//! speedup plus the idle-cycles-skipped counter as JSON.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tensordimm_bench --bin perf_dram_engine [-- --quick]
//! ```
//!
//! `--quick` shrinks the traces so CI can gate on the equivalence
//! assertion (not the speed number) in seconds. The full run also writes
//! `BENCH_dram_engine.json`, seeding the repo's perf trajectory.

use std::time::Instant;

use tensordimm_bench::traffic::{op_trace, OpExperiment, OpKind};
use tensordimm_dram::{
    Completion, DramConfig, MemoryStats, MemorySystem, Trace, TraceEntry, TraceRunner,
};
use tensordimm_models::Workload;
use tensordimm_system::{BatchPricer, CyclePricer, CyclePricerConfig, DesignPoint, SystemModel};

struct Scenario {
    name: &'static str,
    /// Minimum wall-clock speedup the full-size run must reach.
    speedup_floor: f64,
    trace: Trace,
    config: DramConfig,
}

fn gather_exp(count: u64, seed: u64) -> OpExperiment {
    OpExperiment {
        op: OpKind::Gather,
        count,
        vec_blocks: 32,
        table_rows: 100_000,
        seed,
        zipf_s: 0.0,
    }
}

fn spaced(trace: &Trace, gap: u64) -> Trace {
    trace
        .entries()
        .iter()
        .enumerate()
        .map(|(i, e)| TraceEntry {
            not_before: i as u64 * gap,
            request: e.request,
        })
        .collect()
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    let dense_count: u64 = if quick { 64 } else { 1024 };
    let sparse_count: u64 = if quick { 48 } else { 256 };
    let channel = DramConfig::ddr4_3200_channel();
    let cpu = DramConfig::cpu_memory(8);

    let dense = op_trace(&gather_exp(dense_count, 5), channel.capacity_bytes());
    let cpu_dense = op_trace(&gather_exp(dense_count / 2, 7), cpu.capacity_bytes());
    // Sparse: one 64-byte lookup block every `gap` cycles — a low-QPS
    // serving replay where almost every cycle is idle.
    let sparse_base = op_trace(&gather_exp(sparse_count, 11), channel.capacity_bytes());
    let gap = 2_000;

    vec![
        // The fig-04/fig-11 dense gather on a TensorDIMM's local channel:
        // the acceptance target of >= 1.5x rides on this scenario.
        Scenario {
            name: "dense_gather_1ch",
            speedup_floor: 1.5,
            trace: dense,
            config: channel.clone(),
        },
        // The same stream over the 8-channel CPU memory; action-dense on
        // every channel, so the honest floor is lower.
        Scenario {
            name: "dense_gather_8ch_cpu",
            speedup_floor: 1.2,
            trace: cpu_dense,
            config: cpu,
        },
        Scenario {
            name: "sparse_gather_low_qps",
            speedup_floor: 10.0,
            trace: spaced(&sparse_base, gap),
            config: channel,
        },
    ]
}

struct PathResult {
    stats: MemoryStats,
    completions: Vec<Completion>,
    final_cycle: u64,
    skipped: u64,
    wall_s: f64,
}

fn replay(trace: &Trace, config: &DramConfig, event_driven: bool) -> PathResult {
    let mem = MemorySystem::new(config.clone()).expect("valid config");
    let mut runner = TraceRunner::new(mem);
    let start = Instant::now();
    let stats = if event_driven {
        runner.run(trace).expect("trace in range")
    } else {
        runner.run_ticked(trace).expect("trace in range")
    };
    let wall_s = start.elapsed().as_secs_f64();
    let mut completions = Vec::new();
    let memory = runner.memory_mut();
    memory.drain_completions_into(&mut completions);
    PathResult {
        stats,
        completions,
        final_cycle: memory.cycle(),
        skipped: memory.idle_cycles_skipped(),
        wall_s,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut rows = Vec::new();
    let mut gate_failures = Vec::new();

    for sc in scenarios(quick) {
        let oracle = replay(&sc.trace, &sc.config, false);
        let fast = replay(&sc.trace, &sc.config, true);

        assert_eq!(
            oracle.stats, fast.stats,
            "{}: MemoryStats diverged between tick and event paths",
            sc.name
        );
        assert_eq!(
            oracle.completions, fast.completions,
            "{}: completion streams diverged",
            sc.name
        );
        assert_eq!(
            oracle.final_cycle, fast.final_cycle,
            "{}: final cycles diverged",
            sc.name
        );
        assert_eq!(oracle.skipped, 0, "oracle path must not skip");

        let speedup = oracle.wall_s / fast.wall_s.max(1e-9);
        if !quick && speedup < sc.speedup_floor {
            gate_failures.push(format!(
                "{}: {speedup:.2}x below the {:.1}x floor",
                sc.name, sc.speedup_floor
            ));
        }
        rows.push(format!(
            concat!(
                "    {{\"scenario\": \"{}\", \"requests\": {}, ",
                "\"simulated_cycles\": {}, \"idle_cycles_skipped\": {}, ",
                "\"tick_wall_s\": {:.6}, \"event_wall_s\": {:.6}, ",
                "\"speedup\": {:.2}, \"identical\": true}}"
            ),
            sc.name,
            sc.trace.len(),
            fast.final_cycle,
            fast.skipped,
            oracle.wall_s,
            fast.wall_s,
            speedup,
        ));
        eprintln!(
            "{:<24} {:>7} reqs  {:>10} cycles  {:>10} skipped  tick {:>8.3}s  event {:>8.3}s  {:>6.1}x",
            sc.name,
            sc.trace.len(),
            fast.final_cycle,
            fast.skipped,
            oracle.wall_s,
            fast.wall_s,
            speedup
        );
    }

    // Serving-backend cost: one cold cycle-calibrated batch price (the
    // gather replay) vs a memoized hit. Backend cost regressions — a
    // slower replay or a broken latency table — show up here and are
    // gated on the full-size run.
    {
        let model = SystemModel::paper_defaults();
        let mut cfg = CyclePricerConfig::paper_defaults();
        if quick {
            cfg.max_replayed_lookups = 256;
        }
        let pricer = CyclePricer::with_config(&model, cfg);
        let w = Workload::facebook();
        let start = Instant::now();
        let cold = pricer
            .price(&w, 32, DesignPoint::Tdimm, 8)
            .expect("valid batch");
        let cold_wall_s = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let warm = pricer
            .price(&w, 32, DesignPoint::Tdimm, 8)
            .expect("valid batch");
        let warm_wall_s = start.elapsed().as_secs_f64();
        assert_eq!(
            cold.service_us.to_bits(),
            warm.service_us.to_bits(),
            "memoized price must be bit-identical to the cold replay"
        );
        let memo_speedup = cold_wall_s / warm_wall_s.max(1e-9);
        if !quick && memo_speedup < 50.0 {
            gate_failures.push(format!(
                "serving_cycle_price: memo hit only {memo_speedup:.1}x faster than cold replay"
            ));
        }
        rows.push(format!(
            concat!(
                "    {{\"scenario\": \"serving_cycle_price\", ",
                "\"workload\": \"Facebook\", \"batch\": 32, ",
                "\"service_us\": {:.3}, \"cold_wall_s\": {:.6}, ",
                "\"warm_wall_s\": {:.9}, \"memo_speedup\": {:.1}, ",
                "\"identical\": true}}"
            ),
            cold.service_us, cold_wall_s, warm_wall_s, memo_speedup,
        ));
        eprintln!(
            "{:<24} {:>7}      batch-32 price {:>8.1} us    cold {:>8.4}s  warm {:>9.6}s  {:>6.0}x",
            "serving_cycle_price", "", cold.service_us, cold_wall_s, warm_wall_s, memo_speedup
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"dram_engine\",\n  \"quick\": {},\n  \"scenarios\": [\n{}\n  ]\n}}",
        quick,
        rows.join(",\n")
    );
    println!("{json}");

    if !quick {
        // Speed gates only run on the full-size traces (--quick runs the
        // equivalence assertions only, which is what CI gates on).
        assert!(
            gate_failures.is_empty(),
            "speedup gates failed: {}",
            gate_failures.join("; ")
        );
        std::fs::write("BENCH_dram_engine.json", format!("{json}\n"))
            .expect("write BENCH_dram_engine.json");
        eprintln!("wrote BENCH_dram_engine.json");
    }
}
