//! Perf + equivalence harness for the event-driven DRAM engine.
//!
//! Replays the Fig. 4 / Fig. 11 gather traces (plus a sparse, low-QPS
//! variant with `not_before` arrival gaps) through both engine paths —
//! the tick-stepped oracle ([`TraceRunner::run_ticked`]) and the
//! event-driven fast path ([`TraceRunner::run`]) — asserts bit-identical
//! `MemoryStats` and completion streams, and reports the wall-clock
//! speedup plus the idle-cycles-skipped counter as JSON.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tensordimm_bench --bin perf_dram_engine \
//!     [-- --quick] [-- --workers N]
//! ```
//!
//! `--quick` shrinks the traces so CI can gate on the equivalence
//! assertions (not the speed numbers) in seconds. The full run also writes
//! `BENCH_dram_engine.json`, seeding the repo's perf trajectory.
//!
//! The `cached_gather` scenario exercises the hot-row SRAM tier in the
//! gather replay: a zero-capacity cache must reproduce the uncached
//! pipeline byte for byte, while a head-sized cache against a Zipf-0.9
//! stream must hit and shorten the replay. The `faulted_serving` scenario
//! does the same for the fault-injection layer: an armed fault plan whose
//! schedule is empty must leave the serving simulation byte-identical,
//! and a harsh plan must degrade it while conserving every request.
//!
//! Besides the tick-vs-event scenarios, the harness runs the **parallel
//! execution layer** through its paces: a sequential-vs-parallel offered
//! load sweep (`parallel_sweep`), a sequential-vs-concurrent cycle-pricer
//! warm-up (`pricer_concurrent_warm`), and a multi-worker channel advance
//! (`parallel_channels`). Every parallel scenario asserts bit-identity
//! against its single-threaded oracle regardless of flags; the speedup
//! floors (>= 2x under `--quick`, >= 3x full) are enforced only when the
//! run is actually parallel enough to owe them — at least 4 workers on at
//! least 4 cores — so a `--workers 2` CI run or a small container still
//! exercises and gates the *correctness* of the parallel path.

use std::time::Instant;

use tensordimm_bench::args::workers_from_args;
use tensordimm_bench::traffic::{op_trace, OpExperiment, OpKind};
use tensordimm_dram::{
    Completion, DramConfig, MemoryStats, MemorySystem, Request, Trace, TraceEntry, TraceRunner,
};
use tensordimm_embedding::zipf_lookup_rows;
use tensordimm_isa::{DimmContext, Instruction};
use tensordimm_models::Workload;
use tensordimm_nmp::{NmpConfig, NmpCore, NmpRunStats};
use tensordimm_serving::{
    offered_load_sweep, offered_load_sweep_par, simulate, ArrivalProcess, BatchPolicy, FaultPlan,
    NodeOutage, SimConfig,
};
use tensordimm_system::{
    BatchPricer, CyclePricer, CyclePricerConfig, DesignPoint, HotRowCacheConfig, SystemModel,
};

struct Scenario {
    name: &'static str,
    /// Minimum wall-clock speedup the full-size run must reach.
    speedup_floor: f64,
    trace: Trace,
    config: DramConfig,
}

fn gather_exp(count: u64, seed: u64) -> OpExperiment {
    OpExperiment {
        op: OpKind::Gather,
        count,
        vec_blocks: 32,
        table_rows: 100_000,
        seed,
        zipf_s: 0.0,
    }
}

fn spaced(trace: &Trace, gap: u64) -> Trace {
    trace
        .entries()
        .iter()
        .enumerate()
        .map(|(i, e)| TraceEntry {
            not_before: i as u64 * gap,
            request: e.request,
        })
        .collect()
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    let dense_count: u64 = if quick { 64 } else { 1024 };
    let sparse_count: u64 = if quick { 48 } else { 256 };
    let channel = DramConfig::ddr4_3200_channel();
    let cpu = DramConfig::cpu_memory(8);

    let dense = op_trace(&gather_exp(dense_count, 5), channel.capacity_bytes());
    let cpu_dense = op_trace(&gather_exp(dense_count / 2, 7), cpu.capacity_bytes());
    // Sparse: one 64-byte lookup block every `gap` cycles — a low-QPS
    // serving replay where almost every cycle is idle.
    let sparse_base = op_trace(&gather_exp(sparse_count, 11), channel.capacity_bytes());
    let gap = 2_000;

    vec![
        // The fig-04/fig-11 dense gather on a TensorDIMM's local channel:
        // the acceptance target of >= 1.5x rides on this scenario.
        Scenario {
            name: "dense_gather_1ch",
            speedup_floor: 1.5,
            trace: dense,
            config: channel.clone(),
        },
        // The same stream over the 8-channel CPU memory; action-dense on
        // every channel, so the honest floor is lower.
        Scenario {
            name: "dense_gather_8ch_cpu",
            speedup_floor: 1.2,
            trace: cpu_dense,
            config: cpu,
        },
        Scenario {
            name: "sparse_gather_low_qps",
            speedup_floor: 10.0,
            trace: spaced(&sparse_base, gap),
            config: channel,
        },
    ]
}

struct PathResult {
    stats: MemoryStats,
    completions: Vec<Completion>,
    final_cycle: u64,
    skipped: u64,
    wall_s: f64,
}

fn replay(trace: &Trace, config: &DramConfig, event_driven: bool) -> PathResult {
    let mem = MemorySystem::new(config.clone()).expect("valid config");
    let mut runner = TraceRunner::new(mem);
    let start = Instant::now();
    let stats = if event_driven {
        runner.run(trace).expect("trace in range")
    } else {
        runner.run_ticked(trace).expect("trace in range")
    };
    let wall_s = start.elapsed().as_secs_f64();
    let mut completions = Vec::new();
    let memory = runner.memory_mut();
    memory.drain_completions_into(&mut completions);
    PathResult {
        stats,
        completions,
        final_cycle: memory.cycle(),
        skipped: memory.idle_cycles_skipped(),
        wall_s,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let workers = workers_from_args();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The parallel speedup floors only bind when the run can plausibly
    // deliver them: >= 4 workers actually running on >= 4 cores (the
    // acceptance target is >= 3x on a 4-core full grid). Bit-identity is
    // asserted unconditionally.
    let gate_parallel = workers >= 4 && cores >= 4;
    let par_floor = if quick { 2.0 } else { 3.0 };
    eprintln!(
        "parallel scenarios: {workers} workers on {cores} cores; speedup floor {par_floor:.1}x {}",
        if gate_parallel {
            "(gated)"
        } else {
            "(informational — needs >= 4 workers and >= 4 cores to gate)"
        }
    );
    let mut rows = Vec::new();
    let mut gate_failures = Vec::new();

    for sc in scenarios(quick) {
        let oracle = replay(&sc.trace, &sc.config, false);
        let fast = replay(&sc.trace, &sc.config, true);

        assert_eq!(
            oracle.stats, fast.stats,
            "{}: MemoryStats diverged between tick and event paths",
            sc.name
        );
        assert_eq!(
            oracle.completions, fast.completions,
            "{}: completion streams diverged",
            sc.name
        );
        assert_eq!(
            oracle.final_cycle, fast.final_cycle,
            "{}: final cycles diverged",
            sc.name
        );
        assert_eq!(oracle.skipped, 0, "oracle path must not skip");

        let speedup = oracle.wall_s / fast.wall_s.max(1e-9);
        if !quick && speedup < sc.speedup_floor {
            gate_failures.push(format!(
                "{}: {speedup:.2}x below the {:.1}x floor",
                sc.name, sc.speedup_floor
            ));
        }
        rows.push(format!(
            concat!(
                "    {{\"scenario\": \"{}\", \"requests\": {}, ",
                "\"simulated_cycles\": {}, \"idle_cycles_skipped\": {}, ",
                "\"tick_wall_s\": {:.6}, \"event_wall_s\": {:.6}, ",
                "\"speedup\": {:.2}, \"identical\": true}}"
            ),
            sc.name,
            sc.trace.len(),
            fast.final_cycle,
            fast.skipped,
            oracle.wall_s,
            fast.wall_s,
            speedup,
        ));
        eprintln!(
            "{:<24} {:>7} reqs  {:>10} cycles  {:>10} skipped  tick {:>8.3}s  event {:>8.3}s  {:>6.1}x",
            sc.name,
            sc.trace.len(),
            fast.final_cycle,
            fast.skipped,
            oracle.wall_s,
            fast.wall_s,
            speedup
        );
    }

    // Hot-row cache in the cycle-level gather path: a Zipf-0.9 lookup
    // stream replayed uncached, through a zero-capacity cache (must be
    // byte-identical — the acceptance witness that the cache plumbing is
    // inert when disabled), and through a head-sized cache (must hit and
    // shorten the replay). The wall-clock floor on the hit path only arms
    // on hosts with >= 4 cores, mirroring the parallel-floor policy.
    {
        let lookups: usize = if quick { 512 } else { 4096 };
        let table_rows: u64 = 50_000;
        let zipf_s = 0.9;
        let indices = zipf_lookup_rows(lookups, table_rows, zipf_s, 0xcafe);
        let g = Instruction::Gather {
            table_base: 0,
            idx_base: 1 << 27,
            output_base: 1 << 28,
            count: lookups as u64,
            vec_blocks: 32,
        };
        let ctx = DimmContext::new(32, 0);
        let run = |hot_rows: HotRowCacheConfig| -> (NmpRunStats, f64) {
            let mut cfg = NmpConfig::paper();
            cfg.hot_rows = hot_rows;
            let mut core = NmpCore::new(cfg).expect("valid NMP config");
            let start = Instant::now();
            let stats = core
                .run_instruction(&g, ctx, Some(&indices))
                .expect("valid gather");
            (stats, start.elapsed().as_secs_f64())
        };

        let (uncached, uncached_wall_s) = run(HotRowCacheConfig::disabled());
        // Zero capacity with latent geometry knobs set: the cache code
        // path must collapse to the uncached pipeline bit for bit.
        let (zeroed, _) = run(HotRowCacheConfig {
            capacity_rows: 0,
            ways: 4,
            hit_latency_cycles: 77,
        });
        assert_eq!(
            uncached, zeroed,
            "cached_gather: zero-capacity cache perturbed the uncached replay"
        );

        let capacity = 500; // head-sized: ~1% of the table's rows
        let (cached, cached_wall_s) = run(HotRowCacheConfig::fully_associative(capacity));
        assert!(
            cached.hot_rows.hits > 0,
            "cached_gather: Zipf-{zipf_s} head produced no hits"
        );
        assert_eq!(
            cached.writes, uncached.writes,
            "cached_gather: outputs must still drain to DRAM"
        );
        assert_eq!(
            cached.reads,
            uncached.reads - cached.hot_rows.hit_blocks,
            "cached_gather: every hit block must come off the DRAM read stream"
        );
        assert!(
            cached.cycles < uncached.cycles,
            "cached_gather: cache did not shorten the replay \
             ({} vs {} cycles)",
            cached.cycles,
            uncached.cycles
        );

        let hit_rate = cached.hot_rows.hit_rate();
        let cycle_ratio = uncached.cycles as f64 / cached.cycles as f64;
        let speedup = uncached_wall_s / cached_wall_s.max(1e-9);
        // Fewer DRAM events to simulate should also be faster to simulate,
        // but only gate wall clock where the host is quiet enough to owe it.
        if !quick && cores >= 4 && speedup < 1.05 {
            gate_failures.push(format!(
                "cached_gather: hit path only {speedup:.2}x the uncached replay wall clock"
            ));
        }
        rows.push(format!(
            concat!(
                "    {{\"scenario\": \"cached_gather\", \"lookups\": {}, ",
                "\"table_rows\": {}, \"zipf_s\": {}, \"capacity_rows\": {}, ",
                "\"hit_rate\": {:.4}, \"hits\": {}, \"misses\": {}, ",
                "\"uncached_cycles\": {}, \"cached_cycles\": {}, ",
                "\"cycle_speedup\": {:.3}, \"uncached_wall_s\": {:.6}, ",
                "\"cached_wall_s\": {:.6}, \"wall_speedup\": {:.2}, ",
                "\"identical_when_disabled\": true}}"
            ),
            lookups,
            table_rows,
            zipf_s,
            capacity,
            hit_rate,
            cached.hot_rows.hits,
            cached.hot_rows.misses,
            uncached.cycles,
            cached.cycles,
            cycle_ratio,
            uncached_wall_s,
            cached_wall_s,
            speedup,
        ));
        eprintln!(
            "{:<24} {:>7} rows   {:>10.1}% hits  {:>10} cycles  unc  {:>8.3}s  cache {:>8.3}s  {:>6.1}x",
            "cached_gather",
            capacity,
            hit_rate * 100.0,
            cached.cycles,
            uncached_wall_s,
            cached_wall_s,
            speedup
        );
    }

    // Serving-backend cost: one cold cycle-calibrated batch price (the
    // gather replay) vs a memoized hit. Backend cost regressions — a
    // slower replay or a broken latency table — show up here and are
    // gated on the full-size run.
    {
        let model = SystemModel::paper_defaults();
        let mut cfg = CyclePricerConfig::paper_defaults();
        if quick {
            cfg.max_replayed_lookups = 256;
        }
        let pricer = CyclePricer::with_config(&model, cfg);
        let w = Workload::facebook();
        let start = Instant::now();
        let cold = pricer
            .price(&w, 32, DesignPoint::Tdimm, 8)
            .expect("valid batch");
        let cold_wall_s = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let warm = pricer
            .price(&w, 32, DesignPoint::Tdimm, 8)
            .expect("valid batch");
        let warm_wall_s = start.elapsed().as_secs_f64();
        assert_eq!(
            cold.service_us.to_bits(),
            warm.service_us.to_bits(),
            "memoized price must be bit-identical to the cold replay"
        );
        let memo_speedup = cold_wall_s / warm_wall_s.max(1e-9);
        if !quick && memo_speedup < 50.0 {
            gate_failures.push(format!(
                "serving_cycle_price: memo hit only {memo_speedup:.1}x faster than cold replay"
            ));
        }
        rows.push(format!(
            concat!(
                "    {{\"scenario\": \"serving_cycle_price\", ",
                "\"workload\": \"Facebook\", \"batch\": 32, ",
                "\"service_us\": {:.3}, \"cold_wall_s\": {:.6}, ",
                "\"warm_wall_s\": {:.9}, \"memo_speedup\": {:.1}, ",
                "\"identical\": true}}"
            ),
            cold.service_us, cold_wall_s, warm_wall_s, memo_speedup,
        ));
        eprintln!(
            "{:<24} {:>7}      batch-32 price {:>8.1} us    cold {:>8.4}s  warm {:>9.6}s  {:>6.0}x",
            "serving_cycle_price", "", cold.service_us, cold_wall_s, warm_wall_s, memo_speedup
        );
    }

    // Parallel offered-load sweep: the same analytic sweep run through the
    // sequential oracle and through the worker pool must produce
    // bit-identical LoadPoint curves; wall-clock gap is the sweep tier's
    // speedup. Analytic pricing keeps every point compute-bound in the
    // simulator itself, so the scenario measures the pool, not the memo.
    {
        let model = SystemModel::paper_defaults();
        let w = Workload::facebook();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 8, BatchPolicy::new(32, 300.0));
        let (n_rates, requests) = if quick { (8, 1_500) } else { (16, 12_000) };
        let rates: Vec<f64> = (1..=n_rates).map(|i| 50_000.0 * i as f64).collect();
        let seed = 0x51a;

        let start = Instant::now();
        let seq = offered_load_sweep(&model, &w, &cfg, &rates, requests, seed).expect("valid");
        let seq_wall_s = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let par = offered_load_sweep_par(&model, &w, &cfg, &rates, requests, seed, workers)
            .expect("valid");
        let par_wall_s = start.elapsed().as_secs_f64();
        assert_eq!(
            seq, par,
            "parallel_sweep: parallel curve diverged from the sequential oracle"
        );

        let speedup = seq_wall_s / par_wall_s.max(1e-9);
        if gate_parallel && speedup < par_floor {
            gate_failures.push(format!(
                "parallel_sweep: {speedup:.2}x below the {par_floor:.1}x floor \
                 ({workers} workers, {cores} cores)"
            ));
        }
        rows.push(format!(
            concat!(
                "    {{\"scenario\": \"parallel_sweep\", \"rates\": {}, ",
                "\"requests_per_rate\": {}, \"workers\": {}, \"cores\": {}, ",
                "\"seq_wall_s\": {:.6}, \"par_wall_s\": {:.6}, ",
                "\"speedup\": {:.2}, \"gated\": {}, \"identical\": true}}"
            ),
            rates.len(),
            requests,
            workers,
            cores,
            seq_wall_s,
            par_wall_s,
            speedup,
            gate_parallel,
        ));
        eprintln!(
            "{:<24} {:>7} rates  {:>10} reqs/rate  {:>10}      seq  {:>8.3}s  par   {:>8.3}s  {:>6.1}x",
            "parallel_sweep",
            rates.len(),
            requests,
            "",
            seq_wall_s,
            par_wall_s,
            speedup
        );
    }

    // Concurrent cycle-pricer warm-up: replaying the distinct batch shapes
    // of a full backend-compare grid on the worker pool must produce a
    // bit-identical latency table with exactly one replay per key.
    {
        let model = SystemModel::paper_defaults();
        let make_pricer = || {
            let mut cfg = CyclePricerConfig::paper_defaults();
            cfg.max_replayed_lookups = if quick { 256 } else { 2000 };
            CyclePricer::with_config(&model, cfg)
        };
        let batches: &[usize] = if quick { &[8, 32] } else { &[8, 16, 32, 64] };
        let shapes: Vec<(Workload, usize)> = Workload::all()
            .into_iter()
            .flat_map(|w| batches.iter().map(move |&b| (w.clone(), b)))
            .collect();

        let seq_pricer = make_pricer();
        let start = Instant::now();
        let seq_fresh = seq_pricer.warm(&shapes, 1);
        let seq_wall_s = start.elapsed().as_secs_f64();
        let par_pricer = make_pricer();
        let start = Instant::now();
        let par_fresh = par_pricer.warm(&shapes, workers);
        let par_wall_s = start.elapsed().as_secs_f64();

        // Workloads may share a gather fingerprint (the table is keyed by
        // what the replay actually depends on), so the ground truth for
        // "one replay per distinct key" is the table size itself.
        let distinct = seq_pricer.cached_entries() as u64;
        assert!(distinct > 0 && distinct <= shapes.len() as u64);
        assert_eq!(
            seq_fresh, distinct,
            "pricer_concurrent_warm: sequential warm must replay each distinct key once"
        );
        assert_eq!(
            par_fresh, seq_fresh,
            "pricer_concurrent_warm: concurrent warm duplicated or dropped replays"
        );
        assert_eq!(
            par_pricer.replay_count(),
            distinct,
            "pricer_concurrent_warm: duplicate replays for the same key"
        );
        let seq_table: Vec<_> = seq_pricer
            .cached_table()
            .into_iter()
            .map(|(k, v)| (k, v.to_bits()))
            .collect();
        let par_table: Vec<_> = par_pricer
            .cached_table()
            .into_iter()
            .map(|(k, v)| (k, v.to_bits()))
            .collect();
        assert_eq!(
            seq_table, par_table,
            "pricer_concurrent_warm: memo tables diverged between 1 and {workers} workers"
        );

        let speedup = seq_wall_s / par_wall_s.max(1e-9);
        if gate_parallel && speedup < par_floor {
            gate_failures.push(format!(
                "pricer_concurrent_warm: {speedup:.2}x below the {par_floor:.1}x floor \
                 ({workers} workers, {cores} cores)"
            ));
        }
        rows.push(format!(
            concat!(
                "    {{\"scenario\": \"pricer_concurrent_warm\", \"shapes\": {}, ",
                "\"replays\": {}, \"workers\": {}, \"cores\": {}, ",
                "\"seq_wall_s\": {:.6}, \"par_wall_s\": {:.6}, ",
                "\"speedup\": {:.2}, \"gated\": {}, \"identical\": true}}"
            ),
            shapes.len(),
            par_fresh,
            workers,
            cores,
            seq_wall_s,
            par_wall_s,
            speedup,
            gate_parallel,
        ));
        eprintln!(
            "{:<24} {:>7} shapes {:>10} replays    {:>10}      seq  {:>8.3}s  par   {:>8.3}s  {:>6.1}x",
            "pricer_concurrent_warm",
            shapes.len(),
            par_fresh,
            "",
            seq_wall_s,
            par_wall_s,
            speedup
        );
    }

    // Multi-worker channel advance: the 8-channel CPU memory drained and
    // then advanced far past its last event (refresh-only activity) with
    // the channels fanned across the pool must match the single-threaded
    // engine bit for bit. No speedup floor: per-event advances are
    // deliberately kept sequential below the spawn-cost threshold, so this
    // scenario gates correctness of the engine tier, not a number.
    {
        let count: u64 = if quick { 2_048 } else { 16_384 };
        let cfg = DramConfig::cpu_memory(8);
        let run = |workers: usize| -> (MemoryStats, Vec<Completion>, u64, f64) {
            let mut mem = MemorySystem::new(cfg.clone())
                .expect("valid config")
                .with_workers(workers);
            let start = Instant::now();
            for i in 0..count {
                mem.push_when_ready(Request::read((i * 64) % cfg.capacity_bytes()).with_id(i));
            }
            mem.run_to_completion();
            mem.advance_to(mem.cycle() + 2_000_000);
            let wall_s = start.elapsed().as_secs_f64();
            let completions = mem.drain_completions();
            (mem.stats(), completions, mem.cycle(), wall_s)
        };
        let (seq_stats, seq_completions, seq_cycle, seq_wall_s) = run(1);
        let (par_stats, par_completions, par_cycle, par_wall_s) = run(workers);
        assert_eq!(
            seq_stats, par_stats,
            "parallel_channels: MemoryStats diverged across worker counts"
        );
        assert_eq!(
            seq_completions, par_completions,
            "parallel_channels: completion streams diverged"
        );
        assert_eq!(
            seq_cycle, par_cycle,
            "parallel_channels: final cycles diverged"
        );
        let speedup = seq_wall_s / par_wall_s.max(1e-9);
        rows.push(format!(
            concat!(
                "    {{\"scenario\": \"parallel_channels\", \"requests\": {}, ",
                "\"simulated_cycles\": {}, \"workers\": {}, \"cores\": {}, ",
                "\"seq_wall_s\": {:.6}, \"par_wall_s\": {:.6}, ",
                "\"speedup\": {:.2}, \"gated\": false, \"identical\": true}}"
            ),
            count, par_cycle, workers, cores, seq_wall_s, par_wall_s, speedup,
        ));
        eprintln!(
            "{:<24} {:>7} reqs  {:>10} cycles  {:>10}      seq  {:>8.3}s  par   {:>8.3}s  {:>6.1}x",
            "parallel_channels", count, par_cycle, "", seq_wall_s, par_wall_s, speedup
        );
    }

    // Fault-injection plumbing in the serving loop: a run whose fault
    // plan is armed but generates an *empty* schedule (node outage beyond
    // the trace) must be byte-identical to the plain simulator — the
    // zero-cost-when-unused witness for the degraded-mode layer — and a
    // genuinely faulted run must still conserve every request. The armed
    // run's wall clock is reported as the layer's overhead (informational;
    // both runs are milliseconds, too noisy to gate).
    {
        let model = SystemModel::paper_defaults();
        let w = Workload::facebook();
        let cfg = SimConfig::new(DesignPoint::Tdimm, 8, BatchPolicy::new(32, 300.0));
        let requests = if quick { 400 } else { 2_000 };
        let arrivals = ArrivalProcess::Poisson {
            rate_qps: 300_000.0,
        }
        .sample_arrivals_us(requests, 0xfa11);

        let start = Instant::now();
        let plain = simulate(&model, &w, &cfg, &arrivals).expect("valid");
        let plain_wall_s = start.elapsed().as_secs_f64();

        let armed_plan = FaultPlan::none().with_node_outage(NodeOutage {
            start_us: arrivals.last().copied().unwrap_or(0.0) + 1.0,
            duration_us: 1.0,
        });
        assert!(!armed_plan.is_inert());
        let start = Instant::now();
        let armed = simulate(&model, &w, &cfg.with_faults(armed_plan), &arrivals).expect("valid");
        let armed_wall_s = start.elapsed().as_secs_f64();
        assert_eq!(
            plain, armed,
            "faulted_serving: an armed plan with an empty schedule perturbed the run"
        );
        assert_eq!(
            plain.latency.p99_us.to_bits(),
            armed.latency.p99_us.to_bits(),
            "faulted_serving: p99 must be byte-identical, not merely close"
        );

        // A full-rate 2-DIMM plan plus a mid-trace node outage longer than
        // the deadline: some requests are structurally guaranteed to miss
        // the SLA whatever the trace seed draws.
        let mut harsh = FaultPlan::dimm_faults(0xfa, 1.0);
        harsh.dimms = 2;
        harsh.dimm_candidate_gap_us = 250.0;
        harsh.dimm_repair_us = 2_500.0;
        let harsh = harsh.with_node_outage(NodeOutage {
            start_us: 100.0,
            duration_us: 2_500.0,
        });
        let faulted_cfg = cfg
            .with_faults(harsh)
            .with_retry(
                tensordimm_serving::RetryPolicy::none()
                    .with_deadline(2_000.0)
                    .with_retries(3, 100.0, 2_000.0),
            )
            .with_admission(tensordimm_serving::AdmissionPolicy::bounded(256));
        let faulted = simulate(&model, &w, &faulted_cfg, &arrivals).expect("valid");
        assert!(
            faulted.is_conserved(),
            "faulted_serving: conservation violated under faults"
        );
        assert!(
            faulted.availability < 1.0,
            "faulted_serving: a full-rate 2-DIMM plan must cost some availability"
        );

        let overhead = armed_wall_s / plain_wall_s.max(1e-9);
        rows.push(format!(
            concat!(
                "    {{\"scenario\": \"faulted_serving\", \"requests\": {}, ",
                "\"plain_wall_s\": {:.6}, \"armed_wall_s\": {:.6}, ",
                "\"armed_overhead\": {:.2}, \"faulted_availability\": {:.4}, ",
                "\"faulted_timeouts\": {}, \"faulted_shed\": {}, ",
                "\"identical_when_empty\": true}}"
            ),
            requests,
            plain_wall_s,
            armed_wall_s,
            overhead,
            faulted.availability,
            faulted.outcomes.timed_out,
            faulted.outcomes.shed,
        ));
        eprintln!(
            "{:<24} {:>7} reqs  {:>9.4} avail under faults      plain {:>6.3}s  armed {:>7.3}s  {:>6.2}x",
            "faulted_serving",
            requests,
            faulted.availability,
            plain_wall_s,
            armed_wall_s,
            overhead
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"dram_engine\",\n  \"quick\": {},\n  \"scenarios\": [\n{}\n  ]\n}}",
        quick,
        rows.join(",\n")
    );
    println!("{json}");

    // Tick-vs-event speed gates only arm on the full-size traces; the
    // parallel floors arm whenever the run is parallel enough (>= 4
    // workers on >= 4 cores), quick or not. Either way, a non-empty list
    // here is a regression.
    assert!(
        gate_failures.is_empty(),
        "speedup gates failed: {}",
        gate_failures.join("; ")
    );
    if !quick {
        std::fs::write("BENCH_dram_engine.json", format!("{json}\n"))
            .expect("write BENCH_dram_engine.json");
        eprintln!("wrote BENCH_dram_engine.json");
    }
}
