//! Static-analysis gate over the cycle pricer's replay grid.
//!
//! For every Fig. 14 grid point (workload × batch) this harness lowers
//! the exact gather the cycle-calibrated pricer replays
//! ([`CyclePricerConfig::lowered_gather`]) and asserts the static
//! analyzer's two contracts against the replay engine:
//!
//! * **program verification** — `analyze_program` accepts the lowered
//!   instruction against the node's DRAM pool with zero error-severity
//!   diagnostics (a rejection here means the runtime lowered an
//!   instruction the abstract interpreter can prove faults), and
//! * **cycle lower bound** — `analyze_plan`'s physical bound
//!   (bandwidth / bank-activation / rank-activation / SRAM-port, the
//!   maximum of the four) never exceeds the replayed cycle count. The
//!   replay also runs with `NmpConfig::verify` on, so the core itself
//!   cross-checks its DRAM request counts against the analyzer.
//!
//! Both checks repeat with the hot-row SRAM tier enabled, where the
//! analyzer must mirror the cache's hit/skip bookkeeping exactly.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tensordimm_bench --bin sweep_static_check [-- --quick]
//! ```
//!
//! `--quick` shrinks the batch grid and replay depth so CI can gate in
//! seconds. The full slack table is reproduced in `EXPERIMENTS.md`
//! ("Static verification of the replay grid").

use std::time::Instant;

use tensordimm_analysis::{analyze_plan, analyze_program, gather_tail_waste, ProgramStep};
use tensordimm_cache::HotRowCacheConfig;
use tensordimm_isa::AccessPlan;
use tensordimm_models::Workload;
use tensordimm_nmp::NmpCore;
use tensordimm_system::{CyclePricerConfig, SystemModel};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let model = SystemModel::paper_defaults();
    let zipf_s = model.config().zipf_s;
    let mut cfg = CyclePricerConfig::paper_defaults();
    if quick {
        cfg.max_replayed_lookups = 512;
    }
    cfg.nmp.verify = true;

    let batches: &[usize] = if quick { &[8, 64] } else { &[8, 64, 128] };
    // The node's DRAM pool in 64-byte blocks: the lowered gather's
    // node-level block addresses must all land inside it.
    let pool_blocks = cfg.dimms * (cfg.nmp.dram.capacity_bytes() / 64);
    let caches = [
        ("none", HotRowCacheConfig::disabled()),
        ("64-row", HotRowCacheConfig::fully_associative(64)),
    ];

    println!(
        "Static verifier vs replay engine across the Fig. 14 grid ({} replay cap {})",
        if quick { "quick," } else { "full," },
        cfg.max_replayed_lookups
    );
    println!();
    println!(
        "{:>10} {:>6} {:>7} | {:>9} {:>12} {:>12} {:>7} | {:>6}",
        "workload", "batch", "cache", "diags", "lower_bound", "replayed", "slack", "waste"
    );

    let start = Instant::now();
    let mut points = 0u64;
    let mut worst_slack = f64::INFINITY;
    for w in Workload::all() {
        let waste = gather_tail_waste(w.embedding_bytes(), cfg.dimms);
        for &b in batches {
            let (instr, indices, ctx) = cfg.lowered_gather(zipf_s, &w, b);

            // Contract 1: the abstract interpreter accepts the lowered
            // program against the node pool.
            let report = analyze_program(
                &[ProgramStep::with_indices(instr, &indices)],
                ctx,
                pool_blocks,
            );
            assert!(
                report.accepted(),
                "{} b{b}: runtime-lowered gather rejected: {}",
                w.name,
                report
                    .first_error()
                    .expect("rejected reports carry an error")
            );

            for (cache_label, hot_rows) in caches {
                let mut nmp = cfg.nmp.clone();
                nmp.hot_rows = hot_rows;
                let plan = AccessPlan::for_dimm(&instr, ctx, Some(&indices))
                    .expect("accepted plans lower");
                let analysis = analyze_plan(&plan, ctx, &nmp.dram, nmp.hot_rows)
                    .expect("pricer DRAM/cache config is valid");

                // Contract 2: the replay (verify mode on — the core
                // re-checks its own DRAM counts) dominates the bound.
                let mut core = NmpCore::new(nmp).expect("pricer NMP config is valid");
                let stats = core
                    .run_plan(&instr, &plan, ctx)
                    .expect("verified replay succeeds");
                let lb = analysis.lower_bound();
                assert!(
                    lb <= stats.cycles,
                    "{} b{b} cache {cache_label}: lower bound {lb} exceeds replayed {}",
                    w.name,
                    stats.cycles
                );
                let slack = (stats.cycles - lb) as f64 / stats.cycles as f64;
                worst_slack = worst_slack.min(slack);
                points += 1;
                println!(
                    "{:>10} {:>6} {:>7} | {:>9} {:>12} {:>12} {:>6.1}% | {:>5.1}%",
                    w.name.to_string(),
                    b,
                    cache_label,
                    report.diagnostics.len(),
                    lb,
                    stats.cycles,
                    100.0 * slack,
                    100.0 * waste.waste_fraction(),
                );
            }
        }
    }

    println!();
    println!(
        "{points} grid points verified in {:.2}s; tightest slack {:.1}%",
        start.elapsed().as_secs_f64(),
        100.0 * worst_slack
    );
    println!("static gate: ACCEPTED (0 errors); bounds: HOLD on every point");
}
