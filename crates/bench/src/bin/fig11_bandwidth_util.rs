//! Figure 11: memory bandwidth utilization of the three tensor operations,
//! TensorNode (32 TensorDIMMs, 819.2 GB/s peak) vs the conventional CPU
//! memory system (8 channels / 32 DIMMs, 204.8 GB/s peak), swept over
//! batch size.
//!
//! Methodology matches Section 5: op traces into the cycle-level DRAM
//! simulator. Lookups per sample follow the YouTube/Fox pooling factor
//! (50), embedding dimension 512 (2 KiB vectors).

use tensordimm_bench::traffic::{cpu_gbps, tensornode_gbps, OpExperiment, OpKind};

const LOOKUPS_PER_SAMPLE: u64 = 50;
const VEC_BLOCKS: u64 = 32; // dim 512
const TABLE_ROWS: u64 = 5_000_000;
const DIMMS: u64 = 32;

fn experiment(op: OpKind, batch: u64) -> OpExperiment {
    OpExperiment {
        op,
        count: batch * LOOKUPS_PER_SAMPLE,
        vec_blocks: VEC_BLOCKS,
        table_rows: TABLE_ROWS,
        seed: 0xf1611,
        zipf_s: 0.0,
    }
}

fn main() {
    let batches = [2u64, 4, 8, 16, 32, 64, 96, 128];
    let ops = [
        OpKind::Gather,
        OpKind::Reduce,
        OpKind::Average {
            group: LOOKUPS_PER_SAMPLE,
        },
    ];

    println!("Figure 11: bandwidth utilization (GB/s) vs batch size");
    println!("TensorNode: 32 TensorDIMMs (819.2 peak); CPU: 8 channels (204.8 peak)");
    println!();
    println!(
        "{:>6} | {:>13} {:>13} {:>13} | {:>11} {:>11} {:>11}",
        "batch",
        "GATHER(TDIMM)",
        "REDUCE(TDIMM)",
        "AVG(TDIMM)",
        "GATHER(CPU)",
        "REDUCE(CPU)",
        "AVG(CPU)"
    );
    let mut max_node: f64 = 0.0;
    let mut max_cpu: f64 = 0.0;
    for &batch in &batches {
        let node: Vec<f64> = ops
            .iter()
            .map(|&op| tensornode_gbps(&experiment(op, batch), DIMMS))
            .collect();
        let cpu: Vec<f64> = ops
            .iter()
            .map(|&op| cpu_gbps(&experiment(op, batch), 8, 4))
            .collect();
        println!(
            "{:>6} | {:>13.0} {:>13.0} {:>13.0} | {:>11.0} {:>11.0} {:>11.0}",
            batch, node[0], node[1], node[2], cpu[0], cpu[1], cpu[2]
        );
        for v in &node {
            max_node = max_node.max(*v);
        }
        for v in &cpu {
            max_cpu = max_cpu.max(*v);
        }
    }
    println!();
    println!(
        "max TensorNode {max_node:.0} GB/s vs max CPU {max_cpu:.0} GB/s -> {:.1}x \
         (paper: ~808 vs ~192 GB/s, ~4x)",
        max_node / max_cpu
    );
}
