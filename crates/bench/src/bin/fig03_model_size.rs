//! Figure 3: NCF model-size growth with MLP and embedding dimensions.
//!
//! The paper's experiment assumes 5 million users and 5 million items per
//! lookup table and shows model size (GB) as embedding dimension (rows)
//! and MLP dimension (columns) scale. Larger embeddings — not larger
//! MLPs — dominate growth.

use tensordimm_embedding::footprint::ncf_footprint;

const USERS: u64 = 5_000_000;
const ITEMS: u64 = 5_000_000;

fn main() {
    let mlp_dims: Vec<u64> = (6..=13).map(|p| 1 << p).collect(); // 64..8192
    let emb_dims: Vec<u64> = (6..=15).map(|p| 1 << p).collect(); // 64..32768

    println!("Figure 3: NCF model size (GB), 5M users + 5M items per table");
    println!("rows = embedding dimension, columns = MLP dimension");
    println!();
    print!("{:>8} |", "emb\\mlp");
    for m in &mlp_dims {
        print!("{m:>9}");
    }
    println!();
    println!("{}", "-".repeat(10 + 9 * mlp_dims.len()));
    for e in &emb_dims {
        print!("{e:>8} |");
        for m in &mlp_dims {
            let r = ncf_footprint(USERS, ITEMS, *e, *m);
            print!("{:>9.0}", r.total_bytes() as f64 / 1e9);
        }
        println!();
    }

    println!();
    let small = ncf_footprint(USERS, ITEMS, 64, 8192);
    let large = ncf_footprint(USERS, ITEMS, 32768, 64);
    println!(
        "Scaling MLP 64->8192 at emb 64:   {:>8.1} GB (embeddings {:>5.1}%)",
        small.total_bytes() as f64 / 1e9,
        100.0 * small.embedding_fraction()
    );
    println!(
        "Scaling emb 64->32768 at MLP 64:  {:>8.1} GB (embeddings {:>5.1}%)",
        large.total_bytes() as f64 / 1e9,
        100.0 * large.embedding_fraction()
    );
    println!();
    println!(
        "Shape check (paper): embedding growth dominates -> {}",
        if large.total_bytes() > 50 * small.total_bytes() {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
