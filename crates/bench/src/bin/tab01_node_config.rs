//! Table 1: the baseline TensorNode configuration.

use tensordimm_core::TensorNodeConfig;

fn main() {
    let cfg = TensorNodeConfig::paper();
    println!("Table 1: Baseline TensorNode configuration");
    println!("==========================================");
    println!("{:<44} DDR4 (PC4-25600)", "DRAM specification");
    println!("{:<44} {}", "Number of TensorDIMMs", cfg.dimms);
    println!(
        "{:<44} {:.1} GB/sec",
        "Memory bandwidth per TensorDIMM",
        cfg.nmp.dram.peak_gbps()
    );
    println!(
        "{:<44} {:.1} GB/sec",
        "Memory bandwidth across TensorNode",
        cfg.peak_gbps()
    );
    println!();
    println!("Derived NMP-core parameters (Section 4.2):");
    println!(
        "{:<44} {}-wide @ {} MHz",
        "Vector ALU", cfg.nmp.alu_lanes, cfg.nmp.alu_clock_mhz
    );
    println!(
        "{:<44} {} B each (A, B, C)",
        "SRAM queues", cfg.nmp.input_queue_bytes
    );
    println!(
        "{:<44} {} entries",
        "Queue capacity",
        cfg.nmp.input_queue_entries()
    );
}
