//! Ablation: memory-controller scheduling and row policy.
//!
//! FR-FCFS with open rows is what both the baseline CPU controller and the
//! NMP-local controller assume; this quantifies how much each choice
//! contributes on streaming vs random-gather traffic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensordimm_dram::{DramConfig, MemorySystem, RowPolicy, SchedulerKind, Trace, TraceRunner};

fn stream_trace() -> Trace {
    let mut t = Trace::new();
    t.read_range(0, 64 * 8192);
    t
}

fn random_trace(capacity: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(42);
    let mut t = Trace::new();
    for _ in 0..8192 {
        t.read(rng.gen_range(0..capacity / 64) * 64);
    }
    t
}

fn run(cfg: DramConfig, trace: &Trace) -> f64 {
    let mut runner = TraceRunner::new(MemorySystem::new(cfg).expect("valid config"));
    runner.run(trace).expect("in-range trace").achieved_gbps()
}

fn main() {
    println!("Ablation: scheduler x row policy on one DDR4-3200 channel (GB/s)");
    println!();
    println!(
        "{:>9} {:>12} | {:>12} {:>14}",
        "scheduler", "row policy", "stream", "random 64B"
    );
    for (sched, sname) in [
        (SchedulerKind::FrFcfs, "FR-FCFS"),
        (SchedulerKind::Fcfs, "FCFS"),
    ] {
        for (policy, pname) in [
            (RowPolicy::OpenPage, "open"),
            (RowPolicy::ClosedPage, "closed"),
        ] {
            let cfg = DramConfig::ddr4_3200_channel()
                .with_scheduler(sched)
                .with_row_policy(policy);
            let capacity = cfg.capacity_bytes();
            let s = run(cfg.clone(), &stream_trace());
            let r = run(cfg, &random_trace(capacity));
            println!("{sname:>9} {pname:>12} | {s:>12.1} {r:>14.1}");
        }
    }
    println!();
    println!(
        "Open-page + FR-FCFS wins on streams (row hits + reordering); \
         closed-page narrows the gap only for fully random traffic."
    );
}
