//! Figure 12: memory throughput as a function of DIMM count, with
//! embedding sizes scaled up 2-4x (which is what forces the extra DIMMs
//! to be provisioned in the first place).
//!
//! CPU memory saturates at its fixed channel bandwidth no matter how many
//! DIMMs are installed; the TensorNode's aggregate bandwidth scales with
//! the DIMM count.

use tensordimm_bench::traffic::{cpu_gbps, tensornode_gbps, OpExperiment, OpKind};

const BATCH: u64 = 64;
const LOOKUPS_PER_SAMPLE: u64 = 50;
const TABLE_ROWS: u64 = 1_000_000;

fn main() {
    // (DIMM count, embedding scale): 32 DIMMs at 1x, 64 at 2x, 128 at 4x,
    // mirroring the paper's "more capacity needs more DIMMs" sweep.
    let configs = [(32u64, 1u64), (64, 2), (128, 4)];
    let ops = [
        OpKind::Gather,
        OpKind::Reduce,
        OpKind::Average {
            group: LOOKUPS_PER_SAMPLE,
        },
    ];

    println!("Figure 12: throughput (GB/s) vs number of DIMMs");
    println!();
    println!(
        "{:>6} {:>9} | {:>13} {:>13} {:>13} | {:>11} {:>11} {:>11}",
        "DIMMs",
        "emb size",
        "GATHER(node)",
        "REDUCE(node)",
        "AVG(node)",
        "GATHER(CPU)",
        "REDUCE(CPU)",
        "AVG(CPU)"
    );
    let mut node_max: f64 = 0.0;
    let mut cpu_max: f64 = 0.0;
    for &(dimms, scale) in &configs {
        let vec_blocks = 32 * scale; // dim 512 x scale
        let exp = |op| OpExperiment {
            op,
            count: BATCH * LOOKUPS_PER_SAMPLE,
            vec_blocks,
            table_rows: TABLE_ROWS,
            seed: 0xf1202,
            zipf_s: 0.0,
        };
        let node: Vec<f64> = ops
            .iter()
            .map(|&op| tensornode_gbps(&exp(op), dimms))
            .collect();
        // The same DIMMs hanging off the fixed 8 CPU channels.
        let ranks_per_channel = (dimms / 8).max(1) as usize;
        let cpu: Vec<f64> = ops
            .iter()
            .map(|&op| cpu_gbps(&exp(op), 8, ranks_per_channel))
            .collect();
        println!(
            "{:>6} {:>8}x | {:>13.0} {:>13.0} {:>13.0} | {:>11.0} {:>11.0} {:>11.0}",
            dimms, scale, node[0], node[1], node[2], cpu[0], cpu[1], cpu[2]
        );
        node_max = node_max.max(node.iter().cloned().fold(0.0, f64::max));
        cpu_max = cpu_max.max(cpu.iter().cloned().fold(0.0, f64::max));
    }
    println!();
    println!(
        "TensorNode scales to {:.1} TB/s while CPU saturates near {:.0} GB/s \
         (paper: up to ~3.1 TB/s vs ~200 GB/s)",
        node_max / 1e3,
        cpu_max
    );
}
