//! Figure 14: performance of the five design points normalized to the
//! GPU-only oracle, across batch sizes 8/64/128 and all four workloads,
//! plus the geometric mean.

use tensordimm_models::Workload;
use tensordimm_system::{geometric_mean, normalized_performance, DesignPoint, SystemModel};

fn main() {
    let model = SystemModel::paper_defaults();
    let batches = [8usize, 64, 128];
    let points = normalized_performance(&model, &Workload::all(), &batches);

    println!("Figure 14: performance normalized to GPU-only (1.0 = oracle)");
    println!();
    println!(
        "{:>10} {:>6} | {:>9} {:>9} {:>9} {:>9} {:>9}",
        "workload", "batch", "CPU-only", "CPU-GPU", "PMEM", "TDIMM", "GPU-only"
    );
    for w in Workload::all() {
        for &b in &batches {
            let row: Vec<f64> = DesignPoint::all()
                .iter()
                .map(|&d| {
                    points
                        .iter()
                        .find(|p| p.workload == w.name.to_string() && p.batch == b && p.design == d)
                        .expect("grid point evaluated")
                        .normalized
                })
                .collect();
            println!(
                "{:>10} {:>6} | {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
                w.name.to_string(),
                b,
                row[0],
                row[1],
                row[2],
                row[3],
                row[4]
            );
        }
    }
    println!();
    print!("{:>10} {:>6} |", "Geomean", "-");
    let mut tdimm_frac = 0.0;
    for d in DesignPoint::all() {
        let vals: Vec<f64> = points
            .iter()
            .filter(|p| p.design == d)
            .map(|p| p.normalized)
            .collect();
        let g = geometric_mean(&vals);
        if d == DesignPoint::Tdimm {
            tdimm_frac = g;
        }
        print!(" {g:>9.3}");
    }
    println!();
    println!();
    println!(
        "TDIMM achieves {:.0}% of the unbuildable oracle on average \
         (paper: 84%, never below 75%)",
        100.0 * tdimm_frac
    );
    let worst = points
        .iter()
        .filter(|p| p.design == DesignPoint::Tdimm)
        .map(|p| p.normalized)
        .fold(f64::INFINITY, f64::min);
    println!("Worst TDIMM point: {:.0}% of oracle", 100.0 * worst);
}
