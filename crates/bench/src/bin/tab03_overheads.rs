//! Table 3 and Section 6.5: NMP-core implementation overheads and power.

use tensordimm_nmp::{DimmPowerModel, FpgaUtilization, SramSizing};

fn main() {
    println!("Table 3: FPGA utilization of a single NMP core (VCU1525, %)");
    println!("===========================================================");
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>8}",
        "Component", "LUT [%]", "FF [%]", "DSP [%]", "BRAM [%]"
    );
    for row in FpgaUtilization::table3() {
        println!(
            "{:<14} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            row.component, row.lut, row.ff, row.dsp, row.bram
        );
    }

    println!();
    println!("SRAM sizing (Section 4.2, bandwidth-delay product):");
    let sizing = SramSizing::paper();
    println!(
        "  {:.1} GB/s x {:.0} ns = {:.0} B per queue ({:.1} KB total for A/B/C)",
        sizing.bandwidth_gbps,
        sizing.latency_ns,
        sizing.queue_bytes(),
        sizing.total_bytes() / 1024.0
    );

    println!();
    println!("System power (Section 6.5, Micron DDR4 power-calculator point):");
    let power = DimmPowerModel::paper();
    for dimms in [32usize, 64] {
        println!(
            "  {:>3} TensorDIMMs ({} GiB): {:>5.0} W  (fits 350-700 W OAM envelope: {})",
            dimms,
            power.node_capacity_gib(dimms),
            power.node_watts(dimms),
            if power.fits_oam_envelope(dimms) {
                "yes"
            } else {
                "no"
            }
        );
    }
}
