//! Figure 15: TDIMM speedup over CPU-only and hybrid CPU-GPU with
//! embeddings scaled 1-8x, batch 8/64/128, averaged (geomean) across the
//! four workloads.

use tensordimm_models::Workload;
use tensordimm_system::{speedup_matrix, SystemModel};

fn main() {
    let model = SystemModel::paper_defaults();
    let scales = [1usize, 2, 4, 8];
    let batches = [8usize, 64, 128];
    let rows = speedup_matrix(&model, &Workload::all(), &scales, &batches);

    println!("Figure 15: TDIMM speedup with larger embeddings (geomean of 4 workloads)");
    println!();
    println!(
        "{:>9} {:>6} | {:>16} {:>16}",
        "emb size", "batch", "vs CPU-only (x)", "vs CPU-GPU (x)"
    );
    let mut max_speedup: f64 = 0.0;
    let mut scale_means: Vec<(usize, f64, f64)> = Vec::new();
    for &scale in &scales {
        let mut cpu_acc = Vec::new();
        let mut hyb_acc = Vec::new();
        for &(s, b, vs_cpu, vs_hybrid) in &rows {
            if s == scale {
                println!("{:>8}x {:>6} | {:>16.1} {:>16.1}", s, b, vs_cpu, vs_hybrid);
                cpu_acc.push(vs_cpu);
                hyb_acc.push(vs_hybrid);
                max_speedup = max_speedup.max(vs_cpu).max(vs_hybrid);
            }
        }
        let gm = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
        scale_means.push((scale, gm(&cpu_acc), gm(&hyb_acc)));
        println!();
    }
    println!("Per-scale geomeans:");
    for (scale, c, h) in &scale_means {
        println!("  {scale}x: vs CPU-only {c:.1}x, vs CPU-GPU {h:.1}x");
    }
    let (_, c1, h1) = scale_means[0];
    let (_, c8, h8) = scale_means[scale_means.len() - 1];
    println!();
    println!(
        "Range: {c1:.1}-{c8:.1}x vs CPU-only and {h1:.1}-{h8:.1}x vs CPU-GPU; \
         max single point {max_speedup:.0}x \
         (paper: 6.2-15.0x, 8.9-17.6x, max ~35x)"
    );
}
