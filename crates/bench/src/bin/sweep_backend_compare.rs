//! Analytic vs cycle-calibrated batch pricing, per design point.
//!
//! The serving simulator prices batches through a pluggable
//! [`BatchPricer`]: the closed-form analytic model, or the
//! cycle-calibrated backend that replays each batch's Zipf gather trace
//! through the event-driven DRAM/NMP co-simulator. This harness quantifies
//! how far the two diverge across the Fig. 14 grid (workload × batch ×
//! node design, at solo and 8-GPU concurrency) and asserts:
//!
//! * the divergence stays inside the calibration band (the analytic
//!   utilization constants were measured on this same simulator, so a
//!   large gap means one of the two regressed), and
//! * the paper's orderings survive the backend swap: TDIMM ≲ PMEM on
//!   every point (NCF's reduction factor of 2 makes them a near-tie).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tensordimm_bench --bin sweep_backend_compare \
//!     [-- --quick] [-- --workers N]
//! ```
//!
//! `--quick` shrinks the batch grid and replay depth so CI can gate on the
//! band in seconds. `--workers N` warms the cycle pricer's latency table by
//! replaying the grid's distinct batch shapes concurrently (the table and
//! every printed number are bit-identical at any worker count — the
//! remaining grid walk is served from memo hits). The full table is
//! reproduced in `EXPERIMENTS.md` ("Analytic vs cycle-calibrated serving").

use std::time::Instant;

use tensordimm_bench::args::workers_from_args;
use tensordimm_models::Workload;
use tensordimm_system::{
    AnalyticPricer, BatchPricer, CyclePricer, CyclePricerConfig, DesignPoint, SystemModel,
};

/// Maximum |cycle − analytic| / analytic allowed on any grid point.
const DIVERGENCE_BAND: f64 = 0.15;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let workers = workers_from_args();
    let model = SystemModel::paper_defaults();
    let analytic = AnalyticPricer::new(&model);
    let cycle = if quick {
        let mut cfg = CyclePricerConfig::paper_defaults();
        cfg.max_replayed_lookups = 512;
        CyclePricer::with_config(&model, cfg)
    } else {
        CyclePricer::new(&model)
    };

    let batches: &[usize] = if quick { &[8, 64] } else { &[8, 64, 128] };
    let designs = [DesignPoint::Pmem, DesignPoint::Tdimm];

    // Warm the latency table by replaying every distinct (workload, batch)
    // shape of the grid concurrently; the sequential comparison loop below
    // is then pure memo hits, so its numbers cannot depend on the worker
    // count (the memo replay is a deterministic function of the key).
    let shapes: Vec<(Workload, usize)> = Workload::all()
        .into_iter()
        .flat_map(|w| batches.iter().map(move |&b| (w.clone(), b)))
        .collect();
    let warm_start = Instant::now();
    let fresh = cycle.warm(&shapes, workers);
    let warm_s = warm_start.elapsed().as_secs_f64();
    eprintln!(
        "warmed {fresh} distinct batch shapes on {workers} workers in {warm_s:.2}s \
         ({} replays total)",
        cycle.replay_count()
    );

    println!(
        "Analytic vs cycle-calibrated batch pricing (service µs per batch; {} replay cap {})",
        if quick { "quick," } else { "full," },
        cycle.config().max_replayed_lookups
    );
    println!();
    println!(
        "{:>10} {:>6} {:>7} | {:>12} {:>12} {:>7} | {:>12} {:>12} {:>7}",
        "workload",
        "batch",
        "design",
        "analytic@1",
        "cycle@1",
        "gap",
        "analytic@8",
        "cycle@8",
        "gap"
    );

    let mut worst_gap = 0.0f64;
    let mut worst_label = String::new();
    for w in Workload::all() {
        for &b in batches {
            let mut per_design = Vec::new();
            for design in designs {
                let mut row = Vec::new();
                for gpus in [1usize, 8] {
                    let a = analytic
                        .price(&w, b, design, gpus)
                        .expect("valid grid point")
                        .service_us;
                    let c = cycle
                        .price(&w, b, design, gpus)
                        .expect("valid grid point")
                        .service_us;
                    let gap = (c - a) / a;
                    if gap.abs() > worst_gap {
                        worst_gap = gap.abs();
                        worst_label = format!("{} b{b} {design} @{gpus}", w.name);
                    }
                    row.push((a, c, gap));
                }
                println!(
                    "{:>10} {:>6} {:>7} | {:>12.1} {:>12.1} {:>+6.1}% | {:>12.1} {:>12.1} {:>+6.1}%",
                    w.name.to_string(),
                    b,
                    design.label(),
                    row[0].0,
                    row[0].1,
                    100.0 * row[0].2,
                    row[1].0,
                    row[1].1,
                    100.0 * row[1].2,
                );
                per_design.push(row);
            }
            // Orderings at solo concurrency (the Fig. 14 regime golden
            // tests pin): TDIMM ≲ PMEM under BOTH backends, with NCF's
            // near-tie tolerance. At 8 GPUs NCF genuinely inverts in the
            // analytic model too (its reduction factor of 2 cannot offset
            // the 8-way shared-lookup scaling), so the 8-GPU columns above
            // are divergence-only.
            let tolerance = if w.name == tensordimm_models::WorkloadName::Ncf {
                1.13
            } else {
                1.0
            };
            let (pmem_a, pmem_c, _) = per_design[0][0];
            let (tdimm_a, tdimm_c, _) = per_design[1][0];
            assert!(
                tdimm_a <= pmem_a * tolerance,
                "{} b{b}: analytic PMEM beat TDIMM",
                w.name
            );
            assert!(
                tdimm_c <= pmem_c * tolerance,
                "{} b{b}: cycle PMEM beat TDIMM ({tdimm_c:.1} vs {pmem_c:.1})",
                w.name
            );
        }
    }

    println!();
    println!(
        "worst divergence: {:.1}% ({worst_label}); band: ±{:.0}%",
        100.0 * worst_gap,
        100.0 * DIVERGENCE_BAND
    );
    assert!(
        worst_gap <= DIVERGENCE_BAND,
        "cycle backend diverged {:.1}% from analytic on {worst_label} (band ±{:.0}%)",
        100.0 * worst_gap,
        100.0 * DIVERGENCE_BAND
    );
    println!("backend agreement: WITHIN BAND; orderings: HOLD under both backends");
}
