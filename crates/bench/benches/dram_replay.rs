//! Criterion benchmarks for the cycle-level DRAM simulator itself
//! (host cycles per simulated request).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tensordimm_dram::{DramConfig, MemorySystem, Trace, TraceRunner};

const REQUESTS: u64 = 4096;

fn traces() -> (Trace, Trace) {
    let mut seq = Trace::new();
    seq.read_range(0, REQUESTS * 64);
    let mut rnd = Trace::new();
    let mut x = 0x9e3779b97f4a7c15u64;
    let cap = DramConfig::ddr4_3200_channel().capacity_bytes();
    for _ in 0..REQUESTS {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        rnd.read((x % cap) & !63);
    }
    (seq, rnd)
}

fn bench_dram(c: &mut Criterion) {
    let (seq, rnd) = traces();
    let mut group = c.benchmark_group("dram_replay");
    group.sample_size(20);
    group.throughput(Throughput::Elements(REQUESTS));
    // The default runner now rides the event-driven engine; the
    // `*_tick_oracle` variants keep the cycle-stepped baseline visible so
    // regressions in the skip logic show up as a vanishing gap.
    group.bench_function("sequential_4k_reads", |b| {
        b.iter(|| {
            let mem = MemorySystem::new(DramConfig::ddr4_3200_channel()).expect("valid config");
            TraceRunner::new(mem).run(&seq).expect("in range")
        })
    });
    group.bench_function("sequential_4k_reads_tick_oracle", |b| {
        b.iter(|| {
            let mem = MemorySystem::new(DramConfig::ddr4_3200_channel()).expect("valid config");
            TraceRunner::new(mem).run_ticked(&seq).expect("in range")
        })
    });
    group.bench_function("random_4k_reads", |b| {
        b.iter(|| {
            let mem = MemorySystem::new(DramConfig::ddr4_3200_channel()).expect("valid config");
            TraceRunner::new(mem).run(&rnd).expect("in range")
        })
    });
    group.bench_function("random_4k_reads_tick_oracle", |b| {
        b.iter(|| {
            let mem = MemorySystem::new(DramConfig::ddr4_3200_channel()).expect("valid config");
            TraceRunner::new(mem).run_ticked(&rnd).expect("in range")
        })
    });
    group.bench_function("eight_channel_sequential", |b| {
        b.iter(|| {
            let mem = MemorySystem::new(DramConfig::cpu_memory(8)).expect("valid config");
            TraceRunner::new(mem).run(&seq).expect("in range")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dram);
criterion_main!(benches);
