//! Criterion micro-benchmarks for the TensorISA functional executor.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tensordimm_isa::{
    decode, encode, execute_on_node, Instruction, ReduceOp, TensorMemory, VecMemory,
};

const VB: u64 = 32; // dim-512 vectors
const COUNT: u64 = 256;

fn setup() -> (VecMemory, Vec<u64>) {
    let mut mem = VecMemory::new(1 << 16);
    for r in 0..1024u64 {
        for b in 0..VB {
            mem.write_f32(r * VB + b, [r as f32; 16]);
        }
    }
    let indices: Vec<u64> = (0..COUNT).map(|i| (i * 997) % 1024).collect();
    let idx_u32: Vec<u32> = indices.iter().map(|&i| i as u32).collect();
    mem.write_u32_slice(40_000, &idx_u32);
    (mem, indices)
}

fn bench_exec(c: &mut Criterion) {
    let (mem, _) = setup();
    let gather = Instruction::Gather {
        table_base: 0,
        idx_base: 40_000,
        output_base: 45_056,
        count: COUNT,
        vec_blocks: VB,
    };
    let reduce = Instruction::Reduce {
        input1: 0,
        input2: 8192,
        output_base: 16_384,
        count: 8192,
        op: ReduceOp::Add,
    };

    let mut group = c.benchmark_group("isa_exec");
    group.throughput(Throughput::Bytes(COUNT * VB * 64 * 2));
    group.bench_function("gather_node32", |b| {
        b.iter_batched(
            || mem.clone(),
            |mut m| execute_on_node(black_box(&gather), &mut m, 32),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("reduce_node32", |b| {
        b.iter_batched(
            || mem.clone(),
            |mut m| execute_on_node(black_box(&reduce), &mut m, 32),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("encode_decode", |b| {
        b.iter(|| decode(&encode(black_box(&gather)).expect("encodable")))
    });
    group.finish();
}

criterion_group!(benches, bench_exec);
criterion_main!(benches);
