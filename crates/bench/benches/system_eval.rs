//! Criterion benchmarks for the end-to-end system model.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tensordimm_models::Workload;
use tensordimm_system::{DesignPoint, SystemModel};

fn bench_system(c: &mut Criterion) {
    let model = SystemModel::paper_defaults();
    let w = Workload::facebook();
    // Prime the memoized cache-hierarchy simulation so the benchmark
    // measures the analytic path.
    let _ = model.evaluate(&w, 64, DesignPoint::CpuOnly);

    let mut group = c.benchmark_group("system_eval");
    group.bench_function("evaluate_all_designs_b64", |b| {
        b.iter(|| {
            DesignPoint::all()
                .iter()
                .map(|&d| model.evaluate(black_box(&w), 64, d).total_us())
                .sum::<f64>()
        })
    });
    group.bench_function("normalized_tdimm_b64", |b| {
        b.iter(|| model.normalized(black_box(&w), 64, DesignPoint::Tdimm))
    });
    group.bench_function("cold_cpu_gather_sim", |b| {
        b.iter_batched(
            SystemModel::paper_defaults,
            |m| m.cpu_gather_gbps(black_box(&w)),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_system);
criterion_main!(benches);
