//! Criterion benchmarks for TensorNode operations (functional runtime path:
//! encode -> decode -> broadcast execute).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tensordimm_core::{TensorNode, TensorNodeConfig, TimingMode};

const DIM: usize = 512;
const BATCH: usize = 128;

fn fresh_node() -> TensorNode {
    let cfg = TensorNodeConfig::paper()
        .with_timing(TimingMode::Functional)
        .with_pool_blocks(1 << 20);
    let mut node = TensorNode::new(cfg).expect("paper config is valid");
    let table = node.create_table("bench", 4096, DIM).expect("fits pool");
    node.fill_table(&table, |r, c| (r + c as u64) as f32)
        .expect("valid handle");
    node
}

fn bench_node(c: &mut Criterion) {
    let indices: Vec<u64> = (0..BATCH as u64).map(|i| (i * 31) % 4096).collect();

    let mut group = c.benchmark_group("node_ops");
    group.sample_size(20);
    group.throughput(Throughput::Bytes((BATCH * DIM * 4) as u64));
    group.bench_function("gather_128x512_functional", |b| {
        b.iter_batched(
            fresh_node,
            |mut node| {
                let table = tensordimm_core::TableHandle::clone(&node_table(&node));
                node.gather(black_box(&table), black_box(&indices))
                    .expect("indices in range")
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("gather_then_average_g8", |b| {
        b.iter_batched(
            fresh_node,
            |mut node| {
                let table = node_table(&node);
                let g = node.gather(&table, &indices).expect("in range");
                node.average(&g, 8).expect("divisible")
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

// Reconstruct the table handle of the benchmark node (tables are created
// deterministically in `fresh_node`).
fn node_table(node: &TensorNode) -> tensordimm_core::TableHandle {
    let mut probe = TensorNode::new(node.config().clone()).expect("same config");
    probe.create_table("bench", 4096, DIM).expect("same layout")
}

criterion_group!(benches, bench_node);
criterion_main!(benches);
