//! Criterion micro-benchmarks for the golden (reference) tensor ops.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tensordimm_embedding::{ops, Distribution, EmbeddingTable, IndexStream};
use tensordimm_isa::ReduceOp;

const DIM: usize = 512;
const BATCH: usize = 256;

fn bench_golden(c: &mut Criterion) {
    let table = EmbeddingTable::seeded("bench", 100_000, DIM, 1);
    let mut stream = IndexStream::new(Distribution::Zipfian { s: 0.9 }, table.rows(), 2);
    let indices = stream.batch(BATCH);
    let gathered = ops::gather(&table, &indices).expect("indices in range");

    let mut group = c.benchmark_group("golden_ops");
    group.throughput(Throughput::Bytes((BATCH * DIM * 4) as u64));
    group.bench_function("gather_256x512", |b| {
        b.iter(|| ops::gather(black_box(&table), black_box(&indices)))
    });
    group.bench_function("reduce_add_256x512", |b| {
        b.iter(|| ops::reduce(black_box(&gathered), black_box(&gathered), ReduceOp::Add))
    });
    group.bench_function("average_g8_256x512", |b| {
        b.iter(|| ops::average(black_box(&gathered), 8, DIM))
    });
    group.finish();
}

criterion_group!(benches, bench_golden);
criterion_main!(benches);
