//! Criterion benchmarks for the functional MLP (the cuDNN/MKL substitute).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tensordimm_models::{Mlp, MlpSpec, Workload};

fn bench_mlp(c: &mut Criterion) {
    let ncf = Workload::ncf();
    let mlp = Mlp::seeded(ncf.mlp.clone(), 11);
    let input = vec![0.1f32; ncf.mlp.input_dim()];
    let batch: Vec<f32> = input
        .iter()
        .cycle()
        .take(ncf.mlp.input_dim() * 16)
        .copied()
        .collect();

    let mut group = c.benchmark_group("mlp_forward");
    group.throughput(Throughput::Elements(1));
    group.bench_function("ncf_single", |b| {
        b.iter(|| mlp.forward(black_box(&input)).expect("shape matches"))
    });
    group.throughput(Throughput::Elements(16));
    group.bench_function("ncf_batch16", |b| {
        b.iter(|| mlp.forward_batch(black_box(&batch)).expect("shape matches"))
    });
    let tiny = Mlp::seeded(MlpSpec::new(vec![64, 32, 1]).expect("valid"), 3);
    let tiny_in = vec![0.5f32; 64];
    group.throughput(Throughput::Elements(1));
    group.bench_function("tiny_64x32x1", |b| {
        b.iter(|| tiny.forward(black_box(&tiny_in)).expect("shape matches"))
    });
    group.finish();
}

criterion_group!(benches, bench_mlp);
criterion_main!(benches);
