//! Bank and rank timing state.
//!
//! Each bank tracks the earliest cycle at which each command class may be
//! issued to it; each rank tracks cross-bank constraints (tRRD, tFAW,
//! CAS-to-CAS spacing, write-to-read turnaround, refresh).

use std::collections::VecDeque;

use crate::timing::DramTiming;

/// Timing state of a single DRAM bank.
#[derive(Debug, Clone, Default)]
pub struct Bank {
    /// Currently open row, if any.
    pub open_row: Option<usize>,
    /// Earliest cycle an ACTIVATE may issue (tRP / tRC / tRFC).
    pub next_act: u64,
    /// Earliest cycle a PRECHARGE may issue (tRAS / tRTP / write recovery).
    pub next_pre: u64,
    /// Earliest cycle a READ may issue (tRCD).
    pub next_rd: u64,
    /// Earliest cycle a WRITE may issue (tRCD).
    pub next_wr: u64,
}

/// Timing state of a rank: its banks plus rank-wide constraints.
#[derive(Debug, Clone)]
pub struct Rank {
    /// Banks, indexed `bank_group * banks_per_group + bank`.
    pub banks: Vec<Bank>,
    banks_per_group: usize,
    /// Issue times of the most recent ACTIVATEs (bounded by four, for tFAW).
    act_window: VecDeque<u64>,
    /// Last ACTIVATE per bank group (for tRRD_S/L).
    last_act: Vec<Option<u64>>,
    /// Last READ command per bank group (for tCCD_S/L).
    last_rd: Vec<Option<u64>>,
    /// Last WRITE command per bank group (for tCCD_S/L and tWTR_S/L).
    last_wr: Vec<Option<u64>>,
    /// Next scheduled refresh deadline.
    pub next_refresh_due: u64,
    /// Rank is unavailable until this cycle (mid-refresh).
    pub refresh_busy_until: u64,
}

impl Rank {
    /// A fresh rank with `bank_groups * banks_per_group` banks.
    pub fn new(bank_groups: usize, banks_per_group: usize, first_refresh: u64) -> Self {
        Rank {
            banks: vec![Bank::default(); bank_groups * banks_per_group],
            banks_per_group,
            act_window: VecDeque::with_capacity(4),
            last_act: vec![None; bank_groups],
            last_rd: vec![None; bank_groups],
            last_wr: vec![None; bank_groups],
            next_refresh_due: first_refresh,
            refresh_busy_until: 0,
        }
    }

    /// Flat bank index.
    pub fn bank_index(&self, bank_group: usize, bank: usize) -> usize {
        bank_group * self.banks_per_group + bank
    }

    /// Earliest cycle an ACTIVATE to `(bank_group, bank)` may issue.
    pub fn earliest_activate(&self, t: &DramTiming, bank_group: usize, bank: usize) -> u64 {
        let mut earliest = self.banks[self.bank_index(bank_group, bank)].next_act;
        earliest = earliest.max(self.refresh_busy_until);
        for (bg, last) in self.last_act.iter().enumerate() {
            if let Some(at) = last {
                let spacing = if bg == bank_group { t.trrd_l } else { t.trrd_s };
                earliest = earliest.max(at + spacing);
            }
        }
        if self.act_window.len() == 4 {
            earliest = earliest.max(self.act_window[0] + t.tfaw);
        }
        earliest
    }

    /// Earliest cycle a READ to `(bank_group, bank)` may issue,
    /// considering only rank-internal constraints.
    pub fn earliest_read(&self, t: &DramTiming, bank_group: usize, bank: usize) -> u64 {
        let mut earliest = self.banks[self.bank_index(bank_group, bank)].next_rd;
        earliest = earliest.max(self.refresh_busy_until);
        for bg in 0..self.last_rd.len() {
            let ccd = if bg == bank_group { t.tccd_l } else { t.tccd_s };
            if let Some(at) = self.last_rd[bg] {
                earliest = earliest.max(at + ccd);
            }
            if let Some(at) = self.last_wr[bg] {
                earliest = earliest.max(at + ccd);
                // Write-to-read turnaround.
                let wtr = if bg == bank_group {
                    t.write_to_read_same_bg()
                } else {
                    t.write_to_read_diff_bg()
                };
                earliest = earliest.max(at + wtr);
            }
        }
        earliest
    }

    /// Earliest cycle a WRITE to `(bank_group, bank)` may issue,
    /// considering only rank-internal constraints.
    pub fn earliest_write(&self, t: &DramTiming, bank_group: usize, bank: usize) -> u64 {
        let mut earliest = self.banks[self.bank_index(bank_group, bank)].next_wr;
        earliest = earliest.max(self.refresh_busy_until);
        for bg in 0..self.last_wr.len() {
            let ccd = if bg == bank_group { t.tccd_l } else { t.tccd_s };
            if let Some(at) = self.last_rd[bg] {
                earliest = earliest.max(at + ccd);
            }
            if let Some(at) = self.last_wr[bg] {
                earliest = earliest.max(at + ccd);
            }
        }
        earliest
    }

    /// Earliest cycle a PRECHARGE to `(bank_group, bank)` may issue.
    pub fn earliest_precharge(&self, bank_group: usize, bank: usize) -> u64 {
        self.banks[self.bank_index(bank_group, bank)]
            .next_pre
            .max(self.refresh_busy_until)
    }

    /// Record an ACTIVATE issued at `cycle`.
    pub fn record_activate(
        &mut self,
        t: &DramTiming,
        bank_group: usize,
        bank: usize,
        cycle: u64,
        row: usize,
    ) {
        let idx = self.bank_index(bank_group, bank);
        let b = &mut self.banks[idx];
        b.open_row = Some(row);
        b.next_rd = b.next_rd.max(cycle + t.trcd);
        b.next_wr = b.next_wr.max(cycle + t.trcd);
        b.next_pre = b.next_pre.max(cycle + t.tras);
        b.next_act = b.next_act.max(cycle + t.trc());
        self.last_act[bank_group] = Some(cycle);
        if self.act_window.len() == 4 {
            self.act_window.pop_front();
        }
        self.act_window.push_back(cycle);
    }

    /// Record a READ issued at `cycle`; `auto_precharge` models RDA.
    pub fn record_read(
        &mut self,
        t: &DramTiming,
        bank_group: usize,
        bank: usize,
        cycle: u64,
        auto_precharge: bool,
    ) {
        let idx = self.bank_index(bank_group, bank);
        self.last_rd[bank_group] = Some(cycle);
        let b = &mut self.banks[idx];
        b.next_pre = b.next_pre.max(cycle + t.trtp);
        if auto_precharge {
            let pre_at = b.next_pre;
            b.open_row = None;
            b.next_act = b.next_act.max(pre_at + t.trp);
        }
    }

    /// Record a WRITE issued at `cycle`; `auto_precharge` models WRA.
    pub fn record_write(
        &mut self,
        t: &DramTiming,
        bank_group: usize,
        bank: usize,
        cycle: u64,
        auto_precharge: bool,
    ) {
        let idx = self.bank_index(bank_group, bank);
        self.last_wr[bank_group] = Some(cycle);
        let b = &mut self.banks[idx];
        b.next_pre = b.next_pre.max(cycle + t.write_to_precharge());
        if auto_precharge {
            let pre_at = b.next_pre;
            b.open_row = None;
            b.next_act = b.next_act.max(pre_at + t.trp);
        }
    }

    /// Record a PRECHARGE issued at `cycle`.
    pub fn record_precharge(&mut self, t: &DramTiming, bank_group: usize, bank: usize, cycle: u64) {
        let idx = self.bank_index(bank_group, bank);
        let b = &mut self.banks[idx];
        b.open_row = None;
        b.next_act = b.next_act.max(cycle + t.trp);
    }

    /// Whether every bank in the rank is precharged (required before REF).
    pub fn all_banks_closed(&self) -> bool {
        self.banks.iter().all(|b| b.open_row.is_none())
    }

    /// Earliest cycle a REFRESH may issue (all banks closed and settled).
    pub fn earliest_refresh(&self) -> u64 {
        self.banks
            .iter()
            .map(|b| b.next_act)
            .max()
            .unwrap_or(0)
            .max(self.refresh_busy_until)
    }

    /// Earliest cycle at or after `now` at which this rank's refresh
    /// machinery could act or change state: the pending deadline if the
    /// rank is not yet due, otherwise the earliest cycle an open bank can
    /// be precharged (refresh requires all banks closed), or — once all
    /// banks are closed — the earliest cycle REFRESH itself may issue.
    ///
    /// A return value `<= now` means the machinery can act right now.
    pub fn next_refresh_event(&self, now: u64) -> u64 {
        if now < self.next_refresh_due {
            return self.next_refresh_due;
        }
        if self.all_banks_closed() {
            return self.earliest_refresh();
        }
        let mut earliest = u64::MAX;
        for (idx, bank) in self.banks.iter().enumerate() {
            if bank.open_row.is_some() {
                let bg = idx / self.banks_per_group;
                let b = idx % self.banks_per_group;
                earliest = earliest.min(self.earliest_precharge(bg, b));
            }
        }
        earliest
    }

    /// Record a REFRESH issued at `cycle`.
    pub fn record_refresh(&mut self, t: &DramTiming, cycle: u64) {
        self.refresh_busy_until = cycle + t.trfc;
        for b in &mut self.banks {
            b.next_act = b.next_act.max(cycle + t.trfc);
        }
        self.next_refresh_due += t.trefi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank() -> Rank {
        Rank::new(4, 4, 12480)
    }

    #[test]
    fn activate_opens_row_and_spaces_commands() {
        let t = DramTiming::ddr4_3200();
        let mut r = rank();
        r.record_activate(&t, 0, 0, 100, 7);
        assert_eq!(r.banks[0].open_row, Some(7));
        assert_eq!(r.earliest_read(&t, 0, 0), 100 + t.trcd);
        assert_eq!(r.earliest_precharge(0, 0), 100 + t.tras);
        // Same bank group: tRRD_L; different: tRRD_S.
        assert_eq!(r.earliest_activate(&t, 0, 1), 100 + t.trrd_l);
        assert_eq!(r.earliest_activate(&t, 1, 0), 100 + t.trrd_s);
        // Same bank: tRC.
        assert_eq!(r.earliest_activate(&t, 0, 0), 100 + t.trc());
    }

    #[test]
    fn four_activate_window_enforced() {
        let t = DramTiming::ddr4_3200();
        let mut r = rank();
        // Four activates to different bank groups at the rrd_s cadence.
        let mut c = 0;
        for i in 0..4 {
            r.record_activate(&t, i, 0, c, 0);
            c += t.trrd_s;
        }
        // Fifth activate must wait for the window regardless of tRRD.
        let e = r.earliest_activate(&t, 0, 1);
        assert!(e >= t.tfaw, "tFAW not enforced: {e}");
    }

    #[test]
    fn write_to_read_turnaround() {
        let t = DramTiming::ddr4_3200();
        let mut r = rank();
        r.record_activate(&t, 0, 0, 0, 1);
        r.record_activate(&t, 1, 0, t.trrd_s, 1);
        r.record_write(&t, 0, 0, 50, false);
        // Same bank group pays the long turnaround.
        assert!(r.earliest_read(&t, 0, 0) >= 50 + t.write_to_read_same_bg());
        // Different group pays the short one.
        assert!(r.earliest_read(&t, 1, 0) >= 50 + t.write_to_read_diff_bg());
        assert!(r.earliest_read(&t, 1, 0) < 50 + t.write_to_read_same_bg());
    }

    #[test]
    fn refresh_blocks_rank() {
        let t = DramTiming::ddr4_3200();
        let mut r = rank();
        assert!(r.all_banks_closed());
        r.record_refresh(&t, 1000);
        assert_eq!(r.refresh_busy_until, 1000 + t.trfc);
        assert!(r.earliest_activate(&t, 0, 0) >= 1000 + t.trfc);
        assert_eq!(r.next_refresh_due, 12480 + t.trefi);
    }

    #[test]
    fn auto_precharge_closes_row() {
        let t = DramTiming::ddr4_3200();
        let mut r = rank();
        r.record_activate(&t, 0, 0, 0, 3);
        r.record_read(&t, 0, 0, t.trcd, true);
        assert_eq!(r.banks[0].open_row, None);
        // Next activate waits for tRAS (precharge gate) + tRP at least.
        assert!(r.banks[0].next_act >= t.tras + t.trp);
    }

    #[test]
    fn closed_rank_is_refreshable_immediately() {
        let r = rank();
        assert_eq!(r.earliest_refresh(), 0);
    }

    #[test]
    fn next_refresh_event_tracks_machinery_state() {
        let t = DramTiming::ddr4_3200();
        let mut r = rank();
        // Before the deadline: the event is the deadline itself.
        assert_eq!(r.next_refresh_event(0), 12480);
        // Past the deadline with all banks closed: refresh-ready time.
        assert_eq!(r.next_refresh_event(12480), r.earliest_refresh());
        // An open bank gates the event on its earliest precharge.
        r.record_activate(&t, 1, 2, 12000, 9);
        assert_eq!(r.next_refresh_event(12480), 12000 + t.tras);
    }
}
