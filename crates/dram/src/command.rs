//! DDR4 command vocabulary.

/// The DRAM commands the controller can issue.
///
/// Auto-precharge variants ([`DramCommand::ReadAp`], [`DramCommand::WriteAp`])
/// are used under the closed-page policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramCommand {
    /// Open a row in a bank.
    Activate,
    /// Close the open row in a bank.
    Precharge,
    /// Close all open rows in a rank (precedes refresh).
    PrechargeAll,
    /// Column read burst.
    Read,
    /// Column read burst with auto-precharge.
    ReadAp,
    /// Column write burst.
    Write,
    /// Column write burst with auto-precharge.
    WriteAp,
    /// All-bank refresh.
    Refresh,
}

impl DramCommand {
    /// Whether this is a column (data-transferring) command.
    pub fn is_column(self) -> bool {
        matches!(
            self,
            DramCommand::Read | DramCommand::ReadAp | DramCommand::Write | DramCommand::WriteAp
        )
    }

    /// Whether this command transfers data from DRAM to the controller.
    pub fn is_read(self) -> bool {
        matches!(self, DramCommand::Read | DramCommand::ReadAp)
    }

    /// Whether this command transfers data from the controller to DRAM.
    pub fn is_write(self) -> bool {
        matches!(self, DramCommand::Write | DramCommand::WriteAp)
    }

    /// Whether this command carries an auto-precharge.
    pub fn auto_precharges(self) -> bool {
        matches!(self, DramCommand::ReadAp | DramCommand::WriteAp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(DramCommand::Read.is_column());
        assert!(DramCommand::WriteAp.is_column());
        assert!(!DramCommand::Activate.is_column());
        assert!(DramCommand::ReadAp.is_read());
        assert!(!DramCommand::Write.is_read());
        assert!(DramCommand::Write.is_write());
        assert!(DramCommand::WriteAp.auto_precharges());
        assert!(!DramCommand::Read.auto_precharges());
    }
}
