//! Channel-level timing state: ranks plus the shared data bus.

use crate::address::DramAddr;
use crate::bank::Rank;
use crate::command::DramCommand;
use crate::config::Geometry;
use crate::timing::DramTiming;

/// The most recent data burst on the channel's shared bus.
#[derive(Debug, Clone, Copy)]
struct BusUse {
    /// Cycle the burst finishes (exclusive).
    end: u64,
    /// Rank that drove / received the burst.
    rank: usize,
}

/// Timing state for one memory channel: all ranks plus bus arbitration.
#[derive(Debug, Clone)]
pub struct ChannelState {
    /// Per-rank state.
    pub ranks: Vec<Rank>,
    bank_groups: usize,
    banks_per_group: usize,
    last_burst: Option<BusUse>,
    /// Last READ command cycle on the channel (for read-to-write turnaround).
    last_read_cmd: Option<u64>,
}

impl ChannelState {
    /// Fresh channel state for the given geometry; refresh deadlines are
    /// staggered per rank so refreshes do not synchronize pathologically.
    pub fn new(geom: &Geometry, timing: &DramTiming) -> Self {
        let ranks = (0..geom.ranks_per_channel)
            .map(|r| {
                let stagger = timing.trefi * r as u64 / geom.ranks_per_channel.max(1) as u64;
                Rank::new(
                    geom.bank_groups,
                    geom.banks_per_group,
                    timing.trefi + stagger,
                )
            })
            .collect();
        ChannelState {
            ranks,
            bank_groups: geom.bank_groups,
            banks_per_group: geom.banks_per_group,
            last_burst: None,
            last_read_cmd: None,
        }
    }

    /// Earliest cycle the shared data bus admits a burst from `rank` whose
    /// data starts `data_lat` cycles after the command.
    fn bus_free_from(&self, t: &DramTiming, rank: usize, data_lat: u64) -> u64 {
        match self.last_burst {
            None => 0,
            Some(b) => {
                let gap = if b.rank != rank { t.tcs } else { 0 };
                (b.end + gap).saturating_sub(data_lat)
            }
        }
    }

    /// Earliest cycle at which `cmd` could issue to `addr` given the
    /// current channel state, or `None` when the command is structurally
    /// impossible right now (column access to a closed or mismatched row).
    ///
    /// This is the primitive behind the event-driven engine: between
    /// command issues all timing state is frozen, so the value stays exact
    /// until the next state change. [`ChannelState::can_issue`] is defined
    /// as `earliest_issue(..) <= cycle`, which keeps the fast path and the
    /// tick oracle incapable of disagreeing.
    pub fn earliest_issue(&self, t: &DramTiming, cmd: DramCommand, addr: &DramAddr) -> Option<u64> {
        let rank = &self.ranks[addr.rank];
        match cmd {
            DramCommand::Activate => Some(rank.earliest_activate(t, addr.bank_group, addr.bank)),
            DramCommand::Precharge => Some(rank.earliest_precharge(addr.bank_group, addr.bank)),
            DramCommand::PrechargeAll => {
                let mut earliest = rank.refresh_busy_until;
                for bg in 0..self.bank_groups {
                    for b in 0..self.banks_per_group {
                        earliest = earliest.max(rank.earliest_precharge(bg, b));
                    }
                }
                Some(earliest)
            }
            DramCommand::Read | DramCommand::ReadAp => {
                let bank = &rank.banks[rank.bank_index(addr.bank_group, addr.bank)];
                if bank.open_row != Some(addr.row) {
                    return None;
                }
                let earliest = rank
                    .earliest_read(t, addr.bank_group, addr.bank)
                    .max(self.bus_free_from(t, addr.rank, t.cl));
                Some(earliest)
            }
            DramCommand::Write | DramCommand::WriteAp => {
                let bank = &rank.banks[rank.bank_index(addr.bank_group, addr.bank)];
                if bank.open_row != Some(addr.row) {
                    return None;
                }
                let mut earliest = rank
                    .earliest_write(t, addr.bank_group, addr.bank)
                    .max(self.bus_free_from(t, addr.rank, t.cwl));
                if let Some(at) = self.last_read_cmd {
                    earliest = earliest.max(at + t.read_to_write());
                }
                Some(earliest)
            }
            DramCommand::Refresh => Some(rank.earliest_refresh()),
        }
    }

    /// Whether `cmd` may issue to `addr` at `cycle`.
    pub fn can_issue(&self, t: &DramTiming, cmd: DramCommand, addr: &DramAddr, cycle: u64) -> bool {
        self.earliest_issue(t, cmd, addr)
            .is_some_and(|earliest| earliest <= cycle)
    }

    /// Apply the state changes of issuing `cmd` to `addr` at `cycle`.
    ///
    /// Callers must have checked [`ChannelState::can_issue`]; this method
    /// only mutates state.
    pub fn issue(&mut self, t: &DramTiming, cmd: DramCommand, addr: &DramAddr, cycle: u64) {
        let rank = &mut self.ranks[addr.rank];
        match cmd {
            DramCommand::Activate => {
                rank.record_activate(t, addr.bank_group, addr.bank, cycle, addr.row);
            }
            DramCommand::Precharge => {
                rank.record_precharge(t, addr.bank_group, addr.bank, cycle);
            }
            DramCommand::PrechargeAll => {
                for bg in 0..self.bank_groups {
                    for b in 0..self.banks_per_group {
                        let rank = &mut self.ranks[addr.rank];
                        if rank.banks[rank.bank_index(bg, b)].open_row.is_some() {
                            rank.record_precharge(t, bg, b, cycle);
                        }
                    }
                }
            }
            DramCommand::Read | DramCommand::ReadAp => {
                rank.record_read(t, addr.bank_group, addr.bank, cycle, cmd.auto_precharges());
                self.last_read_cmd = Some(cycle);
                self.last_burst = Some(BusUse {
                    end: cycle + t.cl + t.burst_cycles(),
                    rank: addr.rank,
                });
            }
            DramCommand::Write | DramCommand::WriteAp => {
                rank.record_write(t, addr.bank_group, addr.bank, cycle, cmd.auto_precharges());
                self.last_burst = Some(BusUse {
                    end: cycle + t.cwl + t.burst_cycles(),
                    rank: addr.rank,
                });
            }
            DramCommand::Refresh => {
                rank.record_refresh(t, cycle);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn setup() -> (ChannelState, DramTiming) {
        let cfg = DramConfig::ddr4_3200_channel();
        (ChannelState::new(&cfg.geometry, &cfg.timing), cfg.timing)
    }

    fn addr(rank: usize, bg: usize, bank: usize, row: usize, col: usize) -> DramAddr {
        DramAddr {
            channel: 0,
            rank,
            bank_group: bg,
            bank,
            row,
            column: col,
        }
    }

    #[test]
    fn activate_then_read_sequence() {
        let (mut ch, t) = setup();
        let a = addr(0, 0, 0, 5, 0);
        assert!(ch.can_issue(&t, DramCommand::Activate, &a, 0));
        assert!(!ch.can_issue(&t, DramCommand::Read, &a, 0));
        ch.issue(&t, DramCommand::Activate, &a, 0);
        assert!(!ch.can_issue(&t, DramCommand::Read, &a, t.trcd - 1));
        assert!(ch.can_issue(&t, DramCommand::Read, &a, t.trcd));
    }

    #[test]
    fn back_to_back_reads_respect_ccd() {
        let (mut ch, t) = setup();
        let a = addr(0, 0, 0, 5, 0);
        let b = addr(0, 1, 0, 5, 0);
        ch.issue(&t, DramCommand::Activate, &a, 0);
        ch.issue(&t, DramCommand::Activate, &b, t.trrd_s);
        let c0 = t.trcd + t.trrd_s;
        ch.issue(&t, DramCommand::Read, &a, c0);
        // Same bank group: tCCD_L; other group: tCCD_S.
        assert!(!ch.can_issue(&t, DramCommand::Read, &a, c0 + t.tccd_s));
        assert!(ch.can_issue(&t, DramCommand::Read, &b, c0 + t.tccd_s));
        assert!(ch.can_issue(&t, DramCommand::Read, &a, c0 + t.tccd_l));
    }

    #[test]
    fn cross_rank_bus_gap() {
        let (mut ch, t) = setup();
        let a = addr(0, 0, 0, 5, 0);
        let b = addr(1, 0, 0, 5, 0);
        ch.issue(&t, DramCommand::Activate, &a, 0);
        ch.issue(&t, DramCommand::Activate, &b, t.trrd_s);
        let c0 = 100;
        ch.issue(&t, DramCommand::Read, &a, c0);
        // Same cycle-spacing read on another rank must leave a tCS bus gap:
        // data would start at c+CL; earliest ok is burst end + tCS - CL.
        let burst_end = c0 + t.cl + t.burst_cycles();
        let earliest = burst_end + t.tcs - t.cl;
        assert!(!ch.can_issue(&t, DramCommand::Read, &b, earliest - 1));
        assert!(ch.can_issue(&t, DramCommand::Read, &b, earliest));
    }

    #[test]
    fn read_to_write_turnaround_on_channel() {
        let (mut ch, t) = setup();
        let a = addr(0, 0, 0, 5, 0);
        let b = addr(0, 1, 0, 5, 0);
        ch.issue(&t, DramCommand::Activate, &a, 0);
        ch.issue(&t, DramCommand::Activate, &b, t.trrd_s);
        let c0 = 100;
        ch.issue(&t, DramCommand::Read, &a, c0);
        assert!(!ch.can_issue(&t, DramCommand::Write, &b, c0 + t.read_to_write() - 1));
        assert!(ch.can_issue(&t, DramCommand::Write, &b, c0 + t.read_to_write()));
    }

    #[test]
    fn earliest_issue_agrees_with_can_issue() {
        let (mut ch, t) = setup();
        let a = addr(0, 0, 0, 5, 0);
        ch.issue(&t, DramCommand::Activate, &a, 0);
        let e = ch
            .earliest_issue(&t, DramCommand::Read, &a)
            .expect("row is open");
        assert!(!ch.can_issue(&t, DramCommand::Read, &a, e - 1));
        assert!(ch.can_issue(&t, DramCommand::Read, &a, e));
        // Mismatched row: structurally impossible.
        let wrong = addr(0, 0, 0, 6, 0);
        assert_eq!(ch.earliest_issue(&t, DramCommand::Read, &wrong), None);
    }

    #[test]
    fn refresh_staggering() {
        let cfg = DramConfig::ddr4_3200_channel();
        let ch = ChannelState::new(&cfg.geometry, &cfg.timing);
        let deadlines: Vec<u64> = ch.ranks.iter().map(|r| r.next_refresh_due).collect();
        let mut sorted = deadlines.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), deadlines.len(), "deadlines should differ");
    }
}
