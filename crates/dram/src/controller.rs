//! Per-channel memory controller.
//!
//! Implements FR-FCFS (first-ready, first-come-first-served) or strict FCFS
//! scheduling over separate read and write queues, with watermark-based
//! write draining, open- or closed-page row management, and all-bank
//! refresh. One DRAM command may issue per controller cycle.

use std::collections::VecDeque;

use crate::address::DramAddr;
use crate::channel::ChannelState;
use crate::command::DramCommand;
use crate::config::{DramConfig, RowPolicy, SchedulerKind};
use crate::request::{Completion, Request, RequestKind};
use crate::stats::ChannelStats;

#[derive(Debug, Clone)]
struct QueuedRequest {
    request: Request,
    dram: DramAddr,
    enqueued_at: u64,
    /// The request had to activate a row (row miss).
    needed_activate: bool,
    /// The request had to close another row first (row conflict).
    needed_precharge: bool,
}

/// A single-channel DDR4 memory controller.
///
/// Normally driven through [`crate::MemorySystem`]; exposed publicly so the
/// NMP-local controller of a TensorDIMM can embed one directly.
#[derive(Debug, Clone)]
pub struct MemoryController {
    config: DramConfig,
    state: ChannelState,
    read_queue: VecDeque<QueuedRequest>,
    write_queue: VecDeque<QueuedRequest>,
    write_mode: bool,
    cycle: u64,
    /// Latest in-flight data-burst completion time.
    last_burst_done: u64,
    completions: Vec<Completion>,
    stats: ChannelStats,
}

impl MemoryController {
    /// Build a controller for one channel of `config`.
    ///
    /// The configuration is assumed validated (see [`DramConfig::validate`]).
    pub fn new(config: DramConfig) -> Self {
        let state = ChannelState::new(&config.geometry, &config.timing);
        MemoryController {
            state,
            read_queue: VecDeque::with_capacity(config.read_queue_depth),
            write_queue: VecDeque::with_capacity(config.write_queue_depth),
            write_mode: false,
            cycle: 0,
            last_burst_done: 0,
            completions: Vec::new(),
            stats: ChannelStats::default(),
            config,
        }
    }

    /// Current controller cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The configuration this controller runs.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Queued requests not yet issued.
    pub fn pending(&self) -> usize {
        self.read_queue.len() + self.write_queue.len()
    }

    /// Whether any queued request or in-flight burst remains.
    pub fn is_busy(&self) -> bool {
        self.pending() > 0 || self.cycle < self.last_burst_done
    }

    /// Offer a request (already decoded to a DRAM coordinate on this
    /// channel). Returns `false` when the corresponding queue is full.
    pub fn enqueue(&mut self, request: Request, dram: DramAddr) -> bool {
        let queue_entry = QueuedRequest {
            request,
            dram,
            enqueued_at: self.cycle,
            needed_activate: false,
            needed_precharge: false,
        };
        match request.kind {
            RequestKind::Read => {
                if self.read_queue.len() >= self.config.read_queue_depth {
                    return false;
                }
                self.read_queue.push_back(queue_entry);
                true
            }
            RequestKind::Write => {
                if self.write_queue.len() >= self.config.write_queue_depth {
                    return false;
                }
                self.write_queue.push_back(queue_entry);
                true
            }
        }
    }

    /// Take all completions recorded so far.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Snapshot of the channel's statistics.
    pub fn stats(&self) -> ChannelStats {
        let mut s = self.stats;
        s.cycles = self.cycle;
        s
    }

    /// Advance one controller cycle, issuing at most one DRAM command.
    pub fn tick(&mut self) {
        if self.pending() > 0 {
            self.stats.busy_cycles += 1;
        }
        self.update_mode();
        if !(self.config.refresh_enabled && self.service_refresh()) {
            self.schedule();
        }
        self.cycle += 1;
    }

    fn update_mode(&mut self) {
        if self.write_mode {
            if self.write_queue.is_empty()
                || (self.write_queue.len() <= self.config.write_low_watermark
                    && !self.read_queue.is_empty())
            {
                self.write_mode = false;
            }
        } else if self.write_queue.len() >= self.config.write_high_watermark
            || (self.read_queue.is_empty() && !self.write_queue.is_empty())
        {
            self.write_mode = true;
        }
    }

    /// Returns `true` if a refresh-related command consumed this cycle.
    fn service_refresh(&mut self) -> bool {
        let timing = self.config.timing.clone();
        let geom = self.config.geometry;
        for rank_idx in 0..geom.ranks_per_channel {
            let due = self.state.ranks[rank_idx].next_refresh_due;
            if self.cycle < due {
                continue;
            }
            // Close any open banks first, one precharge per cycle.
            if !self.state.ranks[rank_idx].all_banks_closed() {
                for bg in 0..geom.bank_groups {
                    for b in 0..geom.banks_per_group {
                        let rank = &self.state.ranks[rank_idx];
                        let idx = rank.bank_index(bg, b);
                        if rank.banks[idx].open_row.is_some()
                            && rank.earliest_precharge(bg, b) <= self.cycle
                        {
                            let addr = DramAddr {
                                rank: rank_idx,
                                bank_group: bg,
                                bank: b,
                                ..DramAddr::default()
                            };
                            self.state
                                .issue(&timing, DramCommand::Precharge, &addr, self.cycle);
                            self.stats.precharges += 1;
                            return true;
                        }
                    }
                }
                // Banks open but none precharge-able yet: stall this rank.
                continue;
            }
            let addr = DramAddr {
                rank: rank_idx,
                ..DramAddr::default()
            };
            if self
                .state
                .can_issue(&timing, DramCommand::Refresh, &addr, self.cycle)
            {
                self.state
                    .issue(&timing, DramCommand::Refresh, &addr, self.cycle);
                self.stats.refreshes += 1;
                return true;
            }
        }
        false
    }

    fn refresh_blocked(&self, rank: usize) -> bool {
        self.config.refresh_enabled && self.cycle >= self.state.ranks[rank].next_refresh_due
    }

    fn schedule(&mut self) {
        let timing = self.config.timing.clone();
        let serve_writes = self.write_mode;
        let scan_limit = match self.config.scheduler {
            SchedulerKind::FrFcfs => usize::MAX,
            SchedulerKind::Fcfs => 1,
        };

        // Pass 1: oldest row-hit request whose column command can issue now.
        let col_cmd = |kind: RequestKind, policy: RowPolicy| match (kind, policy) {
            (RequestKind::Read, RowPolicy::OpenPage) => DramCommand::Read,
            (RequestKind::Read, RowPolicy::ClosedPage) => DramCommand::ReadAp,
            (RequestKind::Write, RowPolicy::OpenPage) => DramCommand::Write,
            (RequestKind::Write, RowPolicy::ClosedPage) => DramCommand::WriteAp,
        };

        let queue = if serve_writes {
            &self.write_queue
        } else {
            &self.read_queue
        };
        let mut chosen: Option<(usize, DramCommand)> = None;
        for (i, q) in queue.iter().enumerate().take(scan_limit) {
            if self.refresh_blocked(q.dram.rank) {
                continue;
            }
            let rank = &self.state.ranks[q.dram.rank];
            let bank = &rank.banks[rank.bank_index(q.dram.bank_group, q.dram.bank)];
            if bank.open_row == Some(q.dram.row) {
                let cmd = col_cmd(q.request.kind, self.config.row_policy);
                if self.state.can_issue(&timing, cmd, &q.dram, self.cycle) {
                    chosen = Some((i, cmd));
                    break;
                }
            }
        }

        // Pass 2: oldest request whose next preparatory command can issue.
        if chosen.is_none() {
            for (i, q) in queue.iter().enumerate().take(scan_limit) {
                if self.refresh_blocked(q.dram.rank) {
                    continue;
                }
                let rank = &self.state.ranks[q.dram.rank];
                let bank = &rank.banks[rank.bank_index(q.dram.bank_group, q.dram.bank)];
                match bank.open_row {
                    None => {
                        if self
                            .state
                            .can_issue(&timing, DramCommand::Activate, &q.dram, self.cycle)
                        {
                            chosen = Some((i, DramCommand::Activate));
                            break;
                        }
                    }
                    Some(row) if row != q.dram.row => {
                        // Do not close a row other queued requests still hit.
                        let still_useful = queue.iter().any(|other| {
                            other.dram.rank == q.dram.rank
                                && other.dram.bank_group == q.dram.bank_group
                                && other.dram.bank == q.dram.bank
                                && other.dram.row == row
                        });
                        if !still_useful
                            && self.state.can_issue(
                                &timing,
                                DramCommand::Precharge,
                                &q.dram,
                                self.cycle,
                            )
                        {
                            chosen = Some((i, DramCommand::Precharge));
                            break;
                        }
                    }
                    Some(_) => {}
                }
            }
        }

        let Some((index, cmd)) = chosen else {
            return;
        };
        self.execute(index, cmd, serve_writes);
    }

    fn execute(&mut self, index: usize, cmd: DramCommand, serve_writes: bool) {
        let timing = self.config.timing.clone();
        let queue = if serve_writes {
            &mut self.write_queue
        } else {
            &mut self.read_queue
        };
        match cmd {
            DramCommand::Activate => {
                let q = &mut queue[index];
                q.needed_activate = true;
                let dram = q.dram;
                self.state.issue(&timing, cmd, &dram, self.cycle);
                self.stats.activates += 1;
            }
            DramCommand::Precharge => {
                let q = &mut queue[index];
                q.needed_precharge = true;
                let dram = q.dram;
                self.state.issue(&timing, cmd, &dram, self.cycle);
                self.stats.precharges += 1;
            }
            DramCommand::Read | DramCommand::ReadAp | DramCommand::Write | DramCommand::WriteAp => {
                let q = queue
                    .remove(index)
                    .expect("scheduler chose an in-range queue index");
                self.state.issue(&timing, cmd, &q.dram, self.cycle);
                if cmd.auto_precharges() {
                    self.stats.precharges += 1;
                }
                if q.needed_precharge {
                    self.stats.row_conflicts += 1;
                } else if q.needed_activate {
                    self.stats.row_misses += 1;
                } else {
                    self.stats.row_hits += 1;
                }
                let data_lat = if cmd.is_read() { timing.cl } else { timing.cwl };
                let finished_at = self.cycle + data_lat + timing.burst_cycles();
                self.last_burst_done = self.last_burst_done.max(finished_at);
                self.stats.bus_busy_cycles += timing.burst_cycles();
                if cmd.is_read() {
                    self.stats.reads += 1;
                    self.stats.read_latency_sum += finished_at - q.enqueued_at;
                } else {
                    self.stats.writes += 1;
                }
                self.completions.push(Completion {
                    request: q.request,
                    enqueued_at: q.enqueued_at,
                    finished_at,
                });
            }
            DramCommand::PrechargeAll | DramCommand::Refresh => {
                unreachable!("refresh path handles rank-wide commands")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;
    use crate::MappingScheme;

    fn controller() -> MemoryController {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        MemoryController::new(cfg)
    }

    fn decode(cfg: &DramConfig, addr: u64) -> DramAddr {
        cfg.mapping.decode(addr, &cfg.geometry).unwrap()
    }

    fn run_until_idle(mc: &mut MemoryController) {
        let mut guard = 0;
        while mc.is_busy() {
            mc.tick();
            guard += 1;
            assert!(guard < 1_000_000, "controller wedged");
        }
    }

    #[test]
    fn single_read_latency_is_act_plus_cas() {
        let mut mc = controller();
        let cfg = mc.config().clone();
        let dram = decode(&cfg, 0);
        assert!(mc.enqueue(Request::read(0), dram));
        run_until_idle(&mut mc);
        let done = mc.drain_completions();
        assert_eq!(done.len(), 1);
        let t = &cfg.timing;
        // One idle-bank read: tick align + tRCD + CL + burst.
        let expect = t.trcd + t.cl + t.burst_cycles();
        assert!(
            done[0].latency() >= expect && done[0].latency() <= expect + 4,
            "latency {} expected about {}",
            done[0].latency(),
            expect
        );
    }

    #[test]
    fn row_hits_counted_for_same_row_stream() {
        let mut mc = controller();
        let cfg = mc.config().clone();
        // 16 sequential blocks in the same rank 0 row: decode stride of
        // ranks_per_channel * 64 keeps rank fixed under rank interleaving.
        let stride = cfg.geometry.ranks_per_channel as u64 * 64;
        for i in 0..16u64 {
            let addr = i * stride;
            let dram = decode(&cfg, addr);
            assert_eq!(dram.rank, 0);
            assert!(mc.enqueue(Request::read(addr), dram));
        }
        run_until_idle(&mut mc);
        let stats = mc.stats();
        assert_eq!(stats.reads, 16);
        assert!(stats.row_hits >= 3, "row hits {}", stats.row_hits);
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut mc = controller();
        let cfg = mc.config().clone();
        let depth = cfg.read_queue_depth;
        for i in 0..depth as u64 {
            let dram = decode(&cfg, i * 64);
            assert!(mc.enqueue(Request::read(i * 64), dram));
        }
        let dram = decode(&cfg, 1 << 20);
        assert!(!mc.enqueue(Request::read(1 << 20), dram));
    }

    #[test]
    fn writes_drain_when_reads_absent() {
        let mut mc = controller();
        let cfg = mc.config().clone();
        for i in 0..8u64 {
            let dram = decode(&cfg, i * 64);
            assert!(mc.enqueue(Request::write(i * 64), dram));
        }
        run_until_idle(&mut mc);
        assert_eq!(mc.stats().writes, 8);
    }

    #[test]
    fn mixed_read_write_all_complete() {
        let mut mc = controller();
        let cfg = mc.config().clone();
        for i in 0..32u64 {
            let addr = i * 64;
            let dram = decode(&cfg, addr);
            let req = if i % 2 == 0 {
                Request::read(addr)
            } else {
                Request::write(addr)
            };
            assert!(mc.enqueue(req, dram));
        }
        run_until_idle(&mut mc);
        let stats = mc.stats();
        assert_eq!(stats.reads, 16);
        assert_eq!(stats.writes, 16);
        assert_eq!(mc.drain_completions().len(), 32);
    }

    #[test]
    fn refresh_eventually_issues() {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = true;
        let mut mc = MemoryController::new(cfg.clone());
        // Run past the first refresh deadline with an empty queue.
        for _ in 0..(cfg.timing.trefi * 3) {
            mc.tick();
        }
        assert!(mc.stats().refreshes >= cfg.geometry.ranks_per_channel as u64);
    }

    #[test]
    fn fcfs_services_in_order() {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        cfg.scheduler = SchedulerKind::Fcfs;
        let mut mc = MemoryController::new(cfg.clone());
        for i in 0..8u64 {
            let addr = i << 16; // different rows
            let dram = decode(&cfg, addr);
            assert!(mc.enqueue(Request::read(addr).with_id(i), dram));
        }
        run_until_idle(&mut mc);
        let done = mc.drain_completions();
        let ids: Vec<u64> = done.iter().map(|c| c.request.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn closed_page_never_hits() {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        cfg.row_policy = RowPolicy::ClosedPage;
        let mut mc = MemoryController::new(cfg.clone());
        let stride = cfg.geometry.ranks_per_channel as u64 * 64;
        for i in 0..8u64 {
            let addr = i * stride;
            let dram = decode(&cfg, addr);
            assert!(mc.enqueue(Request::read(addr), dram));
        }
        run_until_idle(&mut mc);
        let stats = mc.stats();
        assert_eq!(stats.row_hits, 0);
        assert_eq!(stats.reads, 8);
    }

    #[test]
    fn mapping_ablation_uses_vector_per_rank() {
        // Sanity that alternative mappings route through the controller too.
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        cfg.mapping = MappingScheme::vector_per_rank(&cfg.geometry);
        let mut mc = MemoryController::new(cfg.clone());
        for i in 0..8u64 {
            let addr = i * 64;
            let dram = decode(&cfg, addr);
            assert_eq!(dram.rank, 0, "low addresses stay in rank 0");
            assert!(mc.enqueue(Request::read(addr), dram));
        }
        run_until_idle(&mut mc);
        assert_eq!(mc.stats().reads, 8);
    }
}

#[cfg(test)]
mod drain_tests {
    use super::*;
    use crate::config::DramConfig;

    fn decode(cfg: &DramConfig, addr: u64) -> DramAddr {
        cfg.mapping.decode(addr, &cfg.geometry).unwrap()
    }

    #[test]
    fn write_watermark_switches_modes() {
        // Fill the write queue past the high watermark while reads are
        // present; the controller must drain writes in a burst and then
        // return to reads.
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        let mut mc = MemoryController::new(cfg.clone());
        for i in 0..cfg.write_high_watermark as u64 + 4 {
            let addr = i * 64;
            assert!(mc.enqueue(Request::write(addr), decode(&cfg, addr)));
        }
        for i in 0..8u64 {
            let addr = (1 << 22) + i * 64;
            assert!(mc.enqueue(Request::read(addr), decode(&cfg, addr)));
        }
        let mut guard = 0;
        while mc.is_busy() {
            mc.tick();
            guard += 1;
            assert!(guard < 1_000_000, "controller wedged");
        }
        let stats = mc.stats();
        assert_eq!(stats.writes, cfg.write_high_watermark as u64 + 4);
        assert_eq!(stats.reads, 8);
    }

    #[test]
    fn refresh_under_load_still_serves_all_requests() {
        let cfg = DramConfig::ddr4_3200_channel(); // refresh enabled
        let mut mc = MemoryController::new(cfg.clone());
        let mut issued = 0u64;
        let mut offered = 0u64;
        // Run well past several tREFI windows while continuously offering
        // work.
        for cycle in 0..(cfg.timing.trefi * 6) {
            if cycle % 8 == 0 {
                let addr = (offered * 64) % (1 << 24);
                if mc.enqueue(Request::read(addr), decode(&cfg, addr)) {
                    issued += 1;
                }
                offered += 1;
            }
            mc.tick();
        }
        while mc.is_busy() {
            mc.tick();
        }
        let stats = mc.stats();
        assert_eq!(stats.reads, issued);
        assert!(
            stats.refreshes >= 4 * cfg.geometry.ranks_per_channel as u64,
            "only {} refreshes over six tREFI",
            stats.refreshes
        );
    }

    #[test]
    fn per_bank_activates_are_counted() {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        let mut mc = MemoryController::new(cfg.clone());
        // Two different rows of the same bank force a conflict precharge.
        let row_stride = 1u64 << 19; // beyond the row-bit boundary
        for addr in [0u64, row_stride] {
            assert!(mc.enqueue(Request::read(addr), decode(&cfg, addr)));
        }
        let mut guard = 0;
        while mc.is_busy() {
            mc.tick();
            guard += 1;
            assert!(guard < 100_000);
        }
        let stats = mc.stats();
        assert!(stats.activates >= 2);
        assert_eq!(stats.reads, 2);
    }
}
