//! Per-channel memory controller.
//!
//! Implements FR-FCFS (first-ready, first-come-first-served) or strict FCFS
//! scheduling over separate read and write queues, with watermark-based
//! write draining, open- or closed-page row management, and all-bank
//! refresh. One DRAM command may issue per controller cycle.
//!
//! # Event-driven time skipping
//!
//! [`MemoryController::tick`] advances exactly one cycle and is the
//! bit-exact oracle. [`MemoryController::advance_to`] and
//! [`MemoryController::run_until_idle`] reach the same state by jumping
//! over spans in which provably nothing can happen: every internal step
//! also computes a *horizon* — a lower bound on the next cycle at which a
//! queued command could become issuable, a refresh falls due or becomes
//! serviceable, or an in-flight burst completes. Between command issues
//! all timing state is frozen, so jumping to the horizon (while crediting
//! the skipped span to [`ChannelStats::busy_cycles`]) is exactly
//! equivalent to ticking through it.

use std::collections::VecDeque;

use crate::address::DramAddr;
use crate::channel::ChannelState;
use crate::command::DramCommand;
use crate::config::{DramConfig, RowPolicy, SchedulerKind};
use crate::request::{Completion, Request, RequestKind};
use crate::stats::ChannelStats;

#[derive(Debug, Clone)]
struct QueuedRequest {
    request: Request,
    dram: DramAddr,
    enqueued_at: u64,
    /// The request had to activate a row (row miss).
    needed_activate: bool,
    /// The request had to close another row first (row conflict).
    needed_precharge: bool,
}

/// The column command a request maps to under the given row policy.
fn col_cmd(kind: RequestKind, policy: RowPolicy) -> DramCommand {
    match (kind, policy) {
        (RequestKind::Read, RowPolicy::OpenPage) => DramCommand::Read,
        (RequestKind::Read, RowPolicy::ClosedPage) => DramCommand::ReadAp,
        (RequestKind::Write, RowPolicy::OpenPage) => DramCommand::Write,
        (RequestKind::Write, RowPolicy::ClosedPage) => DramCommand::WriteAp,
    }
}

/// A single-channel DDR4 memory controller.
///
/// Normally driven through [`crate::MemorySystem`]; exposed publicly so the
/// NMP-local controller of a TensorDIMM can embed one directly.
#[derive(Debug, Clone)]
pub struct MemoryController {
    config: DramConfig,
    state: ChannelState,
    read_queue: VecDeque<QueuedRequest>,
    write_queue: VecDeque<QueuedRequest>,
    write_mode: bool,
    cycle: u64,
    /// Latest in-flight data-burst completion time.
    last_burst_done: u64,
    completions: Vec<Completion>,
    stats: ChannelStats,
    /// Cached `min` over ranks of `next_refresh_due`: the refresh machinery
    /// is provably inert before this cycle, so ticks skip the per-rank scan.
    next_refresh_due_min: u64,
    /// Horizon left by the last non-acting step: no command can issue
    /// strictly before this cycle. Valid until the queues or timing state
    /// change (a command issues or a request is enqueued); lets repeated
    /// `advance_to` calls jump a known-idle span without rescanning.
    cached_horizon: Option<u64>,
    /// Idle cycles the event-driven path jumped over (diagnostic; not part
    /// of [`ChannelStats`], which stays identical between both paths).
    idle_cycles_skipped: u64,
}

impl MemoryController {
    /// Build a controller for one channel of `config`.
    ///
    /// The configuration is assumed validated (see [`DramConfig::validate`]).
    pub fn new(config: DramConfig) -> Self {
        let state = ChannelState::new(&config.geometry, &config.timing);
        let next_refresh_due_min = state
            .ranks
            .iter()
            .map(|r| r.next_refresh_due)
            .min()
            .unwrap_or(u64::MAX);
        MemoryController {
            state,
            read_queue: VecDeque::with_capacity(config.read_queue_depth),
            write_queue: VecDeque::with_capacity(config.write_queue_depth),
            write_mode: false,
            cycle: 0,
            last_burst_done: 0,
            completions: Vec::new(),
            stats: ChannelStats::default(),
            next_refresh_due_min,
            cached_horizon: None,
            idle_cycles_skipped: 0,
            config,
        }
    }

    /// Current controller cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The configuration this controller runs.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Queued requests not yet issued.
    pub fn pending(&self) -> usize {
        self.read_queue.len() + self.write_queue.len()
    }

    /// Whether any queued request or in-flight burst remains.
    pub fn is_busy(&self) -> bool {
        self.pending() > 0 || self.cycle < self.last_burst_done
    }

    /// Offer a request (already decoded to a DRAM coordinate on this
    /// channel). Returns `false` when the corresponding queue is full.
    pub fn enqueue(&mut self, request: Request, dram: DramAddr) -> bool {
        let queue_entry = QueuedRequest {
            request,
            dram,
            enqueued_at: self.cycle,
            needed_activate: false,
            needed_precharge: false,
        };
        match request.kind {
            RequestKind::Read => {
                if self.read_queue.len() >= self.config.read_queue_depth {
                    return false;
                }
                self.read_queue.push_back(queue_entry);
            }
            RequestKind::Write => {
                if self.write_queue.len() >= self.config.write_queue_depth {
                    return false;
                }
                self.write_queue.push_back(queue_entry);
            }
        }
        // An accepted request can become issuable (or flip the write-drain
        // mode) before any previously computed horizon; a rejected one
        // returned above without touching state.
        self.cached_horizon = None;
        true
    }

    /// Take all completions recorded so far.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Move all completions recorded so far into `out`, reusing its
    /// allocation (and this controller's) across drains.
    pub fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        out.append(&mut self.completions);
    }

    /// Snapshot of the channel's statistics.
    pub fn stats(&self) -> ChannelStats {
        let mut s = self.stats;
        s.cycles = self.cycle;
        s
    }

    /// Idle cycles the event-driven path ([`MemoryController::advance_to`],
    /// [`MemoryController::run_until_idle`]) jumped over instead of ticking.
    pub fn idle_cycles_skipped(&self) -> u64 {
        self.idle_cycles_skipped
    }

    /// Advance one controller cycle, issuing at most one DRAM command.
    ///
    /// This is the bit-exact oracle the event-driven path is verified
    /// against; prefer [`MemoryController::advance_to`] when simulating
    /// long spans.
    pub fn tick(&mut self) {
        self.step_with_horizon();
    }

    /// Advance to exactly `target`, issuing the same commands at the same
    /// cycles (and accumulating the same [`ChannelStats`]) as calling
    /// [`MemoryController::tick`] `target - cycle` times, but jumping over
    /// spans in which nothing can happen.
    pub fn advance_to(&mut self, target: u64) {
        while self.cycle < target {
            self.event_step(target);
        }
    }

    /// Run until no queued request or in-flight burst remains, jumping
    /// over idle spans. Equivalent to `while self.is_busy() { self.tick() }`.
    pub fn run_until_idle(&mut self) {
        while self.is_busy() {
            self.event_step(self.idle_limit());
        }
    }

    /// Advance until just after the next cycle in which this controller
    /// issues a command, or until it drains idle; returns the new cycle.
    ///
    /// This is the back-pressure primitive: a full queue can only free a
    /// slot at such a cycle, so a blocked producer jumps here instead of
    /// retrying every cycle (reusing the step's own horizon rather than
    /// paying a second queue scan per retry).
    pub fn advance_past_next_action(&mut self) -> u64 {
        while self.is_busy() {
            if self.event_step(self.idle_limit()) {
                break;
            }
        }
        self.cycle
    }

    /// When only an in-flight burst (plus perhaps a distant refresh) keeps
    /// the controller busy, its completion bounds any run-until-idle jump;
    /// with queued work there is no such bound.
    fn idle_limit(&self) -> u64 {
        if self.pending() == 0 {
            self.last_burst_done
        } else {
            u64::MAX
        }
    }

    /// One event-engine iteration: jump over the cached known-idle span
    /// (clamped to `limit`), then — if still below `limit` or unbounded —
    /// run one oracle step. Returns whether a command issued.
    fn event_step(&mut self, limit: u64) -> bool {
        if let Some(horizon) = self.cached_horizon {
            let jump_to = horizon.min(limit);
            if jump_to != u64::MAX && jump_to > self.cycle {
                self.skip_idle_to(jump_to);
            }
            if self.cycle >= limit {
                return false;
            }
        }
        let (acted, _) = self.step_with_horizon();
        acted
    }

    /// The earliest cycle at or after the current one at which this
    /// controller could act — a queued command becomes issuable, a refresh
    /// falls due or becomes serviceable, or the last in-flight burst
    /// completes. `None` when the controller is fully idle with refresh
    /// disabled (nothing will ever happen without a new request).
    ///
    /// The value is a lower bound: landing on it and re-evaluating never
    /// misses an event, which is the invariant the event-driven engine
    /// rests on.
    pub fn next_event_cycle(&self) -> Option<u64> {
        let now = self.cycle;
        let mut horizon = u64::MAX;
        if self.config.refresh_enabled {
            if now < self.next_refresh_due_min {
                horizon = self.next_refresh_due_min;
            } else {
                for rank in &self.state.ranks {
                    horizon = horizon.min(rank.next_refresh_event(now));
                }
            }
        }
        if horizon > now {
            horizon = horizon.min(self.schedule_horizon(now));
        }
        if now < self.last_burst_done {
            horizon = horizon.min(self.last_burst_done);
        }
        if horizon == u64::MAX {
            None
        } else {
            Some(horizon.max(now))
        }
    }

    /// One oracle cycle: account busy time, refresh or schedule, advance
    /// the clock. Returns whether a command issued plus a lower bound on
    /// the next cycle at which one could (meaningful only when idle).
    fn step_with_horizon(&mut self) -> (bool, u64) {
        if self.pending() > 0 {
            self.stats.busy_cycles += 1;
        }
        self.update_mode();
        let mut acted = false;
        let mut horizon = u64::MAX;
        if self.config.refresh_enabled {
            if self.cycle >= self.next_refresh_due_min {
                let (refresh_acted, refresh_horizon) = self.service_refresh();
                acted = refresh_acted;
                horizon = refresh_horizon;
            } else {
                horizon = self.next_refresh_due_min;
            }
        }
        if !acted {
            let (issued, schedule_horizon) = self.schedule();
            acted = issued;
            horizon = horizon.min(schedule_horizon);
        }
        self.cycle += 1;
        // An issued command changes timing state, invalidating any cached
        // horizon; an idle step proves nothing can happen before `horizon`.
        self.cached_horizon = if acted { None } else { Some(horizon) };
        (acted, horizon)
    }

    /// Jump the clock to `cycle`, crediting the skipped span to the same
    /// counters a tick-by-tick run would have touched (only `busy_cycles`
    /// changes during command-free cycles).
    fn skip_idle_to(&mut self, cycle: u64) {
        let span = cycle - self.cycle;
        if self.pending() > 0 {
            self.stats.busy_cycles += span;
        }
        self.idle_cycles_skipped += span;
        self.cycle = cycle;
    }

    /// The write-drain mode the next cycle will run under (pure version of
    /// [`MemoryController::update_mode`]).
    fn next_write_mode(&self) -> bool {
        if self.write_mode {
            !(self.write_queue.is_empty()
                || (self.write_queue.len() <= self.config.write_low_watermark
                    && !self.read_queue.is_empty()))
        } else {
            self.write_queue.len() >= self.config.write_high_watermark
                || (self.read_queue.is_empty() && !self.write_queue.is_empty())
        }
    }

    fn update_mode(&mut self) {
        self.write_mode = self.next_write_mode();
    }

    /// Service the refresh machinery. Returns whether a refresh-related
    /// command consumed this cycle, plus the earliest future cycle the
    /// machinery could act (deadline, precharge-ready, or refresh-ready).
    fn service_refresh(&mut self) -> (bool, u64) {
        let MemoryController {
            config,
            state,
            stats,
            cycle,
            next_refresh_due_min,
            ..
        } = self;
        let timing = &config.timing;
        let geom = config.geometry;
        let now = *cycle;
        let mut horizon = u64::MAX;
        for rank_idx in 0..geom.ranks_per_channel {
            let due = state.ranks[rank_idx].next_refresh_due;
            if now < due {
                horizon = horizon.min(due);
                continue;
            }
            // Close any open banks first, one precharge per cycle.
            if !state.ranks[rank_idx].all_banks_closed() {
                for bg in 0..geom.bank_groups {
                    for b in 0..geom.banks_per_group {
                        let rank = &state.ranks[rank_idx];
                        let idx = rank.bank_index(bg, b);
                        if rank.banks[idx].open_row.is_none() {
                            continue;
                        }
                        let earliest = rank.earliest_precharge(bg, b);
                        if earliest <= now {
                            let addr = DramAddr {
                                rank: rank_idx,
                                bank_group: bg,
                                bank: b,
                                ..DramAddr::default()
                            };
                            state.issue(timing, DramCommand::Precharge, &addr, now);
                            stats.precharges += 1;
                            return (true, u64::MAX);
                        }
                        horizon = horizon.min(earliest);
                    }
                }
                // Banks open but none precharge-able yet: stall this rank.
                continue;
            }
            let earliest = state.ranks[rank_idx].earliest_refresh();
            if earliest <= now {
                let addr = DramAddr {
                    rank: rank_idx,
                    ..DramAddr::default()
                };
                state.issue(timing, DramCommand::Refresh, &addr, now);
                stats.refreshes += 1;
                *next_refresh_due_min = state
                    .ranks
                    .iter()
                    .map(|r| r.next_refresh_due)
                    .min()
                    .unwrap_or(u64::MAX);
                return (true, u64::MAX);
            }
            horizon = horizon.min(earliest);
        }
        (false, horizon)
    }

    fn refresh_blocked(&self, rank: usize) -> bool {
        self.config.refresh_enabled && self.cycle >= self.state.ranks[rank].next_refresh_due
    }

    /// FR-FCFS / FCFS scheduling pass. Returns whether a command issued,
    /// plus (when nothing issued) the earliest cycle any queued request's
    /// next command could become issuable.
    fn schedule(&mut self) -> (bool, u64) {
        let now = self.cycle;
        let serve_writes = self.write_mode;
        let scan_limit = match self.config.scheduler {
            SchedulerKind::FrFcfs => usize::MAX,
            SchedulerKind::Fcfs => 1,
        };
        let queue = if serve_writes {
            &self.write_queue
        } else {
            &self.read_queue
        };

        let mut horizon = u64::MAX;
        let mut chosen: Option<(usize, DramCommand)> = None;

        // Pass 1: oldest row-hit request whose column command can issue now.
        for (i, q) in queue.iter().enumerate().take(scan_limit) {
            if self.refresh_blocked(q.dram.rank) {
                continue;
            }
            if let Some(earliest) = self.col_candidate(q) {
                if earliest <= now {
                    chosen = Some((i, col_cmd(q.request.kind, self.config.row_policy)));
                    break;
                }
                horizon = horizon.min(earliest);
            }
        }

        // Pass 2: oldest request whose next preparatory command can issue.
        if chosen.is_none() {
            for (i, q) in queue.iter().enumerate().take(scan_limit) {
                if self.refresh_blocked(q.dram.rank) {
                    continue;
                }
                if let Some((earliest, cmd)) = self.prep_candidate(q, queue) {
                    if earliest <= now {
                        chosen = Some((i, cmd));
                        break;
                    }
                    horizon = horizon.min(earliest);
                }
            }
        }

        let Some((index, cmd)) = chosen else {
            return (false, horizon);
        };
        self.execute(index, cmd, serve_writes);
        (true, u64::MAX)
    }

    /// Pass-1 candidate for one queued request: the earliest cycle its
    /// column command could issue, or `None` unless the bank has the
    /// request's row open. Shared by [`MemoryController::schedule`] and
    /// [`MemoryController::schedule_horizon`] so the issue decision and
    /// the lower bound cannot drift apart.
    fn col_candidate(&self, q: &QueuedRequest) -> Option<u64> {
        let rank = &self.state.ranks[q.dram.rank];
        let bank = &rank.banks[rank.bank_index(q.dram.bank_group, q.dram.bank)];
        if bank.open_row != Some(q.dram.row) {
            return None;
        }
        self.state.earliest_issue(
            &self.config.timing,
            col_cmd(q.request.kind, self.config.row_policy),
            &q.dram,
        )
    }

    /// Pass-2 candidate for one queued request: the earliest cycle its
    /// preparatory command (ACTIVATE on a closed bank, PRECHARGE on a
    /// conflicting row) could issue, or `None` when the row already
    /// matches (pass-1 territory) or must stay open. Shared by
    /// [`MemoryController::schedule`] and
    /// [`MemoryController::schedule_horizon`].
    fn prep_candidate(
        &self,
        q: &QueuedRequest,
        queue: &VecDeque<QueuedRequest>,
    ) -> Option<(u64, DramCommand)> {
        let rank = &self.state.ranks[q.dram.rank];
        let bank = &rank.banks[rank.bank_index(q.dram.bank_group, q.dram.bank)];
        match bank.open_row {
            None => {
                let earliest =
                    rank.earliest_activate(&self.config.timing, q.dram.bank_group, q.dram.bank);
                Some((earliest, DramCommand::Activate))
            }
            Some(row) if row != q.dram.row => {
                // Under FR-FCFS, do not close a row other queued requests
                // still hit — pass 1 will serve them first. Under FCFS only
                // the head may ever issue, so holding the row open for a
                // younger request would livelock the queue; precharge
                // regardless.
                let still_useful = self.config.scheduler == SchedulerKind::FrFcfs
                    && queue.iter().any(|other| {
                        other.dram.rank == q.dram.rank
                            && other.dram.bank_group == q.dram.bank_group
                            && other.dram.bank == q.dram.bank
                            && other.dram.row == row
                    });
                if still_useful {
                    None
                } else {
                    let earliest = rank.earliest_precharge(q.dram.bank_group, q.dram.bank);
                    Some((earliest, DramCommand::Precharge))
                }
            }
            Some(_) => None,
        }
    }

    /// Read-only horizon of the scheduling passes: the earliest cycle any
    /// queued request in the (next-cycle) active queue could issue its
    /// next command. Built on the same per-request candidates as
    /// [`MemoryController::schedule`].
    fn schedule_horizon(&self, now: u64) -> u64 {
        let serve_writes = self.next_write_mode();
        let scan_limit = match self.config.scheduler {
            SchedulerKind::FrFcfs => usize::MAX,
            SchedulerKind::Fcfs => 1,
        };
        let queue = if serve_writes {
            &self.write_queue
        } else {
            &self.read_queue
        };
        let mut horizon = u64::MAX;
        for q in queue.iter().take(scan_limit) {
            if self.refresh_blocked(q.dram.rank) {
                continue;
            }
            let candidate = self
                .col_candidate(q)
                .or_else(|| self.prep_candidate(q, queue).map(|(earliest, _)| earliest));
            if let Some(earliest) = candidate {
                horizon = horizon.min(earliest);
                if horizon <= now {
                    break;
                }
            }
        }
        horizon
    }

    fn execute(&mut self, index: usize, cmd: DramCommand, serve_writes: bool) {
        let MemoryController {
            config,
            state,
            stats,
            read_queue,
            write_queue,
            completions,
            cycle,
            last_burst_done,
            ..
        } = self;
        let timing = &config.timing;
        let now = *cycle;
        let queue = if serve_writes {
            write_queue
        } else {
            read_queue
        };
        match cmd {
            DramCommand::Activate => {
                let q = &mut queue[index];
                q.needed_activate = true;
                let dram = q.dram;
                state.issue(timing, cmd, &dram, now);
                stats.activates += 1;
            }
            DramCommand::Precharge => {
                let q = &mut queue[index];
                q.needed_precharge = true;
                let dram = q.dram;
                state.issue(timing, cmd, &dram, now);
                stats.precharges += 1;
            }
            DramCommand::Read | DramCommand::ReadAp | DramCommand::Write | DramCommand::WriteAp => {
                let q = queue
                    .remove(index)
                    .expect("scheduler chose an in-range queue index");
                state.issue(timing, cmd, &q.dram, now);
                if cmd.auto_precharges() {
                    stats.precharges += 1;
                }
                if q.needed_precharge {
                    stats.row_conflicts += 1;
                } else if q.needed_activate {
                    stats.row_misses += 1;
                } else {
                    stats.row_hits += 1;
                }
                let data_lat = if cmd.is_read() { timing.cl } else { timing.cwl };
                let finished_at = now + data_lat + timing.burst_cycles();
                *last_burst_done = (*last_burst_done).max(finished_at);
                stats.bus_busy_cycles += timing.burst_cycles();
                if cmd.is_read() {
                    stats.reads += 1;
                    stats.read_latency_sum += finished_at - q.enqueued_at;
                } else {
                    stats.writes += 1;
                }
                completions.push(Completion {
                    request: q.request,
                    enqueued_at: q.enqueued_at,
                    finished_at,
                });
            }
            DramCommand::PrechargeAll | DramCommand::Refresh => {
                unreachable!("refresh path handles rank-wide commands")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;
    use crate::MappingScheme;

    fn controller() -> MemoryController {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        MemoryController::new(cfg)
    }

    fn decode(cfg: &DramConfig, addr: u64) -> DramAddr {
        cfg.mapping.decode(addr, &cfg.geometry).unwrap()
    }

    fn run_until_idle(mc: &mut MemoryController) {
        let mut guard = 0;
        while mc.is_busy() {
            mc.tick();
            guard += 1;
            assert!(guard < 1_000_000, "controller wedged");
        }
    }

    #[test]
    fn single_read_latency_is_act_plus_cas() {
        let mut mc = controller();
        let cfg = mc.config().clone();
        let dram = decode(&cfg, 0);
        assert!(mc.enqueue(Request::read(0), dram));
        run_until_idle(&mut mc);
        let done = mc.drain_completions();
        assert_eq!(done.len(), 1);
        let t = &cfg.timing;
        // One idle-bank read: tick align + tRCD + CL + burst.
        let expect = t.trcd + t.cl + t.burst_cycles();
        assert!(
            done[0].latency() >= expect && done[0].latency() <= expect + 4,
            "latency {} expected about {}",
            done[0].latency(),
            expect
        );
    }

    #[test]
    fn row_hits_counted_for_same_row_stream() {
        let mut mc = controller();
        let cfg = mc.config().clone();
        // 16 sequential blocks in the same rank 0 row: decode stride of
        // ranks_per_channel * 64 keeps rank fixed under rank interleaving.
        let stride = cfg.geometry.ranks_per_channel as u64 * 64;
        for i in 0..16u64 {
            let addr = i * stride;
            let dram = decode(&cfg, addr);
            assert_eq!(dram.rank, 0);
            assert!(mc.enqueue(Request::read(addr), dram));
        }
        run_until_idle(&mut mc);
        let stats = mc.stats();
        assert_eq!(stats.reads, 16);
        assert!(stats.row_hits >= 3, "row hits {}", stats.row_hits);
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut mc = controller();
        let cfg = mc.config().clone();
        let depth = cfg.read_queue_depth;
        for i in 0..depth as u64 {
            let dram = decode(&cfg, i * 64);
            assert!(mc.enqueue(Request::read(i * 64), dram));
        }
        let dram = decode(&cfg, 1 << 20);
        assert!(!mc.enqueue(Request::read(1 << 20), dram));
    }

    #[test]
    fn writes_drain_when_reads_absent() {
        let mut mc = controller();
        let cfg = mc.config().clone();
        for i in 0..8u64 {
            let dram = decode(&cfg, i * 64);
            assert!(mc.enqueue(Request::write(i * 64), dram));
        }
        run_until_idle(&mut mc);
        assert_eq!(mc.stats().writes, 8);
    }

    #[test]
    fn mixed_read_write_all_complete() {
        let mut mc = controller();
        let cfg = mc.config().clone();
        for i in 0..32u64 {
            let addr = i * 64;
            let dram = decode(&cfg, addr);
            let req = if i % 2 == 0 {
                Request::read(addr)
            } else {
                Request::write(addr)
            };
            assert!(mc.enqueue(req, dram));
        }
        run_until_idle(&mut mc);
        let stats = mc.stats();
        assert_eq!(stats.reads, 16);
        assert_eq!(stats.writes, 16);
        assert_eq!(mc.drain_completions().len(), 32);
    }

    #[test]
    fn refresh_eventually_issues() {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = true;
        let mut mc = MemoryController::new(cfg.clone());
        // Run past the first refresh deadline with an empty queue.
        for _ in 0..(cfg.timing.trefi * 3) {
            mc.tick();
        }
        assert!(mc.stats().refreshes >= cfg.geometry.ranks_per_channel as u64);
    }

    #[test]
    fn fcfs_services_in_order() {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        cfg.scheduler = SchedulerKind::Fcfs;
        let mut mc = MemoryController::new(cfg.clone());
        for i in 0..8u64 {
            let addr = i << 16; // different rows
            let dram = decode(&cfg, addr);
            assert!(mc.enqueue(Request::read(addr).with_id(i), dram));
        }
        run_until_idle(&mut mc);
        let done = mc.drain_completions();
        let ids: Vec<u64> = done.iter().map(|c| c.request.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn closed_page_never_hits() {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        cfg.row_policy = RowPolicy::ClosedPage;
        let mut mc = MemoryController::new(cfg.clone());
        let stride = cfg.geometry.ranks_per_channel as u64 * 64;
        for i in 0..8u64 {
            let addr = i * stride;
            let dram = decode(&cfg, addr);
            assert!(mc.enqueue(Request::read(addr), dram));
        }
        run_until_idle(&mut mc);
        let stats = mc.stats();
        assert_eq!(stats.row_hits, 0);
        assert_eq!(stats.reads, 8);
    }

    #[test]
    fn advance_to_matches_tick_oracle() {
        for refresh in [false, true] {
            let mut cfg = DramConfig::ddr4_3200_channel();
            cfg.refresh_enabled = refresh;
            let mut oracle = MemoryController::new(cfg.clone());
            let mut fast = MemoryController::new(cfg.clone());
            for i in 0..48u64 {
                let addr = (i * 7919 * 64) % cfg.capacity_bytes();
                let dram = decode(&cfg, addr & !63);
                let req = if i % 3 == 0 {
                    Request::write(addr & !63)
                } else {
                    Request::read(addr & !63)
                };
                assert!(oracle.enqueue(req, dram));
                assert!(fast.enqueue(req, dram));
            }
            let target = 3 * cfg.timing.trefi;
            for _ in 0..target {
                oracle.tick();
            }
            fast.advance_to(target);
            assert_eq!(oracle.stats(), fast.stats());
            assert_eq!(oracle.drain_completions(), fast.drain_completions());
            assert_eq!(oracle.cycle(), fast.cycle());
            assert!(
                fast.idle_cycles_skipped() > 0,
                "event path should have skipped idle cycles"
            );
        }
    }

    #[test]
    fn next_event_cycle_is_a_valid_lower_bound() {
        // From an idle controller with refresh enabled, the next event is
        // the first refresh deadline; with refresh disabled there is none.
        let cfg = DramConfig::ddr4_3200_channel();
        let mc = MemoryController::new(cfg.clone());
        let due = mc.next_event_cycle().expect("refresh is pending");
        assert!(due >= cfg.timing.trefi, "staggering starts at tREFI");
        let mut cfg2 = cfg;
        cfg2.refresh_enabled = false;
        let mc2 = MemoryController::new(cfg2.clone());
        assert_eq!(mc2.next_event_cycle(), None);
        // With a queued request, an event exists and is actionable soon.
        let mut mc3 = MemoryController::new(cfg2.clone());
        let dram = decode(&cfg2, 0);
        assert!(mc3.enqueue(Request::read(0), dram));
        let e = mc3.next_event_cycle().expect("queued work");
        assert_eq!(e, 0, "fresh bank accepts an activate immediately");
    }

    #[test]
    fn fcfs_row_conflict_with_younger_hit_does_not_livelock() {
        // Head of queue needs row B while the open row A is still "useful"
        // to a younger entry. Under FCFS only the head can issue, so the
        // old keep-row-open heuristic livelocked this pattern (forever with
        // refresh off; until the next tREFI with refresh on).
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        cfg.scheduler = SchedulerKind::Fcfs;
        let mut mc = MemoryController::new(cfg.clone());
        let row_stride = 1u64 << 19; // crosses the row-bit boundary
        assert!(mc.enqueue(Request::read(0), decode(&cfg, 0)));
        let mut guard = 0;
        while mc.is_busy() {
            mc.tick();
            guard += 1;
            assert!(guard < 100_000);
        }
        // Row of address 0 is now open; head wants another row while a
        // younger entry still hits the open one.
        assert!(mc.enqueue(Request::read(row_stride), decode(&cfg, row_stride)));
        assert!(mc.enqueue(Request::read(64), decode(&cfg, 64)));
        while mc.is_busy() {
            mc.tick();
            guard += 1;
            assert!(guard < 100_000, "FCFS livelocked on a held-open row");
        }
        assert_eq!(mc.stats().reads, 3);
    }

    #[test]
    fn run_until_idle_matches_ticked_drain() {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = true;
        let mut oracle = MemoryController::new(cfg.clone());
        let mut fast = MemoryController::new(cfg.clone());
        for i in 0..32u64 {
            let addr = i * 4096;
            let dram = decode(&cfg, addr);
            assert!(oracle.enqueue(Request::read(addr), dram));
            assert!(fast.enqueue(Request::read(addr), dram));
        }
        let mut guard = 0;
        while oracle.is_busy() {
            oracle.tick();
            guard += 1;
            assert!(guard < 1_000_000);
        }
        fast.run_until_idle();
        assert_eq!(oracle.cycle(), fast.cycle());
        assert_eq!(oracle.stats(), fast.stats());
        assert_eq!(oracle.drain_completions(), fast.drain_completions());
    }

    #[test]
    fn mapping_ablation_uses_vector_per_rank() {
        // Sanity that alternative mappings route through the controller too.
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        cfg.mapping = MappingScheme::vector_per_rank(&cfg.geometry);
        let mut mc = MemoryController::new(cfg.clone());
        for i in 0..8u64 {
            let addr = i * 64;
            let dram = decode(&cfg, addr);
            assert_eq!(dram.rank, 0, "low addresses stay in rank 0");
            assert!(mc.enqueue(Request::read(addr), dram));
        }
        run_until_idle(&mut mc);
        assert_eq!(mc.stats().reads, 8);
    }
}

#[cfg(test)]
mod drain_tests {
    use super::*;
    use crate::config::DramConfig;

    fn decode(cfg: &DramConfig, addr: u64) -> DramAddr {
        cfg.mapping.decode(addr, &cfg.geometry).unwrap()
    }

    #[test]
    fn write_watermark_switches_modes() {
        // Fill the write queue past the high watermark while reads are
        // present; the controller must drain writes in a burst and then
        // return to reads.
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        let mut mc = MemoryController::new(cfg.clone());
        for i in 0..cfg.write_high_watermark as u64 + 4 {
            let addr = i * 64;
            assert!(mc.enqueue(Request::write(addr), decode(&cfg, addr)));
        }
        for i in 0..8u64 {
            let addr = (1 << 22) + i * 64;
            assert!(mc.enqueue(Request::read(addr), decode(&cfg, addr)));
        }
        let mut guard = 0;
        while mc.is_busy() {
            mc.tick();
            guard += 1;
            assert!(guard < 1_000_000, "controller wedged");
        }
        let stats = mc.stats();
        assert_eq!(stats.writes, cfg.write_high_watermark as u64 + 4);
        assert_eq!(stats.reads, 8);
    }

    #[test]
    fn refresh_under_load_still_serves_all_requests() {
        let cfg = DramConfig::ddr4_3200_channel(); // refresh enabled
        let mut mc = MemoryController::new(cfg.clone());
        let mut issued = 0u64;
        let mut offered = 0u64;
        // Run well past several tREFI windows while continuously offering
        // work.
        for cycle in 0..(cfg.timing.trefi * 6) {
            if cycle % 8 == 0 {
                let addr = (offered * 64) % (1 << 24);
                if mc.enqueue(Request::read(addr), decode(&cfg, addr)) {
                    issued += 1;
                }
                offered += 1;
            }
            mc.tick();
        }
        while mc.is_busy() {
            mc.tick();
        }
        let stats = mc.stats();
        assert_eq!(stats.reads, issued);
        assert!(
            stats.refreshes >= 4 * cfg.geometry.ranks_per_channel as u64,
            "only {} refreshes over six tREFI",
            stats.refreshes
        );
    }

    #[test]
    fn per_bank_activates_are_counted() {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        let mut mc = MemoryController::new(cfg.clone());
        // Two different rows of the same bank force a conflict precharge.
        let row_stride = 1u64 << 19; // beyond the row-bit boundary
        for addr in [0u64, row_stride] {
            assert!(mc.enqueue(Request::read(addr), decode(&cfg, addr)));
        }
        let mut guard = 0;
        while mc.is_busy() {
            mc.tick();
            guard += 1;
            assert!(guard < 100_000);
        }
        let stats = mc.stats();
        assert!(stats.activates >= 2);
        assert_eq!(stats.reads, 2);
    }
}
