//! Trace replay.
//!
//! The paper's methodology feeds memory traces generated from the DL
//! framework's tensor operations into a cycle-accurate DRAM simulator
//! (Section 5). [`Trace`] is that interchange format and [`TraceRunner`]
//! the replay engine: requests are offered in order with back-pressure
//! (a full queue stalls the producer, not drops the request), which is how
//! a streaming NMP core would drive its local controller.

use crate::request::{Completion, Request, RequestKind};
use crate::stats::MemoryStats;
use crate::system::MemorySystem;
use crate::DramError;

/// One trace record: a request plus the earliest cycle it may be offered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Earliest issue cycle (0 for pure throughput replay).
    pub not_before: u64,
    /// The memory request.
    pub request: Request,
}

impl TraceEntry {
    /// An entry with no arrival constraint.
    pub fn now(request: Request) -> Self {
        TraceEntry {
            not_before: 0,
            request,
        }
    }
}

/// An ordered memory-request trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append a read of the 64-byte block at `addr`.
    pub fn read(&mut self, addr: u64) -> &mut Self {
        self.entries.push(TraceEntry::now(Request::read(addr)));
        self
    }

    /// Append a write of the 64-byte block at `addr`.
    pub fn write(&mut self, addr: u64) -> &mut Self {
        self.entries.push(TraceEntry::now(Request::write(addr)));
        self
    }

    /// Append a read covering `bytes` starting at `addr` (one request per
    /// 64-byte block).
    pub fn read_range(&mut self, addr: u64, bytes: u64) -> &mut Self {
        for block in 0..bytes.div_ceil(crate::ACCESS_BYTES) {
            self.read(addr + block * crate::ACCESS_BYTES);
        }
        self
    }

    /// Append a write covering `bytes` starting at `addr`.
    pub fn write_range(&mut self, addr: u64, bytes: u64) -> &mut Self {
        for block in 0..bytes.div_ceil(crate::ACCESS_BYTES) {
            self.write(addr + block * crate::ACCESS_BYTES);
        }
        self
    }

    /// Append a raw entry.
    pub fn push(&mut self, entry: TraceEntry) -> &mut Self {
        self.entries.push(entry);
        self
    }

    /// The recorded entries, in order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes moved by the trace.
    pub fn bytes(&self) -> u64 {
        self.entries.len() as u64 * crate::ACCESS_BYTES
    }

    /// Count of read entries.
    pub fn reads(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.request.kind == RequestKind::Read)
            .count()
    }

    /// Count of write entries.
    pub fn writes(&self) -> usize {
        self.len() - self.reads()
    }
}

impl Extend<TraceEntry> for Trace {
    fn extend<I: IntoIterator<Item = TraceEntry>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

impl FromIterator<TraceEntry> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEntry>>(iter: I) -> Self {
        Trace {
            entries: iter.into_iter().collect(),
        }
    }
}

/// Replays a [`Trace`] through a [`MemorySystem`] and reports statistics.
#[derive(Debug)]
pub struct TraceRunner {
    memory: MemorySystem,
}

impl TraceRunner {
    /// Build a runner over a validated memory system.
    pub fn new(memory: MemorySystem) -> Self {
        TraceRunner { memory }
    }

    /// Replay `trace` to completion and return the aggregate statistics.
    ///
    /// Uses the event-driven engine ([`MemorySystem::advance_to`] /
    /// [`MemorySystem::push_blocking`]): arrival gaps and back-pressure
    /// stalls are jumped rather than ticked, producing bit-identical
    /// statistics and completions to [`TraceRunner::run_ticked`] in far
    /// less wall-clock time on sparse traces.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] if any entry's address does
    /// not fit the configured capacity; entries before the failure will
    /// already have been simulated.
    pub fn run(&mut self, trace: &Trace) -> Result<MemoryStats, DramError> {
        for entry in trace.entries() {
            if self.memory.cycle() < entry.not_before {
                self.memory.advance_to(entry.not_before);
            }
            self.memory.push_blocking(entry.request)?;
        }
        self.memory.run_to_completion();
        Ok(self.memory.stats())
    }

    /// Replay `trace` and drain all completions into `out` (reusing its
    /// allocation), returning the aggregate statistics.
    ///
    /// # Errors
    ///
    /// Same as [`TraceRunner::run`].
    pub fn run_with_completions(
        &mut self,
        trace: &Trace,
        out: &mut Vec<Completion>,
    ) -> Result<MemoryStats, DramError> {
        let stats = self.run(trace)?;
        self.memory.drain_completions_into(out);
        Ok(stats)
    }

    /// Tick-stepping oracle equivalent of [`TraceRunner::run`]: advances
    /// strictly one cycle at a time. Kept for the equivalence tests and
    /// the `perf_dram_engine` harness; produces bit-identical results.
    ///
    /// # Errors
    ///
    /// Same as [`TraceRunner::run`].
    pub fn run_ticked(&mut self, trace: &Trace) -> Result<MemoryStats, DramError> {
        for entry in trace.entries() {
            while self.memory.cycle() < entry.not_before {
                self.memory.tick();
            }
            loop {
                match self.memory.push(entry.request)? {
                    true => break,
                    false => self.memory.tick(),
                }
            }
        }
        self.memory.run_to_completion_ticked();
        Ok(self.memory.stats())
    }

    /// Access the underlying memory system (e.g. for completions).
    pub fn memory_mut(&mut self) -> &mut MemorySystem {
        &mut self.memory
    }

    /// Consume the runner, returning the memory system.
    pub fn into_memory(self) -> MemorySystem {
        self.memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    #[test]
    fn trace_builders() {
        let mut t = Trace::new();
        t.read(0)
            .write(64)
            .read_range(128, 256)
            .write_range(1024, 100);
        assert_eq!(t.reads(), 1 + 4);
        assert_eq!(t.writes(), 1 + 2);
        assert_eq!(t.bytes(), 8 * 64);
        assert!(!t.is_empty());
    }

    #[test]
    fn from_iterator() {
        let t: Trace = (0..4u64)
            .map(|i| TraceEntry::now(Request::read(i * 64)))
            .collect();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn replay_counts_match() {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        let mut t = Trace::new();
        t.read_range(0, 64 * 128);
        t.write_range(1 << 20, 64 * 128);
        let mut runner = TraceRunner::new(MemorySystem::new(cfg).unwrap());
        let stats = runner.run(&t).unwrap();
        assert_eq!(stats.totals.reads, 128);
        assert_eq!(stats.totals.writes, 128);
        assert!(stats.achieved_gbps() > 0.0);
    }

    #[test]
    fn run_with_completions_reuses_buffer() {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        let mut t = Trace::new();
        t.read_range(0, 64 * 32);
        let mut buf = Vec::new();
        let mut runner = TraceRunner::new(MemorySystem::new(cfg.clone()).unwrap());
        runner.run_with_completions(&t, &mut buf).unwrap();
        assert_eq!(buf.len(), 32);
        let cap = buf.capacity();
        // Second replay into the cleared buffer must not need to regrow.
        buf.clear();
        let mut runner = TraceRunner::new(MemorySystem::new(cfg).unwrap());
        runner.run_with_completions(&t, &mut buf).unwrap();
        assert_eq!(buf.len(), 32);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn not_before_delays_issue() {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        let mut t = Trace::new();
        t.push(TraceEntry {
            not_before: 10_000,
            request: Request::read(0),
        });
        let mut runner = TraceRunner::new(MemorySystem::new(cfg).unwrap());
        let stats = runner.run(&t).unwrap();
        assert!(stats.totals.cycles >= 10_000);
    }

    #[test]
    fn replay_out_of_range_fails() {
        let cfg = DramConfig::ddr4_3200_channel();
        let cap = cfg.capacity_bytes();
        let mut t = Trace::new();
        t.read(cap + 64);
        let mut runner = TraceRunner::new(MemorySystem::new(cfg).unwrap());
        assert!(runner.run(&t).is_err());
    }
}
