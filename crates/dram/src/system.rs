//! Multi-channel memory system front end.

use crate::config::DramConfig;
use crate::controller::MemoryController;
use crate::request::{Completion, Request};
use crate::stats::{ChannelStats, MemoryStats};
use crate::DramError;

/// A complete memory system: one controller per channel behind a shared
/// address-mapping front end.
///
/// This models either the baseline CPU memory (8 channels, channel
/// interleaving) or the DRAM local to a single TensorDIMM (1 channel, rank
/// interleaving), depending on the [`DramConfig`].
///
/// # Example
///
/// ```
/// use tensordimm_dram::{DramConfig, MemorySystem, Request};
///
/// let mut mem = MemorySystem::new(DramConfig::cpu_memory(2))?;
/// mem.push_when_ready(Request::read(0));
/// mem.push_when_ready(Request::write(4096));
/// mem.run_to_completion();
/// assert_eq!(mem.stats().totals.reads, 1);
/// assert_eq!(mem.stats().totals.writes, 1);
/// # Ok::<(), tensordimm_dram::DramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: DramConfig,
    controllers: Vec<MemoryController>,
    cycle: u64,
    /// Scoped threads to advance channels on (1 = the sequential oracle).
    workers: usize,
}

/// Below this jump width a parallel [`MemorySystem::advance_to`] is not
/// worth the scoped-thread spawn (~tens of µs): fine-grained event-to-event
/// hops stay sequential even when workers are configured, so the hot
/// co-simulation loops never pay threading overhead.
const PAR_ADVANCE_MIN_CYCLES: u64 = 8192;

impl MemorySystem {
    /// Build and validate a memory system.
    ///
    /// # Errors
    ///
    /// Returns any configuration inconsistency found by
    /// [`DramConfig::validate`].
    pub fn new(config: DramConfig) -> Result<Self, DramError> {
        config.validate()?;
        let mut per_channel = config.clone();
        per_channel.geometry.channels = 1;
        let controllers = (0..config.geometry.channels)
            .map(|_| MemoryController::new(per_channel.clone()))
            .collect();
        Ok(MemorySystem {
            config,
            controllers,
            cycle: 0,
            workers: 1,
        })
    }

    /// The validated configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Set how many scoped worker threads the bulk advance paths
    /// ([`MemorySystem::advance_to`] over wide jumps,
    /// [`MemorySystem::run_to_completion`]) may fan the channels across.
    /// Channels share no timing state, so the result is bit-identical to
    /// the sequential path at any worker count — `1` (the default) *is*
    /// that sequential oracle, the same way [`MemorySystem::tick`] is the
    /// oracle for the event-driven engine. Clamped to >= 1.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Builder form of [`MemorySystem::set_workers`].
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.set_workers(workers);
        self
    }

    /// Worker threads configured for the bulk advance paths.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Worker count applicable to a cross-channel fan-out right now.
    fn channel_workers(&self) -> usize {
        self.workers.min(self.controllers.len())
    }

    /// Advance every controller to exactly `target` (`self.cycle` is left
    /// to the caller), fanning across the worker pool when it is both
    /// enabled and worth the spawn cost for the jump width.
    fn advance_controllers_to(&mut self, target: u64) {
        let span = target.saturating_sub(self.cycle);
        let workers = if span >= PAR_ADVANCE_MIN_CYCLES {
            self.channel_workers()
        } else {
            1
        };
        tensordimm_exec::par_for_each_mut(&mut self.controllers, workers, |_, c| {
            c.advance_to(target);
        });
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Try to enqueue a request; `Ok(false)` means the target channel's
    /// queue is full (retry after ticking).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] for addresses beyond the
    /// configured capacity.
    pub fn push(&mut self, request: Request) -> Result<bool, DramError> {
        let dram = self
            .config
            .mapping
            .decode(request.addr, &self.config.geometry)?;
        Ok(self.controllers[dram.channel].enqueue(request, dram))
    }

    /// Enqueue a request, advancing the system until queue space is
    /// available (jumping idle spans rather than ticking one cycle per
    /// retry).
    ///
    /// Models an infinitely patient producer; useful for throughput replay
    /// where request issue should back-pressure rather than drop.
    ///
    /// # Panics
    ///
    /// Panics if the request address is outside the configured capacity
    /// (use [`MemorySystem::push`] or [`MemorySystem::push_blocking`] for
    /// fallible submission).
    pub fn push_when_ready(&mut self, request: Request) {
        self.push_blocking(request)
            .unwrap_or_else(|e| panic!("push_when_ready: {e}"));
    }

    /// Fallible version of [`MemorySystem::push_when_ready`]: block (in
    /// simulated time) until the target channel accepts the request,
    /// jumping straight to the channel's next scheduling event on each
    /// retry instead of ticking cycle by cycle.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] for addresses beyond the
    /// configured capacity.
    pub fn push_blocking(&mut self, request: Request) -> Result<(), DramError> {
        let dram = self
            .config
            .mapping
            .decode(request.addr, &self.config.geometry)?;
        loop {
            if self.controllers[dram.channel].enqueue(request, dram) {
                return Ok(());
            }
            // Queue full: a slot can only free when the target channel
            // issues a column command. Run that channel just past its next
            // action, then bring every other channel up to the same cycle
            // (channels share no timing state, so catching up out of
            // lockstep is bit-equivalent).
            let target = self.controllers[dram.channel]
                .advance_past_next_action()
                .max(self.cycle + 1);
            self.advance_controllers_to(target);
            self.cycle = target;
        }
    }

    /// Advance every channel by one cycle.
    pub fn tick(&mut self) {
        for c in &mut self.controllers {
            c.tick();
        }
        self.cycle += 1;
    }

    /// Advance every channel to exactly `target` (no-op when `target` is
    /// not in the future), skipping idle spans. Bit-equivalent to calling
    /// [`MemorySystem::tick`] `target - cycle` times: channels share no
    /// timing state, so each can jump between its own events
    /// independently while staying on the common clock.
    ///
    /// With [`MemorySystem::set_workers`] > 1, jumps of at least
    /// `PAR_ADVANCE_MIN_CYCLES` (8192) fan the channels across scoped threads;
    /// narrow event-to-event hops stay sequential (the spawn would cost
    /// more than it saves), so results are bit-identical either way.
    pub fn advance_to(&mut self, target: u64) {
        if target <= self.cycle {
            return;
        }
        self.advance_controllers_to(target);
        self.cycle = target;
    }

    /// The earliest cycle at or after the current one at which any channel
    /// could act (see [`MemoryController::next_event_cycle`]); `None` when
    /// every channel is fully idle with refresh disabled.
    pub fn next_event_cycle(&self) -> Option<u64> {
        self.controllers
            .iter()
            .filter_map(|c| c.next_event_cycle())
            .min()
    }

    /// Whether any channel still has queued or in-flight work.
    pub fn is_busy(&self) -> bool {
        self.controllers.iter().any(|c| c.is_busy())
    }

    /// Run until all queues drain and all in-flight bursts finish, jumping
    /// between event cycles.
    ///
    /// Bit-equivalent to [`MemorySystem::run_to_completion_ticked`]: each
    /// channel runs to its own idle point independently (channels share no
    /// timing state), then all are advanced to the common stop cycle so
    /// per-channel refresh activity during the tail matches the lockstep
    /// oracle.
    pub fn run_to_completion(&mut self) {
        // Each channel drains to its own idle point independently — the
        // coarse-grained chunk the worker pool parallelizes (one fan-out
        // per call, not per event).
        let workers = self.channel_workers();
        tensordimm_exec::par_for_each_mut(&mut self.controllers, workers, |_, c| {
            c.run_until_idle();
        });
        let stop = self
            .controllers
            .iter()
            .map(MemoryController::cycle)
            .fold(self.cycle, u64::max);
        // Bring every channel to the common stop cycle so per-channel
        // refresh activity during the tail matches the lockstep oracle.
        tensordimm_exec::par_for_each_mut(&mut self.controllers, workers, |_, c| {
            c.advance_to(stop);
        });
        self.cycle = stop;
    }

    /// Tick-stepping oracle equivalent of
    /// [`MemorySystem::run_to_completion`]; used by the equivalence tests
    /// and the `perf_dram_engine` harness.
    pub fn run_to_completion_ticked(&mut self) {
        while self.is_busy() {
            self.tick();
        }
    }

    /// Run for exactly `cycles` more cycles.
    pub fn run_for(&mut self, cycles: u64) {
        self.advance_to(self.cycle + cycles);
    }

    /// Idle cycles the event-driven paths jumped over, summed across
    /// channels (diagnostic; zero for a purely tick-driven run).
    pub fn idle_cycles_skipped(&self) -> u64 {
        self.controllers
            .iter()
            .map(|c| c.idle_cycles_skipped())
            .sum()
    }

    /// Collect completions from every channel (in channel order).
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        let mut all = Vec::new();
        self.drain_completions_into(&mut all);
        all
    }

    /// Move completions from every channel (in channel order) into `out`,
    /// reusing its allocation across drains.
    pub fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        for c in &mut self.controllers {
            c.drain_completions_into(out);
        }
    }

    /// Aggregated statistics across channels.
    pub fn stats(&self) -> MemoryStats {
        let mut totals = ChannelStats::default();
        for c in &self.controllers {
            totals.merge(&c.stats());
        }
        totals.cycles = self.cycle;
        MemoryStats {
            totals,
            channels: self.controllers.len(),
            timing: self.config.timing.clone(),
            bus_bytes: self.config.geometry.bus_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::MappingScheme;

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.geometry.rows = 100;
        assert!(MemorySystem::new(cfg).is_err());
    }

    #[test]
    fn sequential_read_stream_nears_peak_bandwidth() {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        let mut mem = MemorySystem::new(cfg).unwrap();
        for i in 0..8192u64 {
            mem.push_when_ready(Request::read(i * 64));
        }
        mem.run_to_completion();
        let stats = mem.stats();
        assert_eq!(stats.totals.reads, 8192);
        assert!(
            stats.utilization() > 0.85,
            "sequential stream should near peak, got {:.3}",
            stats.utilization()
        );
    }

    #[test]
    fn channels_split_traffic() {
        let mut cfg = DramConfig::cpu_memory(4);
        cfg.refresh_enabled = false;
        let mut mem = MemorySystem::new(cfg).unwrap();
        for i in 0..1024u64 {
            mem.push_when_ready(Request::read(i * 64));
        }
        mem.run_to_completion();
        let stats = mem.stats();
        assert_eq!(stats.totals.reads, 1024);
        assert_eq!(stats.channels, 4);
        // Four channels must beat a single channel's peak on this stream.
        assert!(
            stats.achieved_gbps() > 25.6,
            "got {}",
            stats.achieved_gbps()
        );
    }

    #[test]
    fn out_of_range_push_errors() {
        let cfg = DramConfig::ddr4_3200_channel();
        let cap = cfg.capacity_bytes();
        let mut mem = MemorySystem::new(cfg).unwrap();
        assert!(matches!(
            mem.push(Request::read(cap)),
            Err(DramError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn completions_match_requests() {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        let mut mem = MemorySystem::new(cfg).unwrap();
        for i in 0..64u64 {
            mem.push_when_ready(Request::read(i * 4096).with_id(i));
        }
        mem.run_to_completion();
        let mut ids: Vec<u64> = mem
            .drain_completions()
            .iter()
            .map(|c| c.request.id)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..64).collect::<Vec<_>>());
    }

    /// Multi-worker channel advance must be bit-identical to the
    /// single-threaded oracle, on both the bulk-advance and the
    /// run-to-completion paths.
    #[test]
    fn parallel_channel_advance_matches_sequential() {
        let mut cfg = DramConfig::cpu_memory(4);
        cfg.refresh_enabled = true;
        let push_all = |mem: &mut MemorySystem| {
            for i in 0..512u64 {
                mem.push_when_ready(Request::read(i * 64).with_id(i));
            }
        };
        let mut oracle = MemorySystem::new(cfg.clone()).unwrap();
        push_all(&mut oracle);
        oracle.run_to_completion();
        // A wide post-drain advance exercises the parallel advance_to arm.
        let far = oracle.cycle() + 1_000_000;
        oracle.advance_to(far);
        let oracle_completions = oracle.drain_completions();

        for workers in [2usize, 4, 16] {
            let mut par = MemorySystem::new(cfg.clone())
                .unwrap()
                .with_workers(workers);
            assert_eq!(par.workers(), workers);
            push_all(&mut par);
            par.run_to_completion();
            par.advance_to(far);
            assert_eq!(par.cycle(), oracle.cycle(), "workers={workers}");
            assert_eq!(par.stats(), oracle.stats(), "workers={workers}");
            assert_eq!(
                par.drain_completions(),
                oracle_completions,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn workers_clamp_to_one() {
        let mut mem = MemorySystem::new(DramConfig::ddr4_3200_channel()).unwrap();
        mem.set_workers(0);
        assert_eq!(mem.workers(), 1);
    }

    #[test]
    fn random_reads_lose_to_sequential() {
        // A coarse check that the timing model penalizes row misses. With a
        // single rank, random 64-byte reads are tFAW-bound (one activate per
        // burst), whereas a sequential stream rides open rows; with more
        // ranks the activate headroom would hide the misses — which is
        // exactly the bank-parallelism effect TensorDIMM exploits.
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        cfg.geometry.ranks_per_channel = 1;
        cfg.mapping = MappingScheme::vector_per_rank(&cfg.geometry);
        let mut seq = MemorySystem::new(cfg.clone()).unwrap();
        for i in 0..2048u64 {
            seq.push_when_ready(Request::read(i * 64));
        }
        seq.run_to_completion();

        let mut rng_state = 0x12345678u64;
        let mut rnd = MemorySystem::new(cfg.clone()).unwrap();
        let cap = cfg.capacity_bytes();
        for _ in 0..2048u64 {
            // xorshift for a dependency-free pseudo-random stream
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rnd.push_when_ready(Request::read((rng_state % cap) & !63));
        }
        rnd.run_to_completion();

        assert!(
            seq.stats().achieved_gbps() > rnd.stats().achieved_gbps(),
            "sequential {} vs random {}",
            seq.stats().achieved_gbps(),
            rnd.stats().achieved_gbps()
        );
    }
}
