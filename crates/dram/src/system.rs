//! Multi-channel memory system front end.

use crate::config::DramConfig;
use crate::controller::MemoryController;
use crate::request::{Completion, Request};
use crate::stats::{ChannelStats, MemoryStats};
use crate::DramError;

/// A complete memory system: one controller per channel behind a shared
/// address-mapping front end.
///
/// This models either the baseline CPU memory (8 channels, channel
/// interleaving) or the DRAM local to a single TensorDIMM (1 channel, rank
/// interleaving), depending on the [`DramConfig`].
///
/// # Example
///
/// ```
/// use tensordimm_dram::{DramConfig, MemorySystem, Request};
///
/// let mut mem = MemorySystem::new(DramConfig::cpu_memory(2))?;
/// mem.push_when_ready(Request::read(0));
/// mem.push_when_ready(Request::write(4096));
/// mem.run_to_completion();
/// assert_eq!(mem.stats().totals.reads, 1);
/// assert_eq!(mem.stats().totals.writes, 1);
/// # Ok::<(), tensordimm_dram::DramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: DramConfig,
    controllers: Vec<MemoryController>,
    cycle: u64,
}

impl MemorySystem {
    /// Build and validate a memory system.
    ///
    /// # Errors
    ///
    /// Returns any configuration inconsistency found by
    /// [`DramConfig::validate`].
    pub fn new(config: DramConfig) -> Result<Self, DramError> {
        config.validate()?;
        let mut per_channel = config.clone();
        per_channel.geometry.channels = 1;
        let controllers = (0..config.geometry.channels)
            .map(|_| MemoryController::new(per_channel.clone()))
            .collect();
        Ok(MemorySystem {
            config,
            controllers,
            cycle: 0,
        })
    }

    /// The validated configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Try to enqueue a request; `Ok(false)` means the target channel's
    /// queue is full (retry after ticking).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] for addresses beyond the
    /// configured capacity.
    pub fn push(&mut self, request: Request) -> Result<bool, DramError> {
        let dram = self
            .config
            .mapping
            .decode(request.addr, &self.config.geometry)?;
        Ok(self.controllers[dram.channel].enqueue(request, dram))
    }

    /// Enqueue a request, ticking the system until queue space is available.
    ///
    /// Models an infinitely patient producer; useful for throughput replay
    /// where request issue should back-pressure rather than drop.
    ///
    /// # Panics
    ///
    /// Panics if the request address is outside the configured capacity
    /// (use [`MemorySystem::push`] for fallible submission).
    pub fn push_when_ready(&mut self, request: Request) {
        loop {
            match self.push(request) {
                Ok(true) => return,
                Ok(false) => self.tick(),
                Err(e) => panic!("push_when_ready: {e}"),
            }
        }
    }

    /// Advance every channel by one cycle.
    pub fn tick(&mut self) {
        for c in &mut self.controllers {
            c.tick();
        }
        self.cycle += 1;
    }

    /// Whether any channel still has queued or in-flight work.
    pub fn is_busy(&self) -> bool {
        self.controllers.iter().any(|c| c.is_busy())
    }

    /// Run until all queues drain and all in-flight bursts finish.
    pub fn run_to_completion(&mut self) {
        while self.is_busy() {
            self.tick();
        }
    }

    /// Run for exactly `cycles` more cycles.
    pub fn run_for(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.tick();
        }
    }

    /// Collect completions from every channel (in channel order).
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        let mut all = Vec::new();
        for c in &mut self.controllers {
            all.append(&mut c.drain_completions());
        }
        all
    }

    /// Aggregated statistics across channels.
    pub fn stats(&self) -> MemoryStats {
        let mut totals = ChannelStats::default();
        for c in &self.controllers {
            totals.merge(&c.stats());
        }
        totals.cycles = self.cycle;
        MemoryStats {
            totals,
            channels: self.controllers.len(),
            timing: self.config.timing.clone(),
            bus_bytes: self.config.geometry.bus_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::MappingScheme;

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.geometry.rows = 100;
        assert!(MemorySystem::new(cfg).is_err());
    }

    #[test]
    fn sequential_read_stream_nears_peak_bandwidth() {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        let mut mem = MemorySystem::new(cfg).unwrap();
        for i in 0..8192u64 {
            mem.push_when_ready(Request::read(i * 64));
        }
        mem.run_to_completion();
        let stats = mem.stats();
        assert_eq!(stats.totals.reads, 8192);
        assert!(
            stats.utilization() > 0.85,
            "sequential stream should near peak, got {:.3}",
            stats.utilization()
        );
    }

    #[test]
    fn channels_split_traffic() {
        let mut cfg = DramConfig::cpu_memory(4);
        cfg.refresh_enabled = false;
        let mut mem = MemorySystem::new(cfg).unwrap();
        for i in 0..1024u64 {
            mem.push_when_ready(Request::read(i * 64));
        }
        mem.run_to_completion();
        let stats = mem.stats();
        assert_eq!(stats.totals.reads, 1024);
        assert_eq!(stats.channels, 4);
        // Four channels must beat a single channel's peak on this stream.
        assert!(
            stats.achieved_gbps() > 25.6,
            "got {}",
            stats.achieved_gbps()
        );
    }

    #[test]
    fn out_of_range_push_errors() {
        let cfg = DramConfig::ddr4_3200_channel();
        let cap = cfg.capacity_bytes();
        let mut mem = MemorySystem::new(cfg).unwrap();
        assert!(matches!(
            mem.push(Request::read(cap)),
            Err(DramError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn completions_match_requests() {
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        let mut mem = MemorySystem::new(cfg).unwrap();
        for i in 0..64u64 {
            mem.push_when_ready(Request::read(i * 4096).with_id(i));
        }
        mem.run_to_completion();
        let mut ids: Vec<u64> = mem
            .drain_completions()
            .iter()
            .map(|c| c.request.id)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn random_reads_lose_to_sequential() {
        // A coarse check that the timing model penalizes row misses. With a
        // single rank, random 64-byte reads are tFAW-bound (one activate per
        // burst), whereas a sequential stream rides open rows; with more
        // ranks the activate headroom would hide the misses — which is
        // exactly the bank-parallelism effect TensorDIMM exploits.
        let mut cfg = DramConfig::ddr4_3200_channel();
        cfg.refresh_enabled = false;
        cfg.geometry.ranks_per_channel = 1;
        cfg.mapping = MappingScheme::vector_per_rank(&cfg.geometry);
        let mut seq = MemorySystem::new(cfg.clone()).unwrap();
        for i in 0..2048u64 {
            seq.push_when_ready(Request::read(i * 64));
        }
        seq.run_to_completion();

        let mut rng_state = 0x12345678u64;
        let mut rnd = MemorySystem::new(cfg.clone()).unwrap();
        let cap = cfg.capacity_bytes();
        for _ in 0..2048u64 {
            // xorshift for a dependency-free pseudo-random stream
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rnd.push_when_ready(Request::read((rng_state % cap) & !63));
        }
        rnd.run_to_completion();

        assert!(
            seq.stats().achieved_gbps() > rnd.stats().achieved_gbps(),
            "sequential {} vs random {}",
            seq.stats().achieved_gbps(),
            rnd.stats().achieved_gbps()
        );
    }
}
